//! Offline stand-in for `serde_derive`.
//!
//! Hand-rolled derive macros (no `syn`/`quote` available offline) for the
//! vendored `serde` stand-in. Supports the shapes this workspace uses:
//! structs with named fields, tuple structs, and enums with unit, tuple and
//! struct variants; honors `#[serde(default)]` and `#[serde(skip)]` on
//! fields. Enums use serde's externally-tagged layout. Generic types are
//! rejected with a compile error.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug, Clone, Default)]
struct FieldAttrs {
    default: bool,
    skip: bool,
}

#[derive(Debug, Clone)]
struct Field {
    name: String,
    attrs: FieldAttrs,
}

#[derive(Debug, Clone)]
enum VariantShape {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

#[derive(Debug, Clone)]
struct Variant {
    name: String,
    shape: VariantShape,
}

#[derive(Debug)]
enum Item {
    NamedStruct { name: String, fields: Vec<Field> },
    TupleStruct { name: String, arity: usize },
    Enum { name: String, variants: Vec<Variant> },
}

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(stream: TokenStream) -> Self {
        Cursor { tokens: stream.into_iter().collect(), pos: 0 }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_ident(&self, word: &str) -> bool {
        matches!(self.peek(), Some(TokenTree::Ident(i)) if i.to_string() == word)
    }

    fn at_punct(&self, ch: char) -> bool {
        matches!(self.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ch)
    }

    /// Consumes leading attributes, returning accumulated serde flags.
    fn skip_attrs(&mut self) -> FieldAttrs {
        let mut attrs = FieldAttrs::default();
        while self.at_punct('#') {
            self.next();
            if let Some(TokenTree::Group(g)) = self.next() {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                if let Some(TokenTree::Ident(head)) = inner.first() {
                    if head.to_string() == "serde" {
                        if let Some(TokenTree::Group(args)) = inner.get(1) {
                            for t in args.stream() {
                                if let TokenTree::Ident(flag) = t {
                                    match flag.to_string().as_str() {
                                        "default" => attrs.default = true,
                                        "skip" => attrs.skip = true,
                                        other => panic!(
                                            "serde stand-in: unsupported attribute \
                                             `#[serde({other})]`"
                                        ),
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        attrs
    }

    /// Consumes `pub`, `pub(crate)`, etc.
    fn skip_visibility(&mut self) {
        if self.at_ident("pub") {
            self.next();
            if matches!(self.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                self.next();
            }
        }
    }

    /// Skips type tokens until a `,` at angle-bracket depth 0, consuming the
    /// comma. Returns false at end of stream.
    fn skip_type_until_comma(&mut self) -> bool {
        let mut depth = 0i64;
        while let Some(t) = self.peek() {
            match t {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    self.next();
                    return true;
                }
                _ => {}
            }
            self.next();
        }
        false
    }
}

fn parse_named_fields(group: TokenStream) -> Vec<Field> {
    let mut c = Cursor::new(group);
    let mut fields = Vec::new();
    loop {
        let attrs = c.skip_attrs();
        if c.peek().is_none() {
            break;
        }
        c.skip_visibility();
        let name = match c.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => panic!("serde stand-in: expected field name, found {other:?}"),
        };
        match c.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde stand-in: expected `:` after `{name}`, found {other:?}"),
        }
        fields.push(Field { name, attrs });
        if !c.skip_type_until_comma() {
            break;
        }
    }
    fields
}

fn count_tuple_fields(group: TokenStream) -> usize {
    let mut depth = 0i64;
    let mut commas = 0usize;
    let mut tokens = 0usize;
    let mut trailing_comma = false;
    for t in group {
        tokens += 1;
        match &t {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                depth += 1;
                trailing_comma = false;
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                depth -= 1;
                trailing_comma = false;
            }
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                commas += 1;
                trailing_comma = true;
            }
            _ => trailing_comma = false,
        }
    }
    if tokens == 0 {
        0
    } else if trailing_comma {
        commas
    } else {
        commas + 1
    }
}

fn parse_item(input: TokenStream) -> Item {
    let mut c = Cursor::new(input);
    loop {
        c.skip_attrs();
        c.skip_visibility();
        if c.at_ident("struct") || c.at_ident("enum") {
            break;
        }
        if c.next().is_none() {
            panic!("serde stand-in: no struct or enum found in derive input");
        }
    }
    let is_struct = c.at_ident("struct");
    c.next();
    let name = match c.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("serde stand-in: expected type name, found {other:?}"),
    };
    if c.at_punct('<') {
        panic!("serde stand-in: generic type `{name}` is not supported");
    }
    if is_struct {
        match c.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Item::NamedStruct { name, fields: parse_named_fields(g.stream()) }
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Item::TupleStruct { name, arity: count_tuple_fields(g.stream()) }
            }
            other => panic!("serde stand-in: unsupported struct body for `{name}`: {other:?}"),
        }
    } else {
        let body = match c.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
            other => panic!("serde stand-in: expected enum body for `{name}`, found {other:?}"),
        };
        let mut vc = Cursor::new(body);
        let mut variants = Vec::new();
        loop {
            vc.skip_attrs();
            if vc.peek().is_none() {
                break;
            }
            let vname = match vc.next() {
                Some(TokenTree::Ident(i)) => i.to_string(),
                other => panic!("serde stand-in: expected variant name, found {other:?}"),
            };
            let shape = match vc.peek() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    let arity = count_tuple_fields(g.stream());
                    vc.next();
                    VariantShape::Tuple(arity)
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    let fields = parse_named_fields(g.stream());
                    vc.next();
                    VariantShape::Struct(fields)
                }
                _ => VariantShape::Unit,
            };
            variants.push(Variant { name: vname, shape });
            // Skip to the next variant (handles discriminants defensively).
            while let Some(t) = vc.peek() {
                if matches!(t, TokenTree::Punct(p) if p.as_char() == ',') {
                    vc.next();
                    break;
                }
                vc.next();
            }
        }
        Item::Enum { name, variants }
    }
}

fn gen_serialize(item: &Item) -> String {
    let mut out = String::new();
    match item {
        Item::NamedStruct { name, fields } => {
            out.push_str(&format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_json_value(&self) -> ::serde::value::Value {{\n\
                 let mut __m = ::serde::value::Map::new();\n"
            ));
            for f in fields {
                if f.attrs.skip {
                    continue;
                }
                out.push_str(&format!(
                    "__m.insert(::std::string::String::from(\"{0}\"), \
                     ::serde::Serialize::to_json_value(&self.{0}));\n",
                    f.name
                ));
            }
            out.push_str("::serde::value::Value::Object(__m)\n}\n}\n");
        }
        Item::TupleStruct { name, arity } => {
            out.push_str(&format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_json_value(&self) -> ::serde::value::Value {{\n"
            ));
            if *arity == 1 {
                out.push_str("::serde::Serialize::to_json_value(&self.0)\n");
            } else {
                let items: Vec<String> = (0..*arity)
                    .map(|i| format!("::serde::Serialize::to_json_value(&self.{i})"))
                    .collect();
                out.push_str(&format!(
                    "::serde::value::Value::Array(vec![{}])\n",
                    items.join(", ")
                ));
            }
            out.push_str("}\n}\n");
        }
        Item::Enum { name, variants } => {
            out.push_str(&format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_json_value(&self) -> ::serde::value::Value {{\n\
                 match self {{\n"
            ));
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    VariantShape::Unit => {
                        out.push_str(&format!(
                            "{name}::{vn} => ::serde::value::Value::Str(\
                             ::std::string::String::from(\"{vn}\")),\n"
                        ));
                    }
                    VariantShape::Tuple(arity) => {
                        let binders: Vec<String> =
                            (0..*arity).map(|i| format!("__f{i}")).collect();
                        let inner = if *arity == 1 {
                            "::serde::Serialize::to_json_value(__f0)".to_string()
                        } else {
                            let items: Vec<String> = binders
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_json_value({b})"))
                                .collect();
                            format!("::serde::value::Value::Array(vec![{}])", items.join(", "))
                        };
                        out.push_str(&format!(
                            "{name}::{vn}({binds}) => {{\n\
                             let mut __m = ::serde::value::Map::new();\n\
                             __m.insert(::std::string::String::from(\"{vn}\"), {inner});\n\
                             ::serde::value::Value::Object(__m)\n}}\n",
                            binds = binders.join(", ")
                        ));
                    }
                    VariantShape::Struct(fields) => {
                        let binders: Vec<String> =
                            fields.iter().map(|f| f.name.clone()).collect();
                        let mut inner =
                            String::from("let mut __inner = ::serde::value::Map::new();\n");
                        for f in fields {
                            if f.attrs.skip {
                                continue;
                            }
                            inner.push_str(&format!(
                                "__inner.insert(::std::string::String::from(\"{0}\"), \
                                 ::serde::Serialize::to_json_value({0}));\n",
                                f.name
                            ));
                        }
                        out.push_str(&format!(
                            "{name}::{vn} {{ {binds} }} => {{\n\
                             {inner}\
                             let mut __m = ::serde::value::Map::new();\n\
                             __m.insert(::std::string::String::from(\"{vn}\"), \
                             ::serde::value::Value::Object(__inner));\n\
                             ::serde::value::Value::Object(__m)\n}}\n",
                            binds = binders.join(", ")
                        ));
                    }
                }
            }
            out.push_str("}\n}\n}\n");
        }
    }
    out
}

fn named_field_decoder(type_name: &str, map_var: &str, fields: &[Field]) -> String {
    let mut out = String::new();
    for f in fields {
        if f.attrs.skip {
            out.push_str(&format!("{}: ::std::default::Default::default(),\n", f.name));
        } else if f.attrs.default {
            out.push_str(&format!(
                "{0}: match {map_var}.get(\"{0}\") {{\n\
                 ::std::option::Option::Some(__x) => \
                 ::serde::Deserialize::from_json_value(__x)?,\n\
                 ::std::option::Option::None => ::std::default::Default::default(),\n}},\n",
                f.name
            ));
        } else {
            out.push_str(&format!(
                "{0}: match {map_var}.get(\"{0}\") {{\n\
                 ::std::option::Option::Some(__x) => \
                 ::serde::Deserialize::from_json_value(__x)?,\n\
                 ::std::option::Option::None => return ::std::result::Result::Err(\
                 ::serde::DeError::msg(\"{type_name}: missing field `{0}`\")),\n}},\n",
                f.name
            ));
        }
    }
    out
}

fn gen_deserialize(item: &Item) -> String {
    let mut out = String::new();
    match item {
        Item::NamedStruct { name, fields } => {
            out.push_str(&format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_json_value(__v: &::serde::value::Value) \
                 -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                 let __m = __v.as_object().ok_or_else(|| \
                 ::serde::DeError::msg(\"{name}: expected object\"))?;\n\
                 ::std::result::Result::Ok({name} {{\n"
            ));
            out.push_str(&named_field_decoder(name, "__m", fields));
            out.push_str("})\n}\n}\n");
        }
        Item::TupleStruct { name, arity } => {
            out.push_str(&format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_json_value(__v: &::serde::value::Value) \
                 -> ::std::result::Result<Self, ::serde::DeError> {{\n"
            ));
            if *arity == 1 {
                out.push_str(&format!(
                    "::std::result::Result::Ok({name}(\
                     ::serde::Deserialize::from_json_value(__v)?))\n"
                ));
            } else {
                out.push_str(&format!(
                    "let __a = __v.as_array().ok_or_else(|| \
                     ::serde::DeError::msg(\"{name}: expected array\"))?;\n\
                     if __a.len() != {arity} {{ return ::std::result::Result::Err(\
                     ::serde::DeError::msg(\"{name}: wrong tuple length\")); }}\n"
                ));
                let items: Vec<String> = (0..*arity)
                    .map(|i| format!("::serde::Deserialize::from_json_value(&__a[{i}])?"))
                    .collect();
                out.push_str(&format!(
                    "::std::result::Result::Ok({name}({}))\n",
                    items.join(", ")
                ));
            }
            out.push_str("}\n}\n");
        }
        Item::Enum { name, variants } => {
            out.push_str(&format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_json_value(__v: &::serde::value::Value) \
                 -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                 match __v {{\n\
                 ::serde::value::Value::Str(__s) => match __s.as_str() {{\n"
            ));
            for v in variants {
                if matches!(v.shape, VariantShape::Unit) {
                    out.push_str(&format!(
                        "\"{0}\" => ::std::result::Result::Ok({name}::{0}),\n",
                        v.name
                    ));
                }
            }
            out.push_str(&format!(
                "__other => ::std::result::Result::Err(::serde::DeError::msg(\
                 format!(\"{name}: unknown variant `{{__other}}`\"))),\n}},\n\
                 ::serde::value::Value::Object(__m) => {{\n\
                 let (__k, __val) = __m.first().ok_or_else(|| \
                 ::serde::DeError::msg(\"{name}: empty variant object\"))?;\n\
                 match __k.as_str() {{\n"
            ));
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    VariantShape::Unit => {}
                    VariantShape::Tuple(arity) => {
                        if *arity == 1 {
                            out.push_str(&format!(
                                "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}(\
                                 ::serde::Deserialize::from_json_value(__val)?)),\n"
                            ));
                        } else {
                            let items: Vec<String> = (0..*arity)
                                .map(|i| {
                                    format!("::serde::Deserialize::from_json_value(&__a[{i}])?")
                                })
                                .collect();
                            out.push_str(&format!(
                                "\"{vn}\" => {{\n\
                                 let __a = __val.as_array().ok_or_else(|| \
                                 ::serde::DeError::msg(\"{name}::{vn}: expected array\"))?;\n\
                                 if __a.len() != {arity} {{ \
                                 return ::std::result::Result::Err(::serde::DeError::msg(\
                                 \"{name}::{vn}: wrong arity\")); }}\n\
                                 ::std::result::Result::Ok({name}::{vn}({}))\n}}\n",
                                items.join(", ")
                            ));
                        }
                    }
                    VariantShape::Struct(fields) => {
                        out.push_str(&format!(
                            "\"{vn}\" => {{\n\
                             let __o = __val.as_object().ok_or_else(|| \
                             ::serde::DeError::msg(\"{name}::{vn}: expected object\"))?;\n\
                             ::std::result::Result::Ok({name}::{vn} {{\n"
                        ));
                        out.push_str(&named_field_decoder(
                            &format!("{name}::{vn}"),
                            "__o",
                            fields,
                        ));
                        out.push_str("})\n}\n");
                    }
                }
            }
            out.push_str(&format!(
                "__other => ::std::result::Result::Err(::serde::DeError::msg(\
                 format!(\"{name}: unknown variant `{{__other}}`\"))),\n\
                 }}\n}}\n\
                 __other => ::std::result::Result::Err(::serde::DeError::msg(\
                 format!(\"{name}: expected string or object, found {{}}\", \
                 __other.kind()))),\n\
                 }}\n}}\n}}\n"
            ));
        }
    }
    out
}

/// Derives the vendored `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("serde stand-in: generated Serialize must parse")
}

/// Derives the vendored `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item).parse().expect("serde stand-in: generated Deserialize must parse")
}
