//! Offline stand-in for `proptest`.
//!
//! Supports the subset this workspace's property tests use: the
//! [`proptest!`] macro with `#![proptest_config(..)]`, regex-literal string
//! strategies (character classes and `{m,n}` quantifiers), numeric range
//! strategies, [`collection::vec`], [`sample::select`], `prop_map`,
//! [`prop_oneof!`], and the `prop_assert*` macros. Cases are sampled
//! deterministically (seeded by test name), with no shrinking — a failing
//! case prints its number so it can be re-run.

/// Failure message for one test case.
pub type TestCaseError = String;

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Deterministic generator used to drive strategies.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from an arbitrary string (the test name) plus a case index.
    pub fn new(name: &str, case: u64) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng { state: h ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15) }
    }

    /// Next 64-bit word (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value below `bound` (> 0).
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// Uniform f64 in [0, 1).
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Drives the per-case loop inside [`proptest!`].
pub struct TestRunner {
    cases: u32,
    name: &'static str,
    rng: TestRng,
}

impl TestRunner {
    /// New runner for a named property.
    pub fn new(config: ProptestConfig, name: &'static str) -> Self {
        TestRunner { cases: config.cases, name, rng: TestRng::new(name, 0) }
    }

    /// Number of cases to run.
    pub fn cases(&self) -> u32 {
        self.cases
    }

    /// Re-seeds for `case` and returns the generator.
    pub fn start_case(&mut self, case: u32) -> &mut TestRng {
        self.rng = TestRng::new(self.name, u64::from(case));
        &mut self.rng
    }
}

/// A value generator.
pub trait Strategy {
    /// Generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// `prop_map` combinator.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

// ---- numeric range strategies ----

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as i128) - (self.start as i128);
                assert!(span > 0, "empty range strategy");
                (self.start as i128 + (rng.next_u64() as u128 % span as u128) as i128) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let span = (*self.end() as i128) - (*self.start() as i128) + 1;
                assert!(span > 0, "empty range strategy");
                (*self.start() as i128 + (rng.next_u64() as u128 % span as u128) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty float range strategy");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

// ---- regex-literal string strategy ----

enum Atom {
    Class(Vec<char>),
    Any,
    Lit(char),
}

struct Piece {
    atom: Atom,
    min: usize,
    max: usize,
}

fn parse_pattern(pat: &str) -> Vec<Piece> {
    let chars: Vec<char> = pat.chars().collect();
    let mut i = 0usize;
    let mut pieces = Vec::new();
    while i < chars.len() {
        let atom = match chars[i] {
            '[' => {
                i += 1;
                let mut set = Vec::new();
                while i < chars.len() && chars[i] != ']' {
                    // Range `x-y` when `-` is not the last char of the class.
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        let (lo, hi) = (chars[i], chars[i + 2]);
                        assert!(lo <= hi, "bad class range {lo}-{hi} in `{pat}`");
                        for c in lo..=hi {
                            set.push(c);
                        }
                        i += 3;
                    } else {
                        set.push(chars[i]);
                        i += 1;
                    }
                }
                assert!(i < chars.len(), "unterminated class in `{pat}`");
                i += 1; // closing ']'
                Atom::Class(set)
            }
            '.' => {
                i += 1;
                Atom::Any
            }
            '\\' => {
                i += 1;
                let c = chars.get(i).copied().expect("dangling escape");
                i += 1;
                Atom::Lit(c)
            }
            c => {
                i += 1;
                Atom::Lit(c)
            }
        };
        let (min, max) = if i < chars.len() && chars[i] == '{' {
            i += 1;
            let start = i;
            while chars[i] != '}' {
                i += 1;
            }
            let body: String = chars[start..i].iter().collect();
            i += 1; // '}'
            match body.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().expect("bad quantifier"),
                    hi.trim().parse().expect("bad quantifier"),
                ),
                None => {
                    let n: usize = body.trim().parse().expect("bad quantifier");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        pieces.push(Piece { atom, min, max });
    }
    pieces
}

impl Strategy for &str {
    type Value = String;

    fn sample(&self, rng: &mut TestRng) -> String {
        let pieces = parse_pattern(self);
        let mut out = String::new();
        for p in &pieces {
            let n = p.min + rng.below((p.max - p.min + 1) as u64) as usize;
            for _ in 0..n {
                match &p.atom {
                    Atom::Lit(c) => out.push(*c),
                    Atom::Any => {
                        out.push(char::from(b' ' + rng.below(95) as u8));
                    }
                    Atom::Class(set) => {
                        assert!(!set.is_empty(), "empty character class");
                        out.push(set[rng.below(set.len() as u64) as usize]);
                    }
                }
            }
        }
        out
    }
}

// ---- combinators ----

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Length bound for [`vec`].
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { min: r.start, max: r.end - 1 }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange { min: *r.start(), max: *r.end() }
        }
    }

    /// Vector-of-`element` strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose length falls in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n =
                self.size.min + rng.below((self.size.max - self.size.min + 1) as u64) as usize;
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Sampling strategies.
pub mod sample {
    use super::{Strategy, TestRng};

    /// Uniform choice among fixed options.
    pub struct Select<T> {
        options: Vec<T>,
    }

    /// Generates one of `options`, uniformly.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select: empty options");
        Select { options }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            self.options[rng.below(self.options.len() as u64) as usize].clone()
        }
    }
}

/// Weighted union of boxed strategies (built by [`prop_oneof!`]).
pub struct Union<V> {
    arms: Vec<(u32, Box<dyn Strategy<Value = V>>)>,
    total: u64,
}

impl<V> Union<V> {
    /// New union; weights must sum to a positive value.
    pub fn new(arms: Vec<(u32, Box<dyn Strategy<Value = V>>)>) -> Self {
        let total: u64 = arms.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total > 0, "prop_oneof: zero total weight");
        Union { arms, total }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn sample(&self, rng: &mut TestRng) -> V {
        let mut pick = rng.below(self.total);
        for (w, s) in &self.arms {
            if pick < u64::from(*w) {
                return s.sample(rng);
            }
            pick -= u64::from(*w);
        }
        unreachable!("weighted pick out of range")
    }
}

/// Weighted (or unweighted) choice among strategies with a common value
/// type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(
                (
                    ($weight) as u32,
                    ::std::boxed::Box::new($strat)
                        as ::std::boxed::Box<dyn $crate::Strategy<Value = _>>,
                )
            ),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::prop_oneof!($(1 => $strat),+)
    };
}

/// Asserts a condition inside a property, failing the case (not panicking
/// the harness) on violation.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {}", stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let __a = $a;
        let __b = $b;
        if !(__a == __b) {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{:?}` != `{:?}`", __a, __b
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let __a = $a;
        let __b = $b;
        if !(__a == __b) {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    }};
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let __a = $a;
        let __b = $b;
        if !(__a != __b) {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{:?}` == `{:?}`",
                __a, __b
            ));
        }
    }};
}

/// Declares deterministic random property tests.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    (@cfg ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let mut __runner =
                    $crate::TestRunner::new(__config, stringify!($name));
                for __case in 0..__runner.cases() {
                    let __rng = __runner.start_case(__case);
                    $(let $arg = $crate::Strategy::sample(&($strat), __rng);)+
                    let __result: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(__msg) = __result {
                        panic!(
                            "property `{}` failed at case {}: {}",
                            stringify!($name), __case, __msg
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Everything a property-test module needs in scope.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, ProptestConfig,
        Strategy, TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn regex_subset_generates_matching_strings() {
        let mut rng = crate::TestRng::new("regex", 1);
        for _ in 0..200 {
            let s = Strategy::sample(&"[a-z_]{1,6}", &mut rng);
            assert!((1..=6).contains(&s.len()), "{s:?}");
            assert!(s.chars().all(|c| c == '_' || c.is_ascii_lowercase()), "{s:?}");
        }
        let s = Strategy::sample(&"[ab]{0,12}", &mut rng);
        assert!(s.len() <= 12);
        let any = Strategy::sample(&".{1,40}", &mut rng);
        assert!((1..=40).contains(&any.len()));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_vecs(x in -20i64..20, xs in prop::collection::vec(0.0f64..1.0, 3..10)) {
            prop_assert!((-20..20).contains(&x));
            prop_assert!((3..10).contains(&xs.len()));
            prop_assert!(xs.iter().all(|v| (0.0..1.0).contains(v)));
        }

        #[test]
        fn oneof_and_select(s in prop_oneof![
            2 => "[0-9]{1,3}",
            1 => prop::sample::select(vec!["x", "yy"]).prop_map(str::to_string),
        ]) {
            let s: String = s;
            prop_assert!(!s.is_empty());
        }
    }
}
