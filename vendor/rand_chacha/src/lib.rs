//! Offline stand-in for `rand_chacha`.
//!
//! Provides a deterministic, statistically solid generator under the
//! [`ChaCha8Rng`] name. The core is xoshiro256++ seeded by SplitMix64 —
//! not the ChaCha stream cipher — because the workspace only relies on
//! *seeded determinism*, not on matching upstream byte streams.

use rand::{RngCore, SeedableRng};

/// Deterministic seeded generator (xoshiro256++ core).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaCha8Rng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // All-zero state would be a fixed point; SplitMix64 cannot produce
        // four zero outputs in a row, but guard anyway.
        if s == [0; 4] {
            s[0] = 0x9e37_79b9_7f4a_7c15;
        }
        ChaCha8Rng { s }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(123);
        let mut b = ChaCha8Rng::seed_from_u64(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn bits_look_balanced() {
        let mut r = ChaCha8Rng::seed_from_u64(7);
        let mut ones = 0u64;
        for _ in 0..4096 {
            ones += r.next_u64().count_ones() as u64;
        }
        let total = 4096 * 64;
        let frac = ones as f64 / total as f64;
        assert!((0.49..0.51).contains(&frac), "{frac}");
    }
}
