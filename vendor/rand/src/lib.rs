//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no crates.io access, so this workspace vendors
//! a minimal, API-compatible subset of `rand`: [`RngCore`], [`Rng`],
//! [`SeedableRng`], uniform range sampling, and [`seq::SliceRandom`].
//! Determinism is the contract that matters here (same seed → same
//! sequence); the streams do not match upstream `rand` bit for bit.

/// Low-level generator interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// The next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// The next uniform 32-bit word.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seeding interface; only the `seed_from_u64` entry point is provided.
pub trait SeedableRng: Sized {
    /// Deterministically constructs a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be drawn from the "standard" distribution via
/// [`Rng::gen`].
pub trait Standard: Sized {
    /// Samples one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        // 24 explicit mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

/// Scalar types that support uniform sampling from a half-open or
/// inclusive range.
pub trait UniformSample: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`.
    fn sample_uniform<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        inclusive: bool,
    ) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl UniformSample for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: $t,
                hi: $t,
                inclusive: bool,
            ) -> $t {
                let span = (hi as i128 - lo as i128) + if inclusive { 1 } else { 0 };
                assert!(span > 0, "gen_range: empty range");
                // Modulo bias is ≤ span/2^64 — irrelevant for the tiny spans
                // used in this workspace.
                let off = (rng.next_u64() as u128 % span as u128) as i128;
                (lo as i128 + off) as $t
            }
        }
    )*};
}

uniform_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! uniform_float {
    ($($t:ty),*) => {$(
        impl UniformSample for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: $t,
                hi: $t,
                _inclusive: bool,
            ) -> $t {
                assert!(lo < hi, "gen_range: empty float range");
                let u = <$t as Standard>::sample_standard(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}

uniform_float!(f32, f64);

/// Ranges acceptable to [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: UniformSample> SampleRange<T> for core::ops::Range<T> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(rng, self.start, self.end, false)
    }
}

impl<T: UniformSample> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(rng, *self.start(), *self.end(), true)
    }
}

/// High-level convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples from the standard distribution of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Uniform draw from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_one(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        <f64 as Standard>::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Sequence-related random operations.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random operations on slices: in-place shuffle and element choice.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` when empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let i = rng.gen_range(0..self.len());
                self.get(i)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    struct Fixed(u64);
    impl RngCore for Fixed {
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = Fixed(42);
        for _ in 0..1000 {
            let v: i64 = r.gen_range(-20..40);
            assert!((-20..40).contains(&v));
            let f: f32 = r.gen_range(1e-6..1.0);
            assert!((1e-6..1.0).contains(&f));
            let u: usize = r.gen_range(1..=4);
            assert!((1..=4).contains(&u));
        }
    }

    #[test]
    fn shuffle_permutes() {
        let mut r = Fixed(7);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
        assert_ne!(v, sorted, "shuffle left the slice in order");
    }

    #[test]
    fn gen_bool_probability_is_plausible() {
        let mut r = Fixed(9);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "{hits}");
    }
}
