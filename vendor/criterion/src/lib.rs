//! Offline stand-in for `criterion`.
//!
//! Implements the subset of the Criterion API this workspace's benches use:
//! [`Criterion::bench_function`], [`Bencher::iter`], the configuration
//! builder methods, [`criterion_group!`] (both forms) and
//! [`criterion_main!`]. Reports a simple mean ns/iter instead of
//! Criterion's statistical analysis — good enough for relative comparisons
//! in an offline environment.

use std::time::{Duration, Instant};

/// Opaque black box: prevents the optimizer from deleting benchmark work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Benchmark driver with a Criterion-compatible builder API.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    filter: Option<String>,
    list_only: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let args: Vec<String> = std::env::args().collect();
        let list_only = args.iter().any(|a| a == "--list");
        // First free-standing non-flag argument is the name filter (matches
        // `cargo bench -- <filter>`).
        let filter = args
            .iter()
            .skip(1)
            .find(|a| !a.starts_with('-') && !a.ends_with("bench") && *a != "--bench")
            .cloned();
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_millis(500),
            warm_up_time: Duration::from_millis(100),
            filter,
            list_only,
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the time budget for the measurement phase.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Sets the time budget for the warm-up phase.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the minimum plotting noise threshold (accepted, ignored).
    pub fn noise_threshold(self, _t: f64) -> Self {
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        if self.list_only {
            println!("{name}: bench");
            return self;
        }
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return self;
            }
        }
        let mut b = Bencher { total: Duration::ZERO, iters: 0, budget: self.warm_up_time };
        f(&mut b); // warm-up (timings discarded)
        let mut b = Bencher { total: Duration::ZERO, iters: 0, budget: self.measurement_time };
        for _ in 0..self.sample_size {
            f(&mut b);
            if b.total >= self.measurement_time {
                break;
            }
        }
        if b.iters > 0 {
            let per_iter = b.total.as_nanos() as f64 / b.iters as f64;
            println!("{name:<40} {per_iter:>14.1} ns/iter ({} iters)", b.iters);
        }
        self
    }
}

/// Per-benchmark timing handle.
pub struct Bencher {
    total: Duration,
    iters: u64,
    budget: Duration,
}

impl Bencher {
    /// Times repeated calls of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Adaptive batch: aim for enough iterations to fill the budget
        // without running unbounded.
        let start = Instant::now();
        let mut n = 0u64;
        loop {
            black_box(routine());
            n += 1;
            let elapsed = start.elapsed();
            if elapsed >= self.budget.min(Duration::from_millis(200)) || n >= 1_000_000 {
                self.total += elapsed;
                self.iters += n;
                break;
            }
        }
    }
}

/// Criterion-compatible group macro (both the list and the config form).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $config;
            $( $target(&mut c); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Criterion-compatible main macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
