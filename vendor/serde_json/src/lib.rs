//! Offline stand-in for `serde_json`: renders and parses the vendored
//! `serde` stand-in's [`Value`] tree as compact JSON.

pub use serde::value::{Map, Value};

/// JSON (de)serialization error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl core::fmt::Display for Error {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error(e.0)
    }
}

/// Serializes `value` to a compact JSON string.
///
/// # Errors
///
/// Infallible for the value model; the `Result` mirrors serde_json's API.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_json_value().render())
}

/// Parses JSON text into `T`.
///
/// # Errors
///
/// Returns a message describing the syntax or shape mismatch.
pub fn from_str<T: serde::Deserialize>(text: &str) -> Result<T, Error> {
    let v = Value::parse(text).map_err(Error)?;
    T::from_json_value(&v).map_err(Error::from)
}

/// Converts an in-memory [`Value`] into `T`.
///
/// # Errors
///
/// Returns a message describing the shape mismatch.
pub fn from_value<T: serde::Deserialize>(v: Value) -> Result<T, Error> {
    T::from_json_value(&v).map_err(Error::from)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        let s = to_string(&vec![1i64, -2, 3]).unwrap();
        assert_eq!(s, "[1,-2,3]");
        let back: Vec<i64> = from_str(&s).unwrap();
        assert_eq!(back, vec![1, -2, 3]);
    }

    #[test]
    fn value_passthrough() {
        let v: Value = from_str(r#"{"a": [1, 2.5, "x"], "b": null}"#).unwrap();
        let text = to_string(&v).unwrap();
        let again: Value = from_str(&text).unwrap();
        assert_eq!(v, again);
    }
}
