//! JSON-like value tree plus a writer and parser.
//!
//! This is the interchange model behind the vendored `serde` stand-in;
//! `serde_json` re-exports [`Value`] and [`Map`] and wraps
//! [`Value::render`] / [`Value::parse`].

/// Order-preserving string-keyed map (JSON object).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// Empty map.
    pub fn new() -> Self {
        Map::default()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when there are no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Inserts or replaces a key, returning any previous value.
    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        for (k, v) in &mut self.entries {
            if *k == key {
                return Some(std::mem::replace(v, value));
            }
        }
        self.entries.push((key, value));
        None
    }

    /// Looks up a key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Mutable lookup.
    pub fn get_mut(&mut self, key: &str) -> Option<&mut Value> {
        self.entries.iter_mut().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Removes a key, returning its value when present.
    pub fn remove(&mut self, key: &str) -> Option<Value> {
        let idx = self.entries.iter().position(|(k, _)| k == key)?;
        Some(self.entries.remove(idx).1)
    }

    /// Iterates entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &(String, Value)> {
        self.entries.iter()
    }

    /// First entry (used for externally-tagged enum decoding).
    pub fn first(&self) -> Option<&(String, Value)> {
        self.entries.first()
    }
}

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Signed integer (also produced for any integral literal with `-`).
    Int(i64),
    /// Unsigned integer (non-negative integral literals).
    UInt(u64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object.
    Object(Map),
}

impl Value {
    /// Human-readable kind name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// Borrows the string content, if any.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Borrows the array content, if any.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Borrows the object content, if any.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Mutably borrows the object content, if any.
    pub fn as_object_mut(&mut self) -> Option<&mut Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Renders compact JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Int(i) => {
                out.push_str(&i.to_string());
            }
            Value::UInt(u) => {
                out.push_str(&u.to_string());
            }
            Value::Float(f) => {
                if f.is_finite() {
                    // `{:?}` prints the shortest representation that parses
                    // back to the same f64 (and always keeps a `.0` or
                    // exponent, so floats stay floats on re-parse).
                    out.push_str(&format!("{f:?}"));
                } else {
                    // JSON has no NaN/Infinity; mirror serde_json's `null`.
                    out.push_str("null");
                }
            }
            Value::Str(s) => render_string(s, out),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Value::Object(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_string(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses JSON text.
    ///
    /// # Errors
    ///
    /// Returns a message with the byte offset of the first syntax error.
    pub fn parse(text: &str) -> Result<Value, String> {
        let bytes = text.as_bytes();
        let mut p = Parser { bytes, pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != bytes.len() {
            return Err(format!("trailing characters at byte {}", p.pos));
        }
        Ok(v)
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            Some(other) => Err(format!("unexpected `{}` at byte {}", other as char, self.pos)),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| format!("invalid UTF-8 at byte {start}"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| "unterminated escape".to_string())?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| "truncated \\u escape".to_string())?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| "bad \\u escape".to_string())?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape".to_string())?;
                            self.pos += 4;
                            // Surrogate pairs: read the low half when present.
                            let c = if (0xd800..0xdc00).contains(&code) {
                                if self.bytes.get(self.pos) == Some(&b'\\')
                                    && self.bytes.get(self.pos + 1) == Some(&b'u')
                                {
                                    let hex2 = self
                                        .bytes
                                        .get(self.pos + 2..self.pos + 6)
                                        .ok_or_else(|| "truncated surrogate".to_string())?;
                                    let low = u32::from_str_radix(
                                        std::str::from_utf8(hex2)
                                            .map_err(|_| "bad surrogate".to_string())?,
                                        16,
                                    )
                                    .map_err(|_| "bad surrogate".to_string())?;
                                    self.pos += 6;
                                    0x10000 + ((code - 0xd800) << 10) + (low - 0xdc00)
                                } else {
                                    return Err("lone high surrogate".to_string());
                                }
                            } else {
                                code
                            };
                            out.push(
                                char::from_u32(c)
                                    .ok_or_else(|| "invalid \\u codepoint".to_string())?,
                            );
                        }
                        other => return Err(format!("unknown escape `\\{}`", other as char)),
                    }
                }
                _ => return Err("unterminated string".to_string()),
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "bad number".to_string())?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| format!("invalid number `{text}` at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_basic() {
        let mut m = Map::new();
        m.insert("a".into(), Value::Int(-3));
        m.insert("b".into(), Value::Array(vec![Value::Float(1.5), Value::Null]));
        m.insert("s".into(), Value::Str("x\"\n\\y".into()));
        let v = Value::Object(m);
        let text = v.render();
        let back = Value::parse(&text).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn float_roundtrip_is_exact() {
        for x in [0.1f64, 1.0, -2.5e-8, 3.4028235e38, 1e-45] {
            let text = Value::Float(x).render();
            match Value::parse(&text).unwrap() {
                Value::Float(y) => assert_eq!(x, y, "{text}"),
                other => panic!("{other:?}"),
            }
        }
        // f32 via f64 widening must also be exact.
        for x in [0.1f32, -7.25, 2.0e-20] {
            let text = Value::Float(f64::from(x)).render();
            match Value::parse(&text).unwrap() {
                Value::Float(y) => assert_eq!(x, y as f32),
                other => panic!("{other:?}"),
            }
        }
    }

    #[test]
    fn unicode_escapes_parse() {
        let v = Value::parse(r#""aé😀b""#).unwrap();
        assert_eq!(v, Value::Str("aé😀b".to_string()));
    }

    #[test]
    fn integer_forms() {
        assert_eq!(Value::parse("42").unwrap(), Value::UInt(42));
        assert_eq!(Value::parse("-42").unwrap(), Value::Int(-42));
        assert_eq!(Value::parse("4.0").unwrap(), Value::Float(4.0));
        assert_eq!(Value::parse("1e3").unwrap(), Value::Float(1000.0));
    }
}
