//! Offline stand-in for `serde`.
//!
//! The build environment has no crates.io access, so this workspace vendors
//! a minimal serialization framework under the `serde` name. Instead of the
//! visitor architecture, types convert to and from a JSON-like
//! [`value::Value`] tree; `serde_json` (also vendored) renders and parses
//! that tree. The derive macros in `serde_derive` implement the same
//! externally-tagged layout as real serde (unit variant → string, newtype
//! variant → `{"Name": value}`, tuple variant → `{"Name": [..]}`), and the
//! `#[serde(default)]` / `#[serde(skip)]` field attributes used by this
//! workspace are honored.

pub use serde_derive::{Deserialize, Serialize};

pub mod value;

use value::{Map, Value};

/// Serialization error (unused by the value model, kept for API shape).
#[derive(Debug, Clone)]
pub struct SerError(pub String);

/// Deserialization error with a human-readable message.
#[derive(Debug, Clone)]
pub struct DeError(pub String);

impl DeError {
    /// Constructs an error from a message.
    pub fn msg(m: impl Into<String>) -> Self {
        DeError(m.into())
    }
}

impl core::fmt::Display for DeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Types convertible into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into a JSON-like value.
    fn to_json_value(&self) -> Value;
}

/// Types reconstructible from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reconstructs `Self`, reporting a message on shape mismatch.
    fn from_json_value(v: &Value) -> Result<Self, DeError>;
}

// ---- primitive impls ----

macro_rules! ser_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value { Value::Int(*self as i64) }
        }
        impl Deserialize for $t {
            fn from_json_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Int(i) => Ok(*i as $t),
                    Value::UInt(u) => Ok(*u as $t),
                    Value::Float(f) if f.fract() == 0.0 => Ok(*f as $t),
                    other => Err(DeError::msg(format!(
                        "expected integer, found {}", other.kind()
                    ))),
                }
            }
        }
    )*};
}

ser_signed!(i8, i16, i32, i64, isize);

macro_rules! ser_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value { Value::UInt(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_json_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::UInt(u) => Ok(*u as $t),
                    Value::Int(i) if *i >= 0 => Ok(*i as $t),
                    Value::Float(f) if f.fract() == 0.0 && *f >= 0.0 => Ok(*f as $t),
                    other => Err(DeError::msg(format!(
                        "expected unsigned integer, found {}", other.kind()
                    ))),
                }
            }
        }
    )*};
}

ser_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f32 {
    fn to_json_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_json_value(v: &Value) -> Result<Self, DeError> {
        Ok(f64::from_json_value(v)? as f32)
    }
}

impl Serialize for f64 {
    fn to_json_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_json_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Float(f) => Ok(*f),
            Value::Int(i) => Ok(*i as f64),
            Value::UInt(u) => Ok(*u as f64),
            // JSON has no NaN/Infinity literal; the writer emits null.
            Value::Null => Ok(f64::NAN),
            other => Err(DeError::msg(format!("expected number, found {}", other.kind()))),
        }
    }
}

impl Serialize for bool {
    fn to_json_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_json_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::msg(format!("expected bool, found {}", other.kind()))),
        }
    }
}

impl Serialize for char {
    fn to_json_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_json_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(DeError::msg(format!("expected char, found {}", other.kind()))),
        }
    }
}

impl Serialize for String {
    fn to_json_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_json_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::msg(format!("expected string, found {}", other.kind()))),
        }
    }
}

impl Serialize for str {
    fn to_json_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_json_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_json_value).collect(),
            other => Err(DeError::msg(format!("expected array, found {}", other.kind()))),
        }
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_json_value(v: &Value) -> Result<Self, DeError> {
        T::from_json_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json_value(&self) -> Value {
        match self {
            Some(x) => x.to_json_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_json_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_json_value(other).map(Some),
        }
    }
}

macro_rules! ser_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_json_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_json_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_json_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Array(items) => {
                        let mut it = items.iter();
                        Ok(($(
                            {
                                let _ = $n; // positional marker
                                $t::from_json_value(it.next().ok_or_else(|| {
                                    DeError::msg("tuple too short")
                                })?)?
                            },
                        )+))
                    }
                    other => Err(DeError::msg(format!(
                        "expected tuple array, found {}", other.kind()
                    ))),
                }
            }
        }
    )*};
}

ser_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

impl<V: Serialize, S: std::hash::BuildHasher> Serialize
    for std::collections::HashMap<String, V, S>
{
    fn to_json_value(&self) -> Value {
        // Sort keys so serialization is deterministic across hasher states.
        let mut keys: Vec<&String> = self.keys().collect();
        keys.sort();
        let mut m = Map::new();
        for k in keys {
            m.insert(k.clone(), self[k].to_json_value());
        }
        Value::Object(m)
    }
}

impl<V: Deserialize, S: std::hash::BuildHasher + Default> Deserialize
    for std::collections::HashMap<String, V, S>
{
    fn from_json_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(m) => {
                let mut out = Self::default();
                for (k, val) in m.iter() {
                    out.insert(k.clone(), V::from_json_value(val)?);
                }
                Ok(out)
            }
            other => Err(DeError::msg(format!("expected object, found {}", other.kind()))),
        }
    }
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn to_json_value(&self) -> Value {
        let mut m = Map::new();
        for (k, val) in self {
            m.insert(k.clone(), val.to_json_value());
        }
        Value::Object(m)
    }
}

impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn from_json_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(m) => {
                let mut out = Self::new();
                for (k, val) in m.iter() {
                    out.insert(k.clone(), V::from_json_value(val)?);
                }
                Ok(out)
            }
            other => Err(DeError::msg(format!("expected object, found {}", other.kind()))),
        }
    }
}

impl Serialize for Value {
    fn to_json_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_json_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}
