//! `slade-cli` — train, persist, and run the SLaDe decompiler pipeline
//! from the command line.
//!
//! ```text
//! slade-cli train     --isa x86|arm --opt O0|O3 --out model.json
//!                     [--profile tiny|default] [--items N] [--seed N]
//! slade-cli compile   --src file.c --func name --isa x86|arm --opt O0|O3
//! slade-cli decompile --model model.json --asm file.s [--context file.c] [--beam K]
//! slade-cli eval      --model model.json [--items N] [--seed N] [--repair]
//!                     [--threads N]
//! slade-cli serve     --addr HOST:PORT [--model model.json] [--shards N]
//!                     [--queue-cap N] [--timeout-ms N] [--spill-dir DIR]
//!                     [--quota-rps R] [--quota-burst B] [--addr-file PATH]
//! slade-cli stats     [--model model.json] [--shards N] [--requests N]
//!                     [--queue-cap N] [--timeout-ms N] [--spill-dir DIR]
//!                     [--prometheus | --json]
//! slade-cli stats     --url http://HOST:PORT [--prometheus | --json]
//! slade-cli trace     [--model model.json] [--asm file.s] [--request ID]
//! ```
//!
//! `train` writes a self-contained JSON artifact (weights + tokenizer +
//! target configuration); `decompile` prints beam candidates with inferred
//! type headers; `eval` scores a model on freshly generated held-out items
//! with the same IO harness as the paper's figures; `serve` runs the HTTP
//! gateway over the admission tier until killed (`--addr 127.0.0.1:0`
//! picks an ephemeral port, written to `--addr-file` for scripts); `stats`
//! serves a workload and renders the live metrics snapshot
//! (`--prometheus` for the text exposition, `--json` for the full
//! snapshot plus stage breakdown) or, with `--url`, scrapes and validates
//! a live gateway's `/metrics`; `trace` decompiles one input and prints
//! its span tree.
//!
//! Observability knobs (environment, read once at startup):
//! `SLADE_SLOW_MS` — slow-request log threshold in ms (default 1000, `0`
//! disables); `SLADE_TRACE_RING` — trace ring capacity in spans (default
//! 8192); `SLADE_KERNEL_ISA` — kernel dispatch tier override.

use slade::{Slade, SladeBuilder, TrainProfile};
use slade_compiler::{compile_function, CompileOpts, Isa, OptLevel};
use slade_dataset::{generate_exebench_eval, generate_train, DatasetProfile};
use slade_eval::{evaluate, summarize, Tool, ToolContext};
use slade_minic::parse_program;
use std::collections::HashMap;
use std::io::Write;
use std::process::ExitCode;

/// Prints to stdout, ignoring broken pipes (`slade-cli ... | head` must
/// not panic).
fn emit(text: std::fmt::Arguments<'_>) {
    let mut out = std::io::stdout().lock();
    let _ = writeln!(out, "{text}");
}

macro_rules! put {
    ($($arg:tt)*) => { emit(format_args!($($arg)*)) };
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let flags = match parse_flags(rest) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let result = match command.as_str() {
        "train" => cmd_train(&flags),
        "compile" => cmd_compile(&flags),
        "decompile" => cmd_decompile(&flags),
        "eval" => cmd_eval(&flags),
        "serve" => cmd_serve(&flags),
        "stats" => cmd_stats(&flags),
        "trace" => cmd_trace(&flags),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  slade-cli train     --isa x86|arm --opt O0|O3 --out model.json
                      [--profile tiny|default] [--items N] [--seed N]
  slade-cli compile   --src file.c --func name --isa x86|arm --opt O0|O3
  slade-cli decompile --model model.json --asm file.s [--context file.c] [--beam K]
  slade-cli eval      --model model.json [--items N] [--seed N] [--repair]
                      [--threads N]
  slade-cli serve     --addr HOST:PORT [--model model.json] [--shards N]
                      [--queue-cap N] [--timeout-ms N] [--spill-dir DIR]
                      [--quota-rps R] [--quota-burst B] [--addr-file PATH]
  slade-cli stats     [--model model.json] [--shards N] [--requests N]
                      [--queue-cap N] [--timeout-ms N] [--spill-dir DIR]
                      [--prometheus | --json]
  slade-cli stats     --url http://HOST:PORT [--prometheus | --json]
  slade-cli trace     [--model model.json] [--asm file.s] [--request ID]

env: SLADE_SLOW_MS (slow-request log threshold ms, default 1000, 0=off),
     SLADE_TRACE_RING (trace ring capacity in spans, default 8192),
     SLADE_KERNEL_ISA (kernel dispatch tier override)";

/// `--key value` and bare `--flag` arguments.
fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut out = HashMap::new();
    let mut i = 0usize;
    while i < args.len() {
        let key = args[i]
            .strip_prefix("--")
            .ok_or_else(|| format!("expected --flag, found `{}`", args[i]))?;
        if i + 1 < args.len() && !args[i + 1].starts_with("--") {
            out.insert(key.to_string(), args[i + 1].clone());
            i += 2;
        } else {
            out.insert(key.to_string(), String::new());
            i += 1;
        }
    }
    Ok(out)
}

fn parse_isa(flags: &HashMap<String, String>) -> Result<Isa, String> {
    match flags.get("isa").map(String::as_str) {
        Some("x86") | Some("x86_64") | Some("x86-64") => Ok(Isa::X86_64),
        Some("arm") | Some("arm64") | Some("aarch64") => Ok(Isa::Arm64),
        Some(other) => Err(format!("unknown --isa `{other}` (x86 or arm)")),
        None => Err("missing --isa".to_string()),
    }
}

fn parse_opt(flags: &HashMap<String, String>) -> Result<OptLevel, String> {
    match flags.get("opt").map(String::as_str) {
        Some("O0") | Some("o0") | Some("0") => Ok(OptLevel::O0),
        Some("O3") | Some("o3") | Some("3") => Ok(OptLevel::O3),
        Some(other) => Err(format!("unknown --opt `{other}` (O0 or O3)")),
        None => Err("missing --opt".to_string()),
    }
}

fn numeric(flags: &HashMap<String, String>, key: &str, default: u64) -> Result<u64, String> {
    match flags.get(key) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| format!("--{key} expects a number, got `{v}`")),
    }
}

fn fractional(flags: &HashMap<String, String>, key: &str, default: f64) -> Result<f64, String> {
    match flags.get(key) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| format!("--{key} expects a number, got `{v}`")),
    }
}

/// The persisted artifact: the trained pipeline plus its target
/// configuration, so `eval`/`decompile` need no extra flags.
#[derive(serde::Serialize, serde::Deserialize)]
struct Artifact {
    isa: String,
    opt: String,
    slade: Slade,
}

impl Artifact {
    fn isa(&self) -> Isa {
        if self.isa == "arm" {
            Isa::Arm64
        } else {
            Isa::X86_64
        }
    }

    fn opt(&self) -> OptLevel {
        if self.opt == "O3" {
            OptLevel::O3
        } else {
            OptLevel::O0
        }
    }
}

fn load_artifact(flags: &HashMap<String, String>) -> Result<Artifact, String> {
    let path = flags.get("model").ok_or("missing --model")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    serde_json::from_str(&text).map_err(|e| format!("{path}: {e}"))
}

fn cmd_train(flags: &HashMap<String, String>) -> Result<(), String> {
    let isa = parse_isa(flags)?;
    let opt = parse_opt(flags)?;
    let out = flags.get("out").ok_or("missing --out")?;
    let seed = numeric(flags, "seed", 7)?;
    let items = numeric(flags, "items", 250)? as usize;
    let profile = match flags.get("profile").map(String::as_str) {
        Some("default") => TrainProfile::default_profile(),
        // The tiny profile with a source-length cap that fits realistic
        // `-O0` assembly (raw tiny truncates at 96 tokens and would skip
        // most functions).
        _ => TrainProfile { max_src_len: 1024, epochs: 3, ..TrainProfile::tiny() },
    };
    let data = DatasetProfile { train: items, exebench_eval: 8, synth_per_category: 2 };
    let train_items = generate_train(data, seed);
    eprintln!("training {isa} {opt} on {} functions ...", train_items.len());
    let t0 = std::time::Instant::now();
    let slade = SladeBuilder::new(isa, opt).profile(profile).train(&train_items, seed);
    eprintln!("trained in {:.1}s", t0.elapsed().as_secs_f64());
    let artifact = Artifact {
        isa: if isa == Isa::Arm64 { "arm" } else { "x86" }.to_string(),
        opt: format!("{opt}"),
        slade,
    };
    let json = serde_json::to_string(&artifact).map_err(|e| e.to_string())?;
    std::fs::write(out, &json).map_err(|e| format!("{out}: {e}"))?;
    eprintln!("wrote {out} ({} bytes)", json.len());
    Ok(())
}

fn cmd_compile(flags: &HashMap<String, String>) -> Result<(), String> {
    let isa = parse_isa(flags)?;
    let opt = parse_opt(flags)?;
    let src_path = flags.get("src").ok_or("missing --src")?;
    let func = flags.get("func").ok_or("missing --func")?;
    let src = std::fs::read_to_string(src_path).map_err(|e| format!("{src_path}: {e}"))?;
    let program = parse_program(&src).map_err(|e| e.to_string())?;
    let asm = compile_function(&program, func, CompileOpts::new(isa, opt))
        .map_err(|e| e.to_string())?;
    put!("{asm}");
    Ok(())
}

fn cmd_decompile(flags: &HashMap<String, String>) -> Result<(), String> {
    let artifact = load_artifact(flags)?;
    let asm_path = flags.get("asm").ok_or("missing --asm")?;
    let asm = std::fs::read_to_string(asm_path).map_err(|e| format!("{asm_path}: {e}"))?;
    let context = match flags.get("context") {
        Some(p) => std::fs::read_to_string(p).map_err(|e| format!("{p}: {e}"))?,
        None => String::new(),
    };
    let mut slade = artifact.slade;
    if let Some(beam) = flags.get("beam") {
        slade.set_beam(beam.parse().map_err(|_| "--beam expects a number")?);
    }
    for (rank, (hypothesis, header)) in
        slade.decompile_with_types(&asm, &context).into_iter().enumerate()
    {
        put!("--- candidate {rank} ---");
        if !header.trim().is_empty() {
            put!("/* inferred types */\n{header}");
        }
        put!("{hypothesis}\n");
    }
    Ok(())
}

/// The decompiler for `stats`/`trace`: the `--model` artifact when given,
/// else an untrained small-profile model (decode cost is representative;
/// hypotheses are noise) so the observability surface works standalone.
fn observed_slade(flags: &HashMap<String, String>) -> Result<std::sync::Arc<Slade>, String> {
    if flags.contains_key("model") {
        return Ok(std::sync::Arc::new(load_artifact(flags)?.slade));
    }
    let corpus: Vec<String> = (0..16).map(synthetic_asm).collect();
    let tokenizer = slade_tokenizer::UnigramTokenizer::train(&corpus, 300);
    let model =
        slade_nn::Seq2Seq::new(slade_nn::TransformerConfig::small(tokenizer.vocab_size()), 7);
    Ok(std::sync::Arc::new(Slade::from_parts(
        model,
        tokenizer,
        Isa::X86_64,
        OptLevel::O0,
        3,
        16,
    )))
}

/// Distinct realistic-shaped assembly per index.
fn synthetic_asm(i: usize) -> String {
    format!(
        "f{i}:\n\tpushq %rbp\n\tmovq %rsp, %rbp\n\tmovl %edi, -{off}(%rbp)\n\taddl ${k}, %eax\n\tpopq %rbp\n\tret\n",
        off = 4 + 4 * (i % 6),
        k = 3 + i
    )
}

/// Admission-tier configuration shared by `stats` (synthetic workload)
/// and `serve` (live gateway): `--shards`, `--queue-cap`, `--timeout-ms`,
/// `--spill-dir`.
fn serve_config(flags: &HashMap<String, String>) -> Result<slade_serve::ServeConfig, String> {
    let shards = numeric(flags, "shards", 2)?.max(1) as usize;
    let queue_cap = numeric(flags, "queue-cap", 0)? as usize;
    let timeout_ms = numeric(flags, "timeout-ms", 0)?;
    let mut config = slade_serve::ServeConfig::with_shards(shards)
        .with_queue_cap(queue_cap)
        .with_request_timeout(std::time::Duration::from_millis(timeout_ms));
    if let Some(dir) = flags.get("spill-dir") {
        config = config.with_spill_dir(std::path::PathBuf::from(dir));
    }
    Ok(config)
}

/// Runs the HTTP gateway over the admission tier until the process is
/// killed. The bound address goes to stderr and (with `--addr-file`) to a
/// file, so scripts can bind `--addr 127.0.0.1:0` and discover the
/// ephemeral port.
fn cmd_serve(flags: &HashMap<String, String>) -> Result<(), String> {
    use slade_gateway::{quota::QuotaConfig, Gateway, GatewayConfig};
    let addr = flags.get("addr").cloned().unwrap_or_else(|| "127.0.0.1:8070".to_string());
    let slade = observed_slade(flags)?;
    let runtime =
        std::sync::Arc::new(slade_serve::ServeRuntime::start(slade, serve_config(flags)?));
    let quota = QuotaConfig {
        rps: fractional(flags, "quota-rps", 0.0)?,
        burst: fractional(flags, "quota-burst", 8.0)?,
    };
    let cfg = GatewayConfig { addr, quota, ..GatewayConfig::default() };
    let gateway = Gateway::start(runtime, cfg).map_err(|e| format!("bind: {e}"))?;
    let bound = gateway.local_addr();
    if let Some(path) = flags.get("addr-file") {
        std::fs::write(path, format!("{bound}")).map_err(|e| format!("{path}: {e}"))?;
    }
    eprintln!("listening on http://{bound} (POST /v1/decompile, GET /metrics, GET /healthz)");
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}

fn cmd_stats(flags: &HashMap<String, String>) -> Result<(), String> {
    use slade_serve::ServeRuntime;
    if flags.contains_key("url") {
        return scrape_stats(flags);
    }
    let slade = observed_slade(flags)?;
    let requests = numeric(flags, "requests", 6)?.max(1) as usize;
    eprintln!("serving {requests} synthetic requests ...");
    let runtime = ServeRuntime::start(slade, serve_config(flags)?);
    let workload: Vec<String> = (0..requests).map(synthetic_asm).collect();
    // Fallible admission so an undersized --queue-cap sheds visibly in
    // the snapshot instead of queueing without bound.
    let handles: Vec<_> = workload.iter().filter_map(|a| runtime.try_submit(a).ok()).collect();
    for h in handles {
        let _ = h.wait(); // shed/expired requests show up in the counters
    }
    // One duplicate exercises the cache path in the snapshot.
    if let Ok(h) = runtime.try_submit(&workload[0]) {
        let _ = h.wait();
    }
    if flags.contains_key("prometheus") {
        put!("{}", runtime.metrics_text().trim_end());
    } else if flags.contains_key("json") {
        // The full admission snapshot (latency and queue-wait
        // percentiles included) plus the per-stage breakdown.
        let snapshot = serde_json::to_string(&runtime.metrics()).map_err(|e| e.to_string())?;
        let stages = serde_json::to_string(&slade_obs::obs().stage_snapshot())
            .map_err(|e| e.to_string())?;
        put!("{{\"snapshot\":{snapshot},\"stages\":{stages}}}");
    } else {
        let s = runtime.metrics();
        put!(
            "requests     submitted {} completed {}  queue depth {}",
            s.submitted,
            s.completed,
            s.queue_depth
        );
        put!(
            "admission    decoded {}  coalesced {}  shed {}  expired {}",
            s.decoded,
            s.coalesced,
            s.shed,
            s.expired
        );
        put!(
            "lanes        {:?} / {} per shard ({:.0}% occupancy at snapshot)",
            s.shard_lanes,
            s.lane_capacity_per_shard,
            100.0 * s.lane_occupancy()
        );
        put!(
            "decode       {} tokens ({}, {})",
            s.decode_tokens,
            s.kernel_isa_status,
            s.backend
        );
        put!(
            "latency ms   p50 {:.2}  p95 {:.2}  p99 {:.2}",
            s.p50_latency_ms,
            s.p95_latency_ms,
            s.p99_latency_ms
        );
        put!(
            "queue ms     p50 {:.2}  p95 {:.2}  p99 {:.2}",
            s.p50_queue_wait_ms,
            s.p95_queue_wait_ms,
            s.p99_queue_wait_ms
        );
        put!(
            "cache        {} hits / {} misses ({:.0}% hit rate), {} entries",
            s.cache.hits,
            s.cache.misses,
            100.0 * s.cache.hit_rate(),
            s.cache.entries
        );
        if flags.contains_key("spill-dir") {
            put!(
                "spill        {} hits  {} writes  {} entries  {} evictions  {} load errors",
                s.cache.spill_hits,
                s.cache.spill_writes,
                s.cache.spill_entries,
                s.cache.spill_evictions,
                s.cache.spill_load_errors
            );
        }
        put!("stages (count, mean µs, p95 µs):");
        for st in slade_obs::obs().stage_snapshot().stages {
            if st.count > 0 {
                put!(
                    "  {:<12} {:>8}  {:>10.0}  {:>10}",
                    st.stage,
                    st.count,
                    st.mean_us,
                    st.p95_us
                );
            }
        }
    }
    runtime.shutdown();
    Ok(())
}

/// `stats --url http://host:port` — scrapes a live gateway's `/metrics`,
/// validates the exposition, and summarizes it. `--prometheus` prints the
/// raw scrape; `--json` prints the parsed unlabeled samples.
fn scrape_stats(flags: &HashMap<String, String>) -> Result<(), String> {
    let base = flags.get("url").filter(|u| !u.is_empty()).ok_or("--url expects a value")?;
    let url = if base.ends_with("/metrics") {
        base.clone()
    } else {
        format!("{}/metrics", base.trim_end_matches('/'))
    };
    let resp = slade_gateway::http::get_url(&url, std::time::Duration::from_secs(5))?;
    if resp.status != 200 {
        return Err(format!("{url}: HTTP {}", resp.status));
    }
    let text = resp.text();
    let stats =
        slade_obs::export::validate_exposition(&text).map_err(|e| format!("{url}: {e}"))?;
    if flags.contains_key("prometheus") {
        put!("{}", text.trim_end());
        return Ok(());
    }
    if flags.contains_key("json") {
        let mut names: Vec<&String> = stats.values.keys().collect();
        names.sort();
        let fields: Vec<String> =
            names.iter().map(|n| format!("{n:?}:{}", stats.values[*n])).collect();
        put!(
            "{{\"url\":{url:?},\"families\":{},\"samples\":{},\"values\":{{{}}}}}",
            stats.families,
            stats.samples,
            fields.join(",")
        );
        return Ok(());
    }
    put!("{url}: valid exposition ({} families, {} samples)", stats.families, stats.samples);
    // The headline admission + gateway counters, when present.
    for name in [
        "slade_requests_submitted_total",
        "slade_decoded_total",
        "slade_coalesced_total",
        "slade_shed_total",
        "slade_expired_total",
        "slade_cache_hits_total",
        "slade_gateway_connections_total",
        "slade_gateway_decompile_offered_total",
        "slade_gateway_quota_shed_total",
        "slade_gateway_streams_total",
    ] {
        if let Some(v) = stats.values.get(name) {
            put!("  {name:<42} {v}");
        }
    }
    Ok(())
}

fn cmd_trace(flags: &HashMap<String, String>) -> Result<(), String> {
    use slade_serve::{ServeConfig, ServeRuntime};
    let slade = observed_slade(flags)?;
    let runtime = ServeRuntime::start(slade, ServeConfig::with_shards(1));
    let asm = match flags.get("asm") {
        Some(p) => std::fs::read_to_string(p).map_err(|e| format!("{p}: {e}"))?,
        None => synthetic_asm(0),
    };
    let handle = runtime.submit(&asm);
    let trace_id = handle.trace_id();
    handle.wait().expect("no timeout configured");
    // `--request ID` inspects a different trace recorded earlier in this
    // process (ids print in the slow-request log); default is the request
    // just served.
    let wanted = numeric(flags, "request", trace_id)?;
    let spans = runtime.trace_spans(wanted);
    if spans.is_empty() {
        return Err(format!(
            "no spans for request {wanted} (ring capacity {}; see SLADE_TRACE_RING)",
            slade_obs::obs().ring().capacity()
        ));
    }
    put!("trace {wanted} ({} spans):", spans.len());
    put!("{}", slade_obs::render_tree(&spans).trim_end());
    runtime.shutdown();
    Ok(())
}

fn cmd_eval(flags: &HashMap<String, String>) -> Result<(), String> {
    let artifact = load_artifact(flags)?;
    let seed = numeric(flags, "seed", 99)?;
    let items = numeric(flags, "items", 24)? as usize;
    let threads = numeric(flags, "threads", 1)?.max(1) as usize;
    let isa = artifact.isa();
    let opt = artifact.opt();
    // Fresh held-out items, deduplicated against nothing the model saw
    // (different seed stream from any training run by default).
    let data = DatasetProfile { train: 8, exebench_eval: items, synth_per_category: 1 };
    let train_stub = generate_train(data, seed);
    let eval_items = generate_exebench_eval(data, seed, &train_stub);
    let pairs = slade::make_pairs(&eval_items, isa, opt);
    let ctx = ToolContext {
        isa,
        opt,
        slade: std::sync::Arc::new(artifact.slade),
        chatgpt: slade_baselines::ChatGptSim::new(&pairs),
        btc: None,
        threads,
    };
    let tool = if flags.contains_key("repair") { Tool::SladeRepair } else { Tool::Slade };
    eprintln!(
        "evaluating {} on {} held-out items ({isa} {opt}) ...",
        tool.label(),
        eval_items.len()
    );
    let records = evaluate(&ctx, &eval_items, &[tool]);
    let (acc, sim) = summarize(&records, tool);
    let compiles = records.iter().filter(|r| r.compiles).count();
    println!(
        "items {}  compiles {}  IO-accuracy {acc:.1}%  edit-similarity {sim:.1}%",
        records.len(),
        compiles
    );
    Ok(())
}
