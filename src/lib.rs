//! SLaDe reproduction — facade crate.
//!
//! This workspace reproduces *SLaDe: A Portable Small Language Model
//! Decompiler for Optimized Assembly* (CGO 2024) from scratch in Rust,
//! including every substrate: the MiniC language (frontend + interpreter),
//! an optimizing compiler for x86-64 and AArch64, emulators for both ISAs, the
//! UnigramLM tokenizer, a CPU seq2seq Transformer, PsycheC-style type
//! inference, the Ghidra/ChatGPT/BTC baselines, and the full evaluation
//! harness.
//!
//! The facade re-exports each subsystem under a stable name; see the
//! individual crates for the deep APIs and `DESIGN.md` for the system map.
//!
//! # Example
//!
//! ```
//! use slade_repro::compiler::{compile_function, CompileOpts, Isa, OptLevel};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = slade_repro::minic::parse_program("int one(void) { return 1; }")?;
//! let asm = compile_function(&program, "one", CompileOpts::new(Isa::X86_64, OptLevel::O0))?;
//! assert!(asm.contains("one:"));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

/// The MiniC frontend and interpreter.
pub use slade_minic as minic;

/// The optimizing compiler (x86-64 / AArch64, `-O0` / `-O3`).
pub use slade_compiler as compiler;

/// Assembly parsing.
pub use slade_asm as asm;

/// x86-64 emulation of the emitted assembly.
pub use slade_emu as emu;

/// UnigramLM and word-level tokenizers.
pub use slade_tokenizer as tokenizer;

/// The from-scratch Transformer stack.
pub use slade_nn as nn;

/// PsycheC-style type inference.
pub use slade_typeinf as typeinf;

/// Heuristic program repair for hypotheses (paper §X future work).
pub use slade_repair as repair;

/// Dataset generation (ExeBench/Synth stand-ins).
pub use slade_dataset as dataset;

/// Baseline decompilers (Ghidra-like, ChatGPT-sim, BTC-like).
pub use slade_baselines as baselines;

/// The SLaDe pipeline itself.
pub use slade as core;

/// The multi-threaded serving runtime (worker pool, admission queue,
/// result cache).
pub use slade_serve as serve;

/// Metrics, IO harness and figure regenerators.
pub use slade_eval as eval;
