//! AArch64 emulator for the assembly subset the ARM backend emits.
//!
//! Mirrors the x86 emulator: same packed-pointer segment memory, same
//! builtin dispatch, so ARM assembly can be cross-validated against the
//! MiniC interpreter exactly like x86 (see `tests/pipeline.rs`).

use crate::{Arg, EmuError, Result};
use slade_asm::{AsmFile, AsmFunction, Inst, Line, Operand};
use slade_minic::mem::Memory;
use slade_minic::value::Pointer;
use std::collections::HashMap;

fn pack(p: Pointer) -> u64 {
    ((p.seg as u64) << 32) | (p.off as u64 & 0xffff_ffff)
}

fn unpack(v: u64) -> Pointer {
    Pointer { seg: (v >> 32) as u32, off: (v & 0xffff_ffff) as i64 }
}

#[derive(Debug, Clone, Copy, Default)]
struct Nzcv {
    n: bool,
    z: bool,
    c: bool,
    v: bool,
}

/// AArch64 machine state: 31 general registers plus `sp`, 8 FP registers,
/// NZCV flags, and segment memory.
#[derive(Debug)]
pub struct ArmEmulator {
    file: AsmFile,
    x: [u64; 32],
    d: [f64; 32],
    sp: u64,
    flags: Nzcv,
    mem: Memory,
    symbols: HashMap<String, u64>,
    /// adrp-pending symbol per register.
    adrp: HashMap<usize, String>,
    stack_base: u64,
    fuel: u64,
}

impl ArmEmulator {
    /// Builds an emulator for `file`, allocating rodata and a 1 MiB stack.
    pub fn new(file: AsmFile) -> Self {
        let mut mem = Memory::new();
        let mut symbols = HashMap::new();
        for (label, bytes) in &file.rodata {
            let p = mem.alloc(bytes.len());
            mem.store_bytes(p, bytes).expect("fresh rodata");
            symbols.insert(label.clone(), pack(p));
        }
        let stack = mem.alloc(1 << 20);
        let stack_base = pack(stack) + (1 << 20) - 64;
        ArmEmulator {
            file,
            x: [0; 32],
            d: [0.0; 32],
            sp: 0,
            flags: Nzcv::default(),
            mem,
            symbols,
            adrp: HashMap::new(),
            stack_base,
            fuel: 0,
        }
    }

    /// Allocates a buffer; returns its packed address.
    pub fn alloc_buffer(&mut self, bytes: &[u8]) -> u64 {
        let p = self.mem.alloc(bytes.len());
        self.mem.store_bytes(p, bytes).expect("fresh segment");
        pack(p)
    }

    /// Defines a global symbol backed by `bytes`.
    pub fn define_global(&mut self, name: &str, bytes: &[u8]) -> u64 {
        let addr = self.alloc_buffer(bytes);
        self.symbols.insert(name.to_string(), addr);
        addr
    }

    /// Reads memory at a packed address.
    ///
    /// # Errors
    ///
    /// Faults on invalid ranges.
    pub fn read_buffer(&self, addr: u64, len: usize) -> Result<Vec<u8>> {
        self.mem.load_bytes(unpack(addr), len).map_err(|e| EmuError::new(e.to_string()))
    }

    /// The `d0` return value of the last call.
    pub fn ret_f64(&self) -> f64 {
        self.d[0]
    }

    /// Calls a function with AAPCS64 argument passing; returns `x0`.
    ///
    /// # Errors
    ///
    /// Fails on unknown functions, faults, unsupported instructions or fuel
    /// exhaustion.
    pub fn call(&mut self, name: &str, args: &[Arg]) -> Result<u64> {
        self.fuel = 10_000_000;
        self.sp = self.stack_base;
        let mut int_idx = 0;
        let mut f_idx = 0;
        for a in args {
            match a {
                Arg::Int(v) => {
                    if int_idx < 8 {
                        self.x[int_idx] = *v;
                    }
                    int_idx += 1;
                }
                Arg::F64(v) => {
                    self.d[f_idx] = *v;
                    f_idx += 1;
                }
                Arg::F32(v) => {
                    self.d[f_idx] = *v as f64;
                    f_idx += 1;
                }
            }
        }
        self.exec_function(name)?;
        Ok(self.x[0])
    }

    fn exec_function(&mut self, name: &str) -> Result<()> {
        let Some(func) = self.file.function(name).cloned() else {
            return self.call_builtin(name);
        };
        let labels = func.label_positions();
        let mut ip = 0usize;
        while ip < func.lines.len() {
            if self.fuel == 0 {
                return Err(EmuError::new("fuel exhausted"));
            }
            self.fuel -= 1;
            let line = &func.lines[ip];
            ip += 1;
            let inst = match line {
                Line::Label(_) => continue,
                Line::Inst(i) => i,
            };
            if inst.mnemonic == "ret" {
                return Ok(());
            }
            self.step(inst, &func, &labels, &mut ip)?;
        }
        Ok(())
    }

    // ---- register plumbing ----

    fn reg_read(&self, name: &str) -> Result<u64> {
        if name == "sp" {
            return Ok(self.sp);
        }
        if name == "xzr" || name == "wzr" {
            return Ok(0);
        }
        let (k, n) = split_reg(name)?;
        Ok(match k {
            'x' => self.x[n],
            'w' => self.x[n] & 0xffff_ffff,
            'd' => self.d[n].to_bits(),
            's' => (self.d[n] as f32).to_bits() as u64,
            _ => return Err(EmuError::new(format!("register `{name}`"))),
        })
    }

    fn reg_write(&mut self, name: &str, v: u64) -> Result<()> {
        if name == "sp" {
            self.sp = v;
            return Ok(());
        }
        if name == "xzr" || name == "wzr" {
            return Ok(());
        }
        let (k, n) = split_reg(name)?;
        match k {
            'x' => self.x[n] = v,
            'w' => self.x[n] = v & 0xffff_ffff,
            'd' => self.d[n] = f64::from_bits(v),
            's' => self.d[n] = f32::from_bits(v as u32) as f64,
            _ => return Err(EmuError::new(format!("register `{name}`"))),
        }
        Ok(())
    }

    fn fp_read(&self, name: &str) -> Result<f64> {
        let (k, n) = split_reg(name)?;
        match k {
            'd' | 's' => Ok(self.d[n]),
            _ => Err(EmuError::new(format!("fp register `{name}`"))),
        }
    }

    fn fp_write(&mut self, name: &str, v: f64) -> Result<()> {
        let (k, n) = split_reg(name)?;
        match k {
            's' => {
                self.d[n] = v as f32 as f64;
                Ok(())
            }
            'd' => {
                self.d[n] = v;
                Ok(())
            }
            _ => Err(EmuError::new(format!("fp register `{name}`"))),
        }
    }

    fn op_u64(&self, op: &Operand) -> Result<u64> {
        match op {
            Operand::Imm(v) => Ok(*v as u64),
            Operand::Reg(r) => self.reg_read(r),
            other => Err(EmuError::new(format!("operand {other:?}"))),
        }
    }

    fn mem_addr(&self, op: &Operand) -> Result<u64> {
        let Operand::MemArm { base, off, .. } = op else {
            return Err(EmuError::new("not a memory operand"));
        };
        let b = if base == "sp" { self.sp } else { self.reg_read(base)? };
        Ok(b.wrapping_add(*off as u64))
    }

    fn load(&self, addr: u64, len: usize) -> Result<u64> {
        let bytes =
            self.mem.load_bytes(unpack(addr), len).map_err(|e| EmuError::new(e.to_string()))?;
        let mut raw = [0u8; 8];
        raw[..len].copy_from_slice(&bytes);
        Ok(u64::from_le_bytes(raw))
    }

    fn store(&mut self, addr: u64, v: u64, len: usize) -> Result<()> {
        let bytes = v.to_le_bytes();
        self.mem
            .store_bytes(unpack(addr), &bytes[..len])
            .map_err(|e| EmuError::new(e.to_string()))
    }

    fn cond(&self, cc: &str) -> Result<bool> {
        let f = self.flags;
        Ok(match cc {
            "eq" => f.z,
            "ne" => !f.z,
            "lt" => f.n != f.v,
            "le" => f.z || f.n != f.v,
            "gt" => !f.z && f.n == f.v,
            "ge" => f.n == f.v,
            "lo" => !f.c,
            "ls" => !f.c || f.z,
            "hi" => f.c && !f.z,
            "hs" => f.c,
            "mi" => f.n,
            "pl" => !f.n,
            other => return Err(EmuError::new(format!("condition `{other}`"))),
        })
    }

    #[allow(clippy::too_many_lines)]
    fn step(
        &mut self,
        inst: &Inst,
        _func: &AsmFunction,
        labels: &HashMap<String, usize>,
        ip: &mut usize,
    ) -> Result<()> {
        let m = inst.mnemonic.as_str();
        let ops = &inst.operands;
        let reg_name = |op: &Operand| -> Result<String> {
            match op {
                Operand::Reg(r) => Ok(r.clone()),
                other => Err(EmuError::new(format!("expected register, got {other:?}"))),
            }
        };
        match m {
            "nop" => {}
            "stp" => {
                // stp xA, xB, [sp, #-F]!  (pre-index) or plain [base, #off].
                let ra = reg_name(&ops[0])?;
                let rb = reg_name(&ops[1])?;
                let Operand::MemArm { base, off, pre_writeback } = &ops[2] else {
                    return Err(EmuError::new("stp operand"));
                };
                let baseval = if base == "sp" { self.sp } else { self.reg_read(base)? };
                let addr = baseval.wrapping_add(*off as u64);
                let va = self.reg_read(&ra)?;
                let vb = self.reg_read(&rb)?;
                self.store(addr, va, 8)?;
                self.store(addr.wrapping_add(8), vb, 8)?;
                if *pre_writeback {
                    if base == "sp" {
                        self.sp = addr;
                    } else {
                        self.reg_write(base, addr)?;
                    }
                }
            }
            "ldp" => {
                // ldp xA, xB, [sp], #F (post-index: off parsed as 0; the
                // post-increment arrives as a trailing Imm operand).
                let ra = reg_name(&ops[0])?;
                let rb = reg_name(&ops[1])?;
                let Operand::MemArm { base, off, .. } = &ops[2] else {
                    return Err(EmuError::new("ldp operand"));
                };
                let baseval = if base == "sp" { self.sp } else { self.reg_read(base)? };
                let addr = baseval.wrapping_add(*off as u64);
                let va = self.load(addr, 8)?;
                let vb = self.load(addr.wrapping_add(8), 8)?;
                self.reg_write(&ra, va)?;
                self.reg_write(&rb, vb)?;
                if let Some(Operand::Imm(post)) = ops.get(3) {
                    let nb = baseval.wrapping_add(*post as u64);
                    if base == "sp" {
                        self.sp = nb;
                    } else {
                        self.reg_write(base, nb)?;
                    }
                }
            }
            "mov" => {
                let dst = reg_name(&ops[0])?;
                let v = self.op_u64(&ops[1])?;
                self.reg_write(&dst, v)?;
            }
            "movz" => {
                let dst = reg_name(&ops[0])?;
                let v = self.op_u64(&ops[1])?;
                self.reg_write(&dst, v)?;
            }
            "movk" => {
                let dst = reg_name(&ops[0])?;
                let v = self.op_u64(&ops[1])?;
                let shift = match ops.get(2) {
                    Some(Operand::Lsl(s)) => *s as u32,
                    _ => 0,
                };
                let cur = self.reg_read(&dst)?;
                let mask = !(0xffffu64 << shift);
                self.reg_write(&dst, (cur & mask) | (v << shift))?;
            }
            "fmov" => {
                // fmov d0, x8 (bit move) or fmov s0, w8.
                let dst = reg_name(&ops[0])?;
                let src = reg_name(&ops[1])?;
                let (dk, dn) = split_reg(&dst)?;
                let bits = self.reg_read(&src)?;
                match dk {
                    'd' => self.d[dn] = f64::from_bits(bits),
                    's' => self.d[dn] = f32::from_bits(bits as u32) as f64,
                    'x' | 'w' => {
                        let (_, sn) = split_reg(&src)?;
                        let v = if dk == 'w' {
                            ((self.d[sn] as f32).to_bits()) as u64
                        } else {
                            self.d[sn].to_bits()
                        };
                        self.reg_write(&dst, v)?;
                    }
                    _ => return Err(EmuError::new("fmov form")),
                }
            }
            "ldr" | "ldrb" | "ldrsb" | "ldrh" | "ldrsh" => {
                let dst = reg_name(&ops[0])?;
                let addr = self.mem_addr(&ops[1])?;
                let (dk, dn) = split_reg(&dst)?;
                match (m, dk) {
                    ("ldrb", _) => {
                        let v = self.load(addr, 1)?;
                        self.reg_write(&dst, v)?;
                    }
                    ("ldrsb", _) => {
                        let v = self.load(addr, 1)? as u8 as i8 as i32 as u32 as u64;
                        self.reg_write(&dst, v)?;
                    }
                    ("ldrh", _) => {
                        let v = self.load(addr, 2)?;
                        self.reg_write(&dst, v)?;
                    }
                    ("ldrsh", _) => {
                        let v = self.load(addr, 2)? as u16 as i16 as i32 as u32 as u64;
                        self.reg_write(&dst, v)?;
                    }
                    (_, 'w') => {
                        let v = self.load(addr, 4)?;
                        self.reg_write(&dst, v)?;
                    }
                    (_, 'x') => {
                        let v = self.load(addr, 8)?;
                        self.reg_write(&dst, v)?;
                    }
                    (_, 's') => {
                        let v = self.load(addr, 4)?;
                        self.d[dn] = f32::from_bits(v as u32) as f64;
                    }
                    (_, 'd') => {
                        let v = self.load(addr, 8)?;
                        self.d[dn] = f64::from_bits(v);
                    }
                    _ => return Err(EmuError::new("ldr form")),
                }
            }
            "str" | "strb" | "strh" => {
                let src = reg_name(&ops[0])?;
                let addr = self.mem_addr(&ops[1])?;
                let (sk, sn) = split_reg(&src)?;
                match (m, sk) {
                    ("strb", _) => {
                        let v = self.reg_read(&src)?;
                        self.store(addr, v, 1)?;
                    }
                    ("strh", _) => {
                        let v = self.reg_read(&src)?;
                        self.store(addr, v, 2)?;
                    }
                    (_, 'w') => {
                        let v = self.reg_read(&src)?;
                        self.store(addr, v, 4)?;
                    }
                    (_, 'x') => {
                        let v = self.reg_read(&src)?;
                        self.store(addr, v, 8)?;
                    }
                    (_, 's') => {
                        self.store(addr, (self.d[sn] as f32).to_bits() as u64, 4)?;
                    }
                    (_, 'd') => {
                        self.store(addr, self.d[sn].to_bits(), 8)?;
                    }
                    _ => return Err(EmuError::new("str form")),
                }
            }
            "adrp" => {
                let dst = reg_name(&ops[0])?;
                let Operand::Sym(sym) = &ops[1] else { return Err(EmuError::new("adrp")) };
                let (_, n) = split_reg(&dst)?;
                self.adrp.insert(n, sym.clone());
                // Page-address semantics are folded into the :lo12: add.
                self.reg_write(&dst, 0)?;
            }
            "add" if ops.len() == 3 && matches!(ops[2], Operand::Lo12(_)) => {
                let dst = reg_name(&ops[0])?;
                let Operand::Lo12(sym) = &ops[2] else { unreachable!() };
                let addr = self
                    .symbols
                    .get(sym)
                    .copied()
                    .ok_or_else(|| EmuError::new(format!("undefined symbol `{sym}`")))?;
                self.reg_write(&dst, addr)?;
            }
            "add" | "sub" | "mul" | "sdiv" | "udiv" | "and" | "orr" | "eor" | "lsl" | "asr"
            | "lsr" => {
                let dst = reg_name(&ops[0])?;
                let wide = dst.starts_with('x') || dst == "sp";
                let a = self.op_u64(&ops[1])?;
                let b = self.op_u64(&ops[2])?;
                let v = match m {
                    "add" => a.wrapping_add(b),
                    "sub" => a.wrapping_sub(b),
                    "mul" => a.wrapping_mul(b),
                    "sdiv" => {
                        if wide {
                            let (a, b) = (a as i64, b as i64);
                            if b == 0 {
                                return Err(EmuError::new("integer division by zero"));
                            }
                            a.wrapping_div(b) as u64
                        } else {
                            let (a, b) = (a as u32 as i32, b as u32 as i32);
                            if b == 0 {
                                return Err(EmuError::new("integer division by zero"));
                            }
                            (a.wrapping_div(b) as u32) as u64
                        }
                    }
                    "udiv" => {
                        if b == 0 {
                            return Err(EmuError::new("integer division by zero"));
                        }
                        if wide {
                            a / b
                        } else {
                            ((a as u32) / (b as u32)) as u64
                        }
                    }
                    "and" => a & b,
                    "orr" => a | b,
                    "eor" => a ^ b,
                    "lsl" => a.wrapping_shl((b as u32) & 63),
                    "asr" => {
                        if wide {
                            ((a as i64) >> ((b as u32) & 63)) as u64
                        } else {
                            (((a as u32 as i32) >> ((b as u32) & 31)) as u32) as u64
                        }
                    }
                    _ => {
                        if wide {
                            a >> ((b as u32) & 63)
                        } else {
                            ((a as u32) >> ((b as u32) & 31)) as u64
                        }
                    }
                };
                self.reg_write(&dst, v)?;
            }
            "msub" => {
                // msub d, a, b, c = c - a*b
                let dst = reg_name(&ops[0])?;
                let a = self.op_u64(&ops[1])?;
                let b = self.op_u64(&ops[2])?;
                let c = self.op_u64(&ops[3])?;
                self.reg_write(&dst, c.wrapping_sub(a.wrapping_mul(b)))?;
            }
            "sxtw" => {
                let dst = reg_name(&ops[0])?;
                let v = self.op_u64(&ops[1])? as u32 as i32 as i64 as u64;
                self.reg_write(&dst, v)?;
            }
            "sxtb" => {
                let dst = reg_name(&ops[0])?;
                let v = self.op_u64(&ops[1])? as u8 as i8 as i32 as u32 as u64;
                self.reg_write(&dst, v)?;
            }
            "uxtb" => {
                let dst = reg_name(&ops[0])?;
                let v = self.op_u64(&ops[1])? as u8 as u64;
                self.reg_write(&dst, v)?;
            }
            "sxth" => {
                let dst = reg_name(&ops[0])?;
                let v = self.op_u64(&ops[1])? as u16 as i16 as i32 as u32 as u64;
                self.reg_write(&dst, v)?;
            }
            "uxth" => {
                let dst = reg_name(&ops[0])?;
                let v = self.op_u64(&ops[1])? as u16 as u64;
                self.reg_write(&dst, v)?;
            }
            "cmp" => {
                let a = self.op_u64(&ops[0])?;
                let b = self.op_u64(&ops[1])?;
                let wide = matches!(&ops[0], Operand::Reg(r) if r.starts_with('x'));
                if wide {
                    let (sa, sb) = (a as i64, b as i64);
                    let r = sa.wrapping_sub(sb);
                    self.flags = Nzcv {
                        n: r < 0,
                        z: r == 0,
                        c: a >= b,
                        v: (sa as i128 - sb as i128) != (r as i128),
                    };
                } else {
                    let (ua, ub) = (a as u32, b as u32);
                    let (sa, sb) = (ua as i32, ub as i32);
                    let r = sa.wrapping_sub(sb);
                    self.flags = Nzcv {
                        n: r < 0,
                        z: r == 0,
                        c: ua >= ub,
                        v: (sa as i64 - sb as i64) != (r as i64),
                    };
                }
            }
            "fcmp" => {
                let a = self.fp_read(&reg_name(&ops[0])?)?;
                let b = self.fp_read(&reg_name(&ops[1])?)?;
                self.flags = Nzcv { n: a < b, z: a == b, c: a >= b, v: false };
            }
            "cset" => {
                let dst = reg_name(&ops[0])?;
                let Operand::Cond(cc) = &ops[1] else { return Err(EmuError::new("cset cc")) };
                let v = self.cond(cc)? as u64;
                self.reg_write(&dst, v)?;
            }
            "cbnz" => {
                let v = self.op_u64(&ops[0])?;
                let Operand::Sym(l) = &ops[1] else { return Err(EmuError::new("cbnz")) };
                let narrow = matches!(&ops[0], Operand::Reg(r) if r.starts_with('w'));
                let v = if narrow { v & 0xffff_ffff } else { v };
                if v != 0 {
                    *ip =
                        *labels.get(l).ok_or_else(|| EmuError::new(format!("label `{l}`")))?;
                }
            }
            "b" => {
                let Operand::Sym(l) = &ops[0] else { return Err(EmuError::new("b")) };
                *ip = *labels.get(l).ok_or_else(|| EmuError::new(format!("label `{l}`")))?;
            }
            _ if m.starts_with("b.") => {
                if self.cond(&m[2..])? {
                    let Operand::Sym(l) = &ops[0] else { return Err(EmuError::new("b.cc")) };
                    *ip =
                        *labels.get(l).ok_or_else(|| EmuError::new(format!("label `{l}`")))?;
                }
            }
            "bl" => {
                let Operand::Sym(callee) = &ops[0] else { return Err(EmuError::new("bl")) };
                let callee = callee.clone();
                self.exec_function(&callee)?;
            }
            "fadd" | "fsub" | "fmul" | "fdiv" => {
                let dst = reg_name(&ops[0])?;
                let a = self.fp_read(&reg_name(&ops[1])?)?;
                let b = self.fp_read(&reg_name(&ops[2])?)?;
                let v = match m {
                    "fadd" => a + b,
                    "fsub" => a - b,
                    "fmul" => a * b,
                    _ => a / b,
                };
                self.fp_write(&dst, v)?;
            }
            "scvtf" => {
                let dst = reg_name(&ops[0])?;
                let src = reg_name(&ops[1])?;
                let v = self.reg_read(&src)?;
                let f =
                    if src.starts_with('w') { v as u32 as i32 as f64 } else { v as i64 as f64 };
                self.fp_write(&dst, f)?;
            }
            "fcvtzs" => {
                let dst = reg_name(&ops[0])?;
                let src = reg_name(&ops[1])?;
                let f = self.fp_read(&src)?;
                let v = if dst.starts_with('w') {
                    (f as i32 as u32) as u64
                } else {
                    f as i64 as u64
                };
                self.reg_write(&dst, v)?;
            }
            "fcvt" => {
                let dst = reg_name(&ops[0])?;
                let src = reg_name(&ops[1])?;
                let f = self.fp_read(&src)?;
                self.fp_write(&dst, f)?;
            }
            other => return Err(EmuError::new(format!("unsupported instruction `{other}`"))),
        }
        Ok(())
    }

    fn call_builtin(&mut self, name: &str) -> Result<()> {
        let x0 = self.x[0];
        let x1 = self.x[1];
        let x2 = self.x[2];
        match name {
            "memcpy" | "memmove" => {
                let bytes = self.read_buffer(x1, x2 as usize)?;
                self.mem
                    .store_bytes(unpack(x0), &bytes)
                    .map_err(|e| EmuError::new(e.to_string()))?;
            }
            "memset" => {
                let buf = vec![x1 as u8; x2 as usize];
                self.mem
                    .store_bytes(unpack(x0), &buf)
                    .map_err(|e| EmuError::new(e.to_string()))?;
            }
            "strlen" => {
                let s =
                    self.mem.load_cstr(unpack(x0)).map_err(|e| EmuError::new(e.to_string()))?;
                self.x[0] = s.len() as u64;
            }
            "abs" => {
                self.x[0] = ((x0 as u32 as i32).wrapping_abs() as u32) as u64;
            }
            "sqrt" => self.d[0] = self.d[0].sqrt(),
            "fabs" => self.d[0] = self.d[0].abs(),
            "pow" => self.d[0] = self.d[0].powf(self.d[1]),
            other => {
                return Err(EmuError::new(format!("call to undefined function `{other}`")))
            }
        }
        Ok(())
    }
}

fn split_reg(name: &str) -> Result<(char, usize)> {
    let mut chars = name.chars();
    let k = chars.next().ok_or_else(|| EmuError::new("empty register"))?;
    let n: usize =
        chars.as_str().parse().map_err(|_| EmuError::new(format!("register `{name}`")))?;
    if n >= 32 {
        return Err(EmuError::new(format!("register `{name}` out of range")));
    }
    Ok((k, n))
}

#[cfg(test)]
mod tests {
    use super::*;
    use slade_asm::{parse_asm, Isa};
    use slade_compiler::{compile_function, CompileOpts, OptLevel};

    fn emu_for(src: &str, name: &str, opt: OptLevel) -> ArmEmulator {
        let p = slade_minic::parse_program(src).unwrap();
        let asm = compile_function(&p, name, CompileOpts::new(slade_compiler::Isa::Arm64, opt))
            .unwrap();
        ArmEmulator::new(parse_asm(&asm, Isa::Arm64))
    }

    #[test]
    fn arm_arithmetic_both_levels() {
        for opt in [OptLevel::O0, OptLevel::O3] {
            let mut e = emu_for("int f(int a, int b) { return a * 3 - b / 2; }", "f", opt);
            let r = e.call("f", &[Arg::Int(10), Arg::Int(7)]).unwrap();
            assert_eq!(r as i32, 27, "{opt:?}");
        }
    }

    #[test]
    fn arm_loops_and_unrolling() {
        for opt in [OptLevel::O0, OptLevel::O3] {
            let mut e = emu_for(
                "int total(int *a, int n) { int s = 0; for (int i = 0; i < n; i++) s += a[i]; return s; }",
                "total",
                opt,
            );
            let bytes: Vec<u8> = (1i32..=9).flat_map(|v| v.to_le_bytes()).collect();
            let buf = e.alloc_buffer(&bytes);
            let r = e.call("total", &[Arg::Int(buf), Arg::Int(9)]).unwrap();
            assert_eq!(r as i32, 45, "{opt:?}");
        }
    }

    #[test]
    fn arm_pointer_writes() {
        let mut e = emu_for(
            "void bump(int *a, int v, int n) { for (int i = 0; i < n; i++) a[i] += v; }",
            "bump",
            OptLevel::O0,
        );
        let bytes: Vec<u8> = [5i32, 6, 7].iter().flat_map(|v| v.to_le_bytes()).collect();
        let buf = e.alloc_buffer(&bytes);
        e.call("bump", &[Arg::Int(buf), Arg::Int(10), Arg::Int(3)]).unwrap();
        let out = e.read_buffer(buf, 12).unwrap();
        let vals: Vec<i32> =
            out.chunks(4).map(|c| i32::from_le_bytes(c.try_into().unwrap())).collect();
        assert_eq!(vals, vec![15, 16, 17]);
    }

    #[test]
    fn arm_float_math() {
        let mut e =
            emu_for("double f(double x, double y) { return x * y + 0.5; }", "f", OptLevel::O0);
        e.call("f", &[Arg::F64(2.5), Arg::F64(4.0)]).unwrap();
        assert_eq!(e.ret_f64(), 10.5);
    }

    #[test]
    fn arm_unsigned_division_and_compare() {
        let mut e = emu_for(
            "unsigned f(unsigned a, unsigned b) { if (a < b) return 0; return a / b; }",
            "f",
            OptLevel::O0,
        );
        assert_eq!(
            e.call("f", &[Arg::Int(0xffff_fffc), Arg::Int(2)]).unwrap() as u32,
            0x7fff_fffe
        );
        assert_eq!(e.call("f", &[Arg::Int(1), Arg::Int(2)]).unwrap() as u32, 0);
    }

    #[test]
    fn arm_globals_and_calls() {
        let src = "int g; int helper(int v) { return v + 1; } int f(void) { g = helper(g); return g; }";
        let p = slade_minic::parse_program(src).unwrap();
        let mut text = String::new();
        for name in ["helper", "f"] {
            text.push_str(
                &compile_function(
                    &p,
                    name,
                    CompileOpts::new(slade_compiler::Isa::Arm64, OptLevel::O0),
                )
                .unwrap(),
            );
        }
        let mut e = ArmEmulator::new(parse_asm(&text, Isa::Arm64));
        e.define_global("g", &5i32.to_le_bytes());
        assert_eq!(e.call("f", &[]).unwrap() as i32, 6);
        assert_eq!(e.call("f", &[]).unwrap() as i32, 7);
    }

    #[test]
    fn arm_division_by_zero_errors() {
        let mut e = emu_for("int f(int a, int b) { return a / b; }", "f", OptLevel::O0);
        assert!(e.call("f", &[Arg::Int(1), Arg::Int(0)]).is_err());
    }

    #[test]
    fn arm_strings() {
        let mut e = emu_for("int f(void) { return strlen(\"hello arm\"); }", "f", OptLevel::O0);
        assert_eq!(e.call("f", &[]).unwrap(), 9);
    }
}
