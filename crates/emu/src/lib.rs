//! x86-64 emulator for the assembly subset `slade-compiler` emits.
//!
//! The paper's IO harness executes the *original assembly* and compares it
//! with the recompiled decompilation hypothesis. This crate provides that
//! fidelity: it runs the parsed AT&T text against the same byte-addressable
//! segment memory the MiniC interpreter uses (pointers are packed
//! `(segment << 32) | offset` values), so a buffer written by emulated
//! assembly can be read back and compared bit-for-bit with the interpreter's
//! result.
//!
//! Supported: the integer/float/SSE subset the backend generates, including
//! `movdqu`/`pshufd`/`paddd`/`psubd`/`pmulld` vector code, the SysV call
//! protocol (`rdi`…`r9`, `xmm0`…`xmm7`), and libc builtins (`memcpy`,
//! `strlen`, `sqrt`, …) dispatched by name on `call`.
//!
//! # Example
//!
//! ```
//! use slade_asm::{parse_asm, Isa};
//! use slade_compiler::{compile_function, CompileOpts, OptLevel};
//! use slade_emu::{Emulator, Arg};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let p = slade_minic::parse_program("int sq(int x) { return x * x; }")?;
//! let asm = compile_function(&p, "sq", CompileOpts::new(slade_compiler::Isa::X86_64, OptLevel::O0))?;
//! let mut emu = Emulator::new(parse_asm(&asm, Isa::X86_64));
//! let ret = emu.call("sq", &[Arg::Int(9)])?;
//! assert_eq!(ret as i32, 81);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod arm;

pub use arm::ArmEmulator;

use slade_asm::{AsmFile, AsmFunction, Inst, Line, Operand};
use slade_minic::mem::Memory;
use slade_minic::value::Pointer;
use std::collections::HashMap;
use std::fmt;

/// Emulation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EmuError {
    message: String,
}

impl EmuError {
    pub(crate) fn new(msg: impl Into<String>) -> Self {
        EmuError { message: msg.into() }
    }

    /// Human-readable reason.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for EmuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "emulation error: {}", self.message)
    }
}

impl std::error::Error for EmuError {}

/// Result alias.
pub type Result<T> = std::result::Result<T, EmuError>;

/// An argument for [`Emulator::call`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Arg {
    /// Integer or packed-pointer argument (goes to `rdi`…).
    Int(u64),
    /// Double argument (goes to `xmm0`…).
    F64(f64),
    /// Float argument.
    F32(f32),
}

const GPRS: [&str; 16] = [
    "rax", "rbx", "rcx", "rdx", "rsi", "rdi", "rbp", "rsp", "r8", "r9", "r10", "r11", "r12",
    "r13", "r14", "r15",
];

fn gpr_index(name: &str) -> Option<(usize, u8)> {
    // Returns (index, width-in-bytes).
    let full = GPRS.iter().position(|&g| g == name);
    if let Some(i) = full {
        return Some((i, 8));
    }
    let map32: [(&str, usize); 16] = [
        ("eax", 0),
        ("ebx", 1),
        ("ecx", 2),
        ("edx", 3),
        ("esi", 4),
        ("edi", 5),
        ("ebp", 6),
        ("esp", 7),
        ("r8d", 8),
        ("r9d", 9),
        ("r10d", 10),
        ("r11d", 11),
        ("r12d", 12),
        ("r13d", 13),
        ("r14d", 14),
        ("r15d", 15),
    ];
    for (n, i) in map32 {
        if n == name {
            return Some((i, 4));
        }
    }
    match name {
        "ax" => Some((0, 2)),
        "cx" => Some((2, 2)),
        "dx" => Some((3, 2)),
        "al" => Some((0, 1)),
        "bl" => Some((1, 1)),
        "cl" => Some((2, 1)),
        "dl" => Some((3, 1)),
        _ => None,
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Flags {
    zf: bool,
    sf: bool,
    cf: bool,
    of: bool,
}

/// The machine: registers, flags, vector registers and segment memory.
#[derive(Debug)]
pub struct Emulator {
    file: AsmFile,
    gpr: [u64; 16],
    xmm: [[u8; 16]; 16],
    flags: Flags,
    mem: Memory,
    symbols: HashMap<String, u64>,
    stack_base: u64,
    fuel: u64,
}

fn pack(p: Pointer) -> u64 {
    ((p.seg as u64) << 32) | (p.off as u64 & 0xffff_ffff)
}

fn unpack(v: u64) -> Pointer {
    Pointer { seg: (v >> 32) as u32, off: (v & 0xffff_ffff) as i64 }
}

impl Emulator {
    /// Builds an emulator for `file`, allocating its rodata and a 1 MiB
    /// stack.
    pub fn new(file: AsmFile) -> Self {
        let mut mem = Memory::new();
        let mut symbols = HashMap::new();
        for (label, bytes) in &file.rodata {
            let p = mem.alloc(bytes.len());
            mem.store_bytes(p, bytes).expect("fresh rodata segment");
            symbols.insert(label.clone(), pack(p));
        }
        let stack = mem.alloc(1 << 20);
        let stack_base = pack(stack) + (1 << 20) - 64;
        Emulator {
            file,
            gpr: [0; 16],
            xmm: [[0; 16]; 16],
            flags: Flags::default(),
            mem,
            symbols,
            stack_base,
            fuel: 0,
        }
    }

    /// Allocates a buffer with the given contents; returns its packed
    /// address (pass it as an [`Arg::Int`]).
    pub fn alloc_buffer(&mut self, bytes: &[u8]) -> u64 {
        let p = self.mem.alloc(bytes.len());
        self.mem.store_bytes(p, bytes).expect("fresh segment");
        pack(p)
    }

    /// Defines global symbol `name` backed by `bytes`.
    pub fn define_global(&mut self, name: &str, bytes: &[u8]) -> u64 {
        let addr = self.alloc_buffer(bytes);
        self.symbols.insert(name.to_string(), addr);
        addr
    }

    /// Reads memory at a packed address.
    ///
    /// # Errors
    ///
    /// Faults on invalid ranges.
    pub fn read_buffer(&self, addr: u64, len: usize) -> Result<Vec<u8>> {
        self.mem.load_bytes(unpack(addr), len).map_err(|e| EmuError::new(e.to_string()))
    }

    /// Return value of the last call as a double (`xmm0`).
    pub fn ret_f64(&self) -> f64 {
        f64::from_le_bytes(self.xmm[0][..8].try_into().unwrap())
    }

    /// Return value of the last call as a float.
    pub fn ret_f32(&self) -> f32 {
        f32::from_le_bytes(self.xmm[0][..4].try_into().unwrap())
    }

    /// Calls function `name` with SysV argument passing; returns `rax`.
    ///
    /// # Errors
    ///
    /// Fails on unknown functions, memory faults, unsupported instructions,
    /// or fuel exhaustion (10M instructions).
    pub fn call(&mut self, name: &str, args: &[Arg]) -> Result<u64> {
        self.fuel = 10_000_000;
        self.gpr[7] = self.stack_base; // rsp
        let mut int_idx = 0;
        let mut f_idx = 0;
        const INT_ARGS: [usize; 6] = [5, 4, 3, 2, 8, 9]; // rdi rsi rdx rcx r8 r9
        for a in args {
            match a {
                Arg::Int(v) => {
                    if int_idx < 6 {
                        self.gpr[INT_ARGS[int_idx]] = *v;
                    }
                    int_idx += 1;
                }
                Arg::F64(v) => {
                    self.xmm[f_idx][..8].copy_from_slice(&v.to_le_bytes());
                    f_idx += 1;
                }
                Arg::F32(v) => {
                    self.xmm[f_idx][..4].copy_from_slice(&v.to_le_bytes());
                    f_idx += 1;
                }
            }
        }
        self.exec_function(name)?;
        Ok(self.gpr[0])
    }

    fn exec_function(&mut self, name: &str) -> Result<()> {
        let Some(func) = self.file.function(name).cloned() else {
            return self.call_builtin(name);
        };
        let labels = func.label_positions();
        let mut ip = 0usize;
        while ip < func.lines.len() {
            if self.fuel == 0 {
                return Err(EmuError::new("fuel exhausted"));
            }
            self.fuel -= 1;
            let line = &func.lines[ip];
            ip += 1;
            let inst = match line {
                Line::Label(_) => continue,
                Line::Inst(i) => i,
            };
            match self.step(inst, &func, &labels, &mut ip)? {
                Step::Continue => {}
                Step::Return => return Ok(()),
            }
        }
        Ok(())
    }

    fn step(
        &mut self,
        inst: &Inst,
        func: &AsmFunction,
        labels: &HashMap<String, usize>,
        ip: &mut usize,
    ) -> Result<Step> {
        let m = inst.mnemonic.as_str();
        let ops = &inst.operands;
        match m {
            "endbr64" | "nop" => {}
            "pushq" => {
                self.gpr[7] = self.gpr[7].wrapping_sub(8);
                let v = self.read_op(&ops[0], 8)?;
                self.write_mem_addr(self.gpr[7], &v.to_le_bytes())?;
            }
            "popq" => {
                let bytes = self.read_mem_addr(self.gpr[7], 8)?;
                self.gpr[7] = self.gpr[7].wrapping_add(8);
                self.write_op(&ops[0], u64::from_le_bytes(bytes.try_into().unwrap()), 8)?;
            }
            "leave" => {
                self.gpr[7] = self.gpr[6]; // rsp = rbp
                let bytes = self.read_mem_addr(self.gpr[7], 8)?;
                self.gpr[7] = self.gpr[7].wrapping_add(8);
                self.gpr[6] = u64::from_le_bytes(bytes.try_into().unwrap());
            }
            "ret" => return Ok(Step::Return),
            "movq" | "movl" | "movw" | "movb" | "movabsq" => {
                let width = match m {
                    "movb" => 1,
                    "movw" => 2,
                    "movl" => 4,
                    _ => 8,
                };
                // movq between GPR and XMM is a different beast.
                if m == "movq" && ops.iter().any(is_xmm) {
                    self.mov_gpr_xmm(&ops[0], &ops[1], 8)?;
                } else {
                    let v = self.read_op(&ops[0], width)?;
                    self.write_op(&ops[1], v, width)?;
                }
            }
            "movd" => self.mov_gpr_xmm(&ops[0], &ops[1], 4)?,
            "movslq" => {
                let v = self.read_op(&ops[0], 4)? as u32 as i32 as i64 as u64;
                self.write_op(&ops[1], v, 8)?;
            }
            "movsbl" => {
                let v = self.read_op(&ops[0], 1)? as u8 as i8 as i32 as u32 as u64;
                self.write_op(&ops[1], v, 4)?;
            }
            "movzbl" => {
                let v = self.read_op(&ops[0], 1)? as u8 as u64;
                self.write_op(&ops[1], v, 4)?;
            }
            "movswl" => {
                let v = self.read_op(&ops[0], 2)? as u16 as i16 as i32 as u32 as u64;
                self.write_op(&ops[1], v, 4)?;
            }
            "movzwl" => {
                let v = self.read_op(&ops[0], 2)? as u16 as u64;
                self.write_op(&ops[1], v, 4)?;
            }
            "leaq" => {
                let addr = self.effective_address(&ops[0])?;
                self.write_op(&ops[1], addr, 8)?;
            }
            "addl" | "addq" | "subl" | "subq" | "imull" | "imulq" | "andl" | "andq" | "orl"
            | "orq" | "xorl" | "xorq" => {
                let width = if m.ends_with('q') { 8 } else { 4 };
                let src = self.read_op(&ops[0], width)?;
                let dst = self.read_op(&ops[1], width)?;
                let result = match &m[..m.len() - 1] {
                    "add" => dst.wrapping_add(src),
                    "sub" => dst.wrapping_sub(src),
                    "imul" => dst.wrapping_mul(src),
                    "and" => dst & src,
                    "or" => dst | src,
                    _ => dst ^ src,
                };
                self.set_zf_sf(result, width);
                self.write_op(&ops[1], result, width)?;
            }
            "cltd" => {
                // Sign-extend eax into edx.
                let eax = self.gpr[0] as u32 as i32;
                self.gpr[3] = if eax < 0 { 0xffff_ffff } else { 0 };
            }
            "cqto" => {
                let rax = self.gpr[0] as i64;
                self.gpr[3] = if rax < 0 { u64::MAX } else { 0 };
            }
            "idivl" | "idivq" | "divl" | "divq" => {
                let wide = m.ends_with('q');
                let width = if wide { 8 } else { 4 };
                let divisor = self.read_op(&ops[0], width)?;
                if wide {
                    let d = divisor as i64;
                    if m == "idivq" {
                        if d == 0 {
                            return Err(EmuError::new("integer division by zero"));
                        }
                        let a = self.gpr[0] as i64;
                        self.gpr[0] = a.wrapping_div(d) as u64;
                        self.gpr[3] = a.wrapping_rem(d) as u64;
                    } else {
                        if divisor == 0 {
                            return Err(EmuError::new("integer division by zero"));
                        }
                        let a = self.gpr[0];
                        self.gpr[0] = a / divisor;
                        self.gpr[3] = a % divisor;
                    }
                } else {
                    let d32 = divisor as u32;
                    if m == "idivl" {
                        let d = d32 as i32;
                        if d == 0 {
                            return Err(EmuError::new("integer division by zero"));
                        }
                        let a = self.gpr[0] as u32 as i32;
                        self.gpr[0] = (a.wrapping_div(d) as u32) as u64;
                        self.gpr[3] = (a.wrapping_rem(d) as u32) as u64;
                    } else {
                        if d32 == 0 {
                            return Err(EmuError::new("integer division by zero"));
                        }
                        let a = self.gpr[0] as u32;
                        self.gpr[0] = (a / d32) as u64;
                        self.gpr[3] = (a % d32) as u64;
                    }
                }
            }
            "sall" | "salq" | "sarl" | "sarq" | "shrl" | "shrq" => {
                let wide = m.ends_with('q');
                let width = if wide { 8u8 } else { 4 };
                let amount = (self.read_op(&ops[0], 1)? as u32) & if wide { 63 } else { 31 };
                let v = self.read_op(&ops[1], width)?;
                let result = match &m[..3] {
                    "sal" => v.wrapping_shl(amount),
                    "sar" => {
                        if wide {
                            ((v as i64) >> amount) as u64
                        } else {
                            (((v as u32 as i32) >> amount) as u32) as u64
                        }
                    }
                    _ => {
                        if wide {
                            v >> amount
                        } else {
                            ((v as u32) >> amount) as u64
                        }
                    }
                };
                self.set_zf_sf(result, width);
                self.write_op(&ops[1], result, width)?;
            }
            "cmpl" | "cmpq" => {
                let width = if m == "cmpq" { 8 } else { 4 };
                let src = self.read_op(&ops[0], width)?;
                let dst = self.read_op(&ops[1], width)?;
                self.compare(dst, src, width);
            }
            "testl" | "testq" => {
                let width = if m == "testq" { 8 } else { 4 };
                let a = self.read_op(&ops[0], width)?;
                let b = self.read_op(&ops[1], width)?;
                let r = a & b;
                self.set_zf_sf(r, width);
                self.flags.cf = false;
                self.flags.of = false;
            }
            _ if m.starts_with("set") => {
                let v = self.eval_cond(&m[3..])? as u64;
                self.write_op(&ops[0], v, 1)?;
            }
            "jmp" => {
                *ip = self.branch_target(&ops[0], labels)?;
            }
            _ if m.starts_with('j') => {
                if self.eval_cond(&m[1..])? {
                    *ip = self.branch_target(&ops[0], labels)?;
                }
            }
            "call" => {
                let Operand::Sym(target) = &ops[0] else {
                    return Err(EmuError::new("indirect call"));
                };
                let target = target.clone();
                // Align as the ABI would; our code doesn't rely on it.
                self.gpr[7] = self.gpr[7].wrapping_sub(8);
                self.exec_function(&target)?;
                self.gpr[7] = self.gpr[7].wrapping_add(8);
            }
            "movss" | "movsd" => {
                let width = if m == "movss" { 4 } else { 8 };
                self.mov_float(&ops[0], &ops[1], width)?;
            }
            "addss" | "addsd" | "subss" | "subsd" | "mulss" | "mulsd" | "divss" | "divsd" => {
                let single = m.ends_with("ss");
                let a = self.read_float(&ops[1], single)?;
                let b = self.read_float(&ops[0], single)?;
                let r = match &m[..3] {
                    "add" => a + b,
                    "sub" => a - b,
                    "mul" => a * b,
                    _ => a / b,
                };
                self.write_float(&ops[1], r, single)?;
            }
            "ucomiss" | "ucomisd" => {
                let single = m == "ucomiss";
                let a = self.read_float(&ops[1], single)?;
                let b = self.read_float(&ops[0], single)?;
                self.flags.zf = a == b;
                self.flags.cf = a < b;
                self.flags.sf = false;
                self.flags.of = false;
            }
            "cvtsi2ss" | "cvtsi2sd" | "cvtsi2ssq" | "cvtsi2sdq" => {
                let wide = m.ends_with('q');
                let v = self.read_op(&ops[0], if wide { 8 } else { 4 })?;
                let f = if wide { v as i64 as f64 } else { v as u32 as i32 as f64 };
                let single = m.contains("ss");
                self.write_float(&ops[1], f, single)?;
            }
            "cvttss2si" | "cvttsd2si" | "cvttss2siq" | "cvttsd2siq" => {
                let single = m.contains("ss");
                let f = self.read_float(&ops[0], single)?;
                let wide = m.ends_with('q');
                let v = if wide { f as i64 as u64 } else { (f as i32 as u32) as u64 };
                self.write_op(&ops[1], v, if wide { 8 } else { 4 })?;
            }
            "cvtss2sd" => {
                let f = self.read_float(&ops[0], true)?;
                self.write_float(&ops[1], f, false)?;
            }
            "cvtsd2ss" => {
                let f = self.read_float(&ops[0], false)?;
                self.write_float(&ops[1], f, true)?;
            }
            "movdqu" | "movups" => {
                let v = self.read_vec(&ops[0])?;
                self.write_vec(&ops[1], v)?;
            }
            "pshufd" => {
                // Only the broadcast form `pshufd $0, src, dst` is emitted.
                let Operand::Imm(sel) = ops[0] else {
                    return Err(EmuError::new("pshufd selector"));
                };
                let src = self.read_vec(&ops[1])?;
                let mut out = [0u8; 16];
                for lane in 0..4 {
                    let pick = ((sel >> (lane * 2)) & 3) as usize;
                    out[lane * 4..lane * 4 + 4].copy_from_slice(&src[pick * 4..pick * 4 + 4]);
                }
                self.write_vec(&ops[2], out)?;
            }
            "paddd" | "psubd" | "pmulld" => {
                let a = self.read_vec(&ops[1])?;
                let b = self.read_vec(&ops[0])?;
                let mut out = [0u8; 16];
                for lane in 0..4 {
                    let x = i32::from_le_bytes(a[lane * 4..lane * 4 + 4].try_into().unwrap());
                    let y = i32::from_le_bytes(b[lane * 4..lane * 4 + 4].try_into().unwrap());
                    let r = match m {
                        "paddd" => x.wrapping_add(y),
                        "psubd" => x.wrapping_sub(y),
                        _ => x.wrapping_mul(y),
                    };
                    out[lane * 4..lane * 4 + 4].copy_from_slice(&r.to_le_bytes());
                }
                self.write_vec(&ops[1], out)?;
            }
            other => {
                let _ = func;
                return Err(EmuError::new(format!("unsupported instruction `{other}`")));
            }
        }
        Ok(Step::Continue)
    }

    // ---- operand plumbing ----

    fn effective_address(&self, op: &Operand) -> Result<u64> {
        match op {
            Operand::Mem { disp, base, index, scale } => {
                let mut addr = *disp as u64;
                if let Some(b) = base {
                    let (i, _) = gpr_index(b).ok_or_else(|| EmuError::new("bad base reg"))?;
                    addr = addr.wrapping_add(self.gpr[i]);
                }
                if let Some(ix) = index {
                    let (i, _) = gpr_index(ix).ok_or_else(|| EmuError::new("bad index reg"))?;
                    addr = addr.wrapping_add(self.gpr[i].wrapping_mul(*scale as u64));
                }
                Ok(addr)
            }
            Operand::RipSym(sym) => self
                .symbols
                .get(sym)
                .copied()
                .ok_or_else(|| EmuError::new(format!("undefined symbol `{sym}`"))),
            _ => Err(EmuError::new("not a memory operand")),
        }
    }

    fn read_mem_addr(&self, addr: u64, len: usize) -> Result<Vec<u8>> {
        self.mem.load_bytes(unpack(addr), len).map_err(|e| EmuError::new(e.to_string()))
    }

    fn write_mem_addr(&mut self, addr: u64, bytes: &[u8]) -> Result<()> {
        self.mem.store_bytes(unpack(addr), bytes).map_err(|e| EmuError::new(e.to_string()))
    }

    fn read_op(&self, op: &Operand, width: u8) -> Result<u64> {
        match op {
            Operand::Imm(v) => Ok(*v as u64),
            Operand::Reg(name) => {
                let (i, w) = gpr_index(name)
                    .ok_or_else(|| EmuError::new(format!("unknown register `{name}`")))?;
                let _ = w;
                Ok(mask_width(self.gpr[i], width))
            }
            Operand::Mem { .. } | Operand::RipSym(_) => {
                let addr = self.effective_address(op)?;
                let bytes = self.read_mem_addr(addr, width as usize)?;
                let mut raw = [0u8; 8];
                raw[..bytes.len()].copy_from_slice(&bytes);
                Ok(u64::from_le_bytes(raw))
            }
            other => Err(EmuError::new(format!("cannot read operand {other:?}"))),
        }
    }

    fn write_op(&mut self, op: &Operand, v: u64, width: u8) -> Result<()> {
        match op {
            Operand::Reg(name) => {
                let (i, w) = gpr_index(name)
                    .ok_or_else(|| EmuError::new(format!("unknown register `{name}`")))?;
                let w = w.min(width);
                self.gpr[i] = match w {
                    8 => v,
                    4 => v & 0xffff_ffff, // 32-bit writes zero the top half
                    2 => (self.gpr[i] & !0xffff) | (v & 0xffff),
                    _ => (self.gpr[i] & !0xff) | (v & 0xff),
                };
                Ok(())
            }
            Operand::Mem { .. } | Operand::RipSym(_) => {
                let addr = self.effective_address(op)?;
                let bytes = v.to_le_bytes();
                self.write_mem_addr(addr, &bytes[..width as usize])
            }
            other => Err(EmuError::new(format!("cannot write operand {other:?}"))),
        }
    }

    fn xmm_index(op: &Operand) -> Option<usize> {
        if let Operand::Reg(name) = op {
            if let Some(n) = name.strip_prefix("xmm") {
                return n.parse().ok();
            }
        }
        None
    }

    fn mov_gpr_xmm(&mut self, src: &Operand, dst: &Operand, width: u8) -> Result<()> {
        match (Self::xmm_index(src), Self::xmm_index(dst)) {
            (None, Some(x)) => {
                let v = self.read_op(src, width)?;
                self.xmm[x] = [0; 16];
                self.xmm[x][..width as usize]
                    .copy_from_slice(&v.to_le_bytes()[..width as usize]);
                Ok(())
            }
            (Some(x), None) => {
                let mut raw = [0u8; 8];
                raw[..width as usize].copy_from_slice(&self.xmm[x][..width as usize]);
                self.write_op(dst, u64::from_le_bytes(raw), width)
            }
            _ => Err(EmuError::new("movd/movq between unsupported operands")),
        }
    }

    fn mov_float(&mut self, src: &Operand, dst: &Operand, width: u8) -> Result<()> {
        let bytes: Vec<u8> = match Self::xmm_index(src) {
            Some(x) => self.xmm[x][..width as usize].to_vec(),
            None => {
                let addr = self.effective_address(src)?;
                self.read_mem_addr(addr, width as usize)?
            }
        };
        match Self::xmm_index(dst) {
            Some(x) => {
                self.xmm[x][..width as usize].copy_from_slice(&bytes);
                Ok(())
            }
            None => {
                let addr = self.effective_address(dst)?;
                self.write_mem_addr(addr, &bytes)
            }
        }
    }

    fn read_float(&self, op: &Operand, single: bool) -> Result<f64> {
        let width = if single { 4 } else { 8 };
        let bytes: Vec<u8> = match Self::xmm_index(op) {
            Some(x) => self.xmm[x][..width].to_vec(),
            None => {
                let addr = self.effective_address(op)?;
                self.read_mem_addr(addr, width)?
            }
        };
        Ok(if single {
            f32::from_le_bytes(bytes.try_into().unwrap()) as f64
        } else {
            f64::from_le_bytes(bytes.try_into().unwrap())
        })
    }

    fn write_float(&mut self, op: &Operand, v: f64, single: bool) -> Result<()> {
        let bytes: Vec<u8> =
            if single { (v as f32).to_le_bytes().to_vec() } else { v.to_le_bytes().to_vec() };
        match Self::xmm_index(op) {
            Some(x) => {
                self.xmm[x][..bytes.len()].copy_from_slice(&bytes);
                Ok(())
            }
            None => {
                let addr = self.effective_address(op)?;
                self.write_mem_addr(addr, &bytes)
            }
        }
    }

    fn read_vec(&self, op: &Operand) -> Result<[u8; 16]> {
        match Self::xmm_index(op) {
            Some(x) => Ok(self.xmm[x]),
            None => {
                let addr = self.effective_address(op)?;
                let bytes = self.read_mem_addr(addr, 16)?;
                Ok(bytes.try_into().unwrap())
            }
        }
    }

    fn write_vec(&mut self, op: &Operand, v: [u8; 16]) -> Result<()> {
        match Self::xmm_index(op) {
            Some(x) => {
                self.xmm[x] = v;
                Ok(())
            }
            None => {
                let addr = self.effective_address(op)?;
                self.write_mem_addr(addr, &v)
            }
        }
    }

    fn set_zf_sf(&mut self, v: u64, width: u8) {
        let masked = mask_width(v, width);
        self.flags.zf = masked == 0;
        self.flags.sf = match width {
            4 => (masked as u32 as i32) < 0,
            _ => (masked as i64) < 0,
        };
    }

    fn compare(&mut self, dst: u64, src: u64, width: u8) {
        if width == 4 {
            let a = dst as u32;
            let b = src as u32;
            let r = a.wrapping_sub(b);
            self.flags.zf = r == 0;
            self.flags.sf = (r as i32) < 0;
            self.flags.cf = a < b;
            self.flags.of = ((a as i32).wrapping_sub(b as i32) as i64)
                != (a as i32 as i64) - (b as i32 as i64);
        } else {
            let a = dst;
            let b = src;
            let r = a.wrapping_sub(b);
            self.flags.zf = r == 0;
            self.flags.sf = (r as i64) < 0;
            self.flags.cf = a < b;
            self.flags.of = ((a as i64).wrapping_sub(b as i64) as i128)
                != (a as i64 as i128) - (b as i64 as i128);
        }
    }

    fn eval_cond(&self, cond: &str) -> Result<bool> {
        let f = &self.flags;
        Ok(match cond {
            "e" => f.zf,
            "ne" => !f.zf,
            "l" => f.sf != f.of,
            "le" => f.zf || f.sf != f.of,
            "g" => !f.zf && f.sf == f.of,
            "ge" => f.sf == f.of,
            "b" => f.cf,
            "be" => f.cf || f.zf,
            "a" => !f.cf && !f.zf,
            "ae" => !f.cf,
            "s" => f.sf,
            "ns" => !f.sf,
            other => return Err(EmuError::new(format!("unknown condition `{other}`"))),
        })
    }

    fn branch_target(&self, op: &Operand, labels: &HashMap<String, usize>) -> Result<usize> {
        let Operand::Sym(label) = op else {
            return Err(EmuError::new("indirect branch"));
        };
        labels
            .get(label)
            .copied()
            .ok_or_else(|| EmuError::new(format!("unknown label `{label}`")))
    }

    // ---- libc builtins ----

    fn call_builtin(&mut self, name: &str) -> Result<()> {
        let rdi = self.gpr[5];
        let rsi = self.gpr[4];
        let rdx = self.gpr[3];
        match name {
            "memcpy" | "memmove" => {
                let bytes = self.read_mem_addr(rsi, rdx as usize)?;
                self.write_mem_addr(rdi, &bytes)?;
                self.gpr[0] = rdi;
            }
            "memset" => {
                let buf = vec![rsi as u8; rdx as usize];
                self.write_mem_addr(rdi, &buf)?;
                self.gpr[0] = rdi;
            }
            "strlen" => {
                let s = self
                    .mem
                    .load_cstr(unpack(rdi))
                    .map_err(|e| EmuError::new(e.to_string()))?;
                self.gpr[0] = s.len() as u64;
            }
            "strcmp" => {
                let a = self
                    .mem
                    .load_cstr(unpack(rdi))
                    .map_err(|e| EmuError::new(e.to_string()))?;
                let b = self
                    .mem
                    .load_cstr(unpack(rsi))
                    .map_err(|e| EmuError::new(e.to_string()))?;
                self.gpr[0] = match a.cmp(&b) {
                    std::cmp::Ordering::Less => (-1i64) as u64,
                    std::cmp::Ordering::Equal => 0,
                    std::cmp::Ordering::Greater => 1,
                };
            }
            "abs" => {
                self.gpr[0] = ((self.gpr[5] as u32 as i32).wrapping_abs() as u32) as u64;
            }
            "labs" => {
                self.gpr[0] = (self.gpr[5] as i64).wrapping_abs() as u64;
            }
            "sqrt" | "fabs" | "sin" | "cos" | "tan" | "exp" | "log" | "floor" | "ceil" => {
                let x = f64::from_le_bytes(self.xmm[0][..8].try_into().unwrap());
                let r = match name {
                    "sqrt" => x.sqrt(),
                    "fabs" => x.abs(),
                    "sin" => x.sin(),
                    "cos" => x.cos(),
                    "tan" => x.tan(),
                    "exp" => x.exp(),
                    "log" => x.ln(),
                    "floor" => x.floor(),
                    _ => x.ceil(),
                };
                self.xmm[0][..8].copy_from_slice(&r.to_le_bytes());
            }
            "pow" | "fmod" | "fmin" | "fmax" => {
                let x = f64::from_le_bytes(self.xmm[0][..8].try_into().unwrap());
                let y = f64::from_le_bytes(self.xmm[1][..8].try_into().unwrap());
                let r = match name {
                    "pow" => x.powf(y),
                    "fmod" => x % y,
                    "fmin" => x.min(y),
                    _ => x.max(y),
                };
                self.xmm[0][..8].copy_from_slice(&r.to_le_bytes());
            }
            "putchar" | "printf" => {
                self.gpr[0] = 0;
            }
            other => {
                return Err(EmuError::new(format!("call to undefined function `{other}`")));
            }
        }
        Ok(())
    }
}

enum Step {
    Continue,
    Return,
}

fn is_xmm(op: &Operand) -> bool {
    matches!(op, Operand::Reg(name) if name.starts_with("xmm"))
}

fn mask_width(v: u64, width: u8) -> u64 {
    match width {
        8 => v,
        4 => v & 0xffff_ffff,
        2 => v & 0xffff,
        _ => v & 0xff,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slade_asm::{parse_asm, Isa};
    use slade_compiler::{compile_function, CompileOpts, OptLevel};

    fn emu_for(src: &str, name: &str, opt: OptLevel) -> Emulator {
        let p = slade_minic::parse_program(src).unwrap();
        let asm =
            compile_function(&p, name, CompileOpts::new(slade_compiler::Isa::X86_64, opt))
                .unwrap();
        Emulator::new(parse_asm(&asm, Isa::X86_64))
    }

    #[test]
    fn runs_arithmetic_at_both_levels() {
        for opt in [OptLevel::O0, OptLevel::O3] {
            let mut e = emu_for("int f(int a, int b) { return a * 3 - b / 2; }", "f", opt);
            let r = e.call("f", &[Arg::Int(10), Arg::Int(7)]).unwrap();
            assert_eq!(r as i32, 27, "{opt:?}");
        }
    }

    #[test]
    fn runs_loops() {
        for opt in [OptLevel::O0, OptLevel::O3] {
            let mut e = emu_for(
                "int fact(int n) { int r = 1; while (n > 1) { r *= n; n--; } return r; }",
                "fact",
                opt,
            );
            assert_eq!(e.call("fact", &[Arg::Int(6)]).unwrap() as i32, 720, "{opt:?}");
        }
    }

    #[test]
    fn pointer_buffers_roundtrip() {
        for opt in [OptLevel::O0, OptLevel::O3] {
            let mut e = emu_for(
                "void add(int *list, int val, int n) { int i; for (i = 0; i < n; ++i) list[i] += val; }",
                "add",
                opt,
            );
            let mut bytes = Vec::new();
            for v in [1i32, 2, 3, 4, 5, 6, 7] {
                bytes.extend_from_slice(&v.to_le_bytes());
            }
            let buf = e.alloc_buffer(&bytes);
            e.call("add", &[Arg::Int(buf), Arg::Int(10), Arg::Int(7)]).unwrap();
            let out = e.read_buffer(buf, 28).unwrap();
            let vals: Vec<i32> =
                out.chunks(4).map(|c| i32::from_le_bytes(c.try_into().unwrap())).collect();
            assert_eq!(vals, vec![11, 12, 13, 14, 15, 16, 17], "{opt:?} (vectorized at O3)");
        }
    }

    #[test]
    fn float_math_matches() {
        for opt in [OptLevel::O0, OptLevel::O3] {
            let mut e =
                emu_for("double f(double x, double y) { return x * y + 0.5; }", "f", opt);
            e.call("f", &[Arg::F64(2.5), Arg::F64(4.0)]).unwrap();
            assert_eq!(e.ret_f64(), 10.5, "{opt:?}");
        }
    }

    #[test]
    fn unsigned_division() {
        let mut e =
            emu_for("unsigned f(unsigned a, unsigned b) { return a / b; }", "f", OptLevel::O0);
        let r = e.call("f", &[Arg::Int(0xffff_fffc), Arg::Int(2)]).unwrap();
        assert_eq!(r as u32, 0x7fff_fffe);
    }

    #[test]
    fn division_by_zero_errors() {
        let mut e = emu_for("int f(int a, int b) { return a / b; }", "f", OptLevel::O0);
        assert!(e.call("f", &[Arg::Int(1), Arg::Int(0)]).is_err());
    }

    #[test]
    fn calls_between_functions_and_builtins() {
        let src = r#"
            int square(int x) { return x * x; }
            int f(int a) { return square(a) + abs(-3); }
        "#;
        let p = slade_minic::parse_program(src).unwrap();
        let mut text = String::new();
        for name in ["square", "f"] {
            text.push_str(
                &compile_function(
                    &p,
                    name,
                    CompileOpts::new(slade_compiler::Isa::X86_64, OptLevel::O0),
                )
                .unwrap(),
            );
        }
        let mut e = Emulator::new(parse_asm(&text, Isa::X86_64));
        assert_eq!(e.call("f", &[Arg::Int(5)]).unwrap() as i32, 28);
    }

    #[test]
    fn globals_resolve_via_symbols() {
        let src = "int g; int f(void) { g = g + 7; return g; }";
        let mut e = emu_for(src, "f", OptLevel::O0);
        e.define_global("g", &10i32.to_le_bytes());
        assert_eq!(e.call("f", &[]).unwrap() as i32, 17);
        assert_eq!(e.call("f", &[]).unwrap() as i32, 24);
    }

    #[test]
    fn infinite_loops_run_out_of_fuel() {
        let mut e = emu_for("int f(void) { for (;;) {} return 0; }", "f", OptLevel::O0);
        let err = e.call("f", &[]).unwrap_err();
        assert!(err.message().contains("fuel"));
    }

    #[test]
    fn strings_in_rodata_work() {
        let src = "int f(void) { return strlen(\"hello\"); }";
        let mut e = emu_for(src, "f", OptLevel::O0);
        assert_eq!(e.call("f", &[]).unwrap(), 5);
    }
}
