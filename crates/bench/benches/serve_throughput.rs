//! `serve_throughput`: requests/sec through the serving runtime on the
//! acceptance workload (8 requests × beam 5), at 1 / 2 / 4 shards, warm
//! vs cold cache, plus batch-of-1 latency through the runtime vs calling
//! the engine path directly, plus the admission-tier scenarios (shed
//! under overload, duplicate coalescing, spill warm-start after a
//! restart). Prints criterion-style lines and writes a
//! `BENCH_serve.json` snapshot at the workspace root.
//!
//! Shard scaling is core-bound: the shards are real OS threads, so the
//! 4-shard/1-shard ratio approaches 4 only on ≥ 4 free cores (the JSON
//! records `host_parallelism` so readers can interpret the ratio). The
//! warm-cache rows are hardware-independent: hits skip decode entirely.
//!
//! Run: `cargo bench -p slade_bench --bench serve_throughput`

use serde::Serialize;
use slade::Slade;
use slade_compiler::{Isa, OptLevel};
use slade_nn::{Seq2Seq, TransformerConfig};
use slade_serve::{ServeConfig, ServeRuntime};
use slade_tokenizer::UnigramTokenizer;
use std::sync::Arc;
use std::time::Instant;

const BEAM: usize = 5;
const MAX_TGT: usize = 24;
const REQUESTS: usize = 8;

#[derive(Serialize)]
struct ShardResult {
    shards: usize,
    cold_requests_per_sec: f64,
    warm_requests_per_sec: f64,
}

#[derive(Serialize)]
struct LatencyResult {
    engine_direct_ms: f64,
    runtime_ms: f64,
    overhead_pct: f64,
}

#[derive(Serialize)]
struct TracingOverhead {
    tokens_per_sec_tracing_on: f64,
    tokens_per_sec_tracing_off: f64,
    /// Positive = tracing costs throughput. The observability budget in
    /// DESIGN.md §11 requires this below 1%.
    overhead_pct: f64,
}

#[derive(Serialize)]
struct LatencyPercentiles {
    p50_ms: f64,
    p95_ms: f64,
    p99_ms: f64,
}

#[derive(Serialize)]
struct ShedScenario {
    queue_cap: usize,
    offered: u64,
    accepted: u64,
    shed: u64,
    /// Rate at which the flood of fallible submissions was answered
    /// (accept or shed) — sheds are cheap, so this is far above decode.
    decisions_per_sec: f64,
}

#[derive(Serialize)]
struct CoalesceScenario {
    offered: u64,
    decoded: u64,
    coalesced: u64,
}

#[derive(Serialize)]
struct WarmStartScenario {
    cold_requests_per_sec: f64,
    /// The same workload through a *fresh* runtime sharing the first
    /// one's spill directory — the kill-and-restart case.
    restart_requests_per_sec: f64,
    /// Tokens the restarted runtime decoded; `0` = the spill tier
    /// eliminated every cold-start decode.
    restart_decode_tokens: u64,
    restart_spill_hits: u64,
}

#[derive(Serialize)]
struct GatewayLoadRow {
    scenario: &'static str,
    clients: usize,
    requests: u64,
    ok: u64,
    shed_429: u64,
    /// Client-side throughput over the whole burst (includes connection
    /// setup per request — the loadgen uses one fresh socket per call).
    client_requests_per_sec: f64,
    /// Fraction of the burst answered `429` (quota or admission shed).
    shed_rate: f64,
    p50_ms: f64,
    p95_ms: f64,
    p99_ms: f64,
}

#[derive(Serialize)]
struct GatewayLoadgen {
    rows: Vec<GatewayLoadRow>,
    /// Admission queue-wait percentiles observed by the runtime behind
    /// the gateway during the cold + warm bursts.
    queue_wait: LatencyPercentiles,
}

#[derive(Serialize)]
struct Report {
    workload: String,
    host_parallelism: usize,
    kernel_isa: &'static str,
    backend: &'static str,
    shard_results: Vec<ShardResult>,
    speedup_4_vs_1_cold: f64,
    warm_over_cold_at_1_shard: f64,
    /// Decode throughput of a 1-shard cache-off runtime, normalized per
    /// worker thread (tokens counted by the engine, not requests).
    decode_tokens_per_sec_per_core: f64,
    batch_of_one: LatencyResult,
    /// End-to-end request latency over the decode-tokens workload
    /// (histogram-derived, within one bucket width of exact).
    latency: LatencyPercentiles,
    /// Decode tok/s with span tracing + stage timing on vs off.
    tracing_overhead: TracingOverhead,
    /// Bounded admission under a deliberate flood (undersized cap).
    shed_scenario: ShedScenario,
    /// Duplicate-heavy traffic collapsing onto one decode.
    coalesce_scenario: CoalesceScenario,
    /// Disk-spill tier surviving a runtime restart.
    warm_start: WarmStartScenario,
    /// Concurrent socket clients through the HTTP gateway: cold and warm
    /// decode bursts, overload shed, and per-client quota shed.
    gateway: GatewayLoadgen,
    /// Per-stage timing histograms and kernel counters accumulated across
    /// the whole bench run (from the process-wide observability registry).
    stage_breakdown: slade_obs::StageBreakdown,
}

/// A decompiler around an untrained small-profile model: decode cost (the
/// thing measured) is identical to a trained model's, without minutes of
/// training in a bench.
fn bench_slade() -> Arc<Slade> {
    let corpus: Vec<String> = (0..24).map(workload_asm).collect();
    let tokenizer = UnigramTokenizer::train(&corpus, 300);
    let model = Seq2Seq::new(TransformerConfig::small(tokenizer.vocab_size()), 7);
    Arc::new(Slade::from_parts(model, tokenizer, Isa::X86_64, OptLevel::O0, BEAM, MAX_TGT))
}

/// Distinct realistic-shaped assembly per index (distinct cache lines).
fn workload_asm(i: usize) -> String {
    format!(
        "f{i}:\n\tpushq %rbp\n\tmovq %rsp, %rbp\n\tmovl %edi, -{off}(%rbp)\n\taddl ${k}, %eax\n\timull %esi, %eax\n\tcmpl ${k}, %eax\n\tjle .L{i}\n\tsubl %edi, %eax\n.L{i}:\n\tpopq %rbp\n\tret\n",
        off = 4 + 4 * (i % 6),
        k = 3 + i
    )
}

/// Nearest-rank percentile over an unsorted sample of latencies.
fn percentile_ms(samples: &mut [f64], q: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    let rank = ((q * samples.len() as f64).ceil() as usize).clamp(1, samples.len());
    samples[rank - 1]
}

/// Fires `clients` threads at the gateway, `per_client` POSTs each (one
/// fresh socket per request), and folds the burst into a bench row.
/// `body(client, request)` supplies each JSON payload; the quota key is
/// `client-{index}`.
fn gateway_burst(
    scenario: &'static str,
    addr: &str,
    clients: usize,
    per_client: usize,
    body: impl Fn(usize, usize) -> String + Sync,
) -> GatewayLoadRow {
    let ok = std::sync::atomic::AtomicU64::new(0);
    let shed = std::sync::atomic::AtomicU64::new(0);
    let lat = std::sync::Mutex::new(Vec::<f64>::new());
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for c in 0..clients {
            let (body, ok, shed, lat) = (&body, &ok, &shed, &lat);
            scope.spawn(move || {
                let client_id = format!("client-{c}");
                let mut mine = Vec::with_capacity(per_client);
                for r in 0..per_client {
                    let payload = body(c, r);
                    let t = Instant::now();
                    let resp = slade_gateway::http::request(
                        addr,
                        "POST",
                        "/v1/decompile",
                        &[("content-type", "application/json"), ("x-slade-client", &client_id)],
                        payload.as_bytes(),
                        std::time::Duration::from_secs(30),
                    )
                    .expect("loadgen request");
                    mine.push(t.elapsed().as_secs_f64() * 1e3);
                    match resp.status {
                        200 => ok.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
                        429 => shed.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
                        other => panic!("{scenario}: unexpected status {other}"),
                    };
                }
                lat.lock().unwrap().extend(mine);
            });
        }
    });
    let secs = t0.elapsed().as_secs_f64();
    let requests = (clients * per_client) as u64;
    let (ok, shed_429) = (ok.into_inner(), shed.into_inner());
    assert_eq!(ok + shed_429, requests, "{scenario}: every request must be answered");
    let mut lat = lat.into_inner().unwrap();
    GatewayLoadRow {
        scenario,
        clients,
        requests,
        ok,
        shed_429,
        client_requests_per_sec: requests as f64 / secs,
        shed_rate: shed_429 as f64 / requests as f64,
        p50_ms: percentile_ms(&mut lat, 0.50),
        p95_ms: percentile_ms(&mut lat, 0.95),
        p99_ms: percentile_ms(&mut lat, 0.99),
    }
}

/// `{"asm": ...}` with JSON escaping.
fn decompile_payload(asm: &str) -> String {
    let mut obj = serde_json::Map::new();
    obj.insert("asm".to_string(), serde_json::Value::Str(asm.to_string()));
    serde_json::Value::Object(obj).render()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--list") {
        println!("serve_throughput: bench");
        return;
    }
    let slade = bench_slade();
    let workload: Vec<String> = (0..REQUESTS).map(workload_asm).collect();
    let refs: Vec<&str> = workload.iter().map(String::as_str).collect();
    let spinup = workload_asm(900); // not in the workload: spins threads without warming its cache lines

    println!(
        "serve_throughput: {REQUESTS} requests x beam {BEAM} x {MAX_TGT} tokens (host parallelism {})",
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    );
    let mut shard_results = Vec::new();
    for shards in [1usize, 2, 4] {
        // Cold: fresh runtime per iteration so every request misses the
        // cache; worker spin-up is excluded via the spin-up decode.
        let mut cold_best = f64::INFINITY;
        let mut warm_best = f64::INFINITY;
        for _ in 0..3 {
            let runtime =
                ServeRuntime::start(Arc::clone(&slade), ServeConfig::with_shards(shards));
            runtime.decompile(&spinup);
            let t0 = Instant::now();
            let out = runtime.decompile_batch(&refs);
            cold_best = cold_best.min(t0.elapsed().as_secs_f64());
            assert_eq!(out.len(), REQUESTS);
            // Warm: same runtime, same inputs — every request hits.
            for _ in 0..3 {
                let t0 = Instant::now();
                let out = runtime.decompile_batch(&refs);
                warm_best = warm_best.min(t0.elapsed().as_secs_f64());
                assert_eq!(out.len(), REQUESTS);
            }
            let snap = runtime.metrics();
            assert!(snap.cache.hits >= 3 * REQUESTS as u64, "warm passes must hit");
            runtime.shutdown();
        }
        let cold_rps = REQUESTS as f64 / cold_best;
        let warm_rps = REQUESTS as f64 / warm_best;
        println!(
            "serve_cold_{shards}shard{} {cold_rps:>14.1} req/s",
            if shards == 1 { " " } else { "s" }
        );
        println!(
            "serve_warm_{shards}shard{} {warm_rps:>14.1} req/s",
            if shards == 1 { " " } else { "s" }
        );
        shard_results.push(ShardResult {
            shards,
            cold_requests_per_sec: cold_rps,
            warm_requests_per_sec: warm_rps,
        });
    }

    // Batch-of-1 latency: runtime (1 shard, cache off — every request
    // decodes) vs the direct engine path.
    let one = &workload[0];
    let iters = 10usize;
    let t0 = Instant::now();
    for _ in 0..iters {
        assert!(!slade.decompile(one).is_empty() || BEAM == 0);
    }
    let engine_ms = t0.elapsed().as_secs_f64() * 1e3 / iters as f64;
    let runtime =
        ServeRuntime::start(Arc::clone(&slade), ServeConfig::with_shards(1).without_cache());
    runtime.decompile(&spinup);
    let t0 = Instant::now();
    for _ in 0..iters {
        assert!(!runtime.decompile(one).is_empty() || BEAM == 0);
    }
    let runtime_ms = t0.elapsed().as_secs_f64() * 1e3 / iters as f64;
    runtime.shutdown();
    let overhead_pct = (runtime_ms / engine_ms - 1.0) * 100.0;
    println!("decompile1_engine_direct {engine_ms:>14.2} ms");
    println!("decompile1_serve_runtime {runtime_ms:>14.2} ms ({overhead_pct:+.1}% vs direct)");

    // Decode tokens/sec-per-core: 1 shard (one worker thread), cache off
    // so every request decodes; diff the engine's token counter around the
    // timed pass.
    let runtime =
        ServeRuntime::start(Arc::clone(&slade), ServeConfig::with_shards(1).without_cache());
    runtime.decompile(&spinup);
    let mut tokens_per_sec_per_core = 0.0f64;
    for _ in 0..3 {
        let before = runtime.metrics().decode_tokens;
        let t0 = Instant::now();
        let out = runtime.decompile_batch(&refs);
        let secs = t0.elapsed().as_secs_f64();
        assert_eq!(out.len(), REQUESTS);
        let decoded = (runtime.metrics().decode_tokens - before) as f64;
        tokens_per_sec_per_core = tokens_per_sec_per_core.max(decoded / secs);
    }
    // Tracing overhead: the same tok/s measurement with spans + stage
    // timers on vs off. Single-pass noise on a busy host is ±5% — far
    // above the effect — so each side's rate aggregates total tokens over
    // total time across 16 interleaved rounds (noise averages out as
    // 1/√rounds), and the side that runs first alternates per round so a
    // monotone slowdown inside a round (thermal, cgroup throttling)
    // cannot systematically favor one side. Pins the <1% budget.
    let mut tok = [0u64; 2];
    let mut secs = [0.0f64; 2];
    for round in 0..16 {
        let order = if round % 2 == 0 { [false, true] } else { [true, false] };
        for &tracing in &order {
            slade_obs::set_tracing(tracing);
            let before = runtime.metrics().decode_tokens;
            let t0 = Instant::now();
            for _ in 0..2 {
                let out = runtime.decompile_batch(&refs);
                assert_eq!(out.len(), REQUESTS);
            }
            let side = tracing as usize;
            secs[side] += t0.elapsed().as_secs_f64();
            tok[side] += runtime.metrics().decode_tokens - before;
        }
    }
    slade_obs::set_tracing(true);
    let off_rate = tok[0] as f64 / secs[0];
    let on_rate = tok[1] as f64 / secs[1];
    let tracing_overhead_pct = (off_rate / on_rate.max(1e-12) - 1.0) * 100.0;
    let snap = runtime.metrics();
    let (kernel_isa, backend) = (snap.kernel_isa, snap.backend);
    let latency = LatencyPercentiles {
        p50_ms: snap.p50_latency_ms,
        p95_ms: snap.p95_latency_ms,
        p99_ms: snap.p99_latency_ms,
    };
    runtime.shutdown();
    println!(
        "serve_decode_tokens_per_sec_per_core {tokens_per_sec_per_core:>14.0} tok/s ({kernel_isa}, {backend})"
    );
    println!(
        "serve_tracing_overhead {tracing_overhead_pct:>14.2} % (on {on_rate:.0} vs off {off_rate:.0} tok/s)"
    );
    println!(
        "serve_latency_p50_p95_p99 {:>8.1} {:>8.1} {:>8.1} ms",
        latency.p50_ms, latency.p95_ms, latency.p99_ms
    );

    // --- Admission scenarios ---
    use std::time::Duration;
    // Shed: one slow shard (decode-delay hook), cap 4, a flood of 64
    // fallible submissions while the worker sleeps — the burst is
    // decided (accept or shed) at queue-push speed, not decode speed.
    let flood = 64u64;
    let shed_cap = 4usize;
    let runtime = ServeRuntime::start(
        Arc::clone(&slade),
        ServeConfig {
            shards: 1,
            queue_cap: shed_cap,
            test_decode_delay: Duration::from_millis(40),
            ..ServeConfig::default().without_cache().without_coalescing()
        },
    );
    let busy = runtime.submit(&spinup);
    while runtime.metrics().queue_depth > 0 {
        std::thread::sleep(Duration::from_millis(1));
    }
    let t0 = Instant::now();
    let mut accepted_handles = Vec::new();
    for i in 0..flood {
        if let Ok(h) = runtime.try_submit(&workload_asm(100 + i as usize)) {
            accepted_handles.push(h);
        }
    }
    let decisions_per_sec = flood as f64 / t0.elapsed().as_secs_f64();
    busy.wait().expect("no timeout configured");
    for h in accepted_handles {
        h.wait().expect("accepted requests complete");
    }
    let snap = runtime.metrics();
    let shed_scenario = ShedScenario {
        queue_cap: shed_cap,
        offered: flood,
        accepted: flood - snap.shed,
        shed: snap.shed,
        decisions_per_sec,
    };
    runtime.shutdown();
    println!(
        "serve_shed_cap{shed_cap} {:>14.0} decisions/s ({} accepted / {} shed of {flood})",
        shed_scenario.decisions_per_sec, shed_scenario.accepted, shed_scenario.shed
    );

    // Coalesce: 32 duplicates of one input submitted while its first
    // decode is in flight — one engine pass answers all of them.
    let runtime = ServeRuntime::start(
        Arc::clone(&slade),
        ServeConfig {
            shards: 1,
            test_decode_delay: Duration::from_millis(40),
            ..ServeConfig::default().without_cache()
        },
    );
    let busy = runtime.submit(&spinup);
    let dupes: Vec<_> = (0..32).map(|_| runtime.submit(&workload[0])).collect();
    busy.wait().expect("no timeout configured");
    for h in dupes {
        h.wait().expect("no timeout configured");
    }
    let snap = runtime.metrics();
    let coalesce_scenario =
        CoalesceScenario { offered: 32, decoded: snap.decoded, coalesced: snap.coalesced };
    runtime.shutdown();
    println!(
        "serve_coalesce_32dup {:>14} decodes ({} coalesced)",
        coalesce_scenario.decoded, coalesce_scenario.coalesced
    );

    // Warm-start: run the workload through a spill-backed runtime, kill
    // it, start a fresh one on the same directory — the restart must
    // answer from disk without decoding at all.
    let spill_dir =
        std::env::temp_dir().join(format!("slade-bench-spill-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&spill_dir);
    let config = ServeConfig::with_shards(1).with_spill_dir(spill_dir.clone());
    let first = ServeRuntime::start(Arc::clone(&slade), config.clone());
    first.decompile(&spinup);
    let t0 = Instant::now();
    let out = first.decompile_batch(&refs);
    let warm_cold_rps = REQUESTS as f64 / t0.elapsed().as_secs_f64();
    assert_eq!(out.len(), REQUESTS);
    first.shutdown();
    let second = ServeRuntime::start(Arc::clone(&slade), config);
    let t0 = Instant::now();
    let out = second.decompile_batch(&refs);
    let restart_rps = REQUESTS as f64 / t0.elapsed().as_secs_f64();
    assert_eq!(out.len(), REQUESTS);
    let snap = second.metrics();
    let warm_start = WarmStartScenario {
        cold_requests_per_sec: warm_cold_rps,
        restart_requests_per_sec: restart_rps,
        restart_decode_tokens: snap.decode_tokens,
        restart_spill_hits: snap.cache.spill_hits,
    };
    second.shutdown();
    let _ = std::fs::remove_dir_all(&spill_dir);
    println!(
        "serve_warm_start_restart {restart_rps:>14.1} req/s (cold {warm_cold_rps:.1}; {} decode tokens after restart)",
        warm_start.restart_decode_tokens
    );

    // --- Gateway loadgen: concurrent socket clients over the HTTP
    // front-end. Cold burst (distinct inputs, every request decodes),
    // warm burst (same inputs, served from cache), overload shed
    // (undersized queue + slow decode → 429s), and per-client quota
    // shed (exhausted token bucket → 429s). ---
    use slade_gateway::{quota::QuotaConfig, Gateway, GatewayConfig};
    let mut gateway_rows = Vec::new();

    // Cold + warm share one gateway; the runtime keeps its cache.
    let runtime = Arc::new(ServeRuntime::start(
        Arc::clone(&slade),
        ServeConfig::with_shards(2).with_queue_cap(256),
    ));
    let gateway = Gateway::start(Arc::clone(&runtime), GatewayConfig::default())
        .expect("bind loadgen gateway");
    let addr = gateway.local_addr().to_string();
    let clients = 4usize;
    let per_client = 4usize;
    let cold_row = gateway_burst("gateway_cold", &addr, clients, per_client, |c, r| {
        decompile_payload(&workload_asm(300 + c * per_client + r))
    });
    let warm_row = gateway_burst("gateway_warm", &addr, clients, per_client, |c, r| {
        decompile_payload(&workload_asm(300 + c * per_client + r))
    });
    assert_eq!(cold_row.ok, cold_row.requests, "cold burst must not shed");
    assert_eq!(warm_row.ok, warm_row.requests, "warm burst must not shed");
    let snap = runtime.metrics();
    let gateway_queue_wait = LatencyPercentiles {
        p50_ms: snap.p50_queue_wait_ms,
        p95_ms: snap.p95_queue_wait_ms,
        p99_ms: snap.p99_queue_wait_ms,
    };
    assert!(snap.cache.hits >= warm_row.requests, "warm burst must hit the cache");
    gateway.shutdown();
    Arc::try_unwrap(runtime).ok().expect("gateway released its handle").shutdown();
    for row in [&cold_row, &warm_row] {
        println!(
            "{}_{clients}x{per_client} {:>14.1} req/s (p50 {:.1} p95 {:.1} p99 {:.1} ms)",
            row.scenario, row.client_requests_per_sec, row.p50_ms, row.p95_ms, row.p99_ms
        );
    }
    gateway_rows.push(cold_row);
    gateway_rows.push(warm_row);

    // Overload shed through the socket: tiny queue, slow decode, a burst
    // far over capacity — excess answers 429 at parse speed.
    let runtime = Arc::new(ServeRuntime::start(
        Arc::clone(&slade),
        ServeConfig {
            shards: 1,
            queue_cap: 2,
            test_decode_delay: Duration::from_millis(40),
            ..ServeConfig::default().without_cache().without_coalescing()
        },
    ));
    let gateway = Gateway::start(Arc::clone(&runtime), GatewayConfig::default())
        .expect("bind shed gateway");
    let addr = gateway.local_addr().to_string();
    let shed_row = gateway_burst("gateway_shed", &addr, 6, 4, |c, r| {
        decompile_payload(&workload_asm(400 + c * 4 + r))
    });
    assert!(shed_row.shed_429 > 0, "overload burst must shed");
    assert!(shed_row.ok > 0, "overload burst must also serve");
    gateway.shutdown();
    Arc::try_unwrap(runtime).ok().expect("gateway released its handle").shutdown();
    println!(
        "gateway_shed_6x4 {:>14.1} req/s ({} ok / {} shed, rate {:.2})",
        shed_row.client_requests_per_sec, shed_row.ok, shed_row.shed_429, shed_row.shed_rate
    );
    gateway_rows.push(shed_row);

    // Per-client quota: each client's bucket holds 2 tokens with no
    // meaningful refill, so exactly half of a 4-request run sheds.
    let runtime = Arc::new(ServeRuntime::start(
        Arc::clone(&slade),
        ServeConfig::with_shards(1).with_queue_cap(256),
    ));
    let gateway = Gateway::start(
        Arc::clone(&runtime),
        GatewayConfig {
            quota: QuotaConfig { rps: 0.001, burst: 2.0 },
            ..GatewayConfig::default()
        },
    )
    .expect("bind quota gateway");
    let addr = gateway.local_addr().to_string();
    let quota_row = gateway_burst("gateway_quota", &addr, 2, 4, |c, r| {
        decompile_payload(&workload_asm(500 + c * 4 + r))
    });
    assert_eq!(quota_row.ok, 4, "2 clients x 2-token buckets admit 4");
    assert_eq!(quota_row.shed_429, 4, "the rest shed on quota");
    let gw_snap = gateway.metrics();
    assert_eq!(gw_snap.quota_shed, 4);
    gateway.shutdown();
    Arc::try_unwrap(runtime).ok().expect("gateway released its handle").shutdown();
    println!(
        "gateway_quota_2x4 {:>14.1} req/s ({} ok / {} quota-shed)",
        quota_row.client_requests_per_sec, quota_row.ok, quota_row.shed_429
    );
    gateway_rows.push(quota_row);

    let cold = |s: usize| {
        shard_results
            .iter()
            .find(|r| r.shards == s)
            .map(|r| r.cold_requests_per_sec)
            .unwrap_or(0.0)
    };
    let report = Report {
        workload: format!(
            "{REQUESTS} requests x beam {BEAM} x {MAX_TGT} tokens, small profile"
        ),
        host_parallelism: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        kernel_isa,
        backend,
        speedup_4_vs_1_cold: cold(4) / cold(1).max(1e-12),
        warm_over_cold_at_1_shard: shard_results[0].warm_requests_per_sec
            / shard_results[0].cold_requests_per_sec.max(1e-12),
        shard_results,
        decode_tokens_per_sec_per_core: tokens_per_sec_per_core,
        batch_of_one: LatencyResult { engine_direct_ms: engine_ms, runtime_ms, overhead_pct },
        latency,
        tracing_overhead: TracingOverhead {
            tokens_per_sec_tracing_on: on_rate,
            tokens_per_sec_tracing_off: off_rate,
            overhead_pct: tracing_overhead_pct,
        },
        shed_scenario,
        coalesce_scenario,
        warm_start,
        gateway: GatewayLoadgen { rows: gateway_rows, queue_wait: gateway_queue_wait },
        stage_breakdown: slade_obs::obs().stage_snapshot(),
    };
    println!(
        "speedup 4-shard vs 1-shard (cold): {:.2}x; warm/cold at 1 shard: {:.1}x",
        report.speedup_4_vs_1_cold, report.warm_over_cold_at_1_shard
    );
    let json = serde_json::to_string(&report).expect("report serialization");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}
