//! Ablation/extension suite bench target (harness = false).
//!
//! `cargo bench --bench ablations` trains the perturbed configurations at
//! the tiny reproduction profile and prints the full ablation report:
//! dropout vs weight decay (§V-C), tokenizer rules and vocabulary size
//! (§IV), beam width (§VI-A), plus the paper's §X future-work extensions
//! (denoising pre-training, program repair, analytic-first hybrid). For
//! the slower default profile:
//! `cargo run -p slade-eval --bin figures --release -- default ablations`

use slade::TrainProfile;
use slade_dataset::DatasetProfile;
use slade_eval::ablations::{run_all_ablations, AblationSetup};

fn main() {
    // `cargo bench -- --list` and harness probes must not train models.
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--list") {
        println!("ablations: bench");
        return;
    }
    let data = DatasetProfile { train: 260, exebench_eval: 40, synth_per_category: 4 };
    let train =
        TrainProfile { epochs: 3, max_src_len: 1024, max_tgt_len: 96, ..TrainProfile::tiny() };
    eprintln!("[ablations bench] generating data and training variants...");
    let t0 = std::time::Instant::now();
    let setup = AblationSetup::build(data, train, 2024);
    println!("{}", run_all_ablations(&setup));
    eprintln!("[ablations bench] total {:.1}s", t0.elapsed().as_secs_f64());
}
