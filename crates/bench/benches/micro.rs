//! Criterion micro-benchmarks for every subsystem on the decompilation
//! critical path: compilation, parsing, lifting, emulation, tokenization,
//! model forward pass, edit distance and the IO harness.

use criterion::{criterion_group, Criterion};
use slade_compiler::{compile_function, CompileOpts, Isa, OptLevel};
use slade_minic::parse_program;

const SRC: &str =
    "int total(int *a, int n) { int s = 0; for (int i = 0; i < n; i++) s += a[i]; return s; }";

fn bench_compile(c: &mut Criterion) {
    let p = parse_program(SRC).unwrap();
    c.bench_function("compile_x86_o0", |b| {
        b.iter(|| {
            compile_function(&p, "total", CompileOpts::new(Isa::X86_64, OptLevel::O0)).unwrap()
        })
    });
    c.bench_function("compile_x86_o3", |b| {
        b.iter(|| {
            compile_function(&p, "total", CompileOpts::new(Isa::X86_64, OptLevel::O3)).unwrap()
        })
    });
    c.bench_function("compile_arm_o3", |b| {
        b.iter(|| {
            compile_function(&p, "total", CompileOpts::new(Isa::Arm64, OptLevel::O3)).unwrap()
        })
    });
}

fn bench_lift_and_emulate(c: &mut Criterion) {
    let p = parse_program(SRC).unwrap();
    let asm =
        compile_function(&p, "total", CompileOpts::new(Isa::X86_64, OptLevel::O0)).unwrap();
    c.bench_function("ghidra_lift_x86_o0", |b| {
        b.iter(|| {
            slade_baselines::ghidra_decompile(&asm, slade_asm::Isa::X86_64, "total").unwrap()
        })
    });
    c.bench_function("emulate_x86_loop", |b| {
        let file = slade_asm::parse_asm(&asm, slade_asm::Isa::X86_64);
        b.iter(|| {
            let mut emu = slade_emu::Emulator::new(file.clone());
            let buf = emu.alloc_buffer(&[1u8; 64]);
            emu.call("total", &[slade_emu::Arg::Int(buf), slade_emu::Arg::Int(16)]).unwrap()
        })
    });
    c.bench_function("interpret_loop", |b| {
        b.iter(|| {
            let mut i = slade_minic::Interpreter::new(&p).unwrap();
            let buf = i.alloc_buffer(&[1u8; 64]);
            i.call("total", &[slade_minic::Value::Ptr(buf), slade_minic::Value::int(16)])
                .unwrap()
        })
    });
}

fn bench_tokenizer_and_metrics(c: &mut Criterion) {
    let corpus: Vec<String> = (0..20).map(|i| format!("{SRC} // v{i}")).collect();
    let tok = slade_tokenizer::UnigramTokenizer::train(&corpus, 300);
    c.bench_function("tokenizer_encode", |b| b.iter(|| tok.encode(SRC)));
    c.bench_function("edit_distance_200", |b| {
        let a = SRC.repeat(2);
        let d = SRC.replace('s', "t").repeat(2);
        b.iter(|| slade_eval::edit_distance(&a, &d))
    });
}

fn bench_model_forward(c: &mut Criterion) {
    let model = slade_nn::Seq2Seq::new(slade_nn::TransformerConfig::tiny(64), 0);
    let src: Vec<u32> = (4..20).collect();
    c.bench_function("transformer_encode_16tok", |b| b.iter(|| model.encode(&src)));
    c.bench_function("transformer_greedy_decode", |b| b.iter(|| model.greedy(&src, 1, 2, 16)));
    // KV-cached vs full-recompute decoding of a 24-token prefix: the
    // incremental path is what makes beam-5 evaluation tractable.
    let mem = model.encode(&src);
    let prefix: Vec<u32> = (1..25).collect();
    c.bench_function("decode_prefix24_full_recompute", |b| {
        b.iter(|| {
            let mut last = Vec::new();
            for end in 1..=prefix.len() {
                last = model.decode_last_logits(&mem, src.len(), &prefix[..end]);
            }
            last
        })
    });
    c.bench_function("decode_prefix24_kv_cached", |b| {
        b.iter(|| {
            let mut state = model.begin_decode(&mem, src.len());
            let mut last = Vec::new();
            for &tok in &prefix {
                last = model.decode_step(&mut state, tok);
            }
            last
        })
    });
    c.bench_function("beam5_decode_16tok", |b| b.iter(|| model.beam_search(&src, 1, 2, 16, 5)));
}

/// Decode throughput, batch = 1 vs batch = 8, on the `small` profile: the
/// sequential loop decodes the 8 requests one at a time on the
/// per-hypothesis reference path (one cloned `DecoderState` per surviving
/// beam — the pre-engine shape), the batched row runs all 8 through one
/// `InferenceEngine::decode_batch` call. Both decode the same token
/// budget, so ns/iter compares directly; the engine's acceptance target
/// is ≥ 2× throughput at batch = 8.
fn bench_batched_decode(c: &mut Criterion) {
    use slade_nn::{DecodeRequest, InferenceEngine, Seq2Seq, TransformerConfig};
    let model = Seq2Seq::new(TransformerConfig::small(512), 7);
    let engine = InferenceEngine::new(&model);
    let requests: Vec<DecodeRequest> = (0..8)
        .map(|i| DecodeRequest {
            src: (0..24u32).map(|t| 4 + (t * 7 + i) % 480).collect(),
            bos: 1,
            eos: 2,
            max_len: 24,
            beam: 5,
        })
        .collect();
    c.bench_function("decode8_sequential_scalar", |b| {
        b.iter(|| requests.iter().map(|r| engine.decode_scalar(r).len()).sum::<usize>())
    });
    c.bench_function("decode8_batched_engine", |b| {
        b.iter(|| engine.decode_batch(&requests).len())
    });
    let single = &requests[..1];
    c.bench_function("decode1_batched_engine", |b| {
        b.iter(|| engine.decode_batch(single).len())
    });
}

fn bench_repair_and_typeinf(c: &mut Criterion) {
    let broken = "int scale_sum(int *arr, int n, int k) {\n  int s = 0;\n  for (int i = 0; i < n; i++) {\n    s += arr[i] * k;";
    c.bench_function("repair_truncated_function", |b| {
        b.iter(|| slade_repair::repair(broken, ""))
    });
    let valid = SRC;
    c.bench_function("repair_passthrough_valid", |b| {
        b.iter(|| slade_repair::repair(valid, ""))
    });
    let missing_type = "my_int total(my_int a, my_int b) { return a + b; }";
    c.bench_function("typeinf_missing_typedef", |b| {
        b.iter(|| slade_typeinf::infer_missing_types(missing_type, ""))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets =
    bench_compile,
    bench_lift_and_emulate,
    bench_tokenizer_and_metrics,
    bench_model_forward,
    bench_batched_decode,
    bench_repair_and_typeinf
}

/// Times `f` over `iters` calls, best of 3 rounds, in ns per call.
fn time_ns<F: FnMut()>(iters: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let t0 = std::time::Instant::now();
        for _ in 0..iters {
            f();
        }
        best = best.min(t0.elapsed().as_nanos() as f64 / iters as f64);
    }
    best
}

#[derive(serde::Serialize)]
struct KernelRow {
    name: String,
    scalar_ns: f64,
    simd_ns: f64,
    speedup: f64,
}

#[derive(serde::Serialize)]
struct DecodeRow {
    backend: &'static str,
    isa: &'static str,
    tokens_per_sec_per_core: f64,
}

#[derive(serde::Serialize)]
struct KernelReport {
    detected_isa: &'static str,
    host_parallelism: usize,
    kernels: Vec<KernelRow>,
    decode: Vec<DecodeRow>,
    /// Acceptance headline: SIMD f32 decode tokens/sec-per-core over
    /// forced-scalar f32.
    decode_simd_speedup_f32: f64,
    /// Int8 decode throughput relative to f32 on the detected tier.
    decode_int8_over_f32: f64,
}

/// Decode tokens/sec on one core for a model: run the engine session loop
/// to completion and divide tokens decoded by wall time (single-threaded,
/// so per-core = total).
fn decode_tokens_per_sec(model: &slade_nn::Seq2Seq) -> f64 {
    use slade_nn::{DecodeRequest, InferenceEngine};
    let engine = InferenceEngine::new(model);
    let requests: Vec<DecodeRequest> = (0..8)
        .map(|i| DecodeRequest {
            src: (0..24u32).map(|t| 4 + (t * 7 + i) % 480).collect(),
            bos: 1,
            eos: 2,
            max_len: 24,
            beam: 5,
        })
        .collect();
    let refs: Vec<&DecodeRequest> = requests.iter().collect();
    let mut best = f64::NEG_INFINITY;
    for _ in 0..3 {
        let mut session = engine.session(8 * 5, 24);
        let t0 = std::time::Instant::now();
        session.admit_many(&refs);
        while !session.is_idle() {
            session.step();
        }
        let secs = t0.elapsed().as_secs_f64();
        best = best.max(session.decoded_tokens() as f64 / secs);
    }
    best
}

/// Per-kernel and end-to-end decode benchmarks across ISA tiers and
/// weight backends; writes `BENCH_kernels.json` at the workspace root.
/// Skipped when a name filter is active that does not match "kernels"
/// (CI's smoke pass filters on "decode").
fn bench_kernels() {
    use slade_nn::kernels::{self, IsaTier};
    use slade_nn::{Backend, Seq2Seq, TransformerConfig};

    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--list") {
        println!("kernels: bench");
        return;
    }
    if let Some(filter) =
        args.iter().skip(1).find(|a| !a.starts_with('-') && !a.ends_with("bench"))
    {
        if !"kernels".contains(filter.as_str()) {
            return;
        }
    }

    let detected = kernels::detected_tier();
    println!("kernels: detected isa {}, comparing against forced scalar", detected.name());

    // Decode-path shapes on the small profile: lane projections
    // (lanes x d @ d x d), FFN (d x dff), and the logits projection
    // (lanes x d @ d x vocab) — the three matmul shapes one engine step
    // is made of, at 8 requests x beam 5 = 40 lanes.
    let (lanes, d, dff, vocab) = (40usize, 64usize, 128usize, 512usize);
    let a = vec![0.37f32; lanes * d];
    let w_dd = vec![0.11f32; d * d];
    let w_dff = vec![0.07f32; d * dff];
    let w_vocab = vec![0.05f32; d * vocab];
    let mut out = vec![0.0f32; lanes * vocab];

    let mut rows: Vec<KernelRow> = Vec::new();
    let mut run = |name: String, iters: usize, f: &mut dyn FnMut()| {
        kernels::set_tier(IsaTier::Scalar);
        let scalar_ns = time_ns(iters, &mut *f);
        kernels::set_tier(detected);
        let simd_ns = time_ns(iters, &mut *f);
        println!(
            "kernel_{name:<34} scalar {scalar_ns:>11.0} ns, {} {simd_ns:>11.0} ns ({:.2}x)",
            detected.name(),
            scalar_ns / simd_ns
        );
        rows.push(KernelRow { name, scalar_ns, simd_ns, speedup: scalar_ns / simd_ns });
    };
    run(format!("xposed_{lanes}x{d}x{d}"), 200, &mut || {
        kernels::matmul_xposed_into(&a, &w_dd, &mut out[..lanes * d], lanes, d, d);
    });
    run(format!("xposed_{lanes}x{d}x{dff}"), 200, &mut || {
        kernels::matmul_xposed_into(&a, &w_dff, &mut out[..lanes * dff], lanes, d, dff);
    });
    run(format!("xposed_{lanes}x{d}x{vocab}"), 50, &mut || {
        kernels::matmul_xposed_into(&a, &w_vocab, &mut out[..lanes * vocab], lanes, d, vocab);
    });
    // Packed j-block layout (what ProjWeight::F32 actually stores): the
    // sequential slabs dodge the L1 set conflicts the plain transposed
    // layout hits at the 2 KB row stride of the vocab projection.
    let w_vocab_packed = kernels::pack_xposed_blocks(&w_vocab, d, vocab);
    run(format!("xpacked_{lanes}x{d}x{vocab}"), 50, &mut || {
        kernels::matmul_xpacked_into(
            &a,
            &w_vocab_packed,
            &mut out[..lanes * vocab],
            lanes,
            d,
            vocab,
        );
    });
    run(format!("transb_{lanes}x{d}x{d}"), 200, &mut || {
        kernels::matmul_transb_into(&a, &w_dd, &mut out[..lanes * d], lanes, d, d);
    });
    run(format!("row_max_{vocab}"), 2_000, &mut || {
        criterion::black_box(kernels::row_max(&out[..vocab]));
    });
    run(format!("sum_exp_{vocab}"), 2_000, &mut || {
        let max = kernels::row_max(&out[..vocab]);
        criterion::black_box(kernels::sum_exp(&out[..vocab], max));
    });
    // Int8 logits projection (the largest matmul of a step).
    let mut xq = vec![0i8; lanes * d];
    let mut xs = vec![0.0f32; lanes];
    for i in 0..lanes {
        xs[i] = kernels::quantize_row_i8(&a[i * d..(i + 1) * d], &mut xq[i * d..(i + 1) * d]);
    }
    let mut wq = vec![0i8; vocab * d];
    let mut ws = vec![0.0f32; vocab];
    for j in 0..vocab {
        ws[j] =
            kernels::quantize_row_i8(&w_vocab[j * d..(j + 1) * d], &mut wq[j * d..(j + 1) * d]);
    }
    run(format!("qmatmul_{lanes}x{d}x{vocab}"), 50, &mut || {
        kernels::qmatmul_transb_into(
            &xq,
            &xs,
            &wq,
            &ws,
            None,
            &mut out[..lanes * vocab],
            lanes,
            d,
            vocab,
        );
    });
    // Per-call activation quantization (every int8 projection pays this
    // once per input row).
    let mut qrow = vec![0i8; lanes * d];
    run(format!("quantize_row_{lanes}x{d}"), 500, &mut || {
        for i in 0..lanes {
            criterion::black_box(kernels::quantize_row_i8(
                &a[i * d..(i + 1) * d],
                &mut qrow[i * d..(i + 1) * d],
            ));
        }
    });
    // Single-query attention core at the small-profile head shape (4
    // heads x dh 16 over a 24-token cache): QK^T scores, softmax, and
    // the weighted-V accumulation, per head — the per-lane work of one
    // decode step's self-attention.
    let (heads, dh, nctx) = (4usize, 16usize, 24usize);
    let qv = vec![0.21f32; heads * dh];
    let keys = vec![0.13f32; nctx * heads * dh];
    let vals = vec![0.09f32; nctx * heads * dh];
    let mut scores = vec![0.0f32; nctx];
    let mut actx = vec![0.0f32; heads * dh];
    let ascale = 1.0 / (dh as f32).sqrt();
    run(format!("attend_{heads}h{dh}_n{nctx}"), 2_000, &mut || {
        actx.iter_mut().for_each(|c| *c = 0.0);
        for head in 0..heads {
            let off = head * dh;
            kernels::attn_scores_into(
                &qv[off..off + dh],
                &keys[off..],
                heads * dh,
                ascale,
                &mut scores,
            );
            kernels::softmax_into(&mut scores);
            kernels::attn_weighted_sum_into(
                &scores,
                &vals[off..],
                heads * dh,
                &mut actx[off..off + dh],
            );
        }
    });
    run(format!("layer_norm_{lanes}x{d}"), 1_000, &mut || {
        kernels::layer_norm_into(
            &a,
            &w_dd[..d],
            &w_dd[d..2 * d],
            lanes,
            d,
            &mut out[..lanes * d],
        );
    });
    // VNNI vs plain-AVX2 int8 matmul: same exact integer arithmetic,
    // VPDPBUSD encoding vs the unpack/madd chain. Baseline column holds
    // the AVX2 time (not scalar).
    #[cfg(target_arch = "x86_64")]
    if detected == IsaTier::Vnni {
        let mut f = || {
            kernels::avx2::qmatmul_transb_into(
                &xq,
                &xs,
                &wq,
                &ws,
                None,
                &mut out[..lanes * vocab],
                lanes,
                d,
                vocab,
            );
        };
        let avx2_ns = time_ns(50, &mut f);
        let mut f = || {
            kernels::vnni::qmatmul_transb_into(
                &xq,
                &xs,
                &wq,
                &ws,
                None,
                &mut out[..lanes * vocab],
                lanes,
                d,
                vocab,
            );
        };
        let vnni_ns = time_ns(50, &mut f);
        println!(
            "kernel_{:<34} avx2   {avx2_ns:>11.0} ns, vnni {vnni_ns:>11.0} ns ({:.2}x)",
            format!("qmatmul_vnni_{lanes}x{d}x{vocab}"),
            avx2_ns / vnni_ns
        );
        rows.push(KernelRow {
            name: format!("qmatmul_vnni_{lanes}x{d}x{vocab}"),
            scalar_ns: avx2_ns,
            simd_ns: vnni_ns,
            speedup: avx2_ns / vnni_ns,
        });
    }

    // End-to-end decode throughput per tier x backend.
    let f32_model = Seq2Seq::new(TransformerConfig::small(512), 7);
    let mut int8_cfg = TransformerConfig::small(512);
    int8_cfg.backend = Backend::Int8;
    let mut int8_model = f32_model.clone();
    int8_model.cfg = int8_cfg;
    let mut decode = Vec::new();
    // Tier matrix: scalar, then (when the host detects VNNI) plain AVX2
    // so the VPDPBUSD contribution is separable, then the detected tier.
    let mut tiers = vec![IsaTier::Scalar];
    if detected == IsaTier::Vnni {
        tiers.push(IsaTier::Avx2);
    }
    if detected != IsaTier::Scalar {
        tiers.push(detected);
    }
    for (backend, model) in [("f32", &f32_model), ("int8", &int8_model)] {
        for &tier in &tiers {
            kernels::set_tier(tier);
            let tps = decode_tokens_per_sec(model);
            println!(
                "decode_tokens_per_sec_{backend}_{:<8} {tps:>14.0} tok/s/core",
                tier.name()
            );
            decode.push(DecodeRow { backend, isa: tier.name(), tokens_per_sec_per_core: tps });
        }
    }
    kernels::set_tier(detected);

    let find = |backend: &str, isa: &str| {
        decode
            .iter()
            .find(|r| r.backend == backend && r.isa == isa)
            .map(|r| r.tokens_per_sec_per_core)
            .unwrap_or(0.0)
    };
    let f32_scalar = find("f32", "scalar");
    let f32_simd = find("f32", detected.name());
    let int8_simd = find("int8", detected.name());
    let report = KernelReport {
        detected_isa: detected.name(),
        host_parallelism: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        kernels: rows,
        decode,
        decode_simd_speedup_f32: f32_simd / f32_scalar.max(1e-12),
        decode_int8_over_f32: int8_simd / f32_simd.max(1e-12),
    };
    println!(
        "decode simd speedup (f32): {:.2}x; int8 vs f32 on {}: {:.2}x",
        report.decode_simd_speedup_f32,
        detected.name(),
        report.decode_int8_over_f32
    );
    let json = serde_json::to_string(&report).expect("kernel report serialization");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_kernels.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

fn main() {
    benches();
    bench_kernels();
}
