//! Criterion micro-benchmarks for every subsystem on the decompilation
//! critical path: compilation, parsing, lifting, emulation, tokenization,
//! model forward pass, edit distance and the IO harness.

use criterion::{criterion_group, criterion_main, Criterion};
use slade_compiler::{compile_function, CompileOpts, Isa, OptLevel};
use slade_minic::parse_program;

const SRC: &str =
    "int total(int *a, int n) { int s = 0; for (int i = 0; i < n; i++) s += a[i]; return s; }";

fn bench_compile(c: &mut Criterion) {
    let p = parse_program(SRC).unwrap();
    c.bench_function("compile_x86_o0", |b| {
        b.iter(|| {
            compile_function(&p, "total", CompileOpts::new(Isa::X86_64, OptLevel::O0)).unwrap()
        })
    });
    c.bench_function("compile_x86_o3", |b| {
        b.iter(|| {
            compile_function(&p, "total", CompileOpts::new(Isa::X86_64, OptLevel::O3)).unwrap()
        })
    });
    c.bench_function("compile_arm_o3", |b| {
        b.iter(|| {
            compile_function(&p, "total", CompileOpts::new(Isa::Arm64, OptLevel::O3)).unwrap()
        })
    });
}

fn bench_lift_and_emulate(c: &mut Criterion) {
    let p = parse_program(SRC).unwrap();
    let asm =
        compile_function(&p, "total", CompileOpts::new(Isa::X86_64, OptLevel::O0)).unwrap();
    c.bench_function("ghidra_lift_x86_o0", |b| {
        b.iter(|| {
            slade_baselines::ghidra_decompile(&asm, slade_asm::Isa::X86_64, "total").unwrap()
        })
    });
    c.bench_function("emulate_x86_loop", |b| {
        let file = slade_asm::parse_asm(&asm, slade_asm::Isa::X86_64);
        b.iter(|| {
            let mut emu = slade_emu::Emulator::new(file.clone());
            let buf = emu.alloc_buffer(&[1u8; 64]);
            emu.call("total", &[slade_emu::Arg::Int(buf), slade_emu::Arg::Int(16)]).unwrap()
        })
    });
    c.bench_function("interpret_loop", |b| {
        b.iter(|| {
            let mut i = slade_minic::Interpreter::new(&p).unwrap();
            let buf = i.alloc_buffer(&[1u8; 64]);
            i.call("total", &[slade_minic::Value::Ptr(buf), slade_minic::Value::int(16)])
                .unwrap()
        })
    });
}

fn bench_tokenizer_and_metrics(c: &mut Criterion) {
    let corpus: Vec<String> = (0..20).map(|i| format!("{SRC} // v{i}")).collect();
    let tok = slade_tokenizer::UnigramTokenizer::train(&corpus, 300);
    c.bench_function("tokenizer_encode", |b| b.iter(|| tok.encode(SRC)));
    c.bench_function("edit_distance_200", |b| {
        let a = SRC.repeat(2);
        let d = SRC.replace('s', "t").repeat(2);
        b.iter(|| slade_eval::edit_distance(&a, &d))
    });
}

fn bench_model_forward(c: &mut Criterion) {
    let model = slade_nn::Seq2Seq::new(slade_nn::TransformerConfig::tiny(64), 0);
    let src: Vec<u32> = (4..20).collect();
    c.bench_function("transformer_encode_16tok", |b| b.iter(|| model.encode(&src)));
    c.bench_function("transformer_greedy_decode", |b| b.iter(|| model.greedy(&src, 1, 2, 16)));
    // KV-cached vs full-recompute decoding of a 24-token prefix: the
    // incremental path is what makes beam-5 evaluation tractable.
    let mem = model.encode(&src);
    let prefix: Vec<u32> = (1..25).collect();
    c.bench_function("decode_prefix24_full_recompute", |b| {
        b.iter(|| {
            let mut last = Vec::new();
            for end in 1..=prefix.len() {
                last = model.decode_last_logits(&mem, src.len(), &prefix[..end]);
            }
            last
        })
    });
    c.bench_function("decode_prefix24_kv_cached", |b| {
        b.iter(|| {
            let mut state = model.begin_decode(&mem, src.len());
            let mut last = Vec::new();
            for &tok in &prefix {
                last = model.decode_step(&mut state, tok);
            }
            last
        })
    });
    c.bench_function("beam5_decode_16tok", |b| b.iter(|| model.beam_search(&src, 1, 2, 16, 5)));
}

/// Decode throughput, batch = 1 vs batch = 8, on the `small` profile: the
/// sequential loop decodes the 8 requests one at a time on the
/// per-hypothesis reference path (one cloned `DecoderState` per surviving
/// beam — the pre-engine shape), the batched row runs all 8 through one
/// `InferenceEngine::decode_batch` call. Both decode the same token
/// budget, so ns/iter compares directly; the engine's acceptance target
/// is ≥ 2× throughput at batch = 8.
fn bench_batched_decode(c: &mut Criterion) {
    use slade_nn::{DecodeRequest, InferenceEngine, Seq2Seq, TransformerConfig};
    let model = Seq2Seq::new(TransformerConfig::small(512), 7);
    let engine = InferenceEngine::new(&model);
    let requests: Vec<DecodeRequest> = (0..8)
        .map(|i| DecodeRequest {
            src: (0..24u32).map(|t| 4 + (t * 7 + i) % 480).collect(),
            bos: 1,
            eos: 2,
            max_len: 24,
            beam: 5,
        })
        .collect();
    c.bench_function("decode8_sequential_scalar", |b| {
        b.iter(|| requests.iter().map(|r| engine.decode_scalar(r).len()).sum::<usize>())
    });
    c.bench_function("decode8_batched_engine", |b| {
        b.iter(|| engine.decode_batch(&requests).len())
    });
    let single = &requests[..1];
    c.bench_function("decode1_batched_engine", |b| {
        b.iter(|| engine.decode_batch(single).len())
    });
}

fn bench_repair_and_typeinf(c: &mut Criterion) {
    let broken = "int scale_sum(int *arr, int n, int k) {\n  int s = 0;\n  for (int i = 0; i < n; i++) {\n    s += arr[i] * k;";
    c.bench_function("repair_truncated_function", |b| {
        b.iter(|| slade_repair::repair(broken, ""))
    });
    let valid = SRC;
    c.bench_function("repair_passthrough_valid", |b| {
        b.iter(|| slade_repair::repair(valid, ""))
    });
    let missing_type = "my_int total(my_int a, my_int b) { return a + b; }";
    c.bench_function("typeinf_missing_typedef", |b| {
        b.iter(|| slade_typeinf::infer_missing_types(missing_type, ""))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets =
    bench_compile,
    bench_lift_and_emulate,
    bench_tokenizer_and_metrics,
    bench_model_forward,
    bench_batched_decode,
    bench_repair_and_typeinf
}
criterion_main!(benches);
