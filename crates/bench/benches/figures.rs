//! Figure/table regeneration bench target (harness = false).
//!
//! `cargo bench` runs the whole paper evaluation at the tiny reproduction
//! profile (so the suite completes in minutes on one core) and prints every
//! figure and table with paper-vs-measured columns. For the better-quality
//! default profile run:
//! `cargo run -p slade-eval --bin figures --release -- default`

use slade::TrainProfile;
use slade_dataset::DatasetProfile;
use slade_eval::figures::{run_all, Reproduction};

fn main() {
    // `cargo bench -- --list` and harness probes must not train models.
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--list") {
        println!("figures: bench");
        return;
    }
    let data = DatasetProfile { train: 260, exebench_eval: 40, synth_per_category: 4 };
    // Assembly is token-verbose: the source-length cap must fit realistic
    // -O0 functions or the model trains on (almost) nothing.
    let train =
        TrainProfile { epochs: 3, max_src_len: 1024, max_tgt_len: 96, ..TrainProfile::tiny() };
    eprintln!("[figures bench] training 4 configurations at bench profile...");
    let t0 = std::time::Instant::now();
    let repro = Reproduction::build(data, train, 2024);
    eprintln!("[figures bench] trained in {:.1}s", t0.elapsed().as_secs_f64());
    println!("{}", run_all(&repro));
    eprintln!("[figures bench] total {:.1}s", t0.elapsed().as_secs_f64());
}
