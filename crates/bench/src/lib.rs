//! Benchmark crate: see `benches/micro.rs` (Criterion micro-benchmarks) and
//! `benches/figures.rs` (full figure/table regeneration harness).

#![warn(missing_docs)]
