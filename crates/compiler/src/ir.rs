//! Three-address intermediate representation.
//!
//! The IR is deliberately phi-free: values that merge across control flow go
//! through stack slots (the lowerer materializes a slot for every `?:`,
//! `&&`/`||` and every local). That keeps the optimization passes and both
//! backends small, at the cost of some -O3 quality — an acceptable trade for
//! a decompilation-difficulty substrate.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Virtual register index.
pub type VReg = u32;
/// Basic block index into [`Module::blocks`].
pub type BlockId = u32;
/// Stack slot index into [`Module::slots`].
pub type SlotId = u32;

/// Machine-level value types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Ty {
    /// 8-bit integer (memory width only; arithmetic happens at I32/I64).
    I8,
    /// 16-bit integer (memory width only).
    I16,
    /// 32-bit integer.
    I32,
    /// 64-bit integer or pointer.
    I64,
    /// 32-bit float.
    F32,
    /// 64-bit float.
    F64,
    /// 128-bit vector of 4×i32 (x86 `-O3` auto-vectorization only).
    V4I32,
}

impl Ty {
    /// Size in bytes.
    pub fn size(self) -> usize {
        match self {
            Ty::I8 => 1,
            Ty::I16 => 2,
            Ty::I32 | Ty::F32 => 4,
            Ty::I64 | Ty::F64 => 8,
            Ty::V4I32 => 16,
        }
    }

    /// True for F32/F64.
    pub fn is_float(self) -> bool {
        matches!(self, Ty::F32 | Ty::F64)
    }

    /// True for any integer width.
    pub fn is_int(self) -> bool {
        matches!(self, Ty::I8 | Ty::I16 | Ty::I32 | Ty::I64)
    }
}

impl fmt::Display for Ty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Ty::I8 => "i8",
            Ty::I16 => "i16",
            Ty::I32 => "i32",
            Ty::I64 => "i64",
            Ty::F32 => "f32",
            Ty::F64 => "f64",
            Ty::V4I32 => "v4i32",
        };
        write!(f, "{s}")
    }
}

/// Binary operations. Integer ops operate at the instruction's `ty` width;
/// signedness is encoded in the opcode where it matters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IrBinOp {
    /// Wrapping add.
    Add,
    /// Wrapping subtract.
    Sub,
    /// Wrapping multiply.
    Mul,
    /// Signed divide.
    DivS,
    /// Unsigned divide.
    DivU,
    /// Signed remainder.
    RemS,
    /// Unsigned remainder.
    RemU,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Shift left.
    Shl,
    /// Arithmetic shift right.
    ShrS,
    /// Logical shift right.
    ShrU,
    /// Float add.
    FAdd,
    /// Float subtract.
    FSub,
    /// Float multiply.
    FMul,
    /// Float divide.
    FDiv,
}

/// Comparison predicates; result is an I32 0/1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Pred {
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// signed `<`
    LtS,
    /// signed `<=`
    LeS,
    /// signed `>`
    GtS,
    /// signed `>=`
    GeS,
    /// unsigned `<`
    LtU,
    /// unsigned `<=`
    LeU,
    /// unsigned `>`
    GtU,
    /// unsigned `>=`
    GeU,
    /// float `==`
    FEq,
    /// float `!=`
    FNe,
    /// float `<`
    FLt,
    /// float `<=`
    FLe,
    /// float `>`
    FGt,
    /// float `>=`
    FGe,
}

impl Pred {
    /// The predicate with operands swapped (`a < b` ⇔ `b > a`).
    pub fn swapped(self) -> Pred {
        match self {
            Pred::Eq => Pred::Eq,
            Pred::Ne => Pred::Ne,
            Pred::LtS => Pred::GtS,
            Pred::LeS => Pred::GeS,
            Pred::GtS => Pred::LtS,
            Pred::GeS => Pred::LeS,
            Pred::LtU => Pred::GtU,
            Pred::LeU => Pred::GeU,
            Pred::GtU => Pred::LtU,
            Pred::GeU => Pred::LeU,
            Pred::FEq => Pred::FEq,
            Pred::FNe => Pred::FNe,
            Pred::FLt => Pred::FGt,
            Pred::FLe => Pred::FGe,
            Pred::FGt => Pred::FLt,
            Pred::FGe => Pred::FLe,
        }
    }
}

/// Value-conversion kinds for [`Inst::Cast`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CastKind {
    /// Sign-extend I32 → I64.
    Sext32to64,
    /// Zero-extend I32 → I64.
    Zext32to64,
    /// Truncate I64 → I32.
    Trunc64to32,
    /// Re-wrap an I32 value to 8 bits, sign-extended back into I32.
    Wrap8Sext,
    /// Re-wrap an I32 value to 8 bits, zero-extended.
    Wrap8Zext,
    /// Re-wrap an I32 value to 16 bits, sign-extended.
    Wrap16Sext,
    /// Re-wrap an I32 value to 16 bits, zero-extended.
    Wrap16Zext,
    /// Signed I32 → F32.
    S32toF32,
    /// Signed I32 → F64.
    S32toF64,
    /// Signed I64 → F32.
    S64toF32,
    /// Signed I64 → F64.
    S64toF64,
    /// F32 → signed I32 (truncating).
    F32toS32,
    /// F64 → signed I32 (truncating).
    F64toS32,
    /// F32 → signed I64 (truncating).
    F32toS64,
    /// F64 → signed I64 (truncating).
    F64toS64,
    /// F32 → F64.
    F32toF64,
    /// F64 → F32.
    F64toF32,
}

/// One IR instruction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Inst {
    /// `dst = const` (integer/pointer).
    IConst {
        /// Destination vreg.
        dst: VReg,
        /// The constant.
        val: i64,
        /// Machine type.
        ty: Ty,
    },
    /// `dst = const` (floating).
    FConst {
        /// Destination vreg.
        dst: VReg,
        /// The constant.
        val: f64,
        /// Machine type.
        ty: Ty,
    },
    /// `dst = a op b`.
    Bin {
        /// The operation.
        op: IrBinOp,
        /// Destination vreg.
        dst: VReg,
        /// Left operand.
        a: VReg,
        /// Right operand.
        b: VReg,
        /// Machine type.
        ty: Ty,
    },
    /// `dst = (a pred b)` as 0/1 in I32.
    Cmp {
        /// Comparison predicate.
        pred: Pred,
        /// Destination vreg.
        dst: VReg,
        /// Left operand.
        a: VReg,
        /// Right operand.
        b: VReg,
        /// Machine type.
        ty: Ty,
    },
    /// `dst = *(ty*)addr`, integer widths extended per `sext`.
    Load {
        /// Destination vreg.
        dst: VReg,
        /// Address operand.
        addr: VReg,
        /// Machine type.
        ty: Ty,
        /// Sign-extend (vs zero-extend) narrow loads.
        sext: bool,
    },
    /// `*(ty*)addr = src` (narrow stores truncate).
    Store {
        /// Address operand.
        addr: VReg,
        /// Source vreg.
        src: VReg,
        /// Machine type.
        ty: Ty,
    },
    /// `dst = &slot`.
    SlotAddr {
        /// Destination vreg.
        dst: VReg,
        /// The stack slot.
        slot: SlotId,
    },
    /// `dst = &global`.
    GlobalAddr {
        /// Destination vreg.
        dst: VReg,
        /// Global symbol name.
        name: String,
    },
    /// Call; `dst` receives the return value when present.
    Call {
        /// Destination vreg.
        dst: Option<VReg>,
        /// Called function name.
        callee: String,
        /// Argument vregs.
        args: Vec<VReg>,
        /// Argument machine types (ABI).
        arg_tys: Vec<Ty>,
        /// Return machine type, `None` for void.
        ret_ty: Option<Ty>,
    },
    /// `dst = cast(src)`.
    Cast {
        /// Destination vreg.
        dst: VReg,
        /// Source vreg.
        src: VReg,
        /// The conversion.
        kind: CastKind,
    },
    /// Register copy.
    Copy {
        /// Destination vreg.
        dst: VReg,
        /// Source vreg.
        src: VReg,
        /// Machine type.
        ty: Ty,
    },
    /// Vector load of 4×i32 (possibly unaligned).
    VecLoad {
        /// Destination vreg.
        dst: VReg,
        /// Address operand.
        addr: VReg,
    },
    /// Broadcast an I32 into all four lanes.
    VecSplat {
        /// Destination vreg.
        dst: VReg,
        /// Source vreg.
        src: VReg,
    },
    /// Lane-wise binary op (Add/Sub/Mul only).
    VecBin {
        /// The operation.
        op: IrBinOp,
        /// Destination vreg.
        dst: VReg,
        /// Left operand.
        a: VReg,
        /// Right operand.
        b: VReg,
    },
    /// Vector store of 4×i32.
    VecStore {
        /// Address operand.
        addr: VReg,
        /// Source vreg.
        src: VReg,
    },
}

impl Inst {
    /// The destination register this instruction defines, if any.
    pub fn def(&self) -> Option<VReg> {
        match self {
            Inst::IConst { dst, .. }
            | Inst::FConst { dst, .. }
            | Inst::Bin { dst, .. }
            | Inst::Cmp { dst, .. }
            | Inst::Load { dst, .. }
            | Inst::SlotAddr { dst, .. }
            | Inst::GlobalAddr { dst, .. }
            | Inst::Cast { dst, .. }
            | Inst::Copy { dst, .. }
            | Inst::VecLoad { dst, .. }
            | Inst::VecSplat { dst, .. }
            | Inst::VecBin { dst, .. } => Some(*dst),
            Inst::Call { dst, .. } => *dst,
            Inst::Store { .. } | Inst::VecStore { .. } => None,
        }
    }

    /// Registers this instruction reads.
    pub fn uses(&self) -> Vec<VReg> {
        match self {
            Inst::IConst { .. }
            | Inst::FConst { .. }
            | Inst::SlotAddr { .. }
            | Inst::GlobalAddr { .. } => vec![],
            Inst::Bin { a, b, .. } | Inst::Cmp { a, b, .. } | Inst::VecBin { a, b, .. } => {
                vec![*a, *b]
            }
            Inst::Load { addr, .. } | Inst::VecLoad { addr, .. } => vec![*addr],
            Inst::Store { addr, src, .. } | Inst::VecStore { addr, src } => vec![*addr, *src],
            Inst::Call { args, .. } => args.clone(),
            Inst::Cast { src, .. } | Inst::Copy { src, .. } | Inst::VecSplat { src, .. } => {
                vec![*src]
            }
        }
    }

    /// True for instructions with side effects (never dead).
    pub fn has_side_effects(&self) -> bool {
        matches!(self, Inst::Store { .. } | Inst::Call { .. } | Inst::VecStore { .. })
    }
}

/// Block terminator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Term {
    /// Unconditional jump.
    Jmp(BlockId),
    /// Branch on `cond != 0`.
    Br {
        /// Branch condition vreg (non-zero = taken).
        cond: VReg,
        /// Target when the condition is non-zero.
        then_bb: BlockId,
        /// Target when the condition is zero.
        else_bb: BlockId,
    },
    /// Return, with optional value.
    Ret(Option<VReg>),
}

impl Term {
    /// Successor block ids.
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            Term::Jmp(b) => vec![*b],
            Term::Br { then_bb, else_bb, .. } => vec![*then_bb, *else_bb],
            Term::Ret(_) => vec![],
        }
    }
}

/// A basic block.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Block {
    /// Straight-line instructions.
    pub insts: Vec<Inst>,
    /// Terminator.
    pub term: Term,
}

/// A stack slot (from a local declaration or a lowering temp).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Slot {
    /// Size in bytes.
    pub size: usize,
    /// Alignment in bytes.
    pub align: usize,
    /// Debug name (source variable, or `$tmpN`).
    pub name: String,
}

/// A lowered function plus the module context it needs (string data,
/// referenced globals).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Module {
    /// Function name.
    pub name: String,
    /// Parameter vregs with their machine types, in ABI order.
    pub params: Vec<(VReg, Ty)>,
    /// Return type (`None` = void).
    pub ret_ty: Option<Ty>,
    /// Basic blocks; index 0 is the entry.
    pub blocks: Vec<Block>,
    /// Machine type of each vreg.
    pub vreg_tys: Vec<Ty>,
    /// Stack slots.
    pub slots: Vec<Slot>,
    /// Read-only string data: `(label, bytes-with-NUL)`.
    pub rodata: Vec<(String, Vec<u8>)>,
    /// Names of globals the function references (emitted as symbols).
    pub extern_globals: Vec<String>,
}

impl Module {
    /// Allocates a fresh vreg of type `ty`.
    pub fn new_vreg(&mut self, ty: Ty) -> VReg {
        self.vreg_tys.push(ty);
        (self.vreg_tys.len() - 1) as VReg
    }

    /// Number of vregs.
    pub fn vreg_count(&self) -> usize {
        self.vreg_tys.len()
    }

    /// Renders the IR as text (for tests and debugging).
    pub fn display(&self) -> String {
        let mut out = format!("func {}(", self.name);
        for (i, (r, t)) in self.params.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("v{r}:{t}"));
        }
        out.push_str(")\n");
        for (i, b) in self.blocks.iter().enumerate() {
            out.push_str(&format!("b{i}:\n"));
            for inst in &b.insts {
                out.push_str(&format!("  {inst:?}\n"));
            }
            out.push_str(&format!("  {:?}\n", b.term));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn def_use_accounting() {
        let i = Inst::Bin { op: IrBinOp::Add, dst: 2, a: 0, b: 1, ty: Ty::I32 };
        assert_eq!(i.def(), Some(2));
        assert_eq!(i.uses(), vec![0, 1]);
        let s = Inst::Store { addr: 3, src: 2, ty: Ty::I32 };
        assert_eq!(s.def(), None);
        assert!(s.has_side_effects());
    }

    #[test]
    fn pred_swapping_is_involutive() {
        for p in [
            Pred::Eq,
            Pred::Ne,
            Pred::LtS,
            Pred::LeS,
            Pred::GtS,
            Pred::GeS,
            Pred::LtU,
            Pred::LeU,
            Pred::GtU,
            Pred::GeU,
            Pred::FLt,
            Pred::FGe,
        ] {
            assert_eq!(p.swapped().swapped(), p);
        }
    }

    #[test]
    fn term_successors() {
        assert_eq!(Term::Jmp(3).successors(), vec![3]);
        assert_eq!(Term::Br { cond: 0, then_bb: 1, else_bb: 2 }.successors(), vec![1, 2]);
        assert!(Term::Ret(None).successors().is_empty());
    }

    #[test]
    fn ty_sizes() {
        assert_eq!(Ty::I8.size(), 1);
        assert_eq!(Ty::V4I32.size(), 16);
        assert!(Ty::F32.is_float());
        assert!(!Ty::V4I32.is_int());
    }
}
