//! Linear-scan register allocation for the `-O3` backends.
//!
//! The IR's single-definition property plus the lowerer's block-creation
//! order guarantee that every use appears at a linear position at or after
//! its definition (cross-iteration values travel through stack slots), so a
//! single forward scan suffices. Integer vregs compete for a pool of
//! callee-saved registers (the backends save/restore the used ones);
//! floating and vector vregs always stay in stack slots / fixed scratch
//! registers, which keeps both backends simple.

use crate::ir::*;
use std::collections::HashMap;

/// The result of allocation: a physical register index per vreg, or `None`
/// for spilled (stack-resident) values.
#[derive(Debug, Clone)]
pub struct Allocation {
    /// `assignment[vreg]` = pool index or `None` (spill).
    pub assignment: Vec<Option<u8>>,
    /// Pool indices actually used (for prologue save/restore).
    pub used: Vec<u8>,
}

impl Allocation {
    /// An allocation that spills everything (used at `-O0`).
    pub fn all_spilled(vregs: usize) -> Self {
        Allocation { assignment: vec![None; vregs], used: Vec::new() }
    }
}

/// Live interval over linearized instruction indices.
#[derive(Debug, Clone, Copy)]
struct Interval {
    vreg: VReg,
    start: usize,
    end: usize,
}

/// Allocates integer vregs to a pool of `pool_size` registers.
///
/// Returns [`Allocation::all_spilled`] when the module violates the
/// forward-order assumption (defensive; should not happen for IR produced
/// by this crate's lowerer).
pub fn allocate(m: &Module, pool_size: usize) -> Allocation {
    // Linearize: number every instruction and terminator.
    let mut def: HashMap<VReg, usize> = HashMap::new();
    let mut last_use: HashMap<VReg, usize> = HashMap::new();
    let mut crosses_call: HashMap<VReg, bool> = HashMap::new();
    let mut idx = 0usize;
    let mut call_positions = Vec::new();
    for (r, _) in &m.params {
        def.insert(*r, 0);
    }
    for b in &m.blocks {
        for inst in &b.insts {
            idx += 1;
            if matches!(inst, Inst::Call { .. }) {
                call_positions.push(idx);
            }
            for u in inst.uses() {
                let Some(&d) = def.get(&u) else {
                    return Allocation::all_spilled(m.vreg_count());
                };
                if idx < d {
                    return Allocation::all_spilled(m.vreg_count());
                }
                last_use.insert(u, idx);
            }
            if let Some(d) = inst.def() {
                def.insert(d, idx);
            }
        }
        idx += 1;
        match &b.term {
            Term::Br { cond, .. } => {
                if !def.contains_key(cond) {
                    return Allocation::all_spilled(m.vreg_count());
                }
                last_use.insert(*cond, idx);
            }
            Term::Ret(Some(v)) => {
                if !def.contains_key(v) {
                    return Allocation::all_spilled(m.vreg_count());
                }
                last_use.insert(*v, idx);
            }
            _ => {}
        }
    }
    // Build intervals for integer vregs only.
    let mut intervals: Vec<Interval> = Vec::new();
    for (vreg, &start) in &def {
        let ty = m.vreg_tys[*vreg as usize];
        if !ty.is_int() {
            continue;
        }
        let end = last_use.get(vreg).copied().unwrap_or(start);
        crosses_call.insert(*vreg, call_positions.iter().any(|&c| start < c && c <= end));
        intervals.push(Interval { vreg: *vreg, start, end });
    }
    intervals.sort_by_key(|iv| (iv.start, iv.end));
    // Classic linear scan.
    let mut assignment = vec![None; m.vreg_count()];
    let mut active: Vec<(usize, u8)> = Vec::new(); // (end, reg)
    let mut free: Vec<u8> = (0..pool_size as u8).rev().collect();
    let mut used = Vec::new();
    for iv in &intervals {
        active.retain(|(end, reg)| {
            if *end < iv.start {
                free.push(*reg);
                false
            } else {
                true
            }
        });
        if iv.end == iv.start {
            continue; // dead or single-point values stay spilled
        }
        if let Some(reg) = free.pop() {
            assignment[iv.vreg as usize] = Some(reg);
            if !used.contains(&reg) {
                used.push(reg);
            }
            active.push((iv.end, reg));
        }
        // No free register: value stays spilled (backend handles it).
    }
    used.sort_unstable();
    Allocation { assignment, used }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower_function;
    use crate::{CompileOpts, Isa, OptLevel};
    use slade_minic::{parse_program, Sema};

    fn lowered(src: &str, name: &str) -> Module {
        let p = parse_program(src).unwrap();
        let tm = Sema::check(&p).unwrap();
        let mut m =
            lower_function(&p, &tm, name, CompileOpts::new(Isa::X86_64, OptLevel::O0)).unwrap();
        crate::passes::run_o3_pipeline(&mut m);
        m
    }

    #[test]
    fn allocates_disjoint_intervals_to_few_registers() {
        let m = lowered("int f(int a, int b, int c) { return a + b + c; }", "f");
        let alloc = allocate(&m, 5);
        assert!(alloc.used.len() <= 5);
        // At least something should land in a register.
        assert!(alloc.assignment.iter().any(|a| a.is_some()));
    }

    #[test]
    fn never_assigns_more_than_pool() {
        let src = "int f(int a) { int b = a+1; int c = b+2; int d = c+3; int e = d+4; int g = e+5; int h = g+6; int i = h+7; return a+b+c+d+e+g+h+i; }";
        let m = lowered(src, "f");
        let alloc = allocate(&m, 3);
        let mut seen = std::collections::HashSet::new();
        for a in alloc.assignment.iter().flatten() {
            seen.insert(*a);
        }
        assert!(seen.len() <= 3, "used {seen:?}");
    }

    #[test]
    fn float_vregs_stay_spilled() {
        let m = lowered("double f(double a, double b) { return a * b; }", "f");
        let alloc = allocate(&m, 5);
        for (i, ty) in m.vreg_tys.iter().enumerate() {
            if ty.is_float() {
                assert!(alloc.assignment[i].is_none(), "float vreg {i} got a register");
            }
        }
    }

    #[test]
    fn all_spilled_fallback_shape() {
        let a = Allocation::all_spilled(7);
        assert_eq!(a.assignment.len(), 7);
        assert!(a.used.is_empty());
    }
}
