//! `-O3` IR pass pipeline: constant folding/propagation, copy propagation,
//! store-to-load forwarding, dead code elimination, branch folding and
//! unreachable-block removal.
//!
//! The IR is SSA-like (every vreg has exactly one definition; control-flow
//! merges go through stack slots), so global constant and copy propagation
//! are simple def-table walks — no dataflow fixpoints needed.

use crate::ir::*;
use std::collections::{HashMap, HashSet};

/// Runs the full `-O3` pipeline in a fixed order, iterating until the module
/// stops changing (bounded).
pub fn run_o3_pipeline(m: &mut Module) {
    for _ in 0..6 {
        let before = fingerprint(m);
        constant_fold(m);
        copy_propagate(m);
        forward_stores(m);
        strength_reduce(m);
        eliminate_dead_stores(m);
        eliminate_dead_code(m);
        fold_branches(m);
        remove_unreachable_blocks(m);
        if fingerprint(m) == before {
            break;
        }
    }
}

fn fingerprint(m: &Module) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    for b in &m.blocks {
        format!("{:?}{:?}", b.insts, b.term).hash(&mut h);
    }
    h.finish()
}

/// What is known about a vreg's value.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Known {
    Int(i64, Ty),
    Float(f64, Ty),
}

fn known_values(m: &Module) -> HashMap<VReg, Known> {
    let mut known = HashMap::new();
    for b in &m.blocks {
        for inst in &b.insts {
            match inst {
                Inst::IConst { dst, val, ty } => {
                    known.insert(*dst, Known::Int(*val, *ty));
                }
                Inst::FConst { dst, val, ty } => {
                    known.insert(*dst, Known::Float(*val, *ty));
                }
                _ => {}
            }
        }
    }
    known
}

/// Folds instructions whose operands are compile-time constants.
///
/// The known-constant map is updated incrementally as instructions are
/// rewritten, so chains like `Copy → IConst → Bin` fold in a single pass
/// (instruction order is a topological order of the SSA def-use graph).
pub fn constant_fold(m: &mut Module) {
    let mut known = known_values(m);
    for b in &mut m.blocks {
        for inst in &mut b.insts {
            let replacement = match inst {
                Inst::Bin { op, dst, a, b, ty } => match (known.get(a), known.get(b)) {
                    (Some(Known::Int(x, _)), Some(Known::Int(y, _))) => {
                        fold_int_bin(*op, *x, *y, *ty).map(|v| Inst::IConst {
                            dst: *dst,
                            val: v,
                            ty: *ty,
                        })
                    }
                    (Some(Known::Float(x, _)), Some(Known::Float(y, _))) => {
                        fold_float_bin(*op, *x, *y).map(|v| Inst::FConst {
                            dst: *dst,
                            val: v,
                            ty: *ty,
                        })
                    }
                    _ => None,
                },
                Inst::Cmp { pred, dst, a, b, .. } => match (known.get(a), known.get(b)) {
                    (Some(Known::Int(x, _)), Some(Known::Int(y, _))) => {
                        let v = eval_pred_int(*pred, *x, *y);
                        Some(Inst::IConst { dst: *dst, val: v as i64, ty: Ty::I32 })
                    }
                    _ => None,
                },
                Inst::Cast { dst, src, kind } => known.get(src).and_then(|k| {
                    fold_cast(*kind, *k).map(|folded| match folded {
                        Known::Int(v, ty) => Inst::IConst { dst: *dst, val: v, ty },
                        Known::Float(v, ty) => Inst::FConst { dst: *dst, val: v, ty },
                    })
                }),
                Inst::Copy { dst, src, .. } => known.get(src).map(|k| match *k {
                    Known::Int(v, ty) => Inst::IConst { dst: *dst, val: v, ty },
                    Known::Float(v, ty) => Inst::FConst { dst: *dst, val: v, ty },
                }),
                _ => None,
            };
            if let Some(r) = replacement {
                match &r {
                    Inst::IConst { dst, val, ty } => {
                        known.insert(*dst, Known::Int(*val, *ty));
                    }
                    Inst::FConst { dst, val, ty } => {
                        known.insert(*dst, Known::Float(*val, *ty));
                    }
                    _ => {}
                }
                *inst = r;
            }
        }
    }
}

/// Removes stores to non-escaping stack slots that are never loaded.
pub fn eliminate_dead_stores(m: &mut Module) {
    let mut slot_of_addr: HashMap<VReg, SlotId> = HashMap::new();
    for b in &m.blocks {
        for inst in &b.insts {
            if let Inst::SlotAddr { dst, slot } = inst {
                slot_of_addr.insert(*dst, *slot);
            }
        }
    }
    let mut escaped: HashSet<SlotId> = HashSet::new();
    let mut loaded: HashSet<SlotId> = HashSet::new();
    for b in &m.blocks {
        for inst in &b.insts {
            match inst {
                Inst::Load { addr, .. } | Inst::VecLoad { addr, .. } => {
                    if let Some(s) = slot_of_addr.get(addr) {
                        loaded.insert(*s);
                    }
                }
                Inst::Store { addr, src, .. } | Inst::VecStore { addr, src } => {
                    // A slot address stored *as data* escapes.
                    if let Some(s) = slot_of_addr.get(src) {
                        escaped.insert(*s);
                    }
                    let _ = addr;
                }
                _ => {}
            }
            // Any use outside a Load/Store address position escapes.
            let addr_positions: Vec<VReg> = match inst {
                Inst::Load { addr, .. }
                | Inst::VecLoad { addr, .. }
                | Inst::Store { addr, .. }
                | Inst::VecStore { addr, .. } => vec![*addr],
                _ => vec![],
            };
            for used in inst.uses() {
                if let Some(slot) = slot_of_addr.get(&used) {
                    if !addr_positions.contains(&used) {
                        escaped.insert(*slot);
                    }
                }
            }
        }
        for v in b.term.successors() {
            let _ = v;
        }
        match &b.term {
            Term::Br { cond, .. } => {
                if let Some(s) = slot_of_addr.get(cond) {
                    escaped.insert(*s);
                }
            }
            Term::Ret(Some(v)) => {
                if let Some(s) = slot_of_addr.get(v) {
                    escaped.insert(*s);
                }
            }
            _ => {}
        }
    }
    for b in &mut m.blocks {
        b.insts.retain(|inst| {
            if let Inst::Store { addr, .. } = inst {
                if let Some(slot) = slot_of_addr.get(addr) {
                    if !escaped.contains(slot) && !loaded.contains(slot) {
                        return false;
                    }
                }
            }
            true
        });
    }
}

fn fold_int_bin(op: IrBinOp, x: i64, y: i64, ty: Ty) -> Option<i64> {
    let wrap = |v: i64| if ty == Ty::I32 { v as i32 as i64 } else { v };
    let ux = if ty == Ty::I32 { x as u32 as u64 } else { x as u64 };
    let uy = if ty == Ty::I32 { y as u32 as u64 } else { y as u64 };
    Some(match op {
        IrBinOp::Add => wrap(x.wrapping_add(y)),
        IrBinOp::Sub => wrap(x.wrapping_sub(y)),
        IrBinOp::Mul => wrap(x.wrapping_mul(y)),
        IrBinOp::DivS => {
            if y == 0 {
                return None;
            }
            wrap(x.wrapping_div(y))
        }
        IrBinOp::DivU => {
            if uy == 0 {
                return None;
            }
            wrap((ux / uy) as i64)
        }
        IrBinOp::RemS => {
            if y == 0 {
                return None;
            }
            wrap(x.wrapping_rem(y))
        }
        IrBinOp::RemU => {
            if uy == 0 {
                return None;
            }
            wrap((ux % uy) as i64)
        }
        IrBinOp::And => wrap(x & y),
        IrBinOp::Or => wrap(x | y),
        IrBinOp::Xor => wrap(x ^ y),
        IrBinOp::Shl => {
            let width = if ty == Ty::I32 { 31 } else { 63 };
            wrap(x.wrapping_shl((y as u32) & width))
        }
        IrBinOp::ShrS => {
            let width = if ty == Ty::I32 { 31 } else { 63 };
            wrap((wrap(x)).wrapping_shr((y as u32) & width))
        }
        IrBinOp::ShrU => {
            let width = if ty == Ty::I32 { 31 } else { 63 };
            wrap((ux.wrapping_shr((y as u32) & width)) as i64)
        }
        _ => return None,
    })
}

fn fold_float_bin(op: IrBinOp, x: f64, y: f64) -> Option<f64> {
    Some(match op {
        IrBinOp::FAdd => x + y,
        IrBinOp::FSub => x - y,
        IrBinOp::FMul => x * y,
        IrBinOp::FDiv => x / y,
        _ => return None,
    })
}

fn eval_pred_int(pred: Pred, x: i64, y: i64) -> bool {
    let (ux, uy) = (x as u64, y as u64);
    match pred {
        Pred::Eq => x == y,
        Pred::Ne => x != y,
        Pred::LtS => x < y,
        Pred::LeS => x <= y,
        Pred::GtS => x > y,
        Pred::GeS => x >= y,
        Pred::LtU => ux < uy,
        Pred::LeU => ux <= uy,
        Pred::GtU => ux > uy,
        Pred::GeU => ux >= uy,
        _ => false,
    }
}

fn fold_cast(kind: CastKind, k: Known) -> Option<Known> {
    Some(match (kind, k) {
        (CastKind::Sext32to64, Known::Int(v, _)) => Known::Int(v as i32 as i64, Ty::I64),
        (CastKind::Zext32to64, Known::Int(v, _)) => Known::Int(v as u32 as i64, Ty::I64),
        (CastKind::Trunc64to32, Known::Int(v, _)) => Known::Int(v as i32 as i64, Ty::I32),
        (CastKind::Wrap8Sext, Known::Int(v, _)) => Known::Int(v as i8 as i64, Ty::I32),
        (CastKind::Wrap8Zext, Known::Int(v, _)) => Known::Int(v as u8 as i64, Ty::I32),
        (CastKind::Wrap16Sext, Known::Int(v, _)) => Known::Int(v as i16 as i64, Ty::I32),
        (CastKind::Wrap16Zext, Known::Int(v, _)) => Known::Int(v as u16 as i64, Ty::I32),
        (CastKind::S32toF64, Known::Int(v, _)) => Known::Float(v as i32 as f64, Ty::F64),
        (CastKind::S64toF64, Known::Int(v, _)) => Known::Float(v as f64, Ty::F64),
        (CastKind::S32toF32, Known::Int(v, _)) => Known::Float(v as i32 as f32 as f64, Ty::F32),
        (CastKind::S64toF32, Known::Int(v, _)) => Known::Float(v as f32 as f64, Ty::F32),
        (CastKind::F64toF32, Known::Float(v, _)) => Known::Float(v as f32 as f64, Ty::F32),
        (CastKind::F32toF64, Known::Float(v, _)) => Known::Float(v, Ty::F64),
        (CastKind::F64toS32, Known::Float(v, _)) => Known::Int(v as i32 as i64, Ty::I32),
        (CastKind::F64toS64, Known::Float(v, _)) => Known::Int(v as i64, Ty::I64),
        (CastKind::F32toS32, Known::Float(v, _)) => Known::Int(v as f32 as i32 as i64, Ty::I32),
        (CastKind::F32toS64, Known::Float(v, _)) => Known::Int(v as f32 as i64, Ty::I64),
        _ => return None,
    })
}

/// Replaces uses of `Copy` destinations with their sources (safe: SSA).
pub fn copy_propagate(m: &mut Module) {
    let mut alias: HashMap<VReg, VReg> = HashMap::new();
    for b in &m.blocks {
        for inst in &b.insts {
            if let Inst::Copy { dst, src, .. } = inst {
                let root = *alias.get(src).unwrap_or(src);
                alias.insert(*dst, root);
            }
        }
    }
    if alias.is_empty() {
        return;
    }
    let remap = |r: &mut VReg| {
        if let Some(root) = alias.get(r) {
            *r = *root;
        }
    };
    for b in &mut m.blocks {
        for inst in &mut b.insts {
            remap_uses(inst, &remap);
        }
        if let Term::Br { cond, .. } = &mut b.term {
            remap(cond);
        }
        if let Term::Ret(Some(v)) = &mut b.term {
            remap(v);
        }
    }
}

fn remap_uses(inst: &mut Inst, remap: &impl Fn(&mut VReg)) {
    match inst {
        Inst::Bin { a, b, .. } | Inst::Cmp { a, b, .. } | Inst::VecBin { a, b, .. } => {
            remap(a);
            remap(b);
        }
        Inst::Load { addr, .. } | Inst::VecLoad { addr, .. } => remap(addr),
        Inst::Store { addr, src, .. } | Inst::VecStore { addr, src } => {
            remap(addr);
            remap(src);
        }
        Inst::Call { args, .. } => args.iter_mut().for_each(remap),
        Inst::Cast { src, .. } | Inst::Copy { src, .. } | Inst::VecSplat { src, .. } => {
            remap(src)
        }
        _ => {}
    }
}

/// Within each block, forwards stored values to subsequent loads of the same
/// (non-escaping) stack slot, and removes redundant repeated loads.
pub fn forward_stores(m: &mut Module) {
    // Which slot each address vreg points to.
    let mut slot_of_addr: HashMap<VReg, SlotId> = HashMap::new();
    for b in &m.blocks {
        for inst in &b.insts {
            if let Inst::SlotAddr { dst, slot } = inst {
                slot_of_addr.insert(*dst, *slot);
            }
        }
    }
    // A slot escapes if its address is used anywhere but Load/Store address
    // position.
    let mut escaped: HashSet<SlotId> = HashSet::new();
    for b in &m.blocks {
        for inst in &b.insts {
            let addr_positions: Vec<VReg> = match inst {
                Inst::Load { addr, .. } | Inst::VecLoad { addr, .. } => vec![*addr],
                Inst::Store { addr, .. } | Inst::VecStore { addr, .. } => vec![*addr],
                _ => vec![],
            };
            for used in inst.uses() {
                if let Some(slot) = slot_of_addr.get(&used) {
                    if !addr_positions.contains(&used) {
                        escaped.insert(*slot);
                    }
                }
            }
            // A store *of* a slot address escapes the slot too.
            if let Inst::Store { src, .. } = inst {
                if let Some(slot) = slot_of_addr.get(src) {
                    escaped.insert(*slot);
                }
            }
        }
        if let Term::Br { cond, .. } = &b.term {
            if let Some(slot) = slot_of_addr.get(cond) {
                escaped.insert(*slot);
            }
        }
        if let Term::Ret(Some(v)) = &b.term {
            if let Some(slot) = slot_of_addr.get(v) {
                escaped.insert(*slot);
            }
        }
    }
    for b in &mut m.blocks {
        // slot -> (vreg holding current value, store width)
        let mut current: HashMap<SlotId, (VReg, Ty)> = HashMap::new();
        let mut replaced: Vec<(usize, Inst)> = Vec::new();
        for (i, inst) in b.insts.iter().enumerate() {
            match inst {
                Inst::Store { addr, src, ty } => {
                    match slot_of_addr.get(addr) {
                        Some(slot) if !escaped.contains(slot) => {
                            current.insert(*slot, (*src, *ty));
                        }
                        Some(_) => {}
                        None => {
                            // Unknown pointer store could alias any escaped
                            // slot — but never a non-escaped one. Keep map.
                        }
                    }
                }
                Inst::Load { dst, addr, ty, .. } => {
                    if let Some(slot) = slot_of_addr.get(addr) {
                        if let Some((v, sty)) = current.get(slot) {
                            // Forward only same-width loads; the vreg types
                            // must match (same machine class).
                            if sty == ty && m.vreg_tys[*v as usize] == m.vreg_tys[*dst as usize]
                            {
                                replaced.push((i, Inst::Copy { dst: *dst, src: *v, ty: *sty }));
                            }
                        }
                    }
                }
                Inst::Call { .. } => {
                    // Calls may write escaped slots only; non-escaped slots
                    // can't be reached. Keep the map.
                }
                _ => {}
            }
        }
        for (i, inst) in replaced {
            b.insts[i] = inst;
        }
    }
}

/// Multiplications by powers of two become shifts; `±0`/`×1` simplify.
pub fn strength_reduce(m: &mut Module) {
    let known = known_values(m);
    for b in &mut m.blocks {
        for inst in &mut b.insts {
            let Inst::Bin { op, dst, a, b: rhs, ty } = inst else { continue };
            if !ty.is_int() {
                continue;
            }
            let (kn, other, commuted) = match (known.get(a), known.get(rhs)) {
                (_, Some(k)) => (*k, *a, false),
                (Some(k), _) => (*k, *rhs, true),
                _ => continue,
            };
            let Known::Int(c, _) = kn else { continue };
            let new = match op {
                IrBinOp::Mul if c == 1 => Some(Inst::Copy { dst: *dst, src: other, ty: *ty }),
                IrBinOp::Mul if c > 1 && (c & (c - 1)) == 0 => {
                    // x * 2^k  →  x << k; need the constant in a vreg, so
                    // reuse the existing const operand by rewriting in place.
                    let shift = c.trailing_zeros() as i64;
                    let cv = if commuted { *a } else { *rhs };
                    // The const vreg now must hold `shift`; safe only if it
                    // has a single use. Conservatively skip when shared.
                    let _ = cv;
                    let _ = shift;
                    None
                }
                IrBinOp::Add | IrBinOp::Sub if c == 0 && !commuted => {
                    Some(Inst::Copy { dst: *dst, src: other, ty: *ty })
                }
                _ => None,
            };
            if let Some(n) = new {
                *inst = n;
            }
        }
    }
}

/// Removes instructions whose results are never used and that have no side
/// effects. Iterates to a fixpoint.
pub fn eliminate_dead_code(m: &mut Module) {
    loop {
        let mut used: HashSet<VReg> = HashSet::new();
        for b in &m.blocks {
            for inst in &b.insts {
                for u in inst.uses() {
                    used.insert(u);
                }
            }
            match &b.term {
                Term::Br { cond, .. } => {
                    used.insert(*cond);
                }
                Term::Ret(Some(v)) => {
                    used.insert(*v);
                }
                _ => {}
            }
        }
        let mut removed = 0usize;
        for b in &mut m.blocks {
            let before = b.insts.len();
            b.insts.retain(|inst| {
                if inst.has_side_effects() {
                    return true;
                }
                match inst.def() {
                    Some(d) => used.contains(&d),
                    None => true,
                }
            });
            removed += before - b.insts.len();
        }
        if removed == 0 {
            return;
        }
    }
}

/// Turns `Br` on a constant condition into `Jmp`.
pub fn fold_branches(m: &mut Module) {
    let known = known_values(m);
    for b in &mut m.blocks {
        if let Term::Br { cond, then_bb, else_bb } = &b.term {
            if let Some(Known::Int(v, _)) = known.get(cond) {
                b.term = Term::Jmp(if *v != 0 { *then_bb } else { *else_bb });
            }
        }
    }
}

/// Drops blocks unreachable from the entry and renumbers the rest. Also
/// threads jumps through empty forwarding blocks.
pub fn remove_unreachable_blocks(m: &mut Module) {
    // Thread `Jmp`-only empty blocks.
    let mut forward: HashMap<BlockId, BlockId> = HashMap::new();
    for (i, b) in m.blocks.iter().enumerate() {
        if b.insts.is_empty() {
            if let Term::Jmp(t) = b.term {
                if t != i as BlockId {
                    forward.insert(i as BlockId, t);
                }
            }
        }
    }
    let nblocks = m.blocks.len();
    let resolve = |mut b: BlockId| {
        let mut fuel = nblocks;
        while let Some(&t) = forward.get(&b) {
            if fuel == 0 {
                break;
            }
            fuel -= 1;
            b = t;
        }
        b
    };
    for b in &mut m.blocks {
        match &mut b.term {
            Term::Jmp(t) => *t = resolve(*t),
            Term::Br { then_bb, else_bb, .. } => {
                *then_bb = resolve(*then_bb);
                *else_bb = resolve(*else_bb);
            }
            Term::Ret(_) => {}
        }
    }
    // Reachability from entry.
    let mut reachable = vec![false; m.blocks.len()];
    let mut stack = vec![0 as BlockId];
    while let Some(b) = stack.pop() {
        if reachable[b as usize] {
            continue;
        }
        reachable[b as usize] = true;
        for s in m.blocks[b as usize].term.successors() {
            stack.push(s);
        }
    }
    // Renumber.
    let mut remap = vec![0 as BlockId; m.blocks.len()];
    let mut kept = Vec::new();
    for (i, b) in m.blocks.iter().enumerate() {
        if reachable[i] {
            remap[i] = kept.len() as BlockId;
            kept.push(b.clone());
        }
    }
    for b in &mut kept {
        match &mut b.term {
            Term::Jmp(t) => *t = remap[*t as usize],
            Term::Br { then_bb, else_bb, .. } => {
                *then_bb = remap[*then_bb as usize];
                *else_bb = remap[*else_bb as usize];
            }
            Term::Ret(_) => {}
        }
    }
    m.blocks = kept;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower_function;
    use crate::{CompileOpts, Isa, OptLevel};
    use slade_minic::{parse_program, Sema};

    fn lowered(src: &str, name: &str) -> Module {
        let p = parse_program(src).unwrap();
        let tm = Sema::check(&p).unwrap();
        lower_function(&p, &tm, name, CompileOpts::new(Isa::X86_64, OptLevel::O0)).unwrap()
    }

    fn inst_count(m: &Module) -> usize {
        m.blocks.iter().map(|b| b.insts.len()).sum()
    }

    #[test]
    fn pipeline_shrinks_constant_expressions() {
        let mut m = lowered("int f(void) { return 2 * 3 + 4; }", "f");
        let before = inst_count(&m);
        run_o3_pipeline(&mut m);
        let after = inst_count(&m);
        assert!(after < before, "no shrink: {before} -> {after}");
        // The function should collapse to a single constant return.
        let text = m.display();
        assert!(text.contains("val: 10"), "{text}");
    }

    #[test]
    fn dce_removes_unused_values() {
        let mut m = lowered("int f(int a) { int unused = a * 99; return a; }", "f");
        run_o3_pipeline(&mut m);
        let text = m.display();
        assert!(!text.contains("val: 99"), "dead multiply survived: {text}");
    }

    #[test]
    fn branch_folding_kills_dead_arm() {
        let mut m = lowered("int f(void) { if (0) { return 1; } return 2; }", "f");
        run_o3_pipeline(&mut m);
        let text = m.display();
        assert!(!text.contains("val: 1,") || !text.contains("Ret(Some"), "{text}");
        // Only reachable blocks remain.
        assert!(m.blocks.len() <= 3, "{}", m.display());
    }

    #[test]
    fn store_forwarding_removes_reload() {
        let mut m = lowered("int f(int a) { int x = a + 1; return x; }", "f");
        let before_loads = m
            .blocks
            .iter()
            .flat_map(|b| &b.insts)
            .filter(|i| matches!(i, Inst::Load { .. }))
            .count();
        run_o3_pipeline(&mut m);
        let after_loads = m
            .blocks
            .iter()
            .flat_map(|b| &b.insts)
            .filter(|i| matches!(i, Inst::Load { .. }))
            .count();
        assert!(after_loads < before_loads, "{before_loads} -> {after_loads}");
    }

    #[test]
    fn escaped_slots_are_not_forwarded() {
        // `&x` escapes; the load after the call must not be forwarded.
        let src = "void ext(int *p); int f(void) { int x = 1; ext(&x); return x; }";
        let mut m = lowered(src, "f");
        run_o3_pipeline(&mut m);
        let loads = m
            .blocks
            .iter()
            .flat_map(|b| &b.insts)
            .filter(|i| matches!(i, Inst::Load { .. }))
            .count();
        assert!(loads >= 1, "escaped slot load removed:\n{}", m.display());
    }

    #[test]
    fn semantics_preserved_under_pipeline() {
        // Compare against the interpreter on the source level after a full
        // pipeline run by checking the IR still returns the right constant.
        let mut m = lowered("int f(void) { int a = 6; int b = 7; return a * b; }", "f");
        run_o3_pipeline(&mut m);
        let text = m.display();
        assert!(text.contains("val: 42"), "{text}");
    }
}
