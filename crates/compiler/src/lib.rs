//! MiniC optimizing compiler: the GCC stand-in for the SLaDe reproduction.
//!
//! The paper trains and evaluates on GCC-produced assembly for x86-64 and
//! ARM (AArch64) at `-O0` and `-O3`. This crate reproduces that substrate:
//! it lowers type-checked MiniC to a small three-address IR, optionally runs
//! the `-O3` pipeline (constant folding/propagation, copy propagation, dead
//! code elimination, strength reduction, loop unrolling and x86
//! auto-vectorization), and emits GCC-flavoured textual assembly for both
//! ISAs.
//!
//! The *shape* of the output matters more than cycle counts: `-O0` code is
//! stack-slot verbose (as GCC's is), `-O3` code is register-allocated,
//! unrolled and (on x86) vectorized — which is precisely what makes it hard
//! for decompilers, per the paper's Figure 1.
//!
//! # Example
//!
//! ```
//! use slade_compiler::{compile_function, CompileOpts, Isa, OptLevel};
//! use slade_minic::parse_program;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = parse_program("int add(int a, int b) { return a + b; }")?;
//! let asm = compile_function(&program, "add", CompileOpts::new(Isa::X86_64, OptLevel::O0))?;
//! assert!(asm.contains("add:"));
//! assert!(asm.contains("ret"));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod arm;
pub mod ir;
pub mod looptrans;
pub mod lower;
pub mod passes;
pub mod regalloc;
pub mod x86;

use serde::{Deserialize, Serialize};
use slade_minic::{MiniCError, Program, Sema};
use std::fmt;

/// Target instruction-set architecture.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Isa {
    /// x86-64, AT&T syntax (GCC default).
    X86_64,
    /// AArch64.
    Arm64,
}

impl fmt::Display for Isa {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Isa::X86_64 => write!(f, "x86"),
            Isa::Arm64 => write!(f, "arm"),
        }
    }
}

/// `X86_64` — the paper's primary target, and the configuration assumed
/// for artifacts serialized before the target was recorded on them.
impl Default for Isa {
    fn default() -> Self {
        Isa::X86_64
    }
}

/// Optimization level (the paper evaluates the two extremes GCC users ship).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OptLevel {
    /// No optimization: every value lives on the stack.
    O0,
    /// Full pipeline: folding, propagation, DCE, unrolling, vectorization
    /// (x86), register allocation.
    O3,
}

impl fmt::Display for OptLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OptLevel::O0 => write!(f, "O0"),
            OptLevel::O3 => write!(f, "O3"),
        }
    }
}

/// `O0` — the unoptimized baseline, and the configuration assumed for
/// artifacts serialized before the target was recorded on them.
impl Default for OptLevel {
    fn default() -> Self {
        OptLevel::O0
    }
}

/// Compilation options.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CompileOpts {
    /// Target ISA.
    pub isa: Isa,
    /// Optimization level.
    pub opt: OptLevel,
}

impl CompileOpts {
    /// Creates options for the given target and level.
    pub fn new(isa: Isa, opt: OptLevel) -> Self {
        CompileOpts { isa, opt }
    }
}

/// Errors produced by compilation.
///
/// Wraps MiniC front-end errors and adds codegen-specific failures
/// (unsupported constructs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// Front-end (parse/type) error.
    Frontend(MiniCError),
    /// The requested function does not exist in the program.
    NoSuchFunction(String),
    /// A construct this backend does not support.
    Unsupported(String),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Frontend(e) => write!(f, "{e}"),
            CompileError::NoSuchFunction(name) => write!(f, "no function named `{name}`"),
            CompileError::Unsupported(what) => write!(f, "unsupported construct: {what}"),
        }
    }
}

impl std::error::Error for CompileError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CompileError::Frontend(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MiniCError> for CompileError {
    fn from(e: MiniCError) -> Self {
        CompileError::Frontend(e)
    }
}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, CompileError>;

/// Compiles one function of `program` to assembly text, exactly the way the
/// paper's pipeline feeds single functions (not whole programs) to the model.
///
/// The emitted text contains the function label, GCC-style local labels
/// (`.L2`, …) and directives, plus `.section .rodata` entries for any string
/// literals the function references.
///
/// # Errors
///
/// Fails on front-end errors, a missing function, or constructs the chosen
/// backend cannot express (e.g. struct-by-value parameters).
pub fn compile_function(program: &Program, name: &str, opts: CompileOpts) -> Result<String> {
    let tm = Sema::check(program)?;
    if program.function(name).and_then(|f| f.body.as_ref()).is_none() {
        return Err(CompileError::NoSuchFunction(name.to_string()));
    }
    let mut module = lower::lower_function(program, &tm, name, opts)?;
    if opts.opt == OptLevel::O3 {
        passes::run_o3_pipeline(&mut module);
    }
    match opts.isa {
        Isa::X86_64 => x86::emit(&module, opts),
        Isa::Arm64 => arm::emit(&module, opts),
    }
}

/// Compiles every function defined in `program`, returning `(name, asm)`
/// pairs in source order. Convenience for the dataset generator.
///
/// # Errors
///
/// Fails on the first function that does not compile.
pub fn compile_all(program: &Program, opts: CompileOpts) -> Result<Vec<(String, String)>> {
    let mut out = Vec::new();
    for f in program.functions() {
        out.push((f.name.clone(), compile_function(program, &f.name, opts)?));
    }
    Ok(out)
}
