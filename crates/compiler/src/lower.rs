//! Lowering from type-checked MiniC to the three-address IR.
//!
//! Every local variable (and every value that merges across control flow —
//! ternaries, `&&`/`||`) is given a stack slot, which keeps the IR phi-free.
//! At `-O0` this is exactly the code GCC emits; at `-O3` the pass pipeline
//! plus register allocation recovers register-resident values.

use crate::ir::*;
use crate::{CompileError, CompileOpts, OptLevel, Result};
use slade_minic::ast::{BinOp, Expr, ExprKind, Function, IncDec, Stmt, StmtKind, UnOp};
use slade_minic::sema::TypeMap;
use slade_minic::types::{IntKind, Type};
use slade_minic::{parse_program, pretty_program, Program, Sema};
use std::collections::HashMap;

/// Lowers the named function to IR, applying `-O3` source-level loop
/// transforms (unrolling, vectorization) first when requested.
///
/// # Errors
///
/// Fails on unsupported constructs (struct-by-value parameters, unknown
/// locals) — mirroring what a backend would reject.
pub fn lower_function(
    program: &Program,
    tm: &TypeMap,
    name: &str,
    opts: CompileOpts,
) -> Result<Module> {
    if opts.opt == OptLevel::O3 {
        // Source-to-source loop transforms, then a fresh sema pass so every
        // new expression node is typed.
        let transformed = crate::looptrans::transform_program(program, name, opts.isa);
        let src = pretty_program(&transformed);
        let reparsed = parse_program(&src).map_err(CompileError::Frontend)?;
        let tm2 = Sema::check(&reparsed).map_err(CompileError::Frontend)?;
        let f = reparsed
            .function(name)
            .ok_or_else(|| CompileError::NoSuchFunction(name.to_string()))?;
        return Lowerer::new(&reparsed, &tm2, opts).lower(f);
    }
    let f =
        program.function(name).ok_or_else(|| CompileError::NoSuchFunction(name.to_string()))?;
    Lowerer::new(program, tm, opts).lower(f)
}

/// Where a named variable lives.
#[derive(Debug, Clone)]
enum Place {
    Slot(SlotId, Type),
    Global(String, Type),
}

struct Lowerer<'a> {
    tm: &'a TypeMap,
    module: Module,
    cur: BlockId,
    terminated: bool,
    vars: Vec<HashMap<String, Place>>,
    break_stack: Vec<BlockId>,
    continue_stack: Vec<BlockId>,
    labels: HashMap<String, BlockId>,
    str_labels: HashMap<String, String>,
}

impl<'a> Lowerer<'a> {
    fn new(_program: &'a Program, tm: &'a TypeMap, _opts: CompileOpts) -> Self {
        Lowerer {
            tm,
            module: Module {
                name: String::new(),
                params: Vec::new(),
                ret_ty: None,
                blocks: Vec::new(),
                vreg_tys: Vec::new(),
                slots: Vec::new(),
                rodata: Vec::new(),
                extern_globals: Vec::new(),
            },
            cur: 0,
            terminated: false,
            vars: Vec::new(),
            break_stack: Vec::new(),
            continue_stack: Vec::new(),
            labels: HashMap::new(),
            str_labels: HashMap::new(),
        }
    }

    fn lower(mut self, f: &Function) -> Result<Module> {
        self.module.name = f.name.clone();
        self.module.ret_ty = machine_ty_opt(&self.tm.layout.resolve(&f.ret));
        self.new_block();
        self.vars.push(HashMap::new());
        // Parameters arrive in vregs; O0-style, spill each into a slot.
        for (pname, pty) in &f.params {
            let rty = self.tm.layout.resolve(pty).decay();
            let mty = machine_ty(&rty).ok_or_else(|| {
                CompileError::Unsupported(format!("parameter `{pname}` of type `{rty}`"))
            })?;
            if matches!(rty, Type::Struct(_)) {
                return Err(CompileError::Unsupported(format!(
                    "struct-by-value parameter `{pname}`"
                )));
            }
            let vreg = self.module.new_vreg(mty);
            self.module.params.push((vreg, mty));
            let slot = self.new_slot(mty.size().max(1), mty.size().max(1), pname);
            let addr = self.emit_slot_addr(slot);
            self.emit(Inst::Store { addr, src: vreg, ty: mty });
            self.vars.last_mut().unwrap().insert(pname.clone(), Place::Slot(slot, rty));
        }
        let body = f.body.as_ref().expect("definition");
        self.prescan_labels(body);
        self.lower_stmt(body)?;
        if !self.terminated {
            let term = match self.module.ret_ty {
                None => Term::Ret(None),
                Some(ty) => {
                    // Fall-off-the-end of a non-void function returns 0.
                    let z = self.module.new_vreg(ty);
                    let inst = if ty.is_float() {
                        Inst::FConst { dst: z, val: 0.0, ty }
                    } else {
                        Inst::IConst { dst: z, val: 0, ty }
                    };
                    self.emit(inst);
                    Term::Ret(Some(z))
                }
            };
            self.set_term(term);
        }
        Ok(self.module)
    }

    // ---- plumbing ----

    fn new_block(&mut self) -> BlockId {
        self.module.blocks.push(Block { insts: Vec::new(), term: Term::Ret(None) });
        (self.module.blocks.len() - 1) as BlockId
    }

    fn switch_to(&mut self, b: BlockId) {
        self.cur = b;
        self.terminated = false;
    }

    fn emit(&mut self, inst: Inst) {
        if !self.terminated {
            self.module.blocks[self.cur as usize].insts.push(inst);
        }
    }

    fn set_term(&mut self, term: Term) {
        if !self.terminated {
            self.module.blocks[self.cur as usize].term = term;
            self.terminated = true;
        }
    }

    fn new_slot(&mut self, size: usize, align: usize, name: &str) -> SlotId {
        self.module.slots.push(Slot { size, align, name: name.to_string() });
        (self.module.slots.len() - 1) as SlotId
    }

    fn emit_slot_addr(&mut self, slot: SlotId) -> VReg {
        let dst = self.module.new_vreg(Ty::I64);
        self.emit(Inst::SlotAddr { dst, slot });
        dst
    }

    fn iconst(&mut self, val: i64, ty: Ty) -> VReg {
        let dst = self.module.new_vreg(ty);
        self.emit(Inst::IConst { dst, val, ty });
        dst
    }

    fn prescan_labels(&mut self, stmt: &Stmt) {
        match &stmt.kind {
            StmtKind::Labeled { label, stmt } => {
                if !self.labels.contains_key(label) {
                    let b = self.new_block();
                    self.labels.insert(label.clone(), b);
                }
                self.prescan_labels(stmt);
            }
            StmtKind::Block(stmts) => {
                for s in stmts {
                    self.prescan_labels(s);
                }
            }
            StmtKind::If { then_branch, else_branch, .. } => {
                self.prescan_labels(then_branch);
                if let Some(e) = else_branch {
                    self.prescan_labels(e);
                }
            }
            StmtKind::While { body, .. }
            | StmtKind::DoWhile { body, .. }
            | StmtKind::For { body, .. } => self.prescan_labels(body),
            _ => {}
        }
    }

    fn lookup(&self, name: &str) -> Option<Place> {
        for scope in self.vars.iter().rev() {
            if let Some(p) = scope.get(name) {
                return Some(p.clone());
            }
        }
        self.tm.globals.get(name).map(|t| Place::Global(name.to_string(), t.clone()))
    }

    // ---- statements ----

    fn lower_stmt(&mut self, stmt: &Stmt) -> Result<()> {
        match &stmt.kind {
            StmtKind::Block(stmts) => {
                self.vars.push(HashMap::new());
                for s in stmts {
                    self.lower_stmt(s)?;
                }
                self.vars.pop();
                Ok(())
            }
            StmtKind::Decl { name, ty, init } => {
                let rty = self.tm.layout.resolve(ty);
                let size = self.tm.layout.size_of(&rty).ok_or_else(|| {
                    CompileError::Unsupported(format!("sizeless local `{name}`"))
                })?;
                let align = self.tm.layout.align_of(&rty).unwrap_or(8);
                let slot = self.new_slot(size, align, name);
                self.vars
                    .last_mut()
                    .unwrap()
                    .insert(name.clone(), Place::Slot(slot, rty.clone()));
                if let Some(init) = init {
                    self.lower_initializer(slot, &rty, init)?;
                }
                Ok(())
            }
            StmtKind::Expr(e) => {
                self.lower_expr(e)?;
                Ok(())
            }
            StmtKind::If { cond, then_branch, else_branch } => {
                let c = self.lower_expr(cond)?;
                let then_bb = self.new_block();
                let end_bb = self.new_block();
                let else_bb = if else_branch.is_some() { self.new_block() } else { end_bb };
                self.set_term(Term::Br { cond: c, then_bb, else_bb });
                self.switch_to(then_bb);
                self.lower_stmt(then_branch)?;
                self.set_term(Term::Jmp(end_bb));
                if let Some(els) = else_branch {
                    self.switch_to(else_bb);
                    self.lower_stmt(els)?;
                    self.set_term(Term::Jmp(end_bb));
                }
                self.switch_to(end_bb);
                Ok(())
            }
            StmtKind::While { cond, body } => {
                let head = self.new_block();
                let body_bb = self.new_block();
                let end = self.new_block();
                self.set_term(Term::Jmp(head));
                self.switch_to(head);
                let c = self.lower_expr(cond)?;
                self.set_term(Term::Br { cond: c, then_bb: body_bb, else_bb: end });
                self.break_stack.push(end);
                self.continue_stack.push(head);
                self.switch_to(body_bb);
                self.lower_stmt(body)?;
                self.set_term(Term::Jmp(head));
                self.break_stack.pop();
                self.continue_stack.pop();
                self.switch_to(end);
                Ok(())
            }
            StmtKind::DoWhile { body, cond } => {
                let body_bb = self.new_block();
                let check = self.new_block();
                let end = self.new_block();
                self.set_term(Term::Jmp(body_bb));
                self.break_stack.push(end);
                self.continue_stack.push(check);
                self.switch_to(body_bb);
                self.lower_stmt(body)?;
                self.set_term(Term::Jmp(check));
                self.switch_to(check);
                let c = self.lower_expr(cond)?;
                self.set_term(Term::Br { cond: c, then_bb: body_bb, else_bb: end });
                self.break_stack.pop();
                self.continue_stack.pop();
                self.switch_to(end);
                Ok(())
            }
            StmtKind::For { init, cond, step, body } => {
                self.vars.push(HashMap::new());
                if let Some(init) = init {
                    self.lower_stmt(init)?;
                }
                let head = self.new_block();
                let body_bb = self.new_block();
                let step_bb = self.new_block();
                let end = self.new_block();
                self.set_term(Term::Jmp(head));
                self.switch_to(head);
                match cond {
                    Some(c) => {
                        let cv = self.lower_expr(c)?;
                        self.set_term(Term::Br { cond: cv, then_bb: body_bb, else_bb: end });
                    }
                    None => self.set_term(Term::Jmp(body_bb)),
                }
                self.break_stack.push(end);
                self.continue_stack.push(step_bb);
                self.switch_to(body_bb);
                self.lower_stmt(body)?;
                self.set_term(Term::Jmp(step_bb));
                self.switch_to(step_bb);
                if let Some(step) = step {
                    self.lower_expr(step)?;
                }
                self.set_term(Term::Jmp(head));
                self.break_stack.pop();
                self.continue_stack.pop();
                self.vars.pop();
                self.switch_to(end);
                Ok(())
            }
            StmtKind::Return(value) => {
                match value {
                    Some(e) => {
                        let v = self.lower_expr(e)?;
                        let want = self.module.ret_ty;
                        let from = self.tm.value_type(e.id);
                        let v = want.map(|ty| self.convert_machine(v, &from, ty));
                        self.set_term(Term::Ret(v));
                    }
                    None => self.set_term(Term::Ret(None)),
                }
                // Subsequent statements in this block are unreachable.
                let dead = self.new_block();
                self.switch_to(dead);
                self.terminated = false;
                Ok(())
            }
            StmtKind::Switch { scrutinee, arms } => {
                let v = self.lower_expr(scrutinee)?;
                let vt = self.tm.value_type(scrutinee.id);
                let v = self.convert(v, &vt, &Type::Int(IntKind::Int));
                let end = self.new_block();
                // One body block per arm (fallthrough = jump to next body).
                let body_blocks: Vec<BlockId> = arms.iter().map(|_| self.new_block()).collect();
                // Dispatch chain.
                let mut default_target = end;
                for ((label, _), bb) in arms.iter().zip(&body_blocks) {
                    match label {
                        Some(val) => {
                            let k = self.iconst(*val, Ty::I32);
                            let c = self.module.new_vreg(Ty::I32);
                            self.emit(Inst::Cmp {
                                pred: Pred::Eq,
                                dst: c,
                                a: v,
                                b: k,
                                ty: Ty::I32,
                            });
                            let next_test = self.new_block();
                            self.set_term(Term::Br {
                                cond: c,
                                then_bb: *bb,
                                else_bb: next_test,
                            });
                            self.switch_to(next_test);
                        }
                        None => default_target = *bb,
                    }
                }
                self.set_term(Term::Jmp(default_target));
                // Arm bodies with fallthrough.
                self.break_stack.push(end);
                for (i, (_, body)) in arms.iter().enumerate() {
                    self.switch_to(body_blocks[i]);
                    self.vars.push(HashMap::new());
                    for st in body {
                        self.lower_stmt(st)?;
                    }
                    self.vars.pop();
                    let next = body_blocks.get(i + 1).copied().unwrap_or(end);
                    self.set_term(Term::Jmp(next));
                }
                self.break_stack.pop();
                self.switch_to(end);
                Ok(())
            }
            StmtKind::Break => {
                let Some(&target) = self.break_stack.last() else {
                    return Err(CompileError::Unsupported("break outside loop".into()));
                };
                self.set_term(Term::Jmp(target));
                let dead = self.new_block();
                self.switch_to(dead);
                Ok(())
            }
            StmtKind::Continue => {
                let Some(&target) = self.continue_stack.last() else {
                    return Err(CompileError::Unsupported("continue outside loop".into()));
                };
                self.set_term(Term::Jmp(target));
                let dead = self.new_block();
                self.switch_to(dead);
                Ok(())
            }
            StmtKind::Goto(label) => {
                let Some(&target) = self.labels.get(label) else {
                    return Err(CompileError::Unsupported(format!(
                        "goto unknown label `{label}`"
                    )));
                };
                self.set_term(Term::Jmp(target));
                let dead = self.new_block();
                self.switch_to(dead);
                Ok(())
            }
            StmtKind::Labeled { label, stmt } => {
                let target = self.labels[label];
                self.set_term(Term::Jmp(target));
                self.switch_to(target);
                self.lower_stmt(stmt)
            }
            StmtKind::Empty => Ok(()),
        }
    }

    fn lower_initializer(&mut self, slot: SlotId, ty: &Type, init: &Expr) -> Result<()> {
        if let ExprKind::Call { callee, args } = &init.kind {
            if callee == "__init_list" {
                let Type::Array(elem, n) = ty else {
                    return Err(CompileError::Unsupported("brace init of non-array".into()));
                };
                let esize = self.tm.layout.size_of(elem).unwrap_or(1);
                let base = self.emit_slot_addr(slot);
                for (i, a) in args.iter().enumerate() {
                    let v = self.lower_expr(a)?;
                    let from = self.tm.value_type(a.id);
                    let (mty, v) = self.convert_for_store(v, &from, elem);
                    let off = self.iconst((i * esize) as i64, Ty::I64);
                    let addr = self.bin(IrBinOp::Add, base, off, Ty::I64);
                    self.emit(Inst::Store { addr, src: v, ty: mty });
                }
                // Zero-fill the tail, as C does for partial initializers.
                if args.len() < *n {
                    let zero = self.iconst(0, Ty::I32);
                    for i in args.len()..*n {
                        let mty = machine_ty(elem).unwrap_or(Ty::I32);
                        let off = self.iconst((i * esize) as i64, Ty::I64);
                        let addr = self.bin(IrBinOp::Add, base, off, Ty::I64);
                        let z = if mty.is_float() {
                            let fz = self.module.new_vreg(mty);
                            self.emit(Inst::FConst { dst: fz, val: 0.0, ty: mty });
                            fz
                        } else {
                            zero
                        };
                        self.emit(Inst::Store { addr, src: z, ty: mty });
                    }
                }
                return Ok(());
            }
        }
        let v = self.lower_expr(init)?;
        let from = self.tm.value_type(init.id);
        let (mty, v) = self.convert_for_store(v, &from, ty);
        let addr = self.emit_slot_addr(slot);
        self.emit(Inst::Store { addr, src: v, ty: mty });
        Ok(())
    }

    // ---- expressions ----

    fn bin(&mut self, op: IrBinOp, a: VReg, b: VReg, ty: Ty) -> VReg {
        let dst = self.module.new_vreg(ty);
        self.emit(Inst::Bin { op, dst, a, b, ty });
        dst
    }

    /// Lowers `e` to a vreg holding its value (after decay).
    fn lower_expr(&mut self, e: &Expr) -> Result<VReg> {
        match &e.kind {
            ExprKind::IntLit(v, k) => {
                let ty = int_machine(*k);
                Ok(self.iconst(k.wrap(*v), ty))
            }
            ExprKind::FloatLit(v, single) => {
                let ty = if *single { Ty::F32 } else { Ty::F64 };
                let dst = self.module.new_vreg(ty);
                self.emit(Inst::FConst { dst, val: *v, ty });
                Ok(dst)
            }
            ExprKind::StrLit(s) => {
                let label = self.intern_string(s);
                let dst = self.module.new_vreg(Ty::I64);
                self.emit(Inst::GlobalAddr { dst, name: label });
                Ok(dst)
            }
            ExprKind::Ident(_) | ExprKind::Index { .. } | ExprKind::Member { .. } => {
                let (addr, ty) = self.lower_addr(e)?;
                self.load_place(addr, &ty)
            }
            ExprKind::Unary(op, inner) => self.lower_unary(e, *op, inner),
            ExprKind::Postfix(kind, inner) => {
                let (addr, ty) = self.lower_addr(inner)?;
                let old = self.load_place_copy(addr, &ty)?;
                let delta = if matches!(kind, IncDec::Inc) { 1 } else { -1 };
                let new = self.step(old, &ty, delta)?;
                let mty = machine_ty(&ty.decay()).unwrap_or(Ty::I64);
                self.emit(Inst::Store { addr, src: new, ty: store_ty(&ty) });
                let _ = mty;
                Ok(old)
            }
            ExprKind::Binary(op, l, r) => self.lower_binary(e, *op, l, r),
            ExprKind::Assign { op, target, value } => {
                let (addr, tty) = self.lower_addr(target)?;
                if op.is_none() {
                    if let Type::Struct(name) = &tty {
                        // Struct copy through memcpy-style field-free copy.
                        let size = self.tm.layout.layout_of(name).map(|l| l.size).unwrap_or(0);
                        let (src_addr, _) = self.lower_addr(value)?;
                        self.emit_struct_copy(addr, src_addr, size);
                        return Ok(addr);
                    }
                }
                let rhs = self.lower_expr(value)?;
                let vty = self.tm.value_type(value.id);
                let result = match op {
                    None => {
                        let (mty, v) = self.convert_for_store(rhs, &vty, &tty);
                        self.emit(Inst::Store { addr, src: v, ty: mty });
                        v
                    }
                    Some(op) => {
                        let cur = self.load_place_copy(addr, &tty)?;
                        let res = self.lower_binop_vals(*op, cur, &tty, rhs, &vty)?;
                        // The result converts back to the target type.
                        let res_ty = self.binop_result_type(*op, &tty, &vty);
                        let (mty, v) = self.convert_for_store(res, &res_ty, &tty);
                        self.emit(Inst::Store { addr, src: v, ty: mty });
                        v
                    }
                };
                Ok(result)
            }
            ExprKind::Call { callee, args } => self.lower_call(e, callee, args),
            ExprKind::Cast { ty, expr } => {
                let v = self.lower_expr(expr)?;
                let from = self.tm.value_type(expr.id);
                let to = self.tm.layout.resolve(ty).decay();
                Ok(self.convert(v, &from, &to))
            }
            ExprKind::SizeofType(ty) => {
                let rty = self.tm.layout.resolve(ty);
                let size = self.tm.layout.size_of(&rty).unwrap_or(8);
                Ok(self.iconst(size as i64, Ty::I64))
            }
            ExprKind::SizeofExpr(inner) => {
                let ty = self.tm.type_of(inner.id).clone();
                let size = self.tm.layout.size_of(&ty).unwrap_or(8);
                Ok(self.iconst(size as i64, Ty::I64))
            }
            ExprKind::Ternary { cond, then_expr, else_expr } => {
                let result_ty = self.tm.value_type(e.id);
                let mty = machine_ty(&result_ty).unwrap_or(Ty::I64);
                let slot = self.new_slot(mty.size(), mty.size(), "$tern");
                let c = self.lower_expr(cond)?;
                let then_bb = self.new_block();
                let else_bb = self.new_block();
                let end = self.new_block();
                self.set_term(Term::Br { cond: c, then_bb, else_bb });
                self.switch_to(then_bb);
                let tv = self.lower_expr(then_expr)?;
                let tvt = self.tm.value_type(then_expr.id);
                let tv = self.convert(tv, &tvt, &result_ty);
                let a1 = self.emit_slot_addr(slot);
                self.emit(Inst::Store { addr: a1, src: tv, ty: mty });
                self.set_term(Term::Jmp(end));
                self.switch_to(else_bb);
                let ev = self.lower_expr(else_expr)?;
                let evt = self.tm.value_type(else_expr.id);
                let ev = self.convert(ev, &evt, &result_ty);
                let a2 = self.emit_slot_addr(slot);
                self.emit(Inst::Store { addr: a2, src: ev, ty: mty });
                self.set_term(Term::Jmp(end));
                self.switch_to(end);
                let a3 = self.emit_slot_addr(slot);
                let dst = self.module.new_vreg(mty);
                self.emit(Inst::Load { dst, addr: a3, ty: mty, sext: true });
                Ok(dst)
            }
            ExprKind::Comma(a, b) => {
                self.lower_expr(a)?;
                self.lower_expr(b)
            }
        }
    }

    fn emit_struct_copy(&mut self, dst: VReg, src: VReg, size: usize) {
        // Copy 8 bytes at a time, then the tail.
        let mut off = 0usize;
        while off + 8 <= size {
            let o = self.iconst(off as i64, Ty::I64);
            let s = self.bin(IrBinOp::Add, src, o, Ty::I64);
            let tmp = self.module.new_vreg(Ty::I64);
            self.emit(Inst::Load { dst: tmp, addr: s, ty: Ty::I64, sext: false });
            let o2 = self.iconst(off as i64, Ty::I64);
            let d = self.bin(IrBinOp::Add, dst, o2, Ty::I64);
            self.emit(Inst::Store { addr: d, src: tmp, ty: Ty::I64 });
            off += 8;
        }
        while off < size {
            let o = self.iconst(off as i64, Ty::I64);
            let s = self.bin(IrBinOp::Add, src, o, Ty::I64);
            let tmp = self.module.new_vreg(Ty::I32);
            self.emit(Inst::Load { dst: tmp, addr: s, ty: Ty::I8, sext: false });
            let o2 = self.iconst(off as i64, Ty::I64);
            let d = self.bin(IrBinOp::Add, dst, o2, Ty::I64);
            self.emit(Inst::Store { addr: d, src: tmp, ty: Ty::I8 });
            off += 1;
        }
    }

    fn lower_unary(&mut self, e: &Expr, op: UnOp, inner: &Expr) -> Result<VReg> {
        match op {
            UnOp::Plus => self.lower_expr(inner),
            UnOp::Neg => {
                let v = self.lower_expr(inner)?;
                let from = self.tm.value_type(inner.id);
                let to = self.tm.value_type(e.id);
                let v = self.convert(v, &from, &to);
                let mty = machine_ty(&to).unwrap_or(Ty::I32);
                if mty.is_float() {
                    let z = self.module.new_vreg(mty);
                    self.emit(Inst::FConst { dst: z, val: 0.0, ty: mty });
                    Ok(self.bin(IrBinOp::FSub, z, v, mty))
                } else {
                    let z = self.iconst(0, mty);
                    Ok(self.bin(IrBinOp::Sub, z, v, mty))
                }
            }
            UnOp::Not => {
                let v = self.lower_expr(inner)?;
                let vty = self.tm.value_type(inner.id);
                let mty = machine_ty(&vty).unwrap_or(Ty::I32);
                if mty.is_float() {
                    let z = self.module.new_vreg(mty);
                    self.emit(Inst::FConst { dst: z, val: 0.0, ty: mty });
                    let dst = self.module.new_vreg(Ty::I32);
                    self.emit(Inst::Cmp { pred: Pred::FEq, dst, a: v, b: z, ty: mty });
                    Ok(dst)
                } else {
                    let z = self.iconst(0, mty);
                    let dst = self.module.new_vreg(Ty::I32);
                    self.emit(Inst::Cmp { pred: Pred::Eq, dst, a: v, b: z, ty: mty });
                    Ok(dst)
                }
            }
            UnOp::BitNot => {
                let v = self.lower_expr(inner)?;
                let from = self.tm.value_type(inner.id);
                let to = self.tm.value_type(e.id);
                let v = self.convert(v, &from, &to);
                let mty = machine_ty(&to).unwrap_or(Ty::I32);
                let m1 = self.iconst(-1, mty);
                Ok(self.bin(IrBinOp::Xor, v, m1, mty))
            }
            UnOp::Deref => {
                let (addr, ty) = self.lower_addr(e)?;
                self.load_place(addr, &ty)
            }
            UnOp::Addr => {
                let (addr, _) = self.lower_addr(inner)?;
                Ok(addr)
            }
            UnOp::PreInc | UnOp::PreDec => {
                let (addr, ty) = self.lower_addr(inner)?;
                let old = self.load_place_copy(addr, &ty)?;
                let delta = if matches!(op, UnOp::PreInc) { 1 } else { -1 };
                let new = self.step(old, &ty, delta)?;
                self.emit(Inst::Store { addr, src: new, ty: store_ty(&ty) });
                Ok(new)
            }
        }
    }

    /// `v ± 1` with pointer scaling, matching the object type `ty`.
    fn step(&mut self, v: VReg, ty: &Type, delta: i64) -> Result<VReg> {
        let decayed = ty.decay();
        let mty = machine_ty(&decayed).unwrap_or(Ty::I32);
        if mty.is_float() {
            let one = self.module.new_vreg(mty);
            self.emit(Inst::FConst { dst: one, val: delta as f64, ty: mty });
            return Ok(self.bin(IrBinOp::FAdd, v, one, mty));
        }
        let scale = match &decayed {
            Type::Ptr(p) => self.tm.layout.size_of(p).unwrap_or(1) as i64,
            _ => 1,
        };
        let d = self.iconst(delta * scale, mty);
        Ok(self.bin(IrBinOp::Add, v, d, mty))
    }

    fn lower_binary(&mut self, e: &Expr, op: BinOp, l: &Expr, r: &Expr) -> Result<VReg> {
        if op.is_logical() {
            return self.lower_logical(op, l, r);
        }
        let lv = self.lower_expr(l)?;
        let lt = self.tm.value_type(l.id);
        let rv = self.lower_expr(r)?;
        let rt = self.tm.value_type(r.id);
        self.lower_binop_prelowered(op, lv, &lt, rv, &rt, e)
    }

    fn lower_binop_vals(
        &mut self,
        op: BinOp,
        lv: VReg,
        lt: &Type,
        rv: VReg,
        rt: &Type,
    ) -> Result<VReg> {
        let lt = lt.decay();
        self.lower_binop_inner(op, lv, &lt, rv, rt)
    }

    fn lower_binop_prelowered(
        &mut self,
        op: BinOp,
        lv: VReg,
        lt: &Type,
        rv: VReg,
        rt: &Type,
        _e: &Expr,
    ) -> Result<VReg> {
        self.lower_binop_inner(op, lv, lt, rv, rt)
    }

    fn binop_result_type(&self, op: BinOp, lt: &Type, rt: &Type) -> Type {
        if op.is_comparison() || op.is_logical() {
            return Type::int();
        }
        let lt = lt.decay();
        let rt = rt.decay();
        if lt.is_pointerish() {
            return lt;
        }
        if rt.is_pointerish() {
            if op == BinOp::Sub {
                return Type::Int(IntKind::Long);
            }
            return rt;
        }
        if matches!(op, BinOp::Shl | BinOp::Shr) {
            if let Type::Int(k) = lt {
                return Type::Int(k.promote());
            }
        }
        common_type(&lt, &rt)
    }

    fn lower_binop_inner(
        &mut self,
        op: BinOp,
        lv: VReg,
        lt: &Type,
        rv: VReg,
        rt: &Type,
    ) -> Result<VReg> {
        let lt = lt.decay();
        let rt = rt.decay();
        // Pointer arithmetic.
        if matches!(op, BinOp::Add | BinOp::Sub) {
            if lt.is_pointerish() && rt.is_integer() {
                let elem = lt.pointee().cloned().unwrap_or(Type::Int(IntKind::Char));
                let size = self.tm.layout.size_of(&elem).unwrap_or(1) as i64;
                let idx = self.convert(rv, &rt, &Type::Int(IntKind::Long));
                let sz = self.iconst(size, Ty::I64);
                let scaled = self.bin(IrBinOp::Mul, idx, sz, Ty::I64);
                let irop = if op == BinOp::Add { IrBinOp::Add } else { IrBinOp::Sub };
                return Ok(self.bin(irop, lv, scaled, Ty::I64));
            }
            if rt.is_pointerish() && lt.is_integer() && op == BinOp::Add {
                let elem = rt.pointee().cloned().unwrap_or(Type::Int(IntKind::Char));
                let size = self.tm.layout.size_of(&elem).unwrap_or(1) as i64;
                let idx = self.convert(lv, &lt, &Type::Int(IntKind::Long));
                let sz = self.iconst(size, Ty::I64);
                let scaled = self.bin(IrBinOp::Mul, idx, sz, Ty::I64);
                return Ok(self.bin(IrBinOp::Add, rv, scaled, Ty::I64));
            }
            if lt.is_pointerish() && rt.is_pointerish() && op == BinOp::Sub {
                let elem = lt.pointee().cloned().unwrap_or(Type::Int(IntKind::Char));
                let size = self.tm.layout.size_of(&elem).unwrap_or(1) as i64;
                let diff = self.bin(IrBinOp::Sub, lv, rv, Ty::I64);
                if size > 1 {
                    let sz = self.iconst(size, Ty::I64);
                    return Ok(self.bin(IrBinOp::DivS, diff, sz, Ty::I64));
                }
                return Ok(diff);
            }
        }
        // Comparisons.
        if op.is_comparison() {
            if lt.is_pointerish() || rt.is_pointerish() {
                let a = self.convert(lv, &lt, &Type::Int(IntKind::ULong));
                let b = self.convert(rv, &rt, &Type::Int(IntKind::ULong));
                let pred = comparison_pred(op, false, true);
                let dst = self.module.new_vreg(Ty::I32);
                self.emit(Inst::Cmp { pred, dst, a, b, ty: Ty::I64 });
                return Ok(dst);
            }
            let common = common_type(&lt, &rt);
            let a = self.convert(lv, &lt, &common);
            let b = self.convert(rv, &rt, &common);
            let mty = machine_ty(&common).unwrap_or(Ty::I32);
            let (is_float, unsigned) = match &common {
                Type::Float | Type::Double => (true, false),
                Type::Int(k) => (false, !k.signed()),
                _ => (false, false),
            };
            let pred = comparison_pred(op, is_float, unsigned);
            let dst = self.module.new_vreg(Ty::I32);
            self.emit(Inst::Cmp { pred, dst, a, b, ty: mty });
            return Ok(dst);
        }
        // Shifts: result has the promoted left type.
        if matches!(op, BinOp::Shl | BinOp::Shr) {
            let Type::Int(lk) = lt else {
                return Err(CompileError::Unsupported("shift of non-integer".into()));
            };
            let k = lk.promote();
            let result_ty = Type::Int(k);
            let a = self.convert(lv, &lt, &result_ty);
            let b = self.convert(rv, &rt, &Type::int());
            let mty = int_machine(k);
            let irop = match (op, k.signed()) {
                (BinOp::Shl, _) => IrBinOp::Shl,
                (BinOp::Shr, true) => IrBinOp::ShrS,
                (BinOp::Shr, false) => IrBinOp::ShrU,
                _ => unreachable!(),
            };
            return Ok(self.bin(irop, a, b, mty));
        }
        // Plain arithmetic in the common type.
        let common = common_type(&lt, &rt);
        let a = self.convert(lv, &lt, &common);
        let b = self.convert(rv, &rt, &common);
        let mty = machine_ty(&common).unwrap_or(Ty::I32);
        let irop = match (&common, op) {
            (Type::Float | Type::Double, BinOp::Add) => IrBinOp::FAdd,
            (Type::Float | Type::Double, BinOp::Sub) => IrBinOp::FSub,
            (Type::Float | Type::Double, BinOp::Mul) => IrBinOp::FMul,
            (Type::Float | Type::Double, BinOp::Div) => IrBinOp::FDiv,
            (Type::Int(k), BinOp::Div) => {
                if k.signed() {
                    IrBinOp::DivS
                } else {
                    IrBinOp::DivU
                }
            }
            (Type::Int(k), BinOp::Rem) => {
                if k.signed() {
                    IrBinOp::RemS
                } else {
                    IrBinOp::RemU
                }
            }
            (_, BinOp::Add) => IrBinOp::Add,
            (_, BinOp::Sub) => IrBinOp::Sub,
            (_, BinOp::Mul) => IrBinOp::Mul,
            (_, BinOp::BitAnd) => IrBinOp::And,
            (_, BinOp::BitOr) => IrBinOp::Or,
            (_, BinOp::BitXor) => IrBinOp::Xor,
            (t, o) => {
                return Err(CompileError::Unsupported(format!("binop {o:?} on {t}")));
            }
        };
        let res = self.bin(irop, a, b, mty);
        // Narrow integer results re-wrap so register contents match C.
        if let Type::Int(k) = &common {
            if k.size() < 4 {
                return Ok(self.wrap_narrow(res, *k));
            }
        }
        Ok(res)
    }

    fn lower_logical(&mut self, op: BinOp, l: &Expr, r: &Expr) -> Result<VReg> {
        let slot = self.new_slot(4, 4, "$log");
        let lv = self.lower_expr(l)?;
        let rhs_bb = self.new_block();
        let short_bb = self.new_block();
        let end = self.new_block();
        let (then_bb, else_bb, short_val) = match op {
            BinOp::LogAnd => (rhs_bb, short_bb, 0),
            BinOp::LogOr => (short_bb, rhs_bb, 1),
            _ => unreachable!(),
        };
        self.set_term(Term::Br { cond: lv, then_bb, else_bb });
        self.switch_to(rhs_bb);
        let rv = self.lower_expr(r)?;
        let z = self.iconst(0, Ty::I32);
        let rvt = self.tm.value_type(r.id);
        let rv32 = self.convert(rv, &rvt, &Type::Int(IntKind::Long));
        let nb = self.module.new_vreg(Ty::I32);
        let z64 = self.convert(z, &Type::int(), &Type::Int(IntKind::Long));
        self.emit(Inst::Cmp { pred: Pred::Ne, dst: nb, a: rv32, b: z64, ty: Ty::I64 });
        let a1 = self.emit_slot_addr(slot);
        self.emit(Inst::Store { addr: a1, src: nb, ty: Ty::I32 });
        self.set_term(Term::Jmp(end));
        self.switch_to(short_bb);
        let sv = self.iconst(short_val, Ty::I32);
        let a2 = self.emit_slot_addr(slot);
        self.emit(Inst::Store { addr: a2, src: sv, ty: Ty::I32 });
        self.set_term(Term::Jmp(end));
        self.switch_to(end);
        let a3 = self.emit_slot_addr(slot);
        let dst = self.module.new_vreg(Ty::I32);
        self.emit(Inst::Load { dst, addr: a3, ty: Ty::I32, sext: true });
        Ok(dst)
    }

    fn lower_call(&mut self, e: &Expr, callee: &str, args: &[Expr]) -> Result<VReg> {
        // Recognize the vectorization intrinsics planted by looptrans.
        if callee == "__vec_op_i32" {
            return self.lower_vec_intrinsic(args);
        }
        let sig = self.tm.signatures.get(callee).cloned();
        let mut argv = Vec::new();
        let mut arg_tys = Vec::new();
        for (i, a) in args.iter().enumerate() {
            let v = self.lower_expr(a)?;
            let from = self.tm.value_type(a.id);
            let to = match &sig {
                Some(s) if i < s.params.len() => s.params[i].clone(),
                _ => from.clone(),
            };
            let v = self.convert(v, &from, &to);
            arg_tys.push(machine_ty(&to).unwrap_or(Ty::I64));
            argv.push(v);
        }
        let ret_minic = sig.map(|s| s.ret).unwrap_or(Type::int());
        let ret_ty = machine_ty_opt(&ret_minic);
        let dst = ret_ty.map(|t| self.module.new_vreg(t));
        self.emit(Inst::Call { dst, callee: callee.to_string(), args: argv, arg_tys, ret_ty });
        let _ = e;
        Ok(dst.unwrap_or_else(|| {
            // Void call in value position: materialize 0.
            let z = self.module.new_vreg(Ty::I32);
            self.module.blocks[self.cur as usize].insts.push(Inst::IConst {
                dst: z,
                val: 0,
                ty: Ty::I32,
            });
            z
        }))
    }

    /// `__vec_op_i32(ptr, scalar, opcode)`: 4-lane op on `ptr[0..4]` with a
    /// broadcast scalar. opcode: 0 = add, 1 = sub, 2 = mul.
    fn lower_vec_intrinsic(&mut self, args: &[Expr]) -> Result<VReg> {
        let addr = self.lower_expr(&args[0])?;
        let scalar = self.lower_expr(&args[1])?;
        let ExprKind::IntLit(code, _) = args[2].kind else {
            return Err(CompileError::Unsupported("vec intrinsic opcode".into()));
        };
        let op = match code {
            0 => IrBinOp::Add,
            1 => IrBinOp::Sub,
            _ => IrBinOp::Mul,
        };
        let vec = self.module.new_vreg(Ty::V4I32);
        self.emit(Inst::VecLoad { dst: vec, addr });
        let splat = self.module.new_vreg(Ty::V4I32);
        self.emit(Inst::VecSplat { dst: splat, src: scalar });
        let res = self.module.new_vreg(Ty::V4I32);
        self.emit(Inst::VecBin { op, dst: res, a: vec, b: splat });
        self.emit(Inst::VecStore { addr, src: res });
        Ok(self.iconst(0, Ty::I32))
    }

    // ---- addresses ----

    /// Lowers an lvalue expression to `(address vreg, object type)`.
    fn lower_addr(&mut self, e: &Expr) -> Result<(VReg, Type)> {
        match &e.kind {
            ExprKind::Ident(name) => {
                let Some(place) = self.lookup(name) else {
                    return Err(CompileError::Unsupported(format!(
                        "unknown variable `{name}`"
                    )));
                };
                match place {
                    Place::Slot(slot, ty) => {
                        let a = self.emit_slot_addr(slot);
                        Ok((a, ty))
                    }
                    Place::Global(gname, ty) => {
                        if !self.module.extern_globals.contains(&gname) {
                            self.module.extern_globals.push(gname.clone());
                        }
                        let dst = self.module.new_vreg(Ty::I64);
                        self.emit(Inst::GlobalAddr { dst, name: gname });
                        Ok((dst, ty))
                    }
                }
            }
            ExprKind::Unary(UnOp::Deref, inner) => {
                let v = self.lower_expr(inner)?;
                let ty = self.tm.type_of(e.id).clone();
                Ok((v, ty))
            }
            ExprKind::Index { base, index } => {
                let bv = self.lower_expr(base)?;
                let bt = self.tm.value_type(base.id);
                let iv = self.lower_expr(index)?;
                let it = self.tm.value_type(index.id);
                let (ptr, ptr_t, idx, idx_t) =
                    if bt.is_pointerish() { (bv, bt, iv, it) } else { (iv, it, bv, bt) };
                let elem = self.tm.type_of(e.id).clone();
                let size = self
                    .tm
                    .layout
                    .size_of(&elem)
                    .or_else(|| ptr_t.pointee().and_then(|t| self.tm.layout.size_of(t)))
                    .unwrap_or(1);
                let idx64 = self.convert(idx, &idx_t, &Type::Int(IntKind::Long));
                let sz = self.iconst(size as i64, Ty::I64);
                let scaled = self.bin(IrBinOp::Mul, idx64, sz, Ty::I64);
                let addr = self.bin(IrBinOp::Add, ptr, scaled, Ty::I64);
                Ok((addr, elem))
            }
            ExprKind::Member { base, field, arrow } => {
                let (base_addr, sname) = if *arrow {
                    let v = self.lower_expr(base)?;
                    let bt = self.tm.value_type(base.id);
                    let Some(Type::Struct(s)) = bt.pointee().map(|t| self.tm.layout.resolve(t))
                    else {
                        return Err(CompileError::Unsupported("-> on non-struct".into()));
                    };
                    (v, s)
                } else {
                    let (a, ty) = self.lower_addr(base)?;
                    let Type::Struct(s) = self.tm.layout.resolve(&ty) else {
                        return Err(CompileError::Unsupported(". on non-struct".into()));
                    };
                    (a, s)
                };
                let Some((off, fty)) = self.tm.layout.field_of(&sname, field) else {
                    return Err(CompileError::Unsupported(format!("unknown field `{field}`")));
                };
                if off == 0 {
                    return Ok((base_addr, fty));
                }
                let o = self.iconst(off as i64, Ty::I64);
                let addr = self.bin(IrBinOp::Add, base_addr, o, Ty::I64);
                Ok((addr, fty))
            }
            ExprKind::StrLit(s) => {
                let label = self.intern_string(s);
                let dst = self.module.new_vreg(Ty::I64);
                self.emit(Inst::GlobalAddr { dst, name: label });
                Ok((dst, Type::Int(IntKind::Char)))
            }
            ExprKind::Cast { expr, .. } => {
                // `(T*)p = …` style lvalue casts are not valid C; but
                // `(*(T*)p)` goes through Deref. Lower the inner address.
                self.lower_addr(expr)
            }
            other => Err(CompileError::Unsupported(format!("address of {other:?}"))),
        }
    }

    /// Loads a value from an object address. Arrays/structs yield the
    /// address itself (decay).
    fn load_place(&mut self, addr: VReg, ty: &Type) -> Result<VReg> {
        match ty {
            Type::Array(..) | Type::Struct(_) => Ok(addr),
            _ => {
                let (mty, sext) = load_ty(ty);
                let dst_ty = reg_ty(ty);
                let dst = self.module.new_vreg(dst_ty);
                self.emit(Inst::Load { dst, addr, ty: mty, sext });
                Ok(dst)
            }
        }
    }

    /// Like [`Self::load_place`], but always loads (used before stores where
    /// the address vreg must remain valid).
    fn load_place_copy(&mut self, addr: VReg, ty: &Type) -> Result<VReg> {
        self.load_place(addr, ty)
    }

    fn intern_string(&mut self, s: &str) -> String {
        if let Some(l) = self.str_labels.get(s) {
            return l.clone();
        }
        let label = format!(".LC{}", self.module.rodata.len());
        let mut bytes = s.as_bytes().to_vec();
        bytes.push(0);
        self.module.rodata.push((label.clone(), bytes));
        self.str_labels.insert(s.to_string(), label.clone());
        label
    }

    // ---- conversions ----

    /// Converts `v` from MiniC type `from` to `to`, emitting casts.
    fn convert(&mut self, v: VReg, from: &Type, to: &Type) -> VReg {
        let from = from.decay();
        let to = to.decay();
        let f = machine_ty(&from).unwrap_or(Ty::I64);
        let t = machine_ty(&to).unwrap_or(Ty::I64);
        let mut cur = v;
        let mut cur_ty = f;
        // Float → float/int.
        if cur_ty.is_float() {
            match t {
                Ty::F32 => {
                    if cur_ty == Ty::F64 {
                        cur = self.cast(cur, CastKind::F64toF32, Ty::F32);
                    }
                    return cur;
                }
                Ty::F64 => {
                    if cur_ty == Ty::F32 {
                        cur = self.cast(cur, CastKind::F32toF64, Ty::F64);
                    }
                    return cur;
                }
                Ty::I64 => {
                    let k =
                        if cur_ty == Ty::F32 { CastKind::F32toS64 } else { CastKind::F64toS64 };
                    return self.cast(cur, k, Ty::I64);
                }
                _ => {
                    let k =
                        if cur_ty == Ty::F32 { CastKind::F32toS32 } else { CastKind::F64toS32 };
                    cur = self.cast(cur, k, Ty::I32);
                    return self.wrap_to(cur, &to);
                }
            }
        }
        // Int → float.
        if t.is_float() {
            let signed = matches!(&from, Type::Int(k) if k.signed());
            if cur_ty == Ty::I32 && !signed {
                // u32 → f via zero-extension to 64 first.
                cur = self.cast(cur, CastKind::Zext32to64, Ty::I64);
                cur_ty = Ty::I64;
            }
            let kind = match (cur_ty, t) {
                (Ty::I32, Ty::F32) => CastKind::S32toF32,
                (Ty::I32, Ty::F64) => CastKind::S32toF64,
                (_, Ty::F32) => CastKind::S64toF32,
                (_, Ty::F64) => CastKind::S64toF64,
                _ => unreachable!(),
            };
            return self.cast(cur, kind, t);
        }
        // Int/ptr → int/ptr width adjustment.
        match (cur_ty, t) {
            (Ty::I32, Ty::I64) => {
                let signed = matches!(&from, Type::Int(k) if k.signed());
                let kind = if signed { CastKind::Sext32to64 } else { CastKind::Zext32to64 };
                cur = self.cast(cur, kind, Ty::I64);
            }
            (Ty::I64, Ty::I32) => {
                cur = self.cast(cur, CastKind::Trunc64to32, Ty::I32);
            }
            _ => {}
        }
        self.wrap_to(cur, &to)
    }

    /// Re-wraps an I32 register to a narrow integer type's range.
    fn wrap_to(&mut self, v: VReg, to: &Type) -> VReg {
        if let Type::Int(k) = to {
            if k.size() < 4 {
                return self.wrap_narrow(v, *k);
            }
        }
        v
    }

    fn wrap_narrow(&mut self, v: VReg, k: IntKind) -> VReg {
        let kind = match (k.size(), k.signed()) {
            (1, true) => CastKind::Wrap8Sext,
            (1, false) => CastKind::Wrap8Zext,
            (2, true) => CastKind::Wrap16Sext,
            (2, false) => CastKind::Wrap16Zext,
            _ => return v,
        };
        self.cast(v, kind, Ty::I32)
    }

    fn cast(&mut self, src: VReg, kind: CastKind, to: Ty) -> VReg {
        let dst = self.module.new_vreg(to);
        self.emit(Inst::Cast { dst, src, kind });
        dst
    }

    /// Converts `v` (of MiniC type `from`) for storing into an object of
    /// type `to`, returning the store width and the converted vreg.
    fn convert_for_store(&mut self, v: VReg, from: &Type, to: &Type) -> (Ty, VReg) {
        let v = self.convert(v, from, to);
        (store_ty(to), v)
    }

    fn convert_machine(&mut self, v: VReg, from: &Type, want: Ty) -> VReg {
        let to = match want {
            Ty::I8 | Ty::I16 | Ty::I32 => Type::int(),
            Ty::I64 => Type::Int(IntKind::Long),
            Ty::F32 => Type::Float,
            Ty::F64 => Type::Double,
            Ty::V4I32 => Type::Int(IntKind::Long),
        };
        self.convert(v, from, &to)
    }
}

/// Machine width class of a MiniC value type.
pub fn machine_ty(ty: &Type) -> Option<Ty> {
    match ty {
        Type::Int(k) => Some(if k.size() <= 4 { Ty::I32 } else { Ty::I64 }),
        Type::Float => Some(Ty::F32),
        Type::Double => Some(Ty::F64),
        Type::Ptr(_) | Type::Array(..) => Some(Ty::I64),
        Type::Struct(_) => Some(Ty::I64), // handled as addresses
        _ => None,
    }
}

fn machine_ty_opt(ty: &Type) -> Option<Ty> {
    if *ty == Type::Void {
        None
    } else {
        machine_ty(ty)
    }
}

fn int_machine(k: IntKind) -> Ty {
    if k.size() <= 4 {
        Ty::I32
    } else {
        Ty::I64
    }
}

/// Memory width + extension flag used when loading an object of `ty`.
fn load_ty(ty: &Type) -> (Ty, bool) {
    match ty {
        Type::Int(k) => {
            let mty = match k.size() {
                1 => Ty::I8,
                2 => Ty::I16,
                4 => Ty::I32,
                _ => Ty::I64,
            };
            (mty, k.signed())
        }
        Type::Float => (Ty::F32, false),
        Type::Double => (Ty::F64, false),
        _ => (Ty::I64, false),
    }
}

/// Memory width used when storing into an object of `ty`.
fn store_ty(ty: &Type) -> Ty {
    load_ty(&ty.decay()).0
}

/// Register width class of a loaded object.
fn reg_ty(ty: &Type) -> Ty {
    match ty {
        Type::Int(k) => int_machine(*k),
        Type::Float => Ty::F32,
        Type::Double => Ty::F64,
        _ => Ty::I64,
    }
}

/// The usual-arithmetic-conversions common type (mirrors sema's logic).
fn common_type(a: &Type, b: &Type) -> Type {
    match (a, b) {
        (Type::Double, _) | (_, Type::Double) => Type::Double,
        (Type::Float, _) | (_, Type::Float) => Type::Float,
        (Type::Int(x), Type::Int(y)) => {
            let x = x.promote();
            let y = y.promote();
            let k = if x == y {
                x
            } else if x.rank() == y.rank() {
                x.to_unsigned()
            } else if x.rank() > y.rank() {
                if x.signed() && !y.signed() && x.size() == y.size() {
                    x.to_unsigned()
                } else {
                    x
                }
            } else if y.signed() && !x.signed() && y.size() == x.size() {
                y.to_unsigned()
            } else {
                y
            };
            Type::Int(k)
        }
        (a, _) if a.is_pointerish() => a.clone(),
        (_, b) if b.is_pointerish() => b.clone(),
        _ => Type::int(),
    }
}

fn comparison_pred(op: BinOp, is_float: bool, unsigned: bool) -> Pred {
    match (op, is_float, unsigned) {
        (BinOp::Eq, true, _) => Pred::FEq,
        (BinOp::Ne, true, _) => Pred::FNe,
        (BinOp::Lt, true, _) => Pred::FLt,
        (BinOp::Le, true, _) => Pred::FLe,
        (BinOp::Gt, true, _) => Pred::FGt,
        (BinOp::Ge, true, _) => Pred::FGe,
        (BinOp::Eq, _, _) => Pred::Eq,
        (BinOp::Ne, _, _) => Pred::Ne,
        (BinOp::Lt, _, false) => Pred::LtS,
        (BinOp::Le, _, false) => Pred::LeS,
        (BinOp::Gt, _, false) => Pred::GtS,
        (BinOp::Ge, _, false) => Pred::GeS,
        (BinOp::Lt, _, true) => Pred::LtU,
        (BinOp::Le, _, true) => Pred::LeU,
        (BinOp::Gt, _, true) => Pred::GtU,
        (BinOp::Ge, _, true) => Pred::GeU,
        _ => Pred::Eq,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slade_minic::parse_program;

    fn lower(src: &str, name: &str) -> Module {
        let p = parse_program(src).unwrap();
        let tm = Sema::check(&p).unwrap();
        lower_function(&p, &tm, name, CompileOpts::new(crate::Isa::X86_64, OptLevel::O0))
            .unwrap()
    }

    #[test]
    fn lowers_simple_add() {
        let m = lower("int add(int a, int b) { return a + b; }", "add");
        assert_eq!(m.params.len(), 2);
        assert_eq!(m.ret_ty, Some(Ty::I32));
        // Params are spilled to slots at O0.
        assert!(m.slots.len() >= 2);
        let text = m.display();
        assert!(text.contains("Bin"), "{text}");
    }

    #[test]
    fn lowers_loops_to_cfg() {
        let m =
            lower("int f(int n) { int s = 0; while (n > 0) { s += n; n--; } return s; }", "f");
        assert!(m.blocks.len() >= 4, "expected loop CFG, got {}", m.blocks.len());
    }

    #[test]
    fn lowers_pointer_indexing_with_scaling() {
        let m = lower("int get(int *p, int i) { return p[i]; }", "get");
        let text = m.display();
        assert!(text.contains("Mul"), "index should scale: {text}");
    }

    #[test]
    fn lowers_global_reference() {
        let m = lower("int g; int f(void) { return g; }", "f");
        assert!(m.extern_globals.contains(&"g".to_string()));
    }

    #[test]
    fn lowers_string_literals_to_rodata() {
        let m = lower("int f(char *s) { return strcmp(s, \"hi\"); }", "f");
        assert_eq!(m.rodata.len(), 1);
        assert_eq!(m.rodata[0].1, b"hi\0".to_vec());
    }

    #[test]
    fn rejects_struct_by_value_param() {
        let p =
            parse_program("struct s { int a; }; int f(struct s v) { return v.a; }").unwrap();
        let tm = Sema::check(&p).unwrap();
        let err =
            lower_function(&p, &tm, "f", CompileOpts::new(crate::Isa::X86_64, OptLevel::O0))
                .unwrap_err();
        assert!(matches!(err, CompileError::Unsupported(_)));
    }

    #[test]
    fn float_ops_use_float_ir() {
        let m = lower("double f(double a, double b) { return a * b + 1.0; }", "f");
        let text = m.display();
        assert!(text.contains("FMul") && text.contains("FAdd"), "{text}");
    }

    #[test]
    fn logical_ops_short_circuit_via_cfg() {
        let m = lower("int f(int a, int b) { return a && b; }", "f");
        assert!(m.blocks.len() >= 4);
    }
}
