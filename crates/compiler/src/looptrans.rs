//! Source-level `-O3` loop transforms: unrolling and x86 auto-vectorization.
//!
//! GCC performs these on GIMPLE/RTL; we perform them on the MiniC AST and
//! re-run semantic analysis afterwards (the lowerer pretty-prints and
//! re-parses, so node ids stay consistent). The observable effect is the
//! same as the paper's Figure 1: a simple array loop at `-O3` becomes a
//! vectorized main loop plus a scalar remainder, and counted loops without
//! vectorizable bodies are unrolled 4×.
//!
//! Vectorized bodies are expressed with the internal intrinsic
//! `__vec_op_i32(ptr, scalar, opcode)` which the lowerer expands into the
//! IR's `VecLoad`/`VecSplat`/`VecBin`/`VecStore` (x86 `movdqu`/`pshufd`/
//! `paddd`/`movups` — the very instructions that defeat literal lifters).

use crate::Isa;
use slade_minic::ast::*;
use slade_minic::types::{IntKind, Type};
use slade_minic::{Program, Sema};

/// Applies `-O3` loop transforms to function `name` of `program`.
///
/// Functions other than `name` are left untouched. If the program fails
/// semantic analysis (it shouldn't — callers check first), the original is
/// returned unchanged.
pub fn transform_program(program: &Program, name: &str, isa: Isa) -> Program {
    let Ok(tm) = Sema::check(program) else {
        return program.clone();
    };
    let mut out = program.clone();
    for item in &mut out.items {
        if let Item::Function(f) = item {
            if f.name == name {
                if let Some(body) = &mut f.body {
                    let mut ctx = Transform { tm: &tm, isa };
                    ctx.stmt(body);
                }
            }
        }
    }
    out
}

struct Transform<'a> {
    tm: &'a slade_minic::sema::TypeMap,
    isa: Isa,
}

impl Transform<'_> {
    fn stmt(&mut self, s: &mut Stmt) {
        // Recurse first so inner loops transform before outer ones.
        match &mut s.kind {
            StmtKind::Block(stmts) => {
                for st in stmts.iter_mut() {
                    self.stmt(st);
                }
            }
            StmtKind::If { then_branch, else_branch, .. } => {
                self.stmt(then_branch);
                if let Some(e) = else_branch {
                    self.stmt(e);
                }
            }
            StmtKind::While { body, .. }
            | StmtKind::DoWhile { body, .. }
            | StmtKind::For { body, .. } => self.stmt(body),
            StmtKind::Labeled { stmt, .. } => self.stmt(stmt),
            _ => {}
        }
        if let StmtKind::For { .. } = &s.kind {
            if self.isa == Isa::X86_64 {
                if let Some(replacement) = self.try_vectorize(s) {
                    *s = replacement;
                    return;
                }
            }
            if let Some(replacement) = self.try_unroll(s) {
                *s = replacement;
            }
        }
    }

    /// Recognizes `for (i = 0; i < bound; i++) arr[i] op= inv;` over 4-byte
    /// integer elements and rewrites it into a vector loop + remainder.
    fn try_vectorize(&self, s: &Stmt) -> Option<Stmt> {
        let StmtKind::For { init, cond, step, body } = &s.kind else { return None };
        let (ivar, init_stmt) = induction_init(init.as_deref())?;
        let bound = simple_upper_bound(cond.as_ref()?, &ivar)?;
        if !is_unit_step(step.as_ref()?, &ivar) {
            return None;
        }
        let (arr, op_code, inv) = vectorizable_body(body, &ivar)?;
        // Element type must be a 4-byte integer.
        let arr_ty = self.tm.value_type(arr.id);
        match arr_ty.pointee() {
            Some(Type::Int(k)) if k.size() == 4 => {}
            _ => return None,
        }
        // The invariant expression must not mention the induction variable
        // or contain calls.
        if mentions(&inv, &ivar)
            || has_call(&inv)
            || mentions(&bound, &ivar)
            || has_call(&bound)
        {
            return None;
        }
        // i must not be modified inside the body beyond the step.
        if modifies(body, &ivar) {
            return None;
        }
        let iv = || ident(&ivar);
        // Vector main loop: for (; i + 3 < bound; i += 4) __vec_op_i32(arr + i, inv, code);
        let vec_cond = binary(BinOp::Lt, binary(BinOp::Add, iv(), int_lit(3)), bound.clone());
        let vec_step = assign_op(BinOp::Add, iv(), int_lit(4));
        let vec_body = expr_stmt(call(
            "__vec_op_i32",
            vec![binary(BinOp::Add, arr.clone(), iv()), inv.clone(), int_lit(op_code)],
        ));
        let vec_loop = Stmt {
            kind: StmtKind::For {
                init: None,
                cond: Some(vec_cond),
                step: Some(vec_step),
                body: Box::new(vec_body),
            },
            line: s.line,
        };
        // Remainder: for (; i < bound; i++) body
        let rem_cond = binary(BinOp::Lt, iv(), bound);
        let rem_step = postfix_inc(&ivar);
        let rem_loop = Stmt {
            kind: StmtKind::For {
                init: None,
                cond: Some(rem_cond),
                step: Some(rem_step),
                body: body.clone(),
            },
            line: s.line,
        };
        let stmts = vec![init_stmt, vec_loop, rem_loop];
        Some(Stmt { kind: StmtKind::Block(stmts), line: s.line })
    }

    /// Unrolls `for (init; i < bound; i++) body` by 4 when the body is
    /// straight-line enough.
    fn try_unroll(&self, s: &Stmt) -> Option<Stmt> {
        let StmtKind::For { init, cond, step, body } = &s.kind else { return None };
        let (ivar, init_stmt) = induction_init(init.as_deref())?;
        let bound = simple_upper_bound(cond.as_ref()?, &ivar)?;
        if !is_unit_step(step.as_ref()?, &ivar) {
            return None;
        }
        if has_control_escape(body) || modifies(body, &ivar) {
            return None;
        }
        if mentions(&bound, &ivar) || has_call(&bound) {
            return None;
        }
        // Bound must be loop-invariant: conservatively require that the body
        // does not write any identifier appearing in the bound.
        for name in idents_of(&bound) {
            if modifies(body, &name) {
                return None;
            }
        }
        let iv = || ident(&ivar);
        let mut unrolled = Vec::new();
        for k in 0..4i64 {
            let mut b = (**body).clone();
            if k > 0 {
                substitute(&mut b, &ivar, &binary(BinOp::Add, iv(), int_lit(k)));
            }
            unrolled.push(b);
        }
        let main_cond = binary(BinOp::Lt, binary(BinOp::Add, iv(), int_lit(3)), bound.clone());
        let main_step = assign_op(BinOp::Add, iv(), int_lit(4));
        let main_loop = Stmt {
            kind: StmtKind::For {
                init: None,
                cond: Some(main_cond),
                step: Some(main_step),
                body: Box::new(Stmt { kind: StmtKind::Block(unrolled), line: s.line }),
            },
            line: s.line,
        };
        let rem_cond = binary(BinOp::Lt, iv(), bound);
        let rem_loop = Stmt {
            kind: StmtKind::For {
                init: None,
                cond: Some(rem_cond),
                step: Some(postfix_inc(&ivar)),
                body: body.clone(),
            },
            line: s.line,
        };
        Some(Stmt { kind: StmtKind::Block(vec![init_stmt, main_loop, rem_loop]), line: s.line })
    }
}

// ---- pattern helpers ----

/// Extracts the induction variable and a hoisted initializer statement from
/// a `for` init clause (`int i = e;` or `i = e;`).
fn induction_init(init: Option<&Stmt>) -> Option<(String, Stmt)> {
    let init = init?;
    match &init.kind {
        StmtKind::Decl { name, ty, init: Some(_) } => {
            if !matches!(ty, Type::Int(k) if k.size() == 4) {
                return None;
            }
            Some((name.clone(), init.clone()))
        }
        StmtKind::Expr(e) => {
            if let ExprKind::Assign { op: None, target, .. } = &e.kind {
                if let ExprKind::Ident(name) = &target.kind {
                    return Some((name.clone(), init.clone()));
                }
            }
            None
        }
        _ => None,
    }
}

/// `i < bound` → `bound`.
fn simple_upper_bound(cond: &Expr, ivar: &str) -> Option<Expr> {
    if let ExprKind::Binary(BinOp::Lt, l, r) = &cond.kind {
        if matches!(&l.kind, ExprKind::Ident(n) if n == ivar) {
            return Some((**r).clone());
        }
    }
    None
}

/// `i++`, `++i`, `i += 1` or `i = i + 1`.
fn is_unit_step(step: &Expr, ivar: &str) -> bool {
    match &step.kind {
        ExprKind::Postfix(IncDec::Inc, e) | ExprKind::Unary(UnOp::PreInc, e) => {
            matches!(&e.kind, ExprKind::Ident(n) if n == ivar)
        }
        ExprKind::Assign { op: Some(BinOp::Add), target, value } => {
            matches!(&target.kind, ExprKind::Ident(n) if n == ivar)
                && matches!(&value.kind, ExprKind::IntLit(1, _))
        }
        ExprKind::Assign { op: None, target, value } => {
            if !matches!(&target.kind, ExprKind::Ident(n) if n == ivar) {
                return false;
            }
            if let ExprKind::Binary(BinOp::Add, l, r) = &value.kind {
                return matches!(&l.kind, ExprKind::Ident(n) if n == ivar)
                    && matches!(&r.kind, ExprKind::IntLit(1, _));
            }
            false
        }
        _ => false,
    }
}

/// Matches `arr[i] (+=|-=|*=) inv` or `arr[i] = arr[i] op inv`, returning
/// the array expression, the vector opcode (0=add 1=sub 2=mul) and `inv`.
fn vectorizable_body(body: &Stmt, ivar: &str) -> Option<(Expr, i64, Expr)> {
    let stmt = single_stmt(body)?;
    let StmtKind::Expr(e) = &stmt.kind else { return None };
    let ExprKind::Assign { op, target, value } = &e.kind else { return None };
    let ExprKind::Index { base, index } = &target.kind else { return None };
    if !matches!(&index.kind, ExprKind::Ident(n) if n == ivar) {
        return None;
    }
    if !matches!(&base.kind, ExprKind::Ident(_)) {
        return None;
    }
    match op {
        Some(BinOp::Add) => Some(((**base).clone(), 0, (**value).clone())),
        Some(BinOp::Sub) => Some(((**base).clone(), 1, (**value).clone())),
        Some(BinOp::Mul) => Some(((**base).clone(), 2, (**value).clone())),
        None => {
            // arr[i] = arr[i] op inv
            let ExprKind::Binary(bop, l, r) = &value.kind else { return None };
            let code = match bop {
                BinOp::Add => 0,
                BinOp::Sub => 1,
                BinOp::Mul => 2,
                _ => return None,
            };
            let ExprKind::Index { base: lb, index: li } = &l.kind else { return None };
            if !same_ident(lb, base) || !matches!(&li.kind, ExprKind::Ident(n) if n == ivar) {
                return None;
            }
            Some(((**base).clone(), code, (**r).clone()))
        }
        _ => None,
    }
}

fn same_ident(a: &Expr, b: &Expr) -> bool {
    matches!(
        (&a.kind, &b.kind),
        (ExprKind::Ident(x), ExprKind::Ident(y)) if x == y
    )
}

fn single_stmt(body: &Stmt) -> Option<&Stmt> {
    match &body.kind {
        StmtKind::Block(stmts) if stmts.len() == 1 => single_stmt(&stmts[0]),
        StmtKind::Expr(_) => Some(body),
        _ => None,
    }
}

/// True when the statement tree contains flow that escapes the loop.
fn has_control_escape(s: &Stmt) -> bool {
    match &s.kind {
        StmtKind::Break
        | StmtKind::Continue
        | StmtKind::Return(_)
        | StmtKind::Goto(_)
        | StmtKind::Labeled { .. } => true,
        StmtKind::Block(stmts) => stmts.iter().any(has_control_escape),
        StmtKind::If { then_branch, else_branch, .. } => {
            has_control_escape(then_branch)
                || else_branch.as_deref().is_some_and(has_control_escape)
        }
        // Nested loops contain their own break/continue; treat as opaque but
        // safe only if they have no return/goto. Conservatively escape.
        StmtKind::While { .. } | StmtKind::DoWhile { .. } | StmtKind::For { .. } => true,
        // Switch bodies may return/goto; stay conservative.
        StmtKind::Switch { .. } => true,
        _ => false,
    }
}

/// True when the tree assigns to / increments `name`.
fn modifies(s: &Stmt, name: &str) -> bool {
    fn expr_modifies(e: &Expr, name: &str) -> bool {
        match &e.kind {
            ExprKind::Assign { target, value, .. } => {
                matches!(&target.kind, ExprKind::Ident(n) if n == name)
                    || expr_modifies(target, name)
                    || expr_modifies(value, name)
            }
            ExprKind::Postfix(_, inner)
            | ExprKind::Unary(UnOp::PreInc, inner)
            | ExprKind::Unary(UnOp::PreDec, inner) => {
                matches!(&inner.kind, ExprKind::Ident(n) if n == name)
                    || expr_modifies(inner, name)
            }
            ExprKind::Unary(UnOp::Addr, inner) => {
                // Address-taken: could be modified through the pointer.
                matches!(&inner.kind, ExprKind::Ident(n) if n == name)
                    || expr_modifies(inner, name)
            }
            ExprKind::Unary(_, inner) => expr_modifies(inner, name),
            ExprKind::Binary(_, l, r) | ExprKind::Comma(l, r) => {
                expr_modifies(l, name) || expr_modifies(r, name)
            }
            ExprKind::Call { args, .. } => args.iter().any(|a| expr_modifies(a, name)),
            ExprKind::Index { base, index } => {
                expr_modifies(base, name) || expr_modifies(index, name)
            }
            ExprKind::Member { base, .. } => expr_modifies(base, name),
            ExprKind::Cast { expr, .. } | ExprKind::SizeofExpr(expr) => {
                expr_modifies(expr, name)
            }
            ExprKind::Ternary { cond, then_expr, else_expr } => {
                expr_modifies(cond, name)
                    || expr_modifies(then_expr, name)
                    || expr_modifies(else_expr, name)
            }
            _ => false,
        }
    }
    match &s.kind {
        StmtKind::Block(stmts) => stmts.iter().any(|st| modifies(st, name)),
        StmtKind::Decl { init: Some(e), .. } | StmtKind::Expr(e) => expr_modifies(e, name),
        StmtKind::If { cond, then_branch, else_branch } => {
            expr_modifies(cond, name)
                || modifies(then_branch, name)
                || else_branch.as_deref().is_some_and(|e| modifies(e, name))
        }
        StmtKind::While { cond, body } | StmtKind::DoWhile { body, cond } => {
            expr_modifies(cond, name) || modifies(body, name)
        }
        StmtKind::For { init, cond, step, body } => {
            init.as_deref().is_some_and(|i| modifies(i, name))
                || cond.as_ref().is_some_and(|c| expr_modifies(c, name))
                || step.as_ref().is_some_and(|st| expr_modifies(st, name))
                || modifies(body, name)
        }
        StmtKind::Return(Some(e)) => expr_modifies(e, name),
        StmtKind::Labeled { stmt, .. } => modifies(stmt, name),
        StmtKind::Switch { scrutinee, arms } => {
            expr_modifies(scrutinee, name)
                || arms.iter().any(|(_, body)| body.iter().any(|s| modifies(s, name)))
        }
        _ => false,
    }
}

fn mentions(e: &Expr, name: &str) -> bool {
    idents_of(e).contains(&name.to_string())
}

fn idents_of(e: &Expr) -> Vec<String> {
    let mut out = Vec::new();
    fn walk(e: &Expr, out: &mut Vec<String>) {
        match &e.kind {
            ExprKind::Ident(n) => out.push(n.clone()),
            ExprKind::Unary(_, a)
            | ExprKind::Postfix(_, a)
            | ExprKind::Cast { expr: a, .. }
            | ExprKind::SizeofExpr(a) => walk(a, out),
            ExprKind::Binary(_, l, r) | ExprKind::Comma(l, r) => {
                walk(l, out);
                walk(r, out);
            }
            ExprKind::Assign { target, value, .. } => {
                walk(target, out);
                walk(value, out);
            }
            ExprKind::Call { args, .. } => args.iter().for_each(|a| walk(a, out)),
            ExprKind::Index { base, index } => {
                walk(base, out);
                walk(index, out);
            }
            ExprKind::Member { base, .. } => walk(base, out),
            ExprKind::Ternary { cond, then_expr, else_expr } => {
                walk(cond, out);
                walk(then_expr, out);
                walk(else_expr, out);
            }
            _ => {}
        }
    }
    walk(e, &mut out);
    out
}

fn has_call(e: &Expr) -> bool {
    match &e.kind {
        ExprKind::Call { .. } => true,
        ExprKind::Unary(_, a)
        | ExprKind::Postfix(_, a)
        | ExprKind::Cast { expr: a, .. }
        | ExprKind::SizeofExpr(a) => has_call(a),
        ExprKind::Binary(_, l, r) | ExprKind::Comma(l, r) => has_call(l) || has_call(r),
        ExprKind::Assign { target, value, .. } => has_call(target) || has_call(value),
        ExprKind::Index { base, index } => has_call(base) || has_call(index),
        ExprKind::Member { base, .. } => has_call(base),
        ExprKind::Ternary { cond, then_expr, else_expr } => {
            has_call(cond) || has_call(then_expr) || has_call(else_expr)
        }
        _ => false,
    }
}

/// Replaces every read of `Ident(name)` in the tree with `replacement`.
fn substitute(s: &mut Stmt, name: &str, replacement: &Expr) {
    fn in_expr(e: &mut Expr, name: &str, rep: &Expr) {
        if matches!(&e.kind, ExprKind::Ident(n) if n == name) {
            *e = rep.clone();
            return;
        }
        match &mut e.kind {
            ExprKind::Unary(_, a)
            | ExprKind::Postfix(_, a)
            | ExprKind::Cast { expr: a, .. }
            | ExprKind::SizeofExpr(a) => in_expr(a, name, rep),
            ExprKind::Binary(_, l, r) | ExprKind::Comma(l, r) => {
                in_expr(l, name, rep);
                in_expr(r, name, rep);
            }
            ExprKind::Assign { target, value, .. } => {
                in_expr(target, name, rep);
                in_expr(value, name, rep);
            }
            ExprKind::Call { args, .. } => args.iter_mut().for_each(|a| in_expr(a, name, rep)),
            ExprKind::Index { base, index } => {
                in_expr(base, name, rep);
                in_expr(index, name, rep);
            }
            ExprKind::Member { base, .. } => in_expr(base, name, rep),
            ExprKind::Ternary { cond, then_expr, else_expr } => {
                in_expr(cond, name, rep);
                in_expr(then_expr, name, rep);
                in_expr(else_expr, name, rep);
            }
            _ => {}
        }
    }
    match &mut s.kind {
        StmtKind::Block(stmts) => {
            stmts.iter_mut().for_each(|st| substitute(st, name, replacement))
        }
        StmtKind::Decl { init: Some(e), .. } | StmtKind::Expr(e) => {
            in_expr(e, name, replacement)
        }
        StmtKind::If { cond, then_branch, else_branch } => {
            in_expr(cond, name, replacement);
            substitute(then_branch, name, replacement);
            if let Some(e) = else_branch {
                substitute(e, name, replacement);
            }
        }
        StmtKind::While { cond, body } | StmtKind::DoWhile { body, cond } => {
            in_expr(cond, name, replacement);
            substitute(body, name, replacement);
        }
        StmtKind::For { init, cond, step, body } => {
            if let Some(i) = init {
                substitute(i, name, replacement);
            }
            if let Some(c) = cond {
                in_expr(c, name, replacement);
            }
            if let Some(st) = step {
                in_expr(st, name, replacement);
            }
            substitute(body, name, replacement);
        }
        StmtKind::Return(Some(e)) => in_expr(e, name, replacement),
        StmtKind::Labeled { stmt, .. } => substitute(stmt, name, replacement),
        _ => {}
    }
}

// ---- tiny AST constructors (ids are re-assigned by the reparse) ----

fn ident(name: &str) -> Expr {
    Expr { kind: ExprKind::Ident(name.to_string()), id: 0, line: 0 }
}

fn int_lit(v: i64) -> Expr {
    Expr { kind: ExprKind::IntLit(v, IntKind::Int), id: 0, line: 0 }
}

fn binary(op: BinOp, l: Expr, r: Expr) -> Expr {
    Expr { kind: ExprKind::Binary(op, Box::new(l), Box::new(r)), id: 0, line: 0 }
}

fn assign_op(op: BinOp, target: Expr, value: Expr) -> Expr {
    Expr {
        kind: ExprKind::Assign {
            op: Some(op),
            target: Box::new(target),
            value: Box::new(value),
        },
        id: 0,
        line: 0,
    }
}

fn call(name: &str, args: Vec<Expr>) -> Expr {
    Expr { kind: ExprKind::Call { callee: name.to_string(), args }, id: 0, line: 0 }
}

fn postfix_inc(name: &str) -> Expr {
    Expr { kind: ExprKind::Postfix(IncDec::Inc, Box::new(ident(name))), id: 0, line: 0 }
}

fn expr_stmt(e: Expr) -> Stmt {
    Stmt { kind: StmtKind::Expr(e), line: 0 }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slade_minic::{parse_program, pretty_program};

    fn transformed(src: &str, name: &str, isa: Isa) -> String {
        let p = parse_program(src).unwrap();
        let t = transform_program(&p, name, isa);
        pretty_program(&t)
    }

    #[test]
    fn vectorizes_the_papers_motivating_example() {
        let src = r#"
            void add(int *list, int val, int n) {
                int i;
                for (i = 0; i < n; ++i) { list[i] += val; }
            }
        "#;
        let out = transformed(src, "add", Isa::X86_64);
        assert!(out.contains("__vec_op_i32"), "vector loop missing:\n{out}");
        assert!(out.contains("i < n"), "remainder loop missing:\n{out}");
    }

    #[test]
    fn arm_does_not_vectorize_but_unrolls() {
        let src = r#"
            void add(int *list, int val, int n) {
                for (int i = 0; i < n; i++) { list[i] += val; }
            }
        "#;
        let out = transformed(src, "add", Isa::Arm64);
        assert!(!out.contains("__vec_op_i32"), "{out}");
        assert!(out.contains("i + 3 < n"), "unroll missing:\n{out}");
    }

    #[test]
    fn unrolls_reduction_loops() {
        let src = "int sum(int *a, int n) { int s = 0; for (int i = 0; i < n; i++) s += a[i]; return s; }";
        let out = transformed(src, "sum", Isa::X86_64);
        assert!(out.contains("i + 3 < n"), "{out}");
        assert!(out.contains("a[i + 1]") || out.contains("a[i + 1 ]"), "{out}");
    }

    #[test]
    fn leaves_loops_with_breaks_alone() {
        let src = "int find(int *a, int n, int x) { for (int i = 0; i < n; i++) { if (a[i] == x) break; } return 0; }";
        let out = transformed(src, "find", Isa::X86_64);
        assert!(!out.contains("i + 3"), "must not unroll: {out}");
    }

    #[test]
    fn leaves_float_arrays_unvectorized() {
        let src = "void f(double *a, int n) { for (int i = 0; i < n; i++) a[i] += 1.5; }";
        let out = transformed(src, "f", Isa::X86_64);
        assert!(!out.contains("__vec_op_i32"), "{out}");
    }

    #[test]
    fn transformed_program_still_parses_and_behaves() {
        use slade_minic::{Interpreter, Value};
        let src = r#"
            void add(int *list, int val, int n) {
                int i;
                for (i = 0; i < n; ++i) list[i] += val;
            }
            int driver(int n) {
                int a[10];
                for (int i = 0; i < 10; i++) a[i] = i;
                add(a, 5, n);
                int s = 0;
                for (int i = 0; i < 10; i++) s = s * 10 + a[i];
                return s;
            }
        "#;
        // The *unrolled* (non-vector) transform must be behavior-preserving;
        // driver is transformed too when named.
        let p = parse_program(src).unwrap();
        let t = transform_program(&p, "driver", Isa::Arm64);
        let printed = pretty_program(&t);
        let p2 = parse_program(&printed).unwrap();
        let mut i1 = Interpreter::new(&p).unwrap();
        let mut i2 = Interpreter::new(&p2).unwrap();
        for n in [0i64, 3, 7, 10] {
            let a = i1.call("driver", &[Value::int(n)]).unwrap().ret;
            let b = i2.call("driver", &[Value::int(n)]).unwrap().ret;
            assert_eq!(a, b, "mismatch at n={n}");
        }
    }
}
