//! AArch64 backend (GCC flavour).
//!
//! Same structure as the x86 backend: `-O0` keeps every value in the frame,
//! `-O3` allocates the callee-saved pool (`x19`–`x23`). There is no ARM
//! auto-vectorization (the source-level vectorizer only fires for x86, as
//! the paper's motivating example does); `-O3` still unrolls.

// `to_rax`/`from_scratch` etc. are emit helpers ("emit code moving v to/from
// rax"), not conversions; the conversion naming lint does not apply.
#![allow(clippy::wrong_self_convention)]

use crate::ir::*;
use crate::regalloc::{allocate, Allocation};
use crate::{CompileError, CompileOpts, OptLevel, Result};
use std::fmt::Write;

/// Callee-saved pool as (32-bit, 64-bit) names.
const POOL: [(&str, &str); 5] =
    [("w19", "x19"), ("w20", "x20"), ("w21", "x21"), ("w22", "x22"), ("w23", "x23")];

#[derive(Debug, Clone, Copy, PartialEq)]
enum Loc {
    Reg(u8),
    /// Positive offset from `x29`.
    Mem(i64),
}

/// Emits the module as AArch64 assembly text.
///
/// # Errors
///
/// Fails on vector instructions, which this backend does not implement (the
/// vectorizer never produces them for ARM).
pub fn emit(m: &Module, opts: CompileOpts) -> Result<String> {
    let alloc = match opts.opt {
        OptLevel::O0 => Allocation::all_spilled(m.vreg_count()),
        OptLevel::O3 => allocate(m, POOL.len()),
    };
    Emitter::new(m, alloc).run()
}

struct Emitter<'m> {
    m: &'m Module,
    alloc: Allocation,
    out: String,
    locs: Vec<Loc>,
    slot_offsets: Vec<i64>,
    save_offsets: Vec<i64>,
    frame: i64,
    last_cmp: Option<(VReg, Pred)>,
}

impl<'m> Emitter<'m> {
    fn new(m: &'m Module, alloc: Allocation) -> Self {
        // Frame layout: [sp .. sp+16) holds x29/x30; everything else above.
        let mut off: i64 = 16;
        let mut save_offsets = Vec::new();
        for _ in &alloc.used {
            save_offsets.push(off);
            off += 8;
        }
        let mut slot_offsets = Vec::with_capacity(m.slots.len());
        for s in &m.slots {
            let align = s.align.max(1) as i64;
            off = (off + align - 1) / align * align;
            slot_offsets.push(off);
            off += s.size.max(1) as i64;
        }
        let mut locs = Vec::with_capacity(m.vreg_count());
        for (i, ty) in m.vreg_tys.iter().enumerate() {
            match alloc.assignment[i] {
                Some(r) if ty.is_int() => locs.push(Loc::Reg(r)),
                _ => {
                    let size = if *ty == Ty::V4I32 { 16 } else { 8 };
                    off = (off + size - 1) / size * size;
                    locs.push(Loc::Mem(off));
                    off += size;
                }
            }
        }
        let frame = (off + 15) / 16 * 16;
        Emitter {
            m,
            alloc,
            out: String::new(),
            locs,
            slot_offsets,
            save_offsets,
            frame,
            last_cmp: None,
        }
    }

    fn line(&mut self, s: &str) {
        let _ = writeln!(self.out, "\t{s}");
    }

    fn label(&mut self, s: &str) {
        let _ = writeln!(self.out, "{s}:");
    }

    fn run(mut self) -> Result<String> {
        if !self.m.rodata.is_empty() {
            self.line(".section .rodata");
            for (label, bytes) in self.m.rodata.clone() {
                self.label(&label);
                let text: String = bytes[..bytes.len().saturating_sub(1)]
                    .iter()
                    .map(|&b| super::x86::escape_byte_pub(b))
                    .collect();
                self.line(&format!(".string \"{text}\""));
            }
        }
        self.line(".text");
        self.line(&format!(".global {}", self.m.name));
        self.line(&format!(".type {}, %function", self.m.name));
        let name = self.m.name.clone();
        self.label(&name);
        self.line(&format!("stp x29, x30, [sp, #-{}]!", self.frame));
        self.line("mov x29, sp");
        let used = self.alloc.used.clone();
        let save_offsets = self.save_offsets.clone();
        for (i, reg) in used.iter().enumerate() {
            self.line(&format!("str {}, [x29, #{}]", POOL[*reg as usize].1, save_offsets[i]));
        }
        // Spill incoming arguments.
        let mut int_idx = 0usize;
        let mut f_idx = 0usize;
        for (vreg, ty) in self.m.params.clone() {
            match ty {
                Ty::F32 => {
                    let mem = self.mem_of(vreg);
                    self.line(&format!("str s{f_idx}, {mem}"));
                    f_idx += 1;
                }
                Ty::F64 => {
                    let mem = self.mem_of(vreg);
                    self.line(&format!("str d{f_idx}, {mem}"));
                    f_idx += 1;
                }
                _ => {
                    if int_idx < 8 {
                        let wide = ty == Ty::I64;
                        let arg =
                            if wide { format!("x{int_idx}") } else { format!("w{int_idx}") };
                        match self.locs[vreg as usize] {
                            Loc::Reg(p) => {
                                let dst =
                                    if wide { POOL[p as usize].1 } else { POOL[p as usize].0 };
                                self.line(&format!("mov {dst}, {arg}"));
                            }
                            Loc::Mem(off) => {
                                self.line(&format!("str {arg}, [x29, #{off}]"));
                            }
                        }
                    }
                    int_idx += 1;
                }
            }
        }
        for (i, block) in self.m.blocks.clone().iter().enumerate() {
            self.label(&format!(".L{i}"));
            self.last_cmp = None;
            for inst in &block.insts {
                self.emit_inst(inst)?;
            }
            self.emit_term(&block.term, i);
        }
        self.line(&format!(".size {}, .-{}", self.m.name, self.m.name));
        Ok(self.out)
    }

    // ---- helpers ----

    fn mem_of(&self, v: VReg) -> String {
        match self.locs[v as usize] {
            Loc::Mem(off) => format!("[x29, #{off}]"),
            Loc::Reg(_) => unreachable!("mem_of on register vreg"),
        }
    }

    fn is_wide(&self, v: VReg) -> bool {
        matches!(self.m.vreg_tys[v as usize], Ty::I64)
    }

    /// Loads an integer vreg into scratch register `w{n}`/`x{n}`.
    fn to_scratch(&mut self, v: VReg, n: u8) {
        let wide = self.is_wide(v);
        let dst = if wide { format!("x{n}") } else { format!("w{n}") };
        match self.locs[v as usize] {
            Loc::Reg(p) => {
                let src = if wide { POOL[p as usize].1 } else { POOL[p as usize].0 };
                self.line(&format!("mov {dst}, {src}"));
            }
            Loc::Mem(off) => {
                self.line(&format!("ldr {dst}, [x29, #{off}]"));
            }
        }
    }

    fn from_scratch(&mut self, v: VReg, n: u8) {
        let wide = self.is_wide(v);
        let src = if wide { format!("x{n}") } else { format!("w{n}") };
        match self.locs[v as usize] {
            Loc::Reg(p) => {
                let dst = if wide { POOL[p as usize].1 } else { POOL[p as usize].0 };
                self.line(&format!("mov {dst}, {src}"));
            }
            Loc::Mem(off) => {
                self.line(&format!("str {src}, [x29, #{off}]"));
            }
        }
    }

    /// Loads an address vreg into `x10`, returning the memory operand.
    fn addr_operand(&mut self, v: VReg) -> String {
        match self.locs[v as usize] {
            Loc::Reg(p) => format!("[{}]", POOL[p as usize].1),
            Loc::Mem(off) => {
                self.line(&format!("ldr x10, [x29, #{off}]"));
                "[x10]".to_string()
            }
        }
    }

    fn to_fp(&mut self, v: VReg, n: u8) {
        let reg = if self.m.vreg_tys[v as usize] == Ty::F32 {
            format!("s{n}")
        } else {
            format!("d{n}")
        };
        let mem = self.mem_of(v);
        self.line(&format!("ldr {reg}, {mem}"));
    }

    fn from_fp(&mut self, v: VReg, n: u8) {
        let reg = if self.m.vreg_tys[v as usize] == Ty::F32 {
            format!("s{n}")
        } else {
            format!("d{n}")
        };
        let mem = self.mem_of(v);
        self.line(&format!("str {reg}, {mem}"));
    }

    fn mov_imm(&mut self, reg_w: &str, reg_x: &str, val: i64, wide: bool) {
        if wide {
            let bits = val as u64;
            let chunks = [
                bits & 0xffff,
                (bits >> 16) & 0xffff,
                (bits >> 32) & 0xffff,
                (bits >> 48) & 0xffff,
            ];
            self.line(&format!("movz {reg_x}, #{}", chunks[0]));
            for (i, c) in chunks.iter().enumerate().skip(1) {
                if *c != 0 {
                    self.line(&format!("movk {reg_x}, #{c}, lsl #{}", 16 * i));
                }
            }
        } else {
            let bits = val as u32;
            let lo = bits & 0xffff;
            let hi = bits >> 16;
            self.line(&format!("movz {reg_w}, #{lo}"));
            if hi != 0 {
                self.line(&format!("movk {reg_w}, #{hi}, lsl #16"));
            }
        }
    }

    // ---- instruction emission ----

    fn emit_inst(&mut self, inst: &Inst) -> Result<()> {
        match inst {
            Inst::IConst { dst, val, ty } => {
                self.last_cmp = None;
                self.mov_imm("w8", "x8", *val, *ty == Ty::I64);
                self.from_scratch(*dst, 8);
            }
            Inst::FConst { dst, val, ty } => {
                self.last_cmp = None;
                if *ty == Ty::F32 {
                    let bits = (*val as f32).to_bits() as i64;
                    self.mov_imm("w8", "x8", bits, false);
                    self.line("fmov s0, w8");
                } else {
                    let bits = val.to_bits() as i64;
                    self.mov_imm("w8", "x8", bits, true);
                    self.line("fmov d0, x8");
                }
                self.from_fp(*dst, 0);
            }
            Inst::Bin { op, dst, a, b, ty } => {
                self.last_cmp = None;
                if ty.is_float() {
                    self.emit_float_bin(*op, *dst, *a, *b, *ty);
                } else {
                    self.emit_int_bin(*op, *dst, *a, *b, *ty);
                }
            }
            Inst::Cmp { pred, dst, a, b, ty } => {
                self.emit_cmp(*pred, *dst, *a, *b, *ty);
            }
            Inst::Load { dst, addr, ty, sext } => {
                self.last_cmp = None;
                let mem = self.addr_operand(*addr);
                match ty {
                    Ty::I8 => {
                        let op = if *sext { "ldrsb" } else { "ldrb" };
                        self.line(&format!("{op} w8, {mem}"));
                        self.from_scratch(*dst, 8);
                    }
                    Ty::I16 => {
                        let op = if *sext { "ldrsh" } else { "ldrh" };
                        self.line(&format!("{op} w8, {mem}"));
                        self.from_scratch(*dst, 8);
                    }
                    Ty::I32 => {
                        self.line(&format!("ldr w8, {mem}"));
                        self.from_scratch(*dst, 8);
                    }
                    Ty::I64 => {
                        self.line(&format!("ldr x8, {mem}"));
                        self.from_scratch(*dst, 8);
                    }
                    Ty::F32 => {
                        self.line(&format!("ldr s0, {mem}"));
                        self.from_fp(*dst, 0);
                    }
                    Ty::F64 => {
                        self.line(&format!("ldr d0, {mem}"));
                        self.from_fp(*dst, 0);
                    }
                    Ty::V4I32 => {
                        return Err(CompileError::Unsupported("ARM vector load".into()));
                    }
                }
            }
            Inst::Store { addr, src, ty } => {
                self.last_cmp = None;
                match ty {
                    Ty::F32 | Ty::F64 => {
                        self.to_fp(*src, 0);
                        let mem = self.addr_operand(*addr);
                        let reg = if *ty == Ty::F32 { "s0" } else { "d0" };
                        self.line(&format!("str {reg}, {mem}"));
                    }
                    Ty::V4I32 => {
                        return Err(CompileError::Unsupported("ARM vector store".into()));
                    }
                    _ => {
                        self.to_scratch(*src, 8);
                        let mem = self.addr_operand(*addr);
                        let (op, reg) = match ty {
                            Ty::I8 => ("strb", "w8"),
                            Ty::I16 => ("strh", "w8"),
                            Ty::I32 => ("str", "w8"),
                            _ => ("str", "x8"),
                        };
                        self.line(&format!("{op} {reg}, {mem}"));
                    }
                }
            }
            Inst::SlotAddr { dst, slot } => {
                self.last_cmp = None;
                let off = self.slot_offsets[*slot as usize];
                match self.locs[*dst as usize] {
                    Loc::Reg(p) => {
                        self.line(&format!("add {}, x29, #{off}", POOL[p as usize].1));
                    }
                    Loc::Mem(_) => {
                        self.line(&format!("add x8, x29, #{off}"));
                        self.from_scratch(*dst, 8);
                    }
                }
            }
            Inst::GlobalAddr { dst, name } => {
                self.last_cmp = None;
                self.line(&format!("adrp x8, {name}"));
                self.line(&format!("add x8, x8, :lo12:{name}"));
                self.from_scratch(*dst, 8);
            }
            Inst::Call { dst, callee, args, arg_tys, ret_ty } => {
                self.last_cmp = None;
                let mut int_idx = 0usize;
                let mut f_idx = 0usize;
                for (v, ty) in args.iter().zip(arg_tys) {
                    match ty {
                        Ty::F32 => {
                            let mem = self.mem_of(*v);
                            self.line(&format!("ldr s{f_idx}, {mem}"));
                            f_idx += 1;
                        }
                        Ty::F64 => {
                            let mem = self.mem_of(*v);
                            self.line(&format!("ldr d{f_idx}, {mem}"));
                            f_idx += 1;
                        }
                        _ => {
                            if int_idx < 8 {
                                let wide = matches!(ty, Ty::I64);
                                let arg = if wide {
                                    format!("x{int_idx}")
                                } else {
                                    format!("w{int_idx}")
                                };
                                match self.locs[*v as usize] {
                                    Loc::Reg(p) => {
                                        let src = if wide {
                                            POOL[p as usize].1
                                        } else {
                                            POOL[p as usize].0
                                        };
                                        self.line(&format!("mov {arg}, {src}"));
                                    }
                                    Loc::Mem(off) => {
                                        self.line(&format!("ldr {arg}, [x29, #{off}]"));
                                    }
                                }
                            }
                            int_idx += 1;
                        }
                    }
                }
                self.line(&format!("bl {callee}"));
                if let (Some(d), Some(rt)) = (dst, ret_ty) {
                    match rt {
                        Ty::F32 | Ty::F64 => self.from_fp(*d, 0),
                        Ty::I64 => {
                            self.line("mov x8, x0");
                            self.from_scratch(*d, 8);
                        }
                        _ => {
                            self.line("mov w8, w0");
                            self.from_scratch(*d, 8);
                        }
                    }
                }
            }
            Inst::Cast { dst, src, kind } => {
                self.last_cmp = None;
                self.emit_cast(*dst, *src, *kind);
            }
            Inst::Copy { dst, src, ty } => {
                self.last_cmp = None;
                if ty.is_float() {
                    self.to_fp(*src, 0);
                    self.from_fp(*dst, 0);
                } else {
                    self.to_scratch(*src, 8);
                    self.from_scratch(*dst, 8);
                }
            }
            Inst::VecLoad { .. }
            | Inst::VecSplat { .. }
            | Inst::VecBin { .. }
            | Inst::VecStore { .. } => {
                return Err(CompileError::Unsupported("vector ops on ARM backend".into()));
            }
        }
        Ok(())
    }

    fn emit_int_bin(&mut self, op: IrBinOp, dst: VReg, a: VReg, b: VReg, ty: Ty) {
        let wide = ty == Ty::I64;
        let (r8, r9, r10) = if wide { ("x8", "x9", "x10") } else { ("w8", "w9", "w10") };
        self.to_scratch(a, 8);
        self.to_scratch(b, 9);
        match op {
            IrBinOp::Add => self.line(&format!("add {r8}, {r8}, {r9}")),
            IrBinOp::Sub => self.line(&format!("sub {r8}, {r8}, {r9}")),
            IrBinOp::Mul => self.line(&format!("mul {r8}, {r8}, {r9}")),
            IrBinOp::DivS => self.line(&format!("sdiv {r8}, {r8}, {r9}")),
            IrBinOp::DivU => self.line(&format!("udiv {r8}, {r8}, {r9}")),
            IrBinOp::RemS => {
                self.line(&format!("sdiv {r10}, {r8}, {r9}"));
                self.line(&format!("msub {r8}, {r10}, {r9}, {r8}"));
            }
            IrBinOp::RemU => {
                self.line(&format!("udiv {r10}, {r8}, {r9}"));
                self.line(&format!("msub {r8}, {r10}, {r9}, {r8}"));
            }
            IrBinOp::And => self.line(&format!("and {r8}, {r8}, {r9}")),
            IrBinOp::Or => self.line(&format!("orr {r8}, {r8}, {r9}")),
            IrBinOp::Xor => self.line(&format!("eor {r8}, {r8}, {r9}")),
            IrBinOp::Shl => self.line(&format!("lsl {r8}, {r8}, {r9}")),
            IrBinOp::ShrS => self.line(&format!("asr {r8}, {r8}, {r9}")),
            IrBinOp::ShrU => self.line(&format!("lsr {r8}, {r8}, {r9}")),
            _ => unreachable!("float op in int path"),
        }
        self.from_scratch(dst, 8);
    }

    fn emit_float_bin(&mut self, op: IrBinOp, dst: VReg, a: VReg, b: VReg, ty: Ty) {
        let (r0, r1) = if ty == Ty::F32 { ("s0", "s1") } else { ("d0", "d1") };
        self.to_fp(a, 0);
        self.to_fp(b, 1);
        let mnem = match op {
            IrBinOp::FAdd => "fadd",
            IrBinOp::FSub => "fsub",
            IrBinOp::FMul => "fmul",
            _ => "fdiv",
        };
        self.line(&format!("{mnem} {r0}, {r0}, {r1}"));
        self.from_fp(dst, 0);
    }

    fn emit_cmp(&mut self, pred: Pred, dst: VReg, a: VReg, b: VReg, ty: Ty) {
        if ty.is_float() {
            let (r0, r1) = if ty == Ty::F32 { ("s0", "s1") } else { ("d0", "d1") };
            self.to_fp(a, 0);
            self.to_fp(b, 1);
            self.line(&format!("fcmp {r0}, {r1}"));
        } else {
            let wide = ty == Ty::I64;
            let (r8, r9) = if wide { ("x8", "x9") } else { ("w8", "w9") };
            self.to_scratch(a, 8);
            self.to_scratch(b, 9);
            self.line(&format!("cmp {r8}, {r9}"));
        }
        let cond = cset_cond(pred);
        self.line(&format!("cset w8, {cond}"));
        self.from_scratch(dst, 8);
        self.last_cmp = Some((dst, pred));
    }

    fn emit_cast(&mut self, dst: VReg, src: VReg, kind: CastKind) {
        match kind {
            CastKind::Sext32to64 => {
                self.to_scratch(src, 8);
                self.line("sxtw x8, w8");
                self.from_scratch(dst, 8);
            }
            CastKind::Zext32to64 => {
                self.to_scratch(src, 8);
                self.line("mov w8, w8");
                self.from_scratch(dst, 8);
            }
            CastKind::Trunc64to32 => {
                self.to_scratch(src, 8);
                self.from_scratch(dst, 8);
            }
            CastKind::Wrap8Sext => {
                self.to_scratch(src, 8);
                self.line("sxtb w8, w8");
                self.from_scratch(dst, 8);
            }
            CastKind::Wrap8Zext => {
                self.to_scratch(src, 8);
                self.line("uxtb w8, w8");
                self.from_scratch(dst, 8);
            }
            CastKind::Wrap16Sext => {
                self.to_scratch(src, 8);
                self.line("sxth w8, w8");
                self.from_scratch(dst, 8);
            }
            CastKind::Wrap16Zext => {
                self.to_scratch(src, 8);
                self.line("uxth w8, w8");
                self.from_scratch(dst, 8);
            }
            CastKind::S32toF32 => {
                self.to_scratch(src, 8);
                self.line("scvtf s0, w8");
                self.from_fp(dst, 0);
            }
            CastKind::S32toF64 => {
                self.to_scratch(src, 8);
                self.line("scvtf d0, w8");
                self.from_fp(dst, 0);
            }
            CastKind::S64toF32 => {
                self.to_scratch(src, 8);
                self.line("scvtf s0, x8");
                self.from_fp(dst, 0);
            }
            CastKind::S64toF64 => {
                self.to_scratch(src, 8);
                self.line("scvtf d0, x8");
                self.from_fp(dst, 0);
            }
            CastKind::F32toS32 => {
                self.to_fp(src, 0);
                self.line("fcvtzs w8, s0");
                self.from_scratch(dst, 8);
            }
            CastKind::F64toS32 => {
                self.to_fp(src, 0);
                self.line("fcvtzs w8, d0");
                self.from_scratch(dst, 8);
            }
            CastKind::F32toS64 => {
                self.to_fp(src, 0);
                self.line("fcvtzs x8, s0");
                self.from_scratch(dst, 8);
            }
            CastKind::F64toS64 => {
                self.to_fp(src, 0);
                self.line("fcvtzs x8, d0");
                self.from_scratch(dst, 8);
            }
            CastKind::F32toF64 => {
                self.to_fp(src, 0);
                self.line("fcvt d0, s0");
                let mem = self.mem_of(dst);
                self.line(&format!("str d0, {mem}"));
            }
            CastKind::F64toF32 => {
                self.to_fp(src, 0);
                self.line("fcvt s0, d0");
                let mem = self.mem_of(dst);
                self.line(&format!("str s0, {mem}"));
            }
        }
    }

    fn emit_term(&mut self, term: &Term, cur: usize) {
        match term {
            Term::Jmp(t) => {
                if *t as usize != cur + 1 {
                    self.line(&format!("b .L{t}"));
                }
            }
            Term::Br { cond, then_bb, else_bb } => {
                if let Some((cv, pred)) = self.last_cmp {
                    if cv == *cond {
                        self.line(&format!("b.{} .L{then_bb}", cset_cond(pred)));
                        if *else_bb as usize != cur + 1 {
                            self.line(&format!("b .L{else_bb}"));
                        }
                        return;
                    }
                }
                self.to_scratch(*cond, 8);
                let reg = if self.is_wide(*cond) { "x8" } else { "w8" };
                self.line(&format!("cbnz {reg}, .L{then_bb}"));
                if *else_bb as usize != cur + 1 {
                    self.line(&format!("b .L{else_bb}"));
                }
            }
            Term::Ret(v) => {
                if let Some(v) = v {
                    match self.m.vreg_tys[*v as usize] {
                        Ty::F32 => {
                            let mem = self.mem_of(*v);
                            self.line(&format!("ldr s0, {mem}"));
                        }
                        Ty::F64 => {
                            let mem = self.mem_of(*v);
                            self.line(&format!("ldr d0, {mem}"));
                        }
                        Ty::I64 => {
                            self.to_scratch(*v, 8);
                            self.line("mov x0, x8");
                        }
                        _ => {
                            self.to_scratch(*v, 8);
                            self.line("mov w0, w8");
                        }
                    }
                }
                let used = self.alloc.used.clone();
                let save_offsets = self.save_offsets.clone();
                for (i, reg) in used.iter().enumerate() {
                    self.line(&format!(
                        "ldr {}, [x29, #{}]",
                        POOL[*reg as usize].1, save_offsets[i]
                    ));
                }
                self.line(&format!("ldp x29, x30, [sp], #{}", self.frame));
                self.line("ret");
            }
        }
    }
}

fn cset_cond(pred: Pred) -> &'static str {
    match pred {
        Pred::Eq | Pred::FEq => "eq",
        Pred::Ne | Pred::FNe => "ne",
        Pred::LtS => "lt",
        Pred::LeS => "le",
        Pred::GtS => "gt",
        Pred::GeS => "ge",
        Pred::LtU => "lo",
        Pred::LeU => "ls",
        Pred::GtU => "hi",
        Pred::GeU => "hs",
        Pred::FLt => "mi",
        Pred::FLe => "ls",
        Pred::FGt => "gt",
        Pred::FGe => "ge",
    }
}

#[cfg(test)]
mod tests {
    use crate::{compile_function, CompileOpts, Isa, OptLevel};
    use slade_minic::parse_program;

    fn asm(src: &str, name: &str, opt: OptLevel) -> String {
        let p = parse_program(src).unwrap();
        compile_function(&p, name, CompileOpts::new(Isa::Arm64, opt)).unwrap()
    }

    #[test]
    fn emits_aarch64_frame() {
        let a = asm("int add(int a, int b) { return a + b; }", "add", OptLevel::O0);
        assert!(a.contains("stp x29, x30"), "{a}");
        assert!(a.contains("ldp x29, x30"), "{a}");
        assert!(a.contains("add w8, w8, w9"), "{a}");
        assert!(a.contains("ret"), "{a}");
    }

    #[test]
    fn remainders_use_msub() {
        let a = asm("int f(int a, int b) { return a % b; }", "f", OptLevel::O0);
        assert!(a.contains("sdiv"), "{a}");
        assert!(a.contains("msub"), "{a}");
    }

    #[test]
    fn branches_fuse_on_arm() {
        let a = asm("int f(int a) { if (a < 10) return 1; return 2; }", "f", OptLevel::O3);
        assert!(a.contains("b.lt") || a.contains("b.ge"), "{a}");
    }

    #[test]
    fn arm_o3_never_vectorizes() {
        let src = r#"
            void add(int *list, int val, int n) {
                for (int i = 0; i < n; i++) list[i] += val;
            }
        "#;
        let a = asm(src, "add", OptLevel::O3);
        assert!(!a.contains("paddd"), "{a}");
        // But it does unroll: the add body appears several times.
        let adds = a.matches("ldr").count();
        assert!(adds > 6, "unroll missing?\n{a}");
    }

    #[test]
    fn float_code_uses_fp_registers() {
        let a = asm("double f(double x, double y) { return x * y; }", "f", OptLevel::O0);
        assert!(a.contains("fmul d0, d0, d1"), "{a}");
    }

    #[test]
    fn calls_use_wx_argument_registers() {
        let src = "long g(int a, long b); long f(int x) { return g(x, 5); }";
        let a = asm(src, "f", OptLevel::O0);
        assert!(a.contains("bl g"), "{a}");
        assert!(a.contains("w0"), "{a}");
        assert!(a.contains("x1"), "{a}");
    }

    #[test]
    fn globals_use_adrp() {
        let a = asm("int g; int f(void) { return g; }", "f", OptLevel::O0);
        assert!(a.contains("adrp x8, g"), "{a}");
        assert!(a.contains(":lo12:g"), "{a}");
    }

    #[test]
    fn unsigned_compare_uses_unsigned_conditions() {
        let a = asm("int f(unsigned a, unsigned b) { return a < b; }", "f", OptLevel::O0);
        assert!(a.contains("cset w8, lo"), "{a}");
    }
}
