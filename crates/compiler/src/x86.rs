//! x86-64 backend (AT&T syntax, GCC flavour).
//!
//! `-O0` spills every value to the stack exactly like GCC; `-O3` runs the
//! linear-scan allocator over the callee-saved pool (`rbx`, `r12`–`r15`)
//! and emits vector instructions (`movdqu`/`pshufd`/`paddd`/`movups`) for
//! the loops the source-level vectorizer transformed.

// `to_rax`/`from_scratch` etc. are emit helpers ("emit code moving v to/from
// rax"), not conversions; the conversion naming lint does not apply.
#![allow(clippy::wrong_self_convention)]

use crate::ir::*;
use crate::regalloc::{allocate, Allocation};
use crate::{CompileOpts, OptLevel, Result};

use std::fmt::Write;

/// Callee-saved integer pool used by the allocator, as (32-bit, 64-bit)
/// register names.
const POOL: [(&str, &str); 5] = [
    ("%ebx", "%rbx"),
    ("%r12d", "%r12"),
    ("%r13d", "%r13"),
    ("%r14d", "%r14"),
    ("%r15d", "%r15"),
];

/// Integer argument registers in ABI order.
const ARG_REGS: [(&str, &str); 6] = [
    ("%edi", "%rdi"),
    ("%esi", "%rsi"),
    ("%edx", "%rdx"),
    ("%ecx", "%rcx"),
    ("%r8d", "%r8"),
    ("%r9d", "%r9"),
];

/// Where a vreg lives during emission.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Loc {
    /// Pool register (index into [`POOL`]).
    Reg(u8),
    /// `offset(%rbp)`.
    Mem(i64),
}

/// Emits the module as x86-64 assembly text.
///
/// # Errors
///
/// Currently infallible for IR produced by this crate, but kept fallible for
/// parity with the ARM backend.
pub fn emit(m: &Module, opts: CompileOpts) -> Result<String> {
    let alloc = match opts.opt {
        OptLevel::O0 => Allocation::all_spilled(m.vreg_count()),
        OptLevel::O3 => allocate(m, POOL.len()),
    };
    Ok(Emitter::new(m, alloc).run())
}

struct Emitter<'m> {
    m: &'m Module,
    alloc: Allocation,
    out: String,
    locs: Vec<Loc>,
    slot_offsets: Vec<i64>,
    frame: i64,
    /// Compare whose flags are still live (for branch fusion).
    last_cmp: Option<(VReg, Pred)>,
}

impl<'m> Emitter<'m> {
    fn new(m: &'m Module, alloc: Allocation) -> Self {
        // Assign frame offsets: first the callee-saved save area, then IR
        // slots, then spilled vregs.
        let mut off: i64 = 0;
        let mut save_offsets = Vec::new();
        for _ in &alloc.used {
            off -= 8;
            save_offsets.push(off);
        }
        let mut slot_offsets = Vec::with_capacity(m.slots.len());
        for s in &m.slots {
            let size = s.size.max(1) as i64;
            let align = s.align.max(1) as i64;
            off -= size;
            off = -((-off + align - 1) / align * align);
            slot_offsets.push(off);
        }
        let mut locs = Vec::with_capacity(m.vreg_count());
        for (i, ty) in m.vreg_tys.iter().enumerate() {
            match alloc.assignment[i] {
                Some(r) if ty.is_int() => locs.push(Loc::Reg(r)),
                _ => {
                    let size = if *ty == Ty::V4I32 { 16 } else { 8 };
                    off -= size;
                    if size == 16 {
                        off = -((-off + 15) / 16 * 16);
                    }
                    locs.push(Loc::Mem(off));
                }
            }
        }
        let frame = (-off + 15) / 16 * 16;
        Emitter { m, alloc, out: String::new(), locs, slot_offsets, frame, last_cmp: None }
    }

    fn line(&mut self, s: &str) {
        let _ = writeln!(self.out, "\t{s}");
    }

    fn label(&mut self, s: &str) {
        let _ = writeln!(self.out, "{s}:");
    }

    fn run(mut self) -> String {
        // rodata for string literals.
        if !self.m.rodata.is_empty() {
            self.line(".section .rodata");
            for (label, bytes) in self.m.rodata.clone() {
                self.label(&label);
                let text: String = bytes[..bytes.len().saturating_sub(1)]
                    .iter()
                    .map(|&b| escape_byte(b))
                    .collect();
                self.line(&format!(".string \"{text}\""));
            }
        }
        self.line(".text");
        self.line(&format!(".globl {}", self.m.name));
        self.line(&format!(".type {}, @function", self.m.name));
        let name = self.m.name.clone();
        self.label(&name);
        self.line(".cfi_startproc");
        self.line("endbr64");
        self.line("pushq %rbp");
        self.line("movq %rsp, %rbp");
        if self.frame > 0 {
            self.line(&format!("subq ${}, %rsp", self.frame));
        }
        // Save used callee-saved registers.
        let used = self.alloc.used.clone();
        for (i, reg) in used.iter().enumerate() {
            let off = -8 * (i as i64 + 1);
            self.line(&format!("movq {}, {off}(%rbp)", POOL[*reg as usize].1));
        }
        // Move incoming arguments into their vreg locations.
        let mut int_idx = 0usize;
        let mut f_idx = 0usize;
        for (vreg, ty) in self.m.params.clone() {
            match ty {
                Ty::F32 => {
                    let dst = self.mem_of(vreg);
                    self.line(&format!("movss %xmm{f_idx}, {dst}"));
                    f_idx += 1;
                }
                Ty::F64 => {
                    let dst = self.mem_of(vreg);
                    self.line(&format!("movsd %xmm{f_idx}, {dst}"));
                    f_idx += 1;
                }
                _ => {
                    if int_idx < ARG_REGS.len() {
                        let (r32, r64) = ARG_REGS[int_idx];
                        match (self.locs[vreg as usize], ty) {
                            (Loc::Reg(p), Ty::I64) => {
                                self.line(&format!("movq {r64}, {}", POOL[p as usize].1))
                            }
                            (Loc::Reg(p), _) => {
                                self.line(&format!("movl {r32}, {}", POOL[p as usize].0))
                            }
                            (Loc::Mem(off), Ty::I64) => {
                                self.line(&format!("movq {r64}, {off}(%rbp)"))
                            }
                            (Loc::Mem(off), _) => {
                                self.line(&format!("movl {r32}, {off}(%rbp)"))
                            }
                        }
                    }
                    int_idx += 1;
                }
            }
        }
        // Emit blocks in order.
        for (i, block) in self.m.blocks.clone().iter().enumerate() {
            self.label(&format!(".L{i}"));
            self.last_cmp = None;
            for inst in &block.insts {
                self.emit_inst(inst);
            }
            self.emit_term(&block.term, i);
        }
        self.line(".cfi_endproc");
        self.line(&format!(".size {}, .-{}", self.m.name, self.m.name));
        self.out
    }

    // ---- location helpers ----

    fn mem_of(&self, v: VReg) -> String {
        match self.locs[v as usize] {
            Loc::Mem(off) => format!("{off}(%rbp)"),
            Loc::Reg(_) => unreachable!("mem_of on register vreg"),
        }
    }

    /// Operand string usable directly in an instruction.
    fn loc_str(&self, v: VReg, wide: bool) -> String {
        match self.locs[v as usize] {
            Loc::Reg(p) => {
                let (r32, r64) = POOL[p as usize];
                if wide {
                    r64.to_string()
                } else {
                    r32.to_string()
                }
            }
            Loc::Mem(off) => format!("{off}(%rbp)"),
        }
    }

    fn is_wide(&self, v: VReg) -> bool {
        matches!(self.m.vreg_tys[v as usize], Ty::I64)
    }

    /// Loads integer vreg `v` into `%rax`/`%eax`.
    fn to_rax(&mut self, v: VReg) {
        let wide = self.is_wide(v);
        let src = self.loc_str(v, wide);
        let op = if wide { "movq" } else { "movl" };
        let dst = if wide { "%rax" } else { "%eax" };
        self.line(&format!("{op} {src}, {dst}"));
    }

    /// Loads address vreg `v` into `%r10`, returning the `(%r10)` operand
    /// (or `(%reg)` when the vreg is register-allocated).
    fn addr_operand(&mut self, v: VReg) -> String {
        match self.locs[v as usize] {
            Loc::Reg(p) => format!("({})", POOL[p as usize].1),
            Loc::Mem(off) => {
                self.line(&format!("movq {off}(%rbp), %r10"));
                "(%r10)".to_string()
            }
        }
    }

    /// Stores `%rax`/`%eax` into vreg `v`.
    fn from_rax(&mut self, v: VReg) {
        let wide = self.is_wide(v);
        let dst = self.loc_str(v, wide);
        let op = if wide { "movq" } else { "movl" };
        let src = if wide { "%rax" } else { "%eax" };
        self.line(&format!("{op} {src}, {dst}"));
    }

    /// Loads a float vreg into `%xmm0` or `%xmm1`.
    fn to_xmm(&mut self, v: VReg, xmm: usize) {
        let mem = self.mem_of(v);
        let op = if self.m.vreg_tys[v as usize] == Ty::F32 { "movss" } else { "movsd" };
        self.line(&format!("{op} {mem}, %xmm{xmm}"));
    }

    fn from_xmm(&mut self, v: VReg, xmm: usize) {
        let mem = self.mem_of(v);
        let op = if self.m.vreg_tys[v as usize] == Ty::F32 { "movss" } else { "movsd" };
        self.line(&format!("{op} %xmm{xmm}, {mem}"));
    }

    // ---- instruction emission ----

    fn emit_inst(&mut self, inst: &Inst) {
        match inst {
            Inst::IConst { dst, val, ty } => {
                self.last_cmp = None;
                if *ty == Ty::I64 && (*val > i32::MAX as i64 || *val < i32::MIN as i64) {
                    self.line(&format!("movabsq ${val}, %rax"));
                    self.from_rax(*dst);
                } else {
                    let wide = *ty == Ty::I64;
                    let op = if wide { "movq" } else { "movl" };
                    let loc = self.loc_str(*dst, wide);
                    self.line(&format!("{op} ${val}, {loc}"));
                }
            }
            Inst::FConst { dst, val, ty } => {
                self.last_cmp = None;
                if *ty == Ty::F32 {
                    let bits = (*val as f32).to_bits();
                    self.line(&format!("movl ${bits}, %eax"));
                    self.line("movd %eax, %xmm0");
                } else {
                    let bits = val.to_bits();
                    self.line(&format!("movabsq ${}, %rax", bits as i64));
                    self.line("movq %rax, %xmm0");
                }
                self.from_xmm(*dst, 0);
            }
            Inst::Bin { op, dst, a, b, ty } => {
                self.last_cmp = None;
                if ty.is_float() {
                    self.emit_float_bin(*op, *dst, *a, *b, *ty);
                } else {
                    self.emit_int_bin(*op, *dst, *a, *b, *ty);
                }
            }
            Inst::Cmp { pred, dst, a, b, ty } => {
                self.emit_cmp(*pred, *dst, *a, *b, *ty);
            }
            Inst::Load { dst, addr, ty, sext } => {
                self.last_cmp = None;
                let mem = self.addr_operand(*addr);
                match ty {
                    Ty::I8 => {
                        let op = if *sext { "movsbl" } else { "movzbl" };
                        self.line(&format!("{op} {mem}, %eax"));
                        self.from_rax(*dst);
                    }
                    Ty::I16 => {
                        let op = if *sext { "movswl" } else { "movzwl" };
                        self.line(&format!("{op} {mem}, %eax"));
                        self.from_rax(*dst);
                    }
                    Ty::I32 => {
                        self.line(&format!("movl {mem}, %eax"));
                        self.from_rax(*dst);
                    }
                    Ty::I64 => {
                        self.line(&format!("movq {mem}, %rax"));
                        self.from_rax(*dst);
                    }
                    Ty::F32 => {
                        self.line(&format!("movss {mem}, %xmm0"));
                        self.from_xmm(*dst, 0);
                    }
                    Ty::F64 => {
                        self.line(&format!("movsd {mem}, %xmm0"));
                        self.from_xmm(*dst, 0);
                    }
                    Ty::V4I32 => {
                        self.line(&format!("movdqu {mem}, %xmm0"));
                        let slot = self.mem_of(*dst);
                        self.line(&format!("movdqu %xmm0, {slot}"));
                    }
                }
            }
            Inst::Store { addr, src, ty } => {
                self.last_cmp = None;
                match ty {
                    Ty::F32 | Ty::F64 => {
                        self.to_xmm(*src, 0);
                        let mem = self.addr_operand(*addr);
                        let op = if *ty == Ty::F32 { "movss" } else { "movsd" };
                        self.line(&format!("{op} %xmm0, {mem}"));
                    }
                    Ty::V4I32 => {
                        let slot = self.mem_of(*src);
                        self.line(&format!("movdqu {slot}, %xmm0"));
                        let mem = self.addr_operand(*addr);
                        self.line(&format!("movups %xmm0, {mem}"));
                    }
                    _ => {
                        self.to_rax(*src);
                        let mem = self.addr_operand(*addr);
                        let (op, reg) = match ty {
                            Ty::I8 => ("movb", "%al"),
                            Ty::I16 => ("movw", "%ax"),
                            Ty::I32 => ("movl", "%eax"),
                            _ => ("movq", "%rax"),
                        };
                        self.line(&format!("{op} {reg}, {mem}"));
                    }
                }
            }
            Inst::SlotAddr { dst, slot } => {
                self.last_cmp = None;
                let off = self.slot_offsets[*slot as usize];
                match self.locs[*dst as usize] {
                    Loc::Reg(p) => {
                        self.line(&format!("leaq {off}(%rbp), {}", POOL[p as usize].1))
                    }
                    Loc::Mem(_) => {
                        self.line(&format!("leaq {off}(%rbp), %rax"));
                        self.from_rax(*dst);
                    }
                }
            }
            Inst::GlobalAddr { dst, name } => {
                self.last_cmp = None;
                match self.locs[*dst as usize] {
                    Loc::Reg(p) => {
                        self.line(&format!("leaq {name}(%rip), {}", POOL[p as usize].1))
                    }
                    Loc::Mem(_) => {
                        self.line(&format!("leaq {name}(%rip), %rax"));
                        self.from_rax(*dst);
                    }
                }
            }
            Inst::Call { dst, callee, args, arg_tys, ret_ty } => {
                self.last_cmp = None;
                let mut int_idx = 0usize;
                let mut f_idx = 0usize;
                for (v, ty) in args.iter().zip(arg_tys) {
                    match ty {
                        Ty::F32 => {
                            self.to_xmm_n(*v, f_idx);
                            f_idx += 1;
                        }
                        Ty::F64 => {
                            self.to_xmm_n(*v, f_idx);
                            f_idx += 1;
                        }
                        _ => {
                            if int_idx < ARG_REGS.len() {
                                let (r32, r64) = ARG_REGS[int_idx];
                                let wide = matches!(ty, Ty::I64);
                                let src = self.loc_str(*v, wide);
                                let op = if wide { "movq" } else { "movl" };
                                let reg = if wide { r64 } else { r32 };
                                self.line(&format!("{op} {src}, {reg}"));
                            }
                            int_idx += 1;
                        }
                    }
                }
                if f_idx > 0 {
                    self.line(&format!("movl ${f_idx}, %eax"));
                }
                self.line(&format!("call {callee}"));
                if let (Some(d), Some(rt)) = (dst, ret_ty) {
                    match rt {
                        Ty::F32 | Ty::F64 => self.from_xmm(*d, 0),
                        _ => self.from_rax(*d),
                    }
                }
            }
            Inst::Cast { dst, src, kind } => {
                self.last_cmp = None;
                self.emit_cast(*dst, *src, *kind);
            }
            Inst::Copy { dst, src, ty } => {
                self.last_cmp = None;
                if ty.is_float() {
                    self.to_xmm(*src, 0);
                    self.from_xmm(*dst, 0);
                } else {
                    self.to_rax(*src);
                    self.from_rax(*dst);
                }
            }
            Inst::VecLoad { dst, addr } => {
                self.last_cmp = None;
                let mem = self.addr_operand(*addr);
                self.line(&format!("movdqu {mem}, %xmm0"));
                let slot = self.mem_of(*dst);
                self.line(&format!("movdqu %xmm0, {slot}"));
            }
            Inst::VecSplat { dst, src } => {
                self.last_cmp = None;
                self.to_rax(*src);
                self.line("movd %eax, %xmm0");
                self.line("pshufd $0, %xmm0, %xmm0");
                let slot = self.mem_of(*dst);
                self.line(&format!("movdqu %xmm0, {slot}"));
            }
            Inst::VecBin { op, dst, a, b } => {
                self.last_cmp = None;
                let sa = self.mem_of(*a);
                let sb = self.mem_of(*b);
                self.line(&format!("movdqu {sa}, %xmm0"));
                self.line(&format!("movdqu {sb}, %xmm1"));
                let mnem = match op {
                    IrBinOp::Add => "paddd",
                    IrBinOp::Sub => "psubd",
                    _ => "pmulld",
                };
                self.line(&format!("{mnem} %xmm1, %xmm0"));
                let slot = self.mem_of(*dst);
                self.line(&format!("movdqu %xmm0, {slot}"));
            }
            Inst::VecStore { addr, src } => {
                self.last_cmp = None;
                let slot = self.mem_of(*src);
                self.line(&format!("movdqu {slot}, %xmm0"));
                let mem = self.addr_operand(*addr);
                self.line(&format!("movups %xmm0, {mem}"));
            }
        }
    }

    fn to_xmm_n(&mut self, v: VReg, xmm: usize) {
        let mem = self.mem_of(v);
        let op = if self.m.vreg_tys[v as usize] == Ty::F32 { "movss" } else { "movsd" };
        self.line(&format!("{op} {mem}, %xmm{xmm}"));
    }

    fn emit_int_bin(&mut self, op: IrBinOp, dst: VReg, a: VReg, b: VReg, ty: Ty) {
        let wide = ty == Ty::I64;
        let suffix = if wide { "q" } else { "l" };
        let acc = if wide { "%rax" } else { "%eax" };
        match op {
            IrBinOp::Add
            | IrBinOp::Sub
            | IrBinOp::Mul
            | IrBinOp::And
            | IrBinOp::Or
            | IrBinOp::Xor => {
                let mnem = match op {
                    IrBinOp::Add => "add",
                    IrBinOp::Sub => "sub",
                    IrBinOp::Mul => "imul",
                    IrBinOp::And => "and",
                    IrBinOp::Or => "or",
                    _ => "xor",
                };
                self.to_rax(a);
                let bloc = self.loc_str(b, wide);
                self.line(&format!("{mnem}{suffix} {bloc}, {acc}"));
                self.from_rax(dst);
            }
            IrBinOp::DivS | IrBinOp::RemS => {
                self.to_rax(a);
                // Divisor must be in a register or memory, not rdx.
                let bloc = self.loc_str(b, wide);
                self.line(&format!(
                    "mov{suffix} {bloc}, {}",
                    if wide { "%r11" } else { "%r11d" }
                ));
                self.line(if wide { "cqto" } else { "cltd" });
                self.line(&format!("idiv{suffix} {}", if wide { "%r11" } else { "%r11d" }));
                if op == IrBinOp::RemS {
                    self.line(&format!(
                        "mov{suffix} {}, {acc}",
                        if wide { "%rdx" } else { "%edx" }
                    ));
                }
                self.from_rax(dst);
            }
            IrBinOp::DivU | IrBinOp::RemU => {
                self.to_rax(a);
                let bloc = self.loc_str(b, wide);
                self.line(&format!(
                    "mov{suffix} {bloc}, {}",
                    if wide { "%r11" } else { "%r11d" }
                ));
                self.line(&format!("xor{suffix} {0}, {0}", if wide { "%rdx" } else { "%edx" }));
                self.line(&format!("div{suffix} {}", if wide { "%r11" } else { "%r11d" }));
                if op == IrBinOp::RemU {
                    self.line(&format!(
                        "mov{suffix} {}, {acc}",
                        if wide { "%rdx" } else { "%edx" }
                    ));
                }
                self.from_rax(dst);
            }
            IrBinOp::Shl | IrBinOp::ShrS | IrBinOp::ShrU => {
                let mnem = match op {
                    IrBinOp::Shl => "sal",
                    IrBinOp::ShrS => "sar",
                    _ => "shr",
                };
                let bloc = self.loc_str(b, false);
                self.line(&format!("movl {bloc}, %ecx"));
                self.to_rax(a);
                self.line(&format!("{mnem}{suffix} %cl, {acc}"));
                self.from_rax(dst);
            }
            _ => unreachable!("float op in int path"),
        }
    }

    fn emit_float_bin(&mut self, op: IrBinOp, dst: VReg, a: VReg, b: VReg, ty: Ty) {
        let suffix = if ty == Ty::F32 { "ss" } else { "sd" };
        self.to_xmm(a, 0);
        let bmem = self.mem_of(b);
        let mnem = match op {
            IrBinOp::FAdd => "add",
            IrBinOp::FSub => "sub",
            IrBinOp::FMul => "mul",
            _ => "div",
        };
        self.line(&format!("{mnem}{suffix} {bmem}, %xmm0"));
        self.from_xmm(dst, 0);
    }

    fn emit_cmp(&mut self, pred: Pred, dst: VReg, a: VReg, b: VReg, ty: Ty) {
        if ty.is_float() {
            let suffix = if ty == Ty::F32 { "ss" } else { "sd" };
            self.to_xmm(a, 0);
            let bmem = self.mem_of(b);
            self.line(&format!("ucomi{suffix} {bmem}, %xmm0"));
        } else {
            let wide = ty == Ty::I64;
            self.to_rax(a);
            let bloc = self.loc_str(b, wide);
            let acc = if wide { "%rax" } else { "%eax" };
            self.line(&format!("cmp{} {bloc}, {acc}", if wide { "q" } else { "l" }));
        }
        let set = setcc(pred);
        self.line(&format!("{set} %al"));
        self.line("movzbl %al, %eax");
        self.from_rax(dst);
        self.last_cmp = Some((dst, pred));
    }

    fn emit_cast(&mut self, dst: VReg, src: VReg, kind: CastKind) {
        match kind {
            CastKind::Sext32to64 => {
                let s = self.loc_str(src, false);
                self.line(&format!("movslq {s}, %rax"));
                self.from_rax(dst);
            }
            CastKind::Zext32to64 => {
                let s = self.loc_str(src, false);
                self.line(&format!("movl {s}, %eax"));
                self.from_rax(dst);
            }
            CastKind::Trunc64to32 => {
                self.to_rax(src);
                self.from_rax(dst);
            }
            CastKind::Wrap8Sext => {
                self.to_rax(src);
                self.line("movsbl %al, %eax");
                self.from_rax(dst);
            }
            CastKind::Wrap8Zext => {
                self.to_rax(src);
                self.line("movzbl %al, %eax");
                self.from_rax(dst);
            }
            CastKind::Wrap16Sext => {
                self.to_rax(src);
                self.line("movswl %ax, %eax");
                self.from_rax(dst);
            }
            CastKind::Wrap16Zext => {
                self.to_rax(src);
                self.line("movzwl %ax, %eax");
                self.from_rax(dst);
            }
            CastKind::S32toF32 => {
                self.to_rax(src);
                self.line("cvtsi2ss %eax, %xmm0");
                self.from_xmm(dst, 0);
            }
            CastKind::S32toF64 => {
                self.to_rax(src);
                self.line("cvtsi2sd %eax, %xmm0");
                self.from_xmm(dst, 0);
            }
            CastKind::S64toF32 => {
                self.to_rax(src);
                self.line("cvtsi2ssq %rax, %xmm0");
                self.from_xmm(dst, 0);
            }
            CastKind::S64toF64 => {
                self.to_rax(src);
                self.line("cvtsi2sdq %rax, %xmm0");
                self.from_xmm(dst, 0);
            }
            CastKind::F32toS32 => {
                self.to_xmm(src, 0);
                self.line("cvttss2si %xmm0, %eax");
                self.from_rax(dst);
            }
            CastKind::F64toS32 => {
                self.to_xmm(src, 0);
                self.line("cvttsd2si %xmm0, %eax");
                self.from_rax(dst);
            }
            CastKind::F32toS64 => {
                self.to_xmm(src, 0);
                self.line("cvttss2siq %xmm0, %rax");
                self.from_rax(dst);
            }
            CastKind::F64toS64 => {
                self.to_xmm(src, 0);
                self.line("cvttsd2siq %xmm0, %rax");
                self.from_rax(dst);
            }
            CastKind::F32toF64 => {
                self.to_xmm(src, 0);
                self.line("cvtss2sd %xmm0, %xmm0");
                self.from_xmm(dst, 0);
            }
            CastKind::F64toF32 => {
                self.to_xmm(src, 0);
                self.line("cvtsd2ss %xmm0, %xmm0");
                self.from_xmm(dst, 0);
            }
        }
    }

    fn emit_term(&mut self, term: &Term, cur: usize) {
        match term {
            Term::Jmp(t) => {
                if *t as usize != cur + 1 {
                    self.line(&format!("jmp .L{t}"));
                }
            }
            Term::Br { cond, then_bb, else_bb } => {
                // Fuse with the preceding compare when its flags are live.
                if let Some((cv, pred)) = self.last_cmp {
                    if cv == *cond {
                        let jcc = jcc_for(pred);
                        self.line(&format!("{jcc} .L{then_bb}"));
                        if *else_bb as usize != cur + 1 {
                            self.line(&format!("jmp .L{else_bb}"));
                        }
                        return;
                    }
                }
                let wide = self.is_wide(*cond);
                self.to_rax(*cond);
                let acc = if wide { "%rax" } else { "%eax" };
                self.line(&format!("test{} {acc}, {acc}", if wide { "q" } else { "l" }));
                self.line(&format!("jne .L{then_bb}"));
                if *else_bb as usize != cur + 1 {
                    self.line(&format!("jmp .L{else_bb}"));
                }
            }
            Term::Ret(v) => {
                if let Some(v) = v {
                    match self.m.vreg_tys[*v as usize] {
                        Ty::F32 | Ty::F64 => self.to_xmm(*v, 0),
                        _ => self.to_rax(*v),
                    }
                }
                // Restore callee-saved registers.
                let used = self.alloc.used.clone();
                for (i, reg) in used.iter().enumerate() {
                    let off = -8 * (i as i64 + 1);
                    self.line(&format!("movq {off}(%rbp), {}", POOL[*reg as usize].1));
                }
                self.line("leave");
                self.line("ret");
            }
        }
    }
}

fn setcc(pred: Pred) -> &'static str {
    match pred {
        Pred::Eq | Pred::FEq => "sete",
        Pred::Ne | Pred::FNe => "setne",
        Pred::LtS => "setl",
        Pred::LeS => "setle",
        Pred::GtS => "setg",
        Pred::GeS => "setge",
        Pred::LtU | Pred::FLt => "setb",
        Pred::LeU | Pred::FLe => "setbe",
        Pred::GtU | Pred::FGt => "seta",
        Pred::GeU | Pred::FGe => "setae",
    }
}

fn jcc_for(pred: Pred) -> &'static str {
    match pred {
        Pred::Eq | Pred::FEq => "je",
        Pred::Ne | Pred::FNe => "jne",
        Pred::LtS => "jl",
        Pred::LeS => "jle",
        Pred::GtS => "jg",
        Pred::GeS => "jge",
        Pred::LtU | Pred::FLt => "jb",
        Pred::LeU | Pred::FLe => "jbe",
        Pred::GtU | Pred::FGt => "ja",
        Pred::GeU | Pred::FGe => "jae",
    }
}

/// Escapes one byte for a `.string` directive (shared with the ARM backend).
pub fn escape_byte_pub(b: u8) -> String {
    escape_byte(b)
}

fn escape_byte(b: u8) -> String {
    match b {
        b'\n' => "\\n".to_string(),
        b'\t' => "\\t".to_string(),
        b'\r' => "\\r".to_string(),
        b'"' => "\\\"".to_string(),
        b'\\' => "\\\\".to_string(),
        0x20..=0x7e => (b as char).to_string(),
        other => format!("\\{:03o}", other),
    }
}

#[cfg(test)]
mod tests {
    use crate::{compile_function, CompileOpts, Isa, OptLevel};
    use slade_minic::parse_program;

    fn asm(src: &str, name: &str, opt: OptLevel) -> String {
        let p = parse_program(src).unwrap();
        compile_function(&p, name, CompileOpts::new(Isa::X86_64, opt)).unwrap()
    }

    #[test]
    fn o0_is_stack_heavy() {
        let a = asm("int add(int a, int b) { return a + b; }", "add", OptLevel::O0);
        assert!(a.contains("pushq %rbp"), "{a}");
        assert!(a.contains("(%rbp)"), "{a}");
        assert!(a.contains("addl"), "{a}");
        assert!(a.contains("leave"), "{a}");
    }

    #[test]
    fn o3_is_shorter_than_o0() {
        let src = "int f(int a, int b, int c) { int x = a + b; int y = x * c; return y - a; }";
        let o0 = asm(src, "f", OptLevel::O0);
        let o3 = asm(src, "f", OptLevel::O3);
        assert!(o3.lines().count() < o0.lines().count(), "O3 not smaller:\n{o3}\n\nvs\n\n{o0}");
    }

    #[test]
    fn o3_vectorizes_the_motivating_loop() {
        let src = r#"
            void add(int *list, int val, int n) {
                int i;
                for (i = 0; i < n; ++i) { list[i] += val; }
            }
        "#;
        let o3 = asm(src, "add", OptLevel::O3);
        assert!(o3.contains("paddd"), "no vector add:\n{o3}");
        assert!(o3.contains("pshufd"), "no splat:\n{o3}");
        assert!(o3.contains("movdqu"), "no vector load:\n{o3}");
    }

    #[test]
    fn division_uses_idiv_protocol() {
        let a = asm("int f(int a, int b) { return a / b; }", "f", OptLevel::O0);
        assert!(a.contains("cltd"), "{a}");
        assert!(a.contains("idivl"), "{a}");
        let m = asm("int f(int a, int b) { return a % b; }", "f", OptLevel::O0);
        assert!(m.contains("%edx"), "{m}");
    }

    #[test]
    fn unsigned_division_zeroes_edx() {
        let a = asm("unsigned f(unsigned a, unsigned b) { return a / b; }", "f", OptLevel::O0);
        assert!(a.contains("divl"), "{a}");
        assert!(!a.contains("cltd"), "{a}");
    }

    #[test]
    fn calls_use_sysv_argument_registers() {
        let src = "int g(int a, int b, int c); int f(int x) { return g(x, 2, 3); }";
        let a = asm(src, "f", OptLevel::O0);
        assert!(a.contains("%edi"), "{a}");
        assert!(a.contains("%esi"), "{a}");
        assert!(a.contains("call g"), "{a}");
    }

    #[test]
    fn branches_fuse_compare_and_jump() {
        let a = asm("int f(int a) { if (a < 10) return 1; return 2; }", "f", OptLevel::O3);
        assert!(a.contains("jl .L") || a.contains("jge .L"), "no fused branch:\n{a}");
    }

    #[test]
    fn float_code_uses_sse_scalar_ops() {
        let a = asm("double f(double x, double y) { return x * y + 1.0; }", "f", OptLevel::O0);
        assert!(a.contains("mulsd"), "{a}");
        assert!(a.contains("addsd"), "{a}");
        assert!(a.contains("movsd"), "{a}");
    }

    #[test]
    fn strings_emit_rodata() {
        let a = asm("int f(char *s) { return strcmp(s, \"hi\"); }", "f", OptLevel::O0);
        assert!(a.contains(".section .rodata"), "{a}");
        assert!(a.contains(".string \"hi\""), "{a}");
    }

    #[test]
    fn switch_lowers_to_compare_chain() {
        let a = asm(
            "int f(int x) { switch (x) { case 1: return 10; case 2: return 20; default: return 0; } }",
            "f",
            OptLevel::O0,
        );
        let cmps = a.matches("cmpl").count();
        assert!(cmps >= 2, "dispatch chain missing:\n{a}");
    }

    #[test]
    fn globals_use_rip_relative_addressing() {
        let a = asm("int g; int f(void) { return g; }", "f", OptLevel::O0);
        assert!(a.contains("g(%rip)"), "{a}");
    }
}
