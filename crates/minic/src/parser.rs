//! Recursive-descent parser for MiniC.
//!
//! The parser tracks typedef and struct names so that `T * p;` parses as a
//! declaration when `T` is a type, exactly like a real C parser. A *lenient*
//! mode (used by the type-inference engine, mirroring PsycheC's treatment of
//! partial programs) additionally accepts unknown identifiers in type
//! position when the surrounding syntax makes the declaration reading
//! unambiguous enough, recording them in [`Program::unknown_types`].

use crate::ast::*;
use crate::token::{is_keyword, Token, TokenKind};
use crate::types::{IntKind, StructDef, Type};
use crate::{ErrorKind, Lexer, MiniCError, Result};
use std::collections::HashSet;

/// Parses a complete MiniC translation unit in strict mode.
///
/// # Errors
///
/// Returns the first lex or parse error encountered.
///
/// # Example
///
/// ```
/// let p = slade_minic::parse_program("int id(int x) { return x; }").unwrap();
/// assert_eq!(p.functions().count(), 1);
/// ```
pub fn parse_program(src: &str) -> Result<Program> {
    Parser::new(src, false)?.parse()
}

/// Parses in lenient mode: unknown identifiers may act as type names and are
/// recorded in [`Program::unknown_types`] for the type-inference engine.
///
/// # Errors
///
/// Returns the first lex or parse error encountered.
pub fn parse_program_lenient(src: &str) -> Result<Program> {
    Parser::new(src, true)?.parse()
}

/// The MiniC parser. Most users want [`parse_program`]; the struct is public
/// so embedders can parse single expressions or statements.
#[derive(Debug)]
pub struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    lenient: bool,
    type_names: HashSet<String>,
    struct_names: HashSet<String>,
    unknown_types: Vec<String>,
    next_id: NodeId,
}

impl Parser {
    /// Creates a parser over `src`. `lenient` enables unknown-type recovery.
    ///
    /// # Errors
    ///
    /// Fails if lexing fails.
    pub fn new(src: &str, lenient: bool) -> Result<Self> {
        let tokens = Lexer::new(src).tokenize()?;
        let mut type_names = HashSet::new();
        // Common stdint/stddef aliases are treated as built-in typedefs so
        // real-world-looking code parses; sema resolves them.
        for (name, _) in builtin_typedefs() {
            type_names.insert(name.to_string());
        }
        Ok(Parser {
            tokens,
            pos: 0,
            lenient,
            type_names,
            struct_names: HashSet::new(),
            unknown_types: Vec::new(),
            next_id: 0,
        })
    }

    /// Parses the whole token stream into a [`Program`].
    ///
    /// # Errors
    ///
    /// Returns the first parse error.
    pub fn parse(mut self) -> Result<Program> {
        let mut items = Vec::new();
        // Built-in typedefs are materialized so that layout/sema see them.
        for (name, ty) in builtin_typedefs() {
            items.push(Item::Typedef { name: name.to_string(), ty });
        }
        while !self.at_eof() {
            self.parse_top_level(&mut items)?;
        }
        let mut unknown = std::mem::take(&mut self.unknown_types);
        unknown.sort();
        unknown.dedup();
        Ok(Program { items, node_count: self.next_id, unknown_types: unknown })
    }

    // ---- token helpers ----

    fn cur(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn line(&self) -> u32 {
        self.cur().line
    }

    fn at_eof(&self) -> bool {
        matches!(self.cur().kind, TokenKind::Eof)
    }

    fn bump(&mut self) -> Token {
        let t = self.cur().clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn eat_punct(&mut self, p: &str) -> bool {
        if matches!(&self.cur().kind, TokenKind::Punct(q) if *q == p) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, p: &str) -> Result<()> {
        if self.eat_punct(p) {
            Ok(())
        } else {
            Err(self.err(format!("expected `{p}`, found `{}`", self.cur().kind)))
        }
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if matches!(&self.cur().kind, TokenKind::Ident(s) if s == kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn peek_kw(&self, kw: &str) -> bool {
        matches!(&self.cur().kind, TokenKind::Ident(s) if s == kw)
    }

    fn peek_punct(&self, p: &str) -> bool {
        matches!(&self.cur().kind, TokenKind::Punct(q) if *q == p)
    }

    fn peek_kind_at(&self, n: usize) -> &TokenKind {
        &self.tokens[(self.pos + n).min(self.tokens.len() - 1)].kind
    }

    fn expect_ident(&mut self) -> Result<String> {
        match &self.cur().kind {
            TokenKind::Ident(s) if !is_keyword(s) => {
                let s = s.clone();
                self.bump();
                Ok(s)
            }
            other => Err(self.err(format!("expected identifier, found `{other}`"))),
        }
    }

    fn err(&self, msg: impl Into<String>) -> MiniCError {
        MiniCError::new(ErrorKind::Parse, msg, self.line())
    }

    fn fresh_id(&mut self) -> NodeId {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    fn expr(&mut self, kind: ExprKind, line: u32) -> Expr {
        Expr { kind, id: self.fresh_id(), line }
    }

    // ---- type parsing ----

    /// True if the current token begins a type in the current mode.
    fn at_type_start(&self) -> bool {
        match &self.cur().kind {
            TokenKind::Ident(s) => {
                matches!(
                    s.as_str(),
                    "void"
                        | "char"
                        | "short"
                        | "int"
                        | "long"
                        | "float"
                        | "double"
                        | "signed"
                        | "unsigned"
                        | "struct"
                        | "const"
                        | "volatile"
                ) || self.type_names.contains(s)
            }
            _ => false,
        }
    }

    /// In lenient mode: does `ident` at the cursor look like an unknown type
    /// name used in a declaration (`T x`, `T * x`, `T *restrict x`)?
    fn looks_like_unknown_type_decl(&self) -> bool {
        if !self.lenient {
            return false;
        }
        let TokenKind::Ident(s) = &self.cur().kind else { return false };
        if is_keyword(s) || self.type_names.contains(s) {
            return false;
        }
        let mut n = 1;
        // Skip pointer stars and qualifier keywords.
        let mut saw_star = false;
        loop {
            match self.peek_kind_at(n) {
                TokenKind::Punct("*") => {
                    saw_star = true;
                    n += 1;
                }
                TokenKind::Ident(q)
                    if matches!(q.as_str(), "const" | "restrict" | "__restrict") =>
                {
                    n += 1;
                }
                _ => break,
            }
        }
        match self.peek_kind_at(n) {
            // `T x ...` where `...` continues a declarator.
            TokenKind::Ident(x) if !is_keyword(x) => {
                saw_star
                    || matches!(
                        self.peek_kind_at(n + 1),
                        TokenKind::Punct(";")
                            | TokenKind::Punct("=")
                            | TokenKind::Punct(",")
                            | TokenKind::Punct(")")
                            | TokenKind::Punct("[")
                            | TokenKind::Punct("(")
                    )
            }
            _ => false,
        }
    }

    /// Parses declaration specifiers plus pointer declarator prefix; returns
    /// the base type (before array suffixes) and flags.
    fn parse_type_specifiers(&mut self) -> Result<Type> {
        // Qualifiers and storage are accepted and discarded.
        loop {
            if self.eat_kw("const")
                || self.eat_kw("volatile")
                || self.eat_kw("restrict")
                || self.eat_kw("__restrict")
                || self.eat_kw("inline")
            {
                continue;
            }
            break;
        }
        if self.eat_kw("struct") {
            let name = self.expect_ident()?;
            self.struct_names.insert(name.clone());
            return Ok(Type::Struct(name));
        }
        let mut signedness: Option<bool> = None; // Some(true) = unsigned
        let mut base: Option<&str> = None;
        let mut longs = 0;
        while let TokenKind::Ident(s) = &self.cur().kind {
            match s.as_str() {
                "unsigned" => {
                    signedness = Some(true);
                    self.bump();
                }
                "signed" => {
                    signedness = Some(false);
                    self.bump();
                }
                "long" => {
                    longs += 1;
                    self.bump();
                }
                "void" | "char" | "short" | "int" | "float" | "double" if base.is_none() => {
                    base = Some(match s.as_str() {
                        "void" => "void",
                        "char" => "char",
                        "short" => "short",
                        "int" => "int",
                        "float" => "float",
                        "double" => "double",
                        _ => unreachable!(),
                    });
                    self.bump();
                }
                "const" | "volatile" | "restrict" | "__restrict" => {
                    self.bump();
                }
                _ => break,
            }
        }
        let unsigned = signedness == Some(true);
        if base.is_none() && longs == 0 && signedness.is_none() {
            // Typedef name or (lenient) unknown type.
            let TokenKind::Ident(s) = &self.cur().kind else {
                return Err(self.err("expected type"));
            };
            let s = s.clone();
            if self.type_names.contains(&s) {
                self.bump();
                return Ok(Type::Named(s));
            }
            if self.lenient && !is_keyword(&s) {
                self.bump();
                self.unknown_types.push(s.clone());
                return Ok(Type::Named(s));
            }
            return Err(self.err(format!("unknown type name `{s}`")));
        }
        let ty = match (base, longs) {
            (Some("void"), _) => Type::Void,
            (Some("char"), _) => {
                Type::Int(if unsigned { IntKind::UChar } else { IntKind::Char })
            }
            (Some("short"), _) => {
                Type::Int(if unsigned { IntKind::UShort } else { IntKind::Short })
            }
            (Some("float"), _) => Type::Float,
            (Some("double"), _) => Type::Double,
            (Some("int"), 0) | (None, 0) => {
                Type::Int(if unsigned { IntKind::UInt } else { IntKind::Int })
            }
            // `long`, `long int`, `long long` (all 64-bit under LP64).
            (_, _n) => Type::Int(if unsigned { IntKind::ULong } else { IntKind::Long }),
        };
        Ok(ty)
    }

    /// Parses `*`s and qualifier keywords after the base type.
    fn parse_pointers(&mut self, mut ty: Type) -> Type {
        loop {
            if self.eat_punct("*") {
                ty = Type::Ptr(Box::new(ty));
            } else if self.peek_kw("const")
                || self.peek_kw("restrict")
                || self.peek_kw("__restrict")
                || self.peek_kw("volatile")
            {
                self.bump();
            } else {
                return ty;
            }
        }
    }

    /// Parses array suffixes `[N]...` after a declarator name, wrapping `ty`.
    fn parse_array_suffix(&mut self, ty: Type) -> Result<Type> {
        if !self.eat_punct("[") {
            return Ok(ty);
        }
        // Unsized `[]` decays to a pointer (parameter position).
        if self.eat_punct("]") {
            let inner = self.parse_array_suffix(ty)?;
            return Ok(Type::Ptr(Box::new(inner)));
        }
        let n = match &self.cur().kind {
            TokenKind::IntLit { value, .. } => *value as usize,
            other => return Err(self.err(format!("expected array size, found `{other}`"))),
        };
        self.bump();
        self.expect_punct("]")?;
        let inner = self.parse_array_suffix(ty)?;
        Ok(Type::Array(Box::new(inner), n))
    }

    // ---- top level ----

    fn parse_top_level(&mut self, items: &mut Vec<Item>) -> Result<()> {
        if self.eat_kw("typedef") {
            let base = self.parse_type_specifiers()?;
            let ty = self.parse_pointers(base);
            let name = self.expect_ident()?;
            let ty = self.parse_array_suffix(ty)?;
            self.expect_punct(";")?;
            self.type_names.insert(name.clone());
            items.push(Item::Typedef { name, ty });
            return Ok(());
        }
        let is_extern = self.eat_kw("extern");
        let is_static = self.eat_kw("static");
        if self.peek_kw("struct") && matches!(self.peek_kind_at(2), TokenKind::Punct("{")) {
            self.bump(); // struct
            let name = self.expect_ident()?;
            self.struct_names.insert(name.clone());
            self.expect_punct("{")?;
            let mut fields = Vec::new();
            while !self.eat_punct("}") {
                let base = self.parse_type_specifiers()?;
                loop {
                    let fty = self.parse_pointers(base.clone());
                    let fname = self.expect_ident()?;
                    let fty = self.parse_array_suffix(fty)?;
                    fields.push((fname, fty));
                    if !self.eat_punct(",") {
                        break;
                    }
                }
                self.expect_punct(";")?;
            }
            self.expect_punct(";")?;
            items.push(Item::Struct(StructDef { name, fields }));
            return Ok(());
        }
        let base = if self.at_type_start() || self.looks_like_unknown_type_decl() {
            self.parse_type_specifiers()?
        } else if self.lenient {
            // Lenient mode: an unknown return type in a definition like
            // `my_t f(...) {` — accept it.
            if let TokenKind::Ident(s) = &self.cur().kind {
                if !is_keyword(s) && matches!(self.peek_kind_at(1), TokenKind::Ident(_)) {
                    let s = s.clone();
                    self.bump();
                    self.unknown_types.push(s.clone());
                    Type::Named(s)
                } else {
                    return Err(
                        self.err(format!("expected declaration, found `{}`", self.cur().kind))
                    );
                }
            } else {
                return Err(
                    self.err(format!("expected declaration, found `{}`", self.cur().kind))
                );
            }
        } else {
            return Err(self.err(format!("expected declaration, found `{}`", self.cur().kind)));
        };
        let ty = self.parse_pointers(base.clone());
        let name = self.expect_ident()?;
        if self.peek_punct("(") {
            let func = self.parse_function_rest(name, ty, is_static)?;
            items.push(Item::Function(func));
            return Ok(());
        }
        // Global variable(s).
        let mut ty = self.parse_array_suffix(ty)?;
        let mut name = name;
        loop {
            let init = if self.eat_punct("=") { Some(self.parse_initializer()?) } else { None };
            items.push(Item::Global { name, ty, init, is_extern });
            if !self.eat_punct(",") {
                break;
            }
            let t = self.parse_pointers(base.clone());
            name = self.expect_ident()?;
            ty = self.parse_array_suffix(t)?;
        }
        self.expect_punct(";")?;
        Ok(())
    }

    /// Parses a brace-or-scalar initializer. Brace lists are desugared into a
    /// synthetic `Comma` chain consumed by sema/interp as array element inits.
    fn parse_initializer(&mut self) -> Result<Expr> {
        if self.peek_punct("{") {
            let line = self.line();
            self.bump();
            let mut elems = Vec::new();
            if !self.peek_punct("}") {
                loop {
                    elems.push(self.parse_initializer()?);
                    if !self.eat_punct(",") {
                        break;
                    }
                    if self.peek_punct("}") {
                        break; // trailing comma
                    }
                }
            }
            self.expect_punct("}")?;
            // Represent `{a, b, c}` as Call to the reserved name "__init_list".
            Ok(self.expr(ExprKind::Call { callee: "__init_list".into(), args: elems }, line))
        } else {
            self.parse_assignment()
        }
    }

    fn parse_function_rest(
        &mut self,
        name: String,
        ret: Type,
        is_static: bool,
    ) -> Result<Function> {
        self.expect_punct("(")?;
        let mut params = Vec::new();
        if !self.peek_punct(")") {
            if self.peek_kw("void") && matches!(self.peek_kind_at(1), TokenKind::Punct(")")) {
                self.bump();
            } else {
                loop {
                    let base = self.parse_type_specifiers()?;
                    let ty = self.parse_pointers(base);
                    // Parameter name may be omitted in prototypes.
                    let pname = match &self.cur().kind {
                        TokenKind::Ident(s) if !is_keyword(s) => {
                            let s = s.clone();
                            self.bump();
                            s
                        }
                        _ => format!("__arg{}", params.len()),
                    };
                    let ty = self.parse_array_suffix(ty)?.decay();
                    params.push((pname, ty));
                    if !self.eat_punct(",") {
                        break;
                    }
                    if self.eat_punct("...") {
                        break; // varargs accepted syntactically, ignored
                    }
                }
            }
        }
        self.expect_punct(")")?;
        let body = if self.peek_punct("{") {
            Some(self.parse_block()?)
        } else {
            self.expect_punct(";")?;
            None
        };
        Ok(Function { name, ret, params, body, is_static })
    }

    // ---- statements ----

    fn parse_block(&mut self) -> Result<Stmt> {
        let line = self.line();
        self.expect_punct("{")?;
        let mut stmts = Vec::new();
        while !self.eat_punct("}") {
            if self.at_eof() {
                return Err(self.err("unterminated block"));
            }
            stmts.push(self.parse_stmt()?);
        }
        Ok(Stmt { kind: StmtKind::Block(stmts), line })
    }

    fn parse_stmt(&mut self) -> Result<Stmt> {
        let line = self.line();
        if self.peek_punct("{") {
            return self.parse_block();
        }
        if self.eat_punct(";") {
            return Ok(Stmt { kind: StmtKind::Empty, line });
        }
        if self.peek_kw("if") {
            self.bump();
            self.expect_punct("(")?;
            let cond = self.parse_expr()?;
            self.expect_punct(")")?;
            let then_branch = Box::new(self.parse_stmt()?);
            let else_branch =
                if self.eat_kw("else") { Some(Box::new(self.parse_stmt()?)) } else { None };
            return Ok(Stmt { kind: StmtKind::If { cond, then_branch, else_branch }, line });
        }
        if self.peek_kw("while") {
            self.bump();
            self.expect_punct("(")?;
            let cond = self.parse_expr()?;
            self.expect_punct(")")?;
            let body = Box::new(self.parse_stmt()?);
            return Ok(Stmt { kind: StmtKind::While { cond, body }, line });
        }
        if self.peek_kw("do") {
            self.bump();
            let body = Box::new(self.parse_stmt()?);
            if !self.eat_kw("while") {
                return Err(self.err("expected `while` after do-body"));
            }
            self.expect_punct("(")?;
            let cond = self.parse_expr()?;
            self.expect_punct(")")?;
            self.expect_punct(";")?;
            return Ok(Stmt { kind: StmtKind::DoWhile { body, cond }, line });
        }
        if self.peek_kw("for") {
            self.bump();
            self.expect_punct("(")?;
            let init = if self.eat_punct(";") {
                None
            } else if self.at_type_start() || self.looks_like_unknown_type_decl() {
                let s = self.parse_decl_stmt()?;
                Some(Box::new(s))
            } else {
                let e = self.parse_expr()?;
                self.expect_punct(";")?;
                Some(Box::new(Stmt { kind: StmtKind::Expr(e), line }))
            };
            let cond = if self.peek_punct(";") { None } else { Some(self.parse_expr()?) };
            self.expect_punct(";")?;
            let step = if self.peek_punct(")") { None } else { Some(self.parse_expr()?) };
            self.expect_punct(")")?;
            let body = Box::new(self.parse_stmt()?);
            return Ok(Stmt { kind: StmtKind::For { init, cond, step, body }, line });
        }
        if self.peek_kw("return") {
            self.bump();
            let value = if self.peek_punct(";") { None } else { Some(self.parse_expr()?) };
            self.expect_punct(";")?;
            return Ok(Stmt { kind: StmtKind::Return(value), line });
        }
        if self.peek_kw("break") {
            self.bump();
            self.expect_punct(";")?;
            return Ok(Stmt { kind: StmtKind::Break, line });
        }
        if self.peek_kw("continue") {
            self.bump();
            self.expect_punct(";")?;
            return Ok(Stmt { kind: StmtKind::Continue, line });
        }
        if self.peek_kw("switch") {
            self.bump();
            self.expect_punct("(")?;
            let scrutinee = self.parse_expr()?;
            self.expect_punct(")")?;
            self.expect_punct("{")?;
            let mut arms: Vec<(Option<i64>, Vec<Stmt>)> = Vec::new();
            while !self.eat_punct("}") {
                if self.at_eof() {
                    return Err(self.err("unterminated switch"));
                }
                if self.eat_kw("case") {
                    let neg = self.eat_punct("-");
                    let value = match &self.cur().kind {
                        TokenKind::IntLit { value, .. } => *value as i64,
                        TokenKind::CharLit(c) => *c as i64,
                        other => {
                            return Err(
                                self.err(format!("expected case constant, found `{other}`"))
                            )
                        }
                    };
                    self.bump();
                    self.expect_punct(":")?;
                    arms.push((Some(if neg { -value } else { value }), Vec::new()));
                } else if self.eat_kw("default") {
                    self.expect_punct(":")?;
                    arms.push((None, Vec::new()));
                } else {
                    let stmt = self.parse_stmt()?;
                    match arms.last_mut() {
                        Some((_, body)) => body.push(stmt),
                        None => return Err(self.err("statement before first case label")),
                    }
                }
            }
            return Ok(Stmt { kind: StmtKind::Switch { scrutinee, arms }, line });
        }
        if self.peek_kw("goto") {
            self.bump();
            let label = self.expect_ident()?;
            self.expect_punct(";")?;
            return Ok(Stmt { kind: StmtKind::Goto(label), line });
        }
        // Label: `ident :` not followed by another `:`.
        if let TokenKind::Ident(s) = &self.cur().kind {
            if !is_keyword(s) && matches!(self.peek_kind_at(1), TokenKind::Punct(":")) {
                let label = s.clone();
                self.bump();
                self.bump();
                let stmt = Box::new(self.parse_stmt()?);
                return Ok(Stmt { kind: StmtKind::Labeled { label, stmt }, line });
            }
        }
        if self.at_type_start() || self.looks_like_unknown_type_decl() {
            return self.parse_decl_stmt();
        }
        let e = self.parse_expr()?;
        self.expect_punct(";")?;
        Ok(Stmt { kind: StmtKind::Expr(e), line })
    }

    /// Parses `T a = x, *b, c[4];` into a Block of Decls (or a single Decl).
    fn parse_decl_stmt(&mut self) -> Result<Stmt> {
        let line = self.line();
        let base = self.parse_type_specifiers()?;
        let mut decls = Vec::new();
        loop {
            let ty = self.parse_pointers(base.clone());
            let name = self.expect_ident()?;
            let ty = self.parse_array_suffix(ty)?;
            let init = if self.eat_punct("=") { Some(self.parse_initializer()?) } else { None };
            decls.push(Stmt { kind: StmtKind::Decl { name, ty, init }, line });
            if !self.eat_punct(",") {
                break;
            }
        }
        self.expect_punct(";")?;
        if decls.len() == 1 {
            Ok(decls.pop().unwrap())
        } else {
            Ok(Stmt { kind: StmtKind::Block(decls), line })
        }
    }

    // ---- expressions (precedence climbing) ----

    /// Parses a full (comma-including) expression.
    ///
    /// # Errors
    ///
    /// Returns a parse error on malformed input.
    pub fn parse_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.parse_assignment()?;
        while self.peek_punct(",") {
            let line = self.line();
            self.bump();
            let rhs = self.parse_assignment()?;
            lhs = self.expr(ExprKind::Comma(Box::new(lhs), Box::new(rhs)), line);
        }
        Ok(lhs)
    }

    fn parse_assignment(&mut self) -> Result<Expr> {
        let lhs = self.parse_ternary()?;
        let op = match &self.cur().kind {
            TokenKind::Punct("=") => None,
            TokenKind::Punct("+=") => Some(BinOp::Add),
            TokenKind::Punct("-=") => Some(BinOp::Sub),
            TokenKind::Punct("*=") => Some(BinOp::Mul),
            TokenKind::Punct("/=") => Some(BinOp::Div),
            TokenKind::Punct("%=") => Some(BinOp::Rem),
            TokenKind::Punct("&=") => Some(BinOp::BitAnd),
            TokenKind::Punct("|=") => Some(BinOp::BitOr),
            TokenKind::Punct("^=") => Some(BinOp::BitXor),
            TokenKind::Punct("<<=") => Some(BinOp::Shl),
            TokenKind::Punct(">>=") => Some(BinOp::Shr),
            _ => return Ok(lhs),
        };
        let line = self.line();
        self.bump();
        let value = self.parse_assignment()?;
        Ok(self
            .expr(ExprKind::Assign { op, target: Box::new(lhs), value: Box::new(value) }, line))
    }

    fn parse_ternary(&mut self) -> Result<Expr> {
        let cond = self.parse_binary(0)?;
        if !self.peek_punct("?") {
            return Ok(cond);
        }
        let line = self.line();
        self.bump();
        let then_expr = self.parse_expr()?;
        self.expect_punct(":")?;
        let else_expr = self.parse_assignment()?;
        Ok(self.expr(
            ExprKind::Ternary {
                cond: Box::new(cond),
                then_expr: Box::new(then_expr),
                else_expr: Box::new(else_expr),
            },
            line,
        ))
    }

    fn binop_at(&self, min_prec: u8) -> Option<(BinOp, u8)> {
        let (op, prec) = match &self.cur().kind {
            TokenKind::Punct("||") => (BinOp::LogOr, 1),
            TokenKind::Punct("&&") => (BinOp::LogAnd, 2),
            TokenKind::Punct("|") => (BinOp::BitOr, 3),
            TokenKind::Punct("^") => (BinOp::BitXor, 4),
            TokenKind::Punct("&") => (BinOp::BitAnd, 5),
            TokenKind::Punct("==") => (BinOp::Eq, 6),
            TokenKind::Punct("!=") => (BinOp::Ne, 6),
            TokenKind::Punct("<") => (BinOp::Lt, 7),
            TokenKind::Punct("<=") => (BinOp::Le, 7),
            TokenKind::Punct(">") => (BinOp::Gt, 7),
            TokenKind::Punct(">=") => (BinOp::Ge, 7),
            TokenKind::Punct("<<") => (BinOp::Shl, 8),
            TokenKind::Punct(">>") => (BinOp::Shr, 8),
            TokenKind::Punct("+") => (BinOp::Add, 9),
            TokenKind::Punct("-") => (BinOp::Sub, 9),
            TokenKind::Punct("*") => (BinOp::Mul, 10),
            TokenKind::Punct("/") => (BinOp::Div, 10),
            TokenKind::Punct("%") => (BinOp::Rem, 10),
            _ => return None,
        };
        (prec >= min_prec).then_some((op, prec))
    }

    fn parse_binary(&mut self, min_prec: u8) -> Result<Expr> {
        let mut lhs = self.parse_unary()?;
        while let Some((op, prec)) = self.binop_at(min_prec) {
            let line = self.line();
            self.bump();
            let rhs = self.parse_binary(prec + 1)?;
            lhs = self.expr(ExprKind::Binary(op, Box::new(lhs), Box::new(rhs)), line);
        }
        Ok(lhs)
    }

    /// True if `(` at the cursor begins a cast expression.
    fn at_cast(&self) -> bool {
        if !self.peek_punct("(") {
            return false;
        }
        match self.peek_kind_at(1) {
            TokenKind::Ident(s) => {
                let known = matches!(
                    s.as_str(),
                    "void"
                        | "char"
                        | "short"
                        | "int"
                        | "long"
                        | "float"
                        | "double"
                        | "signed"
                        | "unsigned"
                        | "struct"
                        | "const"
                ) || self.type_names.contains(s);
                if known {
                    return true;
                }
                if self.lenient && !is_keyword(s) {
                    // `(T*)` or `(T**)` with unknown T reads as a cast;
                    // a bare `(ident)` stays an expression.
                    let mut n = 2;
                    let mut stars = 0;
                    while matches!(self.peek_kind_at(n), TokenKind::Punct("*")) {
                        stars += 1;
                        n += 1;
                    }
                    stars > 0 && matches!(self.peek_kind_at(n), TokenKind::Punct(")"))
                } else {
                    false
                }
            }
            _ => false,
        }
    }

    fn parse_unary(&mut self) -> Result<Expr> {
        let line = self.line();
        if self.at_cast() {
            self.bump(); // (
            let base = self.parse_type_specifiers()?;
            let ty = self.parse_pointers(base);
            self.expect_punct(")")?;
            let inner = self.parse_unary()?;
            return Ok(self.expr(ExprKind::Cast { ty, expr: Box::new(inner) }, line));
        }
        let op = match &self.cur().kind {
            TokenKind::Punct("-") => Some(UnOp::Neg),
            TokenKind::Punct("+") => Some(UnOp::Plus),
            TokenKind::Punct("!") => Some(UnOp::Not),
            TokenKind::Punct("~") => Some(UnOp::BitNot),
            TokenKind::Punct("*") => Some(UnOp::Deref),
            TokenKind::Punct("&") => Some(UnOp::Addr),
            TokenKind::Punct("++") => Some(UnOp::PreInc),
            TokenKind::Punct("--") => Some(UnOp::PreDec),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let inner = self.parse_unary()?;
            return Ok(self.expr(ExprKind::Unary(op, Box::new(inner)), line));
        }
        if self.peek_kw("sizeof") {
            self.bump();
            if self.peek_punct("(") {
                // sizeof(type) vs sizeof(expr)
                let is_type = match self.peek_kind_at(1) {
                    TokenKind::Ident(s) => {
                        matches!(
                            s.as_str(),
                            "void"
                                | "char"
                                | "short"
                                | "int"
                                | "long"
                                | "float"
                                | "double"
                                | "signed"
                                | "unsigned"
                                | "struct"
                        ) || self.type_names.contains(s)
                    }
                    _ => false,
                };
                if is_type {
                    self.bump();
                    let base = self.parse_type_specifiers()?;
                    let ty = self.parse_pointers(base);
                    self.expect_punct(")")?;
                    return Ok(self.expr(ExprKind::SizeofType(ty), line));
                }
            }
            let inner = self.parse_unary()?;
            return Ok(self.expr(ExprKind::SizeofExpr(Box::new(inner)), line));
        }
        self.parse_postfix()
    }

    fn parse_postfix(&mut self) -> Result<Expr> {
        let mut e = self.parse_primary()?;
        loop {
            let line = self.line();
            if self.eat_punct("[") {
                let index = self.parse_expr()?;
                self.expect_punct("]")?;
                e = self
                    .expr(ExprKind::Index { base: Box::new(e), index: Box::new(index) }, line);
            } else if self.eat_punct(".") {
                let field = self.expect_ident()?;
                e = self
                    .expr(ExprKind::Member { base: Box::new(e), field, arrow: false }, line);
            } else if self.eat_punct("->") {
                let field = self.expect_ident()?;
                e = self.expr(ExprKind::Member { base: Box::new(e), field, arrow: true }, line);
            } else if self.eat_punct("++") {
                e = self.expr(ExprKind::Postfix(IncDec::Inc, Box::new(e)), line);
            } else if self.eat_punct("--") {
                e = self.expr(ExprKind::Postfix(IncDec::Dec, Box::new(e)), line);
            } else {
                return Ok(e);
            }
        }
    }

    fn parse_primary(&mut self) -> Result<Expr> {
        let line = self.line();
        match self.cur().kind.clone() {
            TokenKind::IntLit { value, unsigned, long } => {
                self.bump();
                let kind = match (unsigned, long) {
                    (false, false) => {
                        if value <= i32::MAX as u64 {
                            IntKind::Int
                        } else {
                            IntKind::Long
                        }
                    }
                    (true, false) => IntKind::UInt,
                    (false, true) => IntKind::Long,
                    (true, true) => IntKind::ULong,
                };
                Ok(self.expr(ExprKind::IntLit(value as i64, kind), line))
            }
            TokenKind::FloatLit { value, single } => {
                self.bump();
                Ok(self.expr(ExprKind::FloatLit(value, single), line))
            }
            TokenKind::CharLit(c) => {
                self.bump();
                Ok(self.expr(ExprKind::IntLit(c as i64, IntKind::Int), line))
            }
            TokenKind::StrLit(s) => {
                self.bump();
                Ok(self.expr(ExprKind::StrLit(s), line))
            }
            TokenKind::Punct("(") => {
                self.bump();
                let e = self.parse_expr()?;
                self.expect_punct(")")?;
                Ok(e)
            }
            TokenKind::Ident(s) if !is_keyword(&s) => {
                self.bump();
                if self.peek_punct("(") {
                    self.bump();
                    let mut args = Vec::new();
                    if !self.peek_punct(")") {
                        loop {
                            args.push(self.parse_assignment()?);
                            if !self.eat_punct(",") {
                                break;
                            }
                        }
                    }
                    self.expect_punct(")")?;
                    Ok(self.expr(ExprKind::Call { callee: s, args }, line))
                } else {
                    Ok(self.expr(ExprKind::Ident(s), line))
                }
            }
            other => Err(self.err(format!("expected expression, found `{other}`"))),
        }
    }
}

/// Typedef names that MiniC treats as built in, so that realistic code using
/// `<stdint.h>`/`<stddef.h>` spellings parses without headers.
pub const BUILTIN_TYPEDEFS_NAMES: [&str; 12] = [
    "int8_t",
    "int16_t",
    "int32_t",
    "int64_t",
    "uint8_t",
    "uint16_t",
    "uint32_t",
    "uint64_t",
    "size_t",
    "ssize_t",
    "intptr_t",
    "uintptr_t",
];

fn builtin_typedefs() -> Vec<(&'static str, Type)> {
    vec![
        ("int8_t", Type::Int(IntKind::Char)),
        ("int16_t", Type::Int(IntKind::Short)),
        ("int32_t", Type::Int(IntKind::Int)),
        ("int64_t", Type::Int(IntKind::Long)),
        ("uint8_t", Type::Int(IntKind::UChar)),
        ("uint16_t", Type::Int(IntKind::UShort)),
        ("uint32_t", Type::Int(IntKind::UInt)),
        ("uint64_t", Type::Int(IntKind::ULong)),
        ("size_t", Type::Int(IntKind::ULong)),
        ("ssize_t", Type::Int(IntKind::Long)),
        ("intptr_t", Type::Int(IntKind::Long)),
        ("uintptr_t", Type::Int(IntKind::ULong)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_function() {
        let p = parse_program("int add(int a, int b) { return a + b; }").unwrap();
        let f = p.function("add").unwrap();
        assert_eq!(f.params.len(), 2);
        assert_eq!(f.ret, Type::int());
    }

    #[test]
    fn parses_control_flow() {
        let src = r#"
            int f(int n) {
                int s = 0;
                for (int i = 0; i < n; ++i) { if (i % 2 == 0) s += i; else s -= 1; }
                while (s > 100) s /= 2;
                do { s++; } while (s < 0);
                return s;
            }"#;
        assert!(parse_program(src).is_ok());
    }

    #[test]
    fn parses_pointers_arrays_structs() {
        let src = r#"
            struct point { int x; int y; };
            typedef struct point point_t;
            int mat[8] = {1, 2, 3, 4, 5, 6, 7, 8};
            int get(struct point *p, int idx, int arr[]) {
                return p->x + arr[idx] + mat[0];
            }"#;
        let p = parse_program(src).unwrap();
        assert_eq!(p.structs().count(), 1);
        let f = p.function("get").unwrap();
        // `int arr[]` decays to `int*`.
        assert_eq!(f.params[2].1, Type::ptr(Type::int()));
    }

    #[test]
    fn typedef_names_parse_as_types() {
        let src = "typedef unsigned long u64; u64 f(u64 x) { u64 y = x; return y; }";
        assert!(parse_program(src).is_ok());
    }

    #[test]
    fn builtin_stdint_names_work() {
        let src = "uint32_t f(int32_t x) { size_t n = 4; return x + n; }";
        assert!(parse_program(src).is_ok());
    }

    #[test]
    fn strict_mode_rejects_unknown_type() {
        let err = parse_program("my_int f(my_int x) { return x; }").unwrap_err();
        assert_eq!(err.kind(), crate::ErrorKind::Parse);
    }

    #[test]
    fn lenient_mode_records_unknown_types() {
        let p =
            parse_program_lenient("my_int f(my_int x) { my_int y = x; return y; }").unwrap();
        assert_eq!(p.unknown_types, vec!["my_int".to_string()]);
    }

    #[test]
    fn lenient_mode_accepts_unknown_pointer_cast() {
        let p =
            parse_program_lenient("void f(void *p) { my_t *q = (my_t*)p; q = q; }").unwrap();
        assert!(p.unknown_types.contains(&"my_t".to_string()));
    }

    #[test]
    fn precedence_is_c_like() {
        let p = parse_program("int f(int a, int b, int c) { return a + b * c; }").unwrap();
        let f = p.function("f").unwrap();
        let StmtKind::Block(stmts) = &f.body.as_ref().unwrap().kind else { panic!() };
        let StmtKind::Return(Some(e)) = &stmts[0].kind else { panic!() };
        let ExprKind::Binary(BinOp::Add, _, rhs) = &e.kind else { panic!("got {e:?}") };
        assert!(matches!(rhs.kind, ExprKind::Binary(BinOp::Mul, _, _)));
    }

    #[test]
    fn parses_goto_and_labels() {
        let src = "int f(int x) { if (x < 0) goto out; x += 1; out: return x; }";
        assert!(parse_program(src).is_ok());
    }

    #[test]
    fn parses_multi_declarator_statement() {
        let src = "int f(void) { int a = 1, *b, c[4]; b = &a; c[0] = *b; return c[0]; }";
        assert!(parse_program(src).is_ok());
    }

    #[test]
    fn parses_ternary_comma_sizeof() {
        let src = "long f(int x) { long n = sizeof(long) + sizeof x; return x ? n : (n, 0); }";
        assert!(parse_program(src).is_ok());
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_program("int f( { }").is_err());
        assert!(parse_program("@").is_err());
        assert!(parse_program("int f(void) { return 1 + ; }").is_err());
    }

    #[test]
    fn node_ids_are_unique() {
        let p = parse_program("int f(int a) { return a + a * a; }").unwrap();
        assert!(p.node_count >= 5);
    }
}
