//! Tree-walking interpreter for MiniC with a byte-addressable memory model.
//!
//! This is the execution engine behind the paper's IO-equivalence check
//! (§III-A): decompiled hypotheses are compiled (parsed + type-checked) and
//! executed against the reference on concrete inputs. Buffers passed through
//! pointers live in [`crate::mem::Memory`] segments so the harness can
//! inspect memory effects after the call, and a fuel budget turns
//! non-termination into a [`crate::ErrorKind::Timeout`] error (the paper
//! "assumes non-equivalence in cases of non-termination").

use crate::ast::*;
use crate::mem::Memory;
use crate::sema::{Sema, TypeMap};
use crate::types::{IntKind, Type};
use crate::value::{Pointer, Value};
use crate::{ErrorKind, MiniCError, Result};
use std::collections::HashMap;

/// Execution limits for one [`Interpreter::call`].
#[derive(Debug, Clone, Copy)]
pub struct RunLimits {
    /// Maximum number of statement/expression steps before timing out.
    pub fuel: u64,
    /// Maximum call depth.
    pub max_depth: u32,
}

impl Default for RunLimits {
    fn default() -> Self {
        RunLimits { fuel: 4_000_000, max_depth: 200 }
    }
}

/// The result of calling a function: its return value (if non-void).
#[derive(Debug, Clone, PartialEq)]
pub struct CallOutcome {
    /// Return value, `None` for `void` functions.
    pub ret: Option<Value>,
}

/// Control-flow signal threaded through statement execution.
#[derive(Debug, Clone)]
enum Flow {
    Normal,
    Break,
    Continue,
    Return(Option<Value>),
    Goto(String),
}

/// One local variable: its backing segment and declared type.
#[derive(Debug, Clone)]
struct Slot {
    ptr: Pointer,
    ty: Type,
}

/// A MiniC interpreter bound to one type-checked program.
///
/// # Example
///
/// ```
/// use slade_minic::{parse_program, Interpreter, Value};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let p = parse_program("int sq(int x) { return x * x; }")?;
/// let mut interp = Interpreter::new(&p)?;
/// assert_eq!(interp.call("sq", &[Value::int(7)])?.ret.unwrap().as_i64(), 49);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Interpreter<'p> {
    program: &'p Program,
    tm: TypeMap,
    mem: Memory,
    globals: HashMap<String, Slot>,
    functions: HashMap<&'p str, &'p Function>,
    strings: HashMap<String, Pointer>,
    scopes: Vec<Vec<HashMap<String, Slot>>>,
    limits: RunLimits,
    fuel: u64,
    depth: u32,
}

impl<'p> Interpreter<'p> {
    /// Type-checks `program`, allocates globals and evaluates their
    /// initializers.
    ///
    /// # Errors
    ///
    /// Returns type errors from semantic analysis or runtime errors from
    /// global initializers.
    pub fn new(program: &'p Program) -> Result<Self> {
        Self::with_limits(program, RunLimits::default())
    }

    /// Like [`Interpreter::new`] with explicit execution limits.
    ///
    /// # Errors
    ///
    /// Same as [`Interpreter::new`].
    pub fn with_limits(program: &'p Program, limits: RunLimits) -> Result<Self> {
        let tm = Sema::check(program)?;
        let mut functions = HashMap::new();
        for item in &program.items {
            if let Item::Function(f) = item {
                if f.body.is_some() {
                    functions.insert(f.name.as_str(), f);
                }
            }
        }
        let mut interp = Interpreter {
            program,
            tm,
            mem: Memory::new(),
            globals: HashMap::new(),
            functions,
            strings: HashMap::new(),
            scopes: Vec::new(),
            limits,
            fuel: limits.fuel,
            depth: 0,
        };
        interp.init_globals()?;
        Ok(interp)
    }

    /// The type map produced during construction.
    pub fn type_map(&self) -> &TypeMap {
        &self.tm
    }

    /// Allocates a buffer, copies `bytes` into it, and returns a pointer —
    /// how the evaluation harness passes array/pointer arguments.
    pub fn alloc_buffer(&mut self, bytes: &[u8]) -> Pointer {
        let p = self.mem.alloc(bytes.len());
        self.mem.store_bytes(p, bytes).expect("fresh segment");
        p
    }

    /// Reads `len` bytes from `ptr` — how the harness observes memory
    /// effects after a call.
    ///
    /// # Errors
    ///
    /// Faults if the range is invalid.
    pub fn read_buffer(&self, ptr: Pointer, len: usize) -> Result<Vec<u8>> {
        self.mem.load_bytes(ptr, len)
    }

    /// Pointer to global `name`, if it exists.
    pub fn global_ptr(&self, name: &str) -> Option<Pointer> {
        self.globals.get(name).map(|s| s.ptr)
    }

    /// Type of global `name`, if it exists.
    pub fn global_type(&self, name: &str) -> Option<&Type> {
        self.globals.get(name).map(|s| &s.ty)
    }

    /// Calls function `name` with `args` (converted to parameter types).
    ///
    /// Fuel is replenished at the start of every top-level call so one
    /// harness can run many IO examples.
    ///
    /// # Errors
    ///
    /// Returns runtime faults, missing functions, or timeout.
    pub fn call(&mut self, name: &str, args: &[Value]) -> Result<CallOutcome> {
        self.fuel = self.limits.fuel;
        self.depth = 0;
        let ret = self.call_function(name, args, 0)?;
        Ok(CallOutcome { ret })
    }

    // ---- setup ----

    fn init_globals(&mut self) -> Result<()> {
        let items: Vec<_> = self.program.items.iter().collect();
        // First allocate all globals (so initializers may reference others).
        for item in &items {
            if let Item::Global { name, ty, .. } = item {
                let rty = self.tm.layout.resolve(ty);
                let size = self
                    .tm
                    .layout
                    .size_of(&rty)
                    .ok_or_else(|| rt(format!("global `{name}` has unknown size")))?;
                let ptr = self.mem.alloc(size);
                self.globals.insert(name.clone(), Slot { ptr, ty: rty });
            }
        }
        self.scopes.push(vec![HashMap::new()]);
        self.fuel = self.limits.fuel;
        for item in &items {
            if let Item::Global { name, init: Some(init), .. } = item {
                let slot = self.globals.get(name.as_str()).unwrap().clone();
                self.store_initializer(&slot, init)?;
            }
        }
        self.scopes.pop();
        Ok(())
    }

    fn store_initializer(&mut self, slot: &Slot, init: &Expr) -> Result<()> {
        if let ExprKind::Call { callee, args } = &init.kind {
            if callee == "__init_list" {
                let Type::Array(elem, _) = &slot.ty else {
                    return Err(rt("brace initializer for non-array"));
                };
                let esize = self
                    .tm
                    .layout
                    .size_of(elem)
                    .ok_or_else(|| rt("array of unknown element size"))?
                    as i64;
                let elem = (**elem).clone();
                for (i, a) in args.iter().enumerate() {
                    let sub = Slot { ptr: slot.ptr.offset(i as i64 * esize), ty: elem.clone() };
                    self.store_initializer(&sub, a)?;
                }
                return Ok(());
            }
        }
        let v = self.eval(init)?;
        self.store_typed(slot.ptr, &slot.ty, v)
    }

    // ---- typed loads/stores ----

    fn load_typed(&self, ptr: Pointer, ty: &Type) -> Result<Value> {
        Ok(match ty {
            Type::Int(k) => {
                let bytes = self.mem.load_bytes(ptr, k.size())?;
                let mut raw = [0u8; 8];
                raw[..bytes.len()].copy_from_slice(&bytes);
                let unsigned = u64::from_le_bytes(raw);
                let v = if k.signed() {
                    // Sign-extend from width.
                    let shift = 64 - 8 * k.size();
                    ((unsigned << shift) as i64) >> shift
                } else {
                    unsigned as i64
                };
                Value::of_kind(v, *k)
            }
            Type::Float => {
                let b = self.mem.load_bytes(ptr, 4)?;
                Value::F32(f32::from_le_bytes([b[0], b[1], b[2], b[3]]))
            }
            Type::Double => {
                let b = self.mem.load_bytes(ptr, 8)?;
                Value::F64(f64::from_le_bytes(b.try_into().unwrap()))
            }
            Type::Ptr(_) => {
                let b = self.mem.load_bytes(ptr, 8)?;
                let raw = u64::from_le_bytes(b.try_into().unwrap());
                Value::Ptr(unpack_ptr(raw))
            }
            // Loading an aggregate as a value yields its address (decay).
            Type::Array(..) | Type::Struct(_) => Value::Ptr(ptr),
            other => return Err(rt(format!("cannot load value of type `{other}`"))),
        })
    }

    fn store_typed(&mut self, ptr: Pointer, ty: &Type, v: Value) -> Result<()> {
        let v = v.convert_to(ty);
        match ty {
            Type::Int(k) => {
                let Value::Int(x, _) = v else { return Err(rt("type confusion in store")) };
                let bytes = (x as u64).to_le_bytes();
                self.mem.store_bytes(ptr, &bytes[..k.size()])
            }
            Type::Float => {
                let Value::F32(x) = v else { return Err(rt("type confusion in store")) };
                self.mem.store_bytes(ptr, &x.to_le_bytes())
            }
            Type::Double => {
                let Value::F64(x) = v else { return Err(rt("type confusion in store")) };
                self.mem.store_bytes(ptr, &x.to_le_bytes())
            }
            Type::Ptr(_) => {
                let Value::Ptr(p) = v else { return Err(rt("type confusion in store")) };
                self.mem.store_bytes(ptr, &pack_ptr(p).to_le_bytes())
            }
            other => Err(rt(format!("cannot store value of type `{other}`"))),
        }
    }

    // ---- calls ----

    fn call_function(
        &mut self,
        name: &str,
        args: &[Value],
        line: u32,
    ) -> Result<Option<Value>> {
        if let Some(v) = self.call_builtin(name, args)? {
            return Ok(v);
        }
        let Some(f) = self.functions.get(name).copied() else {
            return Err(MiniCError::new(
                ErrorKind::Runtime,
                format!("call to undefined function `{name}`"),
                line,
            ));
        };
        if args.len() != f.params.len() {
            return Err(rt(format!(
                "`{name}` called with {} args, expects {}",
                args.len(),
                f.params.len()
            )));
        }
        self.depth += 1;
        if self.depth > self.limits.max_depth {
            return Err(MiniCError::new(ErrorKind::Timeout, "call depth exceeded", line));
        }
        let mut frame = HashMap::new();
        for ((pname, pty), arg) in f.params.iter().zip(args) {
            let rty = self.tm.layout.resolve(pty).decay();
            let size = self.tm.layout.size_of(&rty).unwrap_or(8);
            let ptr = self.mem.alloc(size);
            if let Type::Struct(_) = rty {
                // Struct passed by value: copy the bytes behind the pointer.
                let Value::Ptr(src) = arg else {
                    return Err(rt("struct argument must be a pointer to storage"));
                };
                self.mem.copy(ptr, *src, size)?;
            } else {
                self.store_typed(ptr, &rty, *arg)?;
            }
            frame.insert(pname.clone(), Slot { ptr, ty: rty });
        }
        self.scopes.push(vec![frame]);
        let body = f.body.as_ref().unwrap();
        let flow = self.exec(body)?;
        let frame_scopes = self.scopes.pop().unwrap();
        for scope in frame_scopes {
            for slot in scope.values() {
                self.mem.free(slot.ptr);
            }
        }
        self.depth -= 1;
        let ret_ty = self.tm.layout.resolve(&f.ret);
        match flow {
            Flow::Return(Some(v)) => Ok(Some(v.convert_to(&ret_ty))),
            Flow::Return(None) | Flow::Normal => {
                if ret_ty == Type::Void {
                    Ok(None)
                } else {
                    // Falling off a non-void function: indeterminate in C;
                    // we return 0 like most ABIs leave a stale register.
                    Ok(Some(Value::int(0).convert_to(&ret_ty)))
                }
            }
            Flow::Goto(l) => Err(rt(format!("goto to unknown label `{l}`"))),
            _ => Err(rt("break/continue outside loop")),
        }
    }

    // ---- statements ----

    fn burn(&mut self, line: u32) -> Result<()> {
        if self.fuel == 0 {
            return Err(MiniCError::new(ErrorKind::Timeout, "fuel exhausted", line));
        }
        self.fuel -= 1;
        Ok(())
    }

    fn exec(&mut self, stmt: &Stmt) -> Result<Flow> {
        self.burn(stmt.line)?;
        match &stmt.kind {
            StmtKind::Block(stmts) => self.exec_block(stmts),
            StmtKind::Decl { name, ty, init } => {
                let rty = self.tm.layout.resolve(ty);
                let size =
                    self.tm.layout.size_of(&rty).ok_or_else(|| rt("unknown local size"))?;
                let ptr = self.mem.alloc(size);
                let slot = Slot { ptr, ty: rty };
                if let Some(init) = init {
                    self.store_initializer(&slot, init)?;
                }
                self.scopes.last_mut().unwrap().last_mut().unwrap().insert(name.clone(), slot);
                Ok(Flow::Normal)
            }
            StmtKind::Expr(e) => {
                self.eval(e)?;
                Ok(Flow::Normal)
            }
            StmtKind::If { cond, then_branch, else_branch } => {
                if self.eval(cond)?.is_truthy() {
                    self.exec(then_branch)
                } else if let Some(e) = else_branch {
                    self.exec(e)
                } else {
                    Ok(Flow::Normal)
                }
            }
            StmtKind::While { cond, body } => {
                while self.eval(cond)?.is_truthy() {
                    self.burn(stmt.line)?;
                    match self.exec(body)? {
                        Flow::Break => break,
                        Flow::Normal | Flow::Continue => {}
                        other => return Ok(other),
                    }
                }
                Ok(Flow::Normal)
            }
            StmtKind::DoWhile { body, cond } => {
                loop {
                    self.burn(stmt.line)?;
                    match self.exec(body)? {
                        Flow::Break => break,
                        Flow::Normal | Flow::Continue => {}
                        other => return Ok(other),
                    }
                    if !self.eval(cond)?.is_truthy() {
                        break;
                    }
                }
                Ok(Flow::Normal)
            }
            StmtKind::For { init, cond, step, body } => {
                self.push_scope();
                let result = (|| {
                    if let Some(init) = init {
                        match self.exec(init)? {
                            Flow::Normal => {}
                            other => return Ok(other),
                        }
                    }
                    loop {
                        if let Some(cond) = cond {
                            if !self.eval(cond)?.is_truthy() {
                                break;
                            }
                        }
                        self.burn(stmt.line)?;
                        match self.exec(body)? {
                            Flow::Break => break,
                            Flow::Normal | Flow::Continue => {}
                            other => return Ok(other),
                        }
                        if let Some(step) = step {
                            self.eval(step)?;
                        }
                    }
                    Ok(Flow::Normal)
                })();
                self.pop_scope();
                result
            }
            StmtKind::Return(value) => {
                let v = match value {
                    Some(e) => Some(self.eval(e)?),
                    None => None,
                };
                Ok(Flow::Return(v))
            }
            StmtKind::Switch { scrutinee, arms } => {
                let v = self.eval(scrutinee)?;
                let Value::Int(x, _) = v else {
                    return Err(rt("switch on non-integer"));
                };
                // Find the matching arm (or default), then fall through.
                let mut start = arms.iter().position(|(l, _)| *l == Some(x));
                if start.is_none() {
                    start = arms.iter().position(|(l, _)| l.is_none());
                }
                let Some(start) = start else { return Ok(Flow::Normal) };
                self.push_scope();
                let mut result = Flow::Normal;
                'arms: for (_, body) in &arms[start..] {
                    for s in body {
                        match self.exec(s)? {
                            Flow::Normal => {}
                            Flow::Break => break 'arms,
                            other => {
                                result = other;
                                break 'arms;
                            }
                        }
                    }
                }
                self.pop_scope();
                Ok(result)
            }
            StmtKind::Break => Ok(Flow::Break),
            StmtKind::Continue => Ok(Flow::Continue),
            StmtKind::Goto(label) => Ok(Flow::Goto(label.clone())),
            StmtKind::Labeled { stmt, .. } => self.exec(stmt),
            StmtKind::Empty => Ok(Flow::Normal),
        }
    }

    fn push_scope(&mut self) {
        self.scopes.last_mut().unwrap().push(HashMap::new());
    }

    fn pop_scope(&mut self) {
        if let Some(scope) = self.scopes.last_mut().unwrap().pop() {
            for slot in scope.values() {
                self.mem.free(slot.ptr);
            }
        }
    }

    fn exec_block(&mut self, stmts: &[Stmt]) -> Result<Flow> {
        self.push_scope();
        let mut i = 0usize;
        let result = loop {
            if i >= stmts.len() {
                break Flow::Normal;
            }
            match self.exec(&stmts[i]) {
                Err(e) => {
                    self.pop_scope();
                    return Err(e);
                }
                Ok(Flow::Normal) => i += 1,
                Ok(Flow::Goto(label)) => {
                    // Backward or forward goto within this block.
                    match find_label(stmts, &label) {
                        Some(idx) => {
                            self.burn(0)?;
                            i = idx;
                        }
                        None => break Flow::Goto(label),
                    }
                }
                Ok(other) => break other,
            }
        };
        self.pop_scope();
        Ok(result)
    }

    // ---- expressions ----

    fn eval(&mut self, e: &Expr) -> Result<Value> {
        self.burn(e.line)?;
        match &e.kind {
            ExprKind::IntLit(v, k) => Ok(Value::of_kind(*v, *k)),
            ExprKind::FloatLit(v, single) => {
                Ok(if *single { Value::F32(*v as f32) } else { Value::F64(*v) })
            }
            ExprKind::StrLit(s) => {
                if let Some(p) = self.strings.get(s) {
                    return Ok(Value::Ptr(*p));
                }
                let mut bytes = s.as_bytes().to_vec();
                bytes.push(0);
                let p = self.mem.alloc(bytes.len());
                self.mem.store_bytes(p, &bytes)?;
                self.strings.insert(s.clone(), p);
                Ok(Value::Ptr(p))
            }
            ExprKind::Ident(_) => {
                let (ptr, ty) = self.eval_lvalue(e)?;
                self.load_typed(ptr, &ty)
            }
            ExprKind::Unary(op, inner) => self.eval_unary(e, *op, inner),
            ExprKind::Postfix(kind, inner) => {
                let (ptr, ty) = self.eval_lvalue(inner)?;
                let old = self.load_typed(ptr, &ty)?;
                let delta = if matches!(kind, IncDec::Inc) { 1 } else { -1 };
                let new = self.step_value(old, &ty, delta)?;
                self.store_typed(ptr, &ty, new)?;
                Ok(old)
            }
            ExprKind::Binary(op, l, r) => self.eval_binary(e, *op, l, r),
            ExprKind::Assign { op, target, value } => {
                let (ptr, ty) = self.eval_lvalue(target)?;
                if op.is_none() {
                    if let Type::Struct(name) = &ty {
                        // Struct assignment copies bytes.
                        let (src, _) = self.eval_lvalue(value)?;
                        let size = self
                            .tm
                            .layout
                            .layout_of(name)
                            .ok_or_else(|| rt("incomplete struct"))?
                            .size;
                        self.mem.copy(ptr, src, size)?;
                        return Ok(Value::Ptr(ptr));
                    }
                }
                let rhs = self.eval(value)?;
                let result = match op {
                    None => rhs.convert_to(&ty),
                    Some(op) => {
                        let cur = self.load_typed(ptr, &ty)?;
                        let vt = self.tm.value_type(value.id);
                        self.apply_binop(*op, cur, rhs, &ty, &vt, e.line)?.convert_to(&ty)
                    }
                };
                self.store_typed(ptr, &ty, result)?;
                Ok(result)
            }
            ExprKind::Call { callee, args } => {
                let mut argv = Vec::with_capacity(args.len());
                for a in args {
                    let at = self.tm.value_type(a.id);
                    if matches!(
                        self.tm.layout.resolve(&self.tm.type_of(a.id).clone()),
                        Type::Struct(_)
                    ) {
                        // Struct by value: pass the address; callee copies.
                        let (p, _) = self.eval_lvalue(a)?;
                        argv.push(Value::Ptr(p));
                    } else {
                        let v = self.eval(a)?;
                        // Decay/convert according to the checked type.
                        argv.push(v.convert_to(&at));
                    }
                }
                let ret = self.call_function(callee, &argv, e.line)?;
                Ok(ret.unwrap_or(Value::int(0)))
            }
            ExprKind::Index { .. } | ExprKind::Member { .. } => {
                let (ptr, ty) = self.eval_lvalue(e)?;
                self.load_typed(ptr, &ty)
            }
            ExprKind::Cast { ty, expr } => {
                let v = self.eval(expr)?;
                let rty = self.tm.layout.resolve(ty);
                Ok(v.convert_to(&rty))
            }
            ExprKind::SizeofType(ty) => {
                let rty = self.tm.layout.resolve(ty);
                let size = self.tm.layout.size_of(&rty).unwrap_or(8);
                Ok(Value::of_kind(size as i64, IntKind::ULong))
            }
            ExprKind::SizeofExpr(inner) => {
                let ty = self.tm.type_of(inner.id).clone();
                let size = self.tm.layout.size_of(&ty).unwrap_or(8);
                Ok(Value::of_kind(size as i64, IntKind::ULong))
            }
            ExprKind::Ternary { cond, then_expr, else_expr } => {
                if self.eval(cond)?.is_truthy() {
                    let v = self.eval(then_expr)?;
                    Ok(v.convert_to(&self.tm.value_type(e.id)))
                } else {
                    let v = self.eval(else_expr)?;
                    Ok(v.convert_to(&self.tm.value_type(e.id)))
                }
            }
            ExprKind::Comma(a, b) => {
                self.eval(a)?;
                self.eval(b)
            }
        }
    }

    fn eval_unary(&mut self, e: &Expr, op: UnOp, inner: &Expr) -> Result<Value> {
        match op {
            UnOp::Plus => self.eval(inner),
            UnOp::Neg => {
                let v = self.eval(inner)?;
                Ok(match v.convert_to(&self.tm.value_type(e.id)) {
                    Value::Int(x, k) => Value::of_kind(x.wrapping_neg(), k),
                    Value::F32(x) => Value::F32(-x),
                    Value::F64(x) => Value::F64(-x),
                    p => p,
                })
            }
            UnOp::Not => {
                let v = self.eval(inner)?;
                Ok(Value::int(if v.is_truthy() { 0 } else { 1 }))
            }
            UnOp::BitNot => {
                let v = self.eval(inner)?.convert_to(&self.tm.value_type(e.id));
                let Value::Int(x, k) = v else { return Err(rt("~ on non-integer")) };
                Ok(Value::of_kind(!x, k))
            }
            UnOp::Deref => {
                let (ptr, ty) = self.eval_lvalue(e)?;
                self.load_typed(ptr, &ty)
            }
            UnOp::Addr => {
                let (ptr, _) = self.eval_lvalue(inner)?;
                Ok(Value::Ptr(ptr))
            }
            UnOp::PreInc | UnOp::PreDec => {
                let (ptr, ty) = self.eval_lvalue(inner)?;
                let old = self.load_typed(ptr, &ty)?;
                let delta = if matches!(op, UnOp::PreInc) { 1 } else { -1 };
                let new = self.step_value(old, &ty, delta)?;
                self.store_typed(ptr, &ty, new)?;
                Ok(new)
            }
        }
    }

    /// `v + delta` respecting pointer scaling.
    fn step_value(&self, v: Value, ty: &Type, delta: i64) -> Result<Value> {
        Ok(match v {
            Value::Int(x, k) => Value::of_kind(x.wrapping_add(delta), k),
            Value::F32(x) => Value::F32(x + delta as f32),
            Value::F64(x) => Value::F64(x + delta as f64),
            Value::Ptr(p) => {
                let elem = ty.pointee().ok_or_else(|| rt("++ on non-pointer"))?;
                let size = self.tm.layout.size_of(elem).ok_or_else(|| rt("void ptr ++"))?;
                Value::Ptr(p.offset(delta * size as i64))
            }
        })
    }

    fn eval_binary(&mut self, e: &Expr, op: BinOp, l: &Expr, r: &Expr) -> Result<Value> {
        if op.is_logical() {
            let lv = self.eval(l)?;
            return Ok(match op {
                BinOp::LogAnd => {
                    if !lv.is_truthy() {
                        Value::int(0)
                    } else {
                        Value::int(self.eval(r)?.is_truthy() as i64)
                    }
                }
                BinOp::LogOr => {
                    if lv.is_truthy() {
                        Value::int(1)
                    } else {
                        Value::int(self.eval(r)?.is_truthy() as i64)
                    }
                }
                _ => unreachable!(),
            });
        }
        let lv = self.eval(l)?;
        let rv = self.eval(r)?;
        let lt = self.tm.value_type(l.id);
        let rt_ = self.tm.value_type(r.id);
        self.apply_binop_full(op, lv, rv, &lt, &rt_, e.line)
    }

    /// Applies `op` given the operand types (used by both `a op b` and
    /// `a op= b`).
    fn apply_binop(
        &self,
        op: BinOp,
        lv: Value,
        rv: Value,
        lt: &Type,
        rt_: &Type,
        line: u32,
    ) -> Result<Value> {
        self.apply_binop_full(op, lv, rv, lt, rt_, line)
    }

    fn apply_binop_full(
        &self,
        op: BinOp,
        lv: Value,
        rv: Value,
        lt: &Type,
        rt_: &Type,
        line: u32,
    ) -> Result<Value> {
        // Pointer arithmetic.
        if matches!(op, BinOp::Add | BinOp::Sub) {
            match (&lv, &rv) {
                (Value::Ptr(p), Value::Int(n, _)) => {
                    let elem = lt.decay();
                    let elem = elem.pointee().cloned().unwrap_or(Type::Int(IntKind::Char));
                    let size = self.tm.layout.size_of(&elem).unwrap_or(1) as i64;
                    let n = if op == BinOp::Sub { -*n } else { *n };
                    return Ok(Value::Ptr(p.offset(n * size)));
                }
                (Value::Int(n, _), Value::Ptr(p)) if op == BinOp::Add => {
                    let elem = rt_.decay();
                    let elem = elem.pointee().cloned().unwrap_or(Type::Int(IntKind::Char));
                    let size = self.tm.layout.size_of(&elem).unwrap_or(1) as i64;
                    return Ok(Value::Ptr(p.offset(*n * size)));
                }
                (Value::Ptr(a), Value::Ptr(b)) if op == BinOp::Sub => {
                    if a.seg != b.seg {
                        return Err(MiniCError::new(
                            ErrorKind::Runtime,
                            "pointer difference across objects",
                            line,
                        ));
                    }
                    let elem = lt.decay();
                    let elem = elem.pointee().cloned().unwrap_or(Type::Int(IntKind::Char));
                    let size = self.tm.layout.size_of(&elem).unwrap_or(1) as i64;
                    return Ok(Value::of_kind((a.off - b.off) / size.max(1), IntKind::Long));
                }
                _ => {}
            }
        }
        // Pointer comparisons.
        if op.is_comparison() && (matches!(lv, Value::Ptr(_)) || matches!(rv, Value::Ptr(_))) {
            let a = pack_val(&lv);
            let b = pack_val(&rv);
            let res = match op {
                BinOp::Eq => a == b,
                BinOp::Ne => a != b,
                BinOp::Lt => a < b,
                BinOp::Le => a <= b,
                BinOp::Gt => a > b,
                BinOp::Ge => a >= b,
                _ => unreachable!(),
            };
            return Ok(Value::int(res as i64));
        }
        // Floating arithmetic when either side is floating.
        if matches!(lv, Value::F32(_) | Value::F64(_))
            || matches!(rv, Value::F32(_) | Value::F64(_))
        {
            let use_f32 = matches!((&lv, &rv), (Value::F32(_), Value::F32(_)))
                || (matches!(lv, Value::F32(_)) && matches!(rv, Value::Int(..)))
                || (matches!(rv, Value::F32(_)) && matches!(lv, Value::Int(..)));
            let a = lv.as_f64();
            let b = rv.as_f64();
            let fres = |x: f64| if use_f32 { Value::F32(x as f32) } else { Value::F64(x) };
            return Ok(match op {
                BinOp::Add => fres(a + b),
                BinOp::Sub => fres(a - b),
                BinOp::Mul => fres(a * b),
                BinOp::Div => fres(a / b),
                BinOp::Lt => Value::int((a < b) as i64),
                BinOp::Le => Value::int((a <= b) as i64),
                BinOp::Gt => Value::int((a > b) as i64),
                BinOp::Ge => Value::int((a >= b) as i64),
                BinOp::Eq => Value::int((a == b) as i64),
                BinOp::Ne => Value::int((a != b) as i64),
                _ => return Err(MiniCError::new(ErrorKind::Runtime, "float bit op", line)),
            });
        }
        // Integer arithmetic in the common kind.
        let (Value::Int(a0, ka), Value::Int(b0, kb)) = (lv, rv) else {
            return Err(MiniCError::new(ErrorKind::Runtime, "type confusion in binop", line));
        };
        let common = common_kind(ka, kb);
        let a = common.wrap(a0);
        let b = common.wrap(b0);
        let unsigned = !common.signed();
        let au = a as u64 & mask_for(common);
        let bu = b as u64 & mask_for(common);
        let result = match op {
            BinOp::Add => Value::of_kind(a.wrapping_add(b), common),
            BinOp::Sub => Value::of_kind(a.wrapping_sub(b), common),
            BinOp::Mul => Value::of_kind(a.wrapping_mul(b), common),
            BinOp::Div => {
                if b == 0 {
                    return Err(MiniCError::new(ErrorKind::Runtime, "division by zero", line));
                }
                if unsigned {
                    Value::of_kind((au / bu.max(1)) as i64, common)
                } else {
                    Value::of_kind(a.wrapping_div(b), common)
                }
            }
            BinOp::Rem => {
                if b == 0 {
                    return Err(MiniCError::new(ErrorKind::Runtime, "modulo by zero", line));
                }
                if unsigned {
                    Value::of_kind((au % bu.max(1)) as i64, common)
                } else {
                    Value::of_kind(a.wrapping_rem(b), common)
                }
            }
            BinOp::Shl => {
                // Result kind follows the (promoted) left operand in C.
                let k = ka.promote();
                let sh = (b as u32) & (k.size() as u32 * 8 - 1);
                Value::of_kind((k.wrap(a0) as u64).wrapping_shl(sh) as i64, k)
            }
            BinOp::Shr => {
                let k = ka.promote();
                let sh = (b as u32) & (k.size() as u32 * 8 - 1);
                if k.signed() {
                    Value::of_kind(k.wrap(a0).wrapping_shr(sh), k)
                } else {
                    let raw = (k.wrap(a0) as u64) & mask_for(k);
                    Value::of_kind(raw.wrapping_shr(sh) as i64, k)
                }
            }
            BinOp::BitAnd => Value::of_kind(a & b, common),
            BinOp::BitOr => Value::of_kind(a | b, common),
            BinOp::BitXor => Value::of_kind(a ^ b, common),
            BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge | BinOp::Eq | BinOp::Ne => {
                let res = if unsigned {
                    match op {
                        BinOp::Lt => au < bu,
                        BinOp::Le => au <= bu,
                        BinOp::Gt => au > bu,
                        BinOp::Ge => au >= bu,
                        BinOp::Eq => au == bu,
                        _ => au != bu,
                    }
                } else {
                    match op {
                        BinOp::Lt => a < b,
                        BinOp::Le => a <= b,
                        BinOp::Gt => a > b,
                        BinOp::Ge => a >= b,
                        BinOp::Eq => a == b,
                        _ => a != b,
                    }
                };
                Value::int(res as i64)
            }
            BinOp::LogAnd | BinOp::LogOr => unreachable!("handled by caller"),
        };
        Ok(result)
    }

    fn eval_lvalue(&mut self, e: &Expr) -> Result<(Pointer, Type)> {
        self.burn(e.line)?;
        match &e.kind {
            ExprKind::Ident(name) => {
                if let Some(slot) = self.lookup(name) {
                    return Ok((slot.ptr, slot.ty));
                }
                Err(MiniCError::new(
                    ErrorKind::Runtime,
                    format!("unknown variable `{name}`"),
                    e.line,
                ))
            }
            ExprKind::Unary(UnOp::Deref, inner) => {
                let v = self.eval(inner)?;
                let Value::Ptr(p) = v else {
                    return Err(MiniCError::new(
                        ErrorKind::Runtime,
                        "deref of non-pointer",
                        e.line,
                    ));
                };
                let ty = self.tm.type_of(e.id).clone();
                Ok((p, ty))
            }
            ExprKind::Index { base, index } => {
                let bv = self.eval(base)?;
                let iv = self.eval(index)?;
                // `2[arr]` support: pick whichever side is the pointer.
                let (p, n, pt) = match (bv, iv) {
                    (Value::Ptr(p), Value::Int(n, _)) => (p, n, self.tm.value_type(base.id)),
                    (Value::Int(n, _), Value::Ptr(p)) => (p, n, self.tm.value_type(index.id)),
                    _ => {
                        return Err(MiniCError::new(
                            ErrorKind::Runtime,
                            "index on non-pointer",
                            e.line,
                        ))
                    }
                };
                let elem = self.tm.type_of(e.id).clone();
                let size = self
                    .tm
                    .layout
                    .size_of(&elem)
                    .or_else(|| pt.pointee().and_then(|t| self.tm.layout.size_of(t)))
                    .ok_or_else(|| rt("indexing incomplete type"))?;
                Ok((p.offset(n * size as i64), elem))
            }
            ExprKind::Member { base, field, arrow } => {
                let (base_ptr, sname) = if *arrow {
                    let v = self.eval(base)?;
                    let Value::Ptr(p) = v else {
                        return Err(MiniCError::new(
                            ErrorKind::Runtime,
                            "-> on non-pointer",
                            e.line,
                        ));
                    };
                    let bt = self.tm.value_type(base.id);
                    let Some(Type::Struct(s)) = bt.pointee().map(|t| self.tm.layout.resolve(t))
                    else {
                        return Err(MiniCError::new(
                            ErrorKind::Runtime,
                            "-> on non-struct pointer",
                            e.line,
                        ));
                    };
                    (p, s)
                } else {
                    let (p, ty) = self.eval_lvalue(base)?;
                    let Type::Struct(s) = self.tm.layout.resolve(&ty) else {
                        return Err(MiniCError::new(
                            ErrorKind::Runtime,
                            ". on non-struct",
                            e.line,
                        ));
                    };
                    (p, s)
                };
                let (off, fty) = self
                    .tm
                    .layout
                    .field_of(&sname, field)
                    .ok_or_else(|| rt(format!("no field `{field}`")))?;
                Ok((base_ptr.offset(off as i64), fty))
            }
            ExprKind::StrLit(_) => {
                let v = self.eval(e)?;
                Ok((v.as_ptr(), Type::Int(IntKind::Char)))
            }
            _ => {
                Err(MiniCError::new(ErrorKind::Runtime, "expression is not an lvalue", e.line))
            }
        }
    }

    fn lookup(&self, name: &str) -> Option<Slot> {
        if let Some(frame) = self.scopes.last() {
            for scope in frame.iter().rev() {
                if let Some(slot) = scope.get(name) {
                    return Some(slot.clone());
                }
            }
        }
        self.globals.get(name).cloned()
    }

    // ---- builtins ----

    /// Executes a libc builtin; returns `Ok(None)` if `name` is not one.
    fn call_builtin(&mut self, name: &str, args: &[Value]) -> Result<Option<Option<Value>>> {
        // A user-defined function shadows a builtin of the same name.
        if self.functions.contains_key(name) {
            return Ok(None);
        }
        let val = match name {
            "memcpy" | "memmove" => {
                let (d, s, n) = (args[0].as_ptr(), args[1].as_ptr(), args[2].as_i64());
                self.mem.copy(d, s, n as usize)?;
                Some(Value::Ptr(d))
            }
            "memset" => {
                let (d, c, n) = (args[0].as_ptr(), args[1].as_i64(), args[2].as_i64());
                self.mem.fill(d, c as u8, n as usize)?;
                Some(Value::Ptr(d))
            }
            "memcmp" => {
                let a = self.mem.load_bytes(args[0].as_ptr(), args[2].as_i64() as usize)?;
                let b = self.mem.load_bytes(args[1].as_ptr(), args[2].as_i64() as usize)?;
                Some(Value::int(match a.cmp(&b) {
                    std::cmp::Ordering::Less => -1,
                    std::cmp::Ordering::Equal => 0,
                    std::cmp::Ordering::Greater => 1,
                }))
            }
            "strlen" => {
                let s = self.mem.load_cstr(args[0].as_ptr())?;
                Some(Value::of_kind(s.len() as i64, IntKind::ULong))
            }
            "strcpy" => {
                let s = self.mem.load_cstr(args[1].as_ptr())?;
                let d = args[0].as_ptr();
                self.mem.store_bytes(d, &s)?;
                self.mem.store_bytes(d.offset(s.len() as i64), &[0])?;
                Some(Value::Ptr(d))
            }
            "strncpy" => {
                let s = self.mem.load_cstr(args[1].as_ptr())?;
                let n = args[2].as_i64() as usize;
                let d = args[0].as_ptr();
                let mut buf = vec![0u8; n];
                let len = s.len().min(n);
                buf[..len].copy_from_slice(&s[..len]);
                self.mem.store_bytes(d, &buf)?;
                Some(Value::Ptr(d))
            }
            "strcmp" => {
                let a = self.mem.load_cstr(args[0].as_ptr())?;
                let b = self.mem.load_cstr(args[1].as_ptr())?;
                Some(Value::int(match a.cmp(&b) {
                    std::cmp::Ordering::Less => -1,
                    std::cmp::Ordering::Equal => 0,
                    std::cmp::Ordering::Greater => 1,
                }))
            }
            "strncmp" => {
                let n = args[2].as_i64() as usize;
                let mut a = self.mem.load_cstr(args[0].as_ptr())?;
                let mut b = self.mem.load_cstr(args[1].as_ptr())?;
                a.truncate(n);
                b.truncate(n);
                Some(Value::int(match a.cmp(&b) {
                    std::cmp::Ordering::Less => -1,
                    std::cmp::Ordering::Equal => 0,
                    std::cmp::Ordering::Greater => 1,
                }))
            }
            "strcat" => {
                let d = args[0].as_ptr();
                let dl = self.mem.load_cstr(d)?.len();
                let s = self.mem.load_cstr(args[1].as_ptr())?;
                self.mem.store_bytes(d.offset(dl as i64), &s)?;
                self.mem.store_bytes(d.offset((dl + s.len()) as i64), &[0])?;
                Some(Value::Ptr(d))
            }
            "strchr" => {
                let s = self.mem.load_cstr(args[0].as_ptr())?;
                let c = args[1].as_i64() as u8;
                match s.iter().position(|&b| b == c) {
                    Some(i) => Some(Value::Ptr(args[0].as_ptr().offset(i as i64))),
                    None => Some(Value::Ptr(Pointer::null())),
                }
            }
            "abs" => Some(Value::int((args[0].as_i64() as i32).wrapping_abs() as i64)),
            "labs" => Some(Value::long(args[0].as_i64().wrapping_abs())),
            "fabs" => Some(Value::F64(args[0].as_f64().abs())),
            "fabsf" => Some(Value::F32(args[0].as_f64().abs() as f32)),
            "sqrt" => Some(Value::F64(args[0].as_f64().sqrt())),
            "sqrtf" => Some(Value::F32((args[0].as_f64() as f32).sqrt())),
            "sin" => Some(Value::F64(args[0].as_f64().sin())),
            "cos" => Some(Value::F64(args[0].as_f64().cos())),
            "tan" => Some(Value::F64(args[0].as_f64().tan())),
            "exp" => Some(Value::F64(args[0].as_f64().exp())),
            "log" => Some(Value::F64(args[0].as_f64().ln())),
            "pow" => Some(Value::F64(args[0].as_f64().powf(args[1].as_f64()))),
            "floor" => Some(Value::F64(args[0].as_f64().floor())),
            "ceil" => Some(Value::F64(args[0].as_f64().ceil())),
            "fmod" => Some(Value::F64(args[0].as_f64() % args[1].as_f64())),
            "fmin" => Some(Value::F64(args[0].as_f64().min(args[1].as_f64()))),
            "fmax" => Some(Value::F64(args[0].as_f64().max(args[1].as_f64()))),
            "isdigit" => {
                Some(Value::int((args[0].as_i64() as u8 as char).is_ascii_digit() as i64))
            }
            "isalpha" => {
                Some(Value::int((args[0].as_i64() as u8 as char).is_ascii_alphabetic() as i64))
            }
            "isspace" => {
                Some(Value::int((args[0].as_i64() as u8 as char).is_ascii_whitespace() as i64))
            }
            "isupper" => {
                Some(Value::int((args[0].as_i64() as u8 as char).is_ascii_uppercase() as i64))
            }
            "islower" => {
                Some(Value::int((args[0].as_i64() as u8 as char).is_ascii_lowercase() as i64))
            }
            "toupper" => Some(Value::int((args[0].as_i64() as u8).to_ascii_uppercase() as i64)),
            "tolower" => Some(Value::int((args[0].as_i64() as u8).to_ascii_lowercase() as i64)),
            // Output builtins are no-ops that return plausible values; the
            // IO harness compares memory and return values, not stdout.
            "putchar" => Some(Value::int(args[0].as_i64())),
            "printf" => Some(Value::int(0)),
            _ => return Ok(None),
        };
        Ok(Some(val))
    }
}

fn find_label(stmts: &[Stmt], label: &str) -> Option<usize> {
    stmts
        .iter()
        .position(|s| matches!(&s.kind, StmtKind::Labeled { label: l, .. } if l == label))
}

fn rt(msg: impl Into<String>) -> MiniCError {
    MiniCError::new(ErrorKind::Runtime, msg, 0)
}

fn pack_ptr(p: Pointer) -> u64 {
    ((p.seg as u64) << 32) | (p.off as u64 & 0xffff_ffff)
}

fn unpack_ptr(raw: u64) -> Pointer {
    Pointer { seg: (raw >> 32) as u32, off: (raw & 0xffff_ffff) as i64 }
}

fn pack_val(v: &Value) -> u64 {
    match v {
        Value::Ptr(p) => pack_ptr(*p),
        Value::Int(x, _) => *x as u64,
        Value::F32(x) => *x as u64,
        Value::F64(x) => *x as u64,
    }
}

fn common_kind(a: IntKind, b: IntKind) -> IntKind {
    let a = a.promote();
    let b = b.promote();
    if a == b {
        return a;
    }
    if a.rank() == b.rank() {
        return a.to_unsigned();
    }
    let (hi, lo) = if a.rank() > b.rank() { (a, b) } else { (b, a) };
    if hi.signed() && !lo.signed() && hi.size() == lo.size() {
        hi.to_unsigned()
    } else {
        hi
    }
}

fn mask_for(k: IntKind) -> u64 {
    if k.size() >= 8 {
        u64::MAX
    } else {
        (1u64 << (k.size() * 8)) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_program;

    fn run(src: &str, func: &str, args: &[Value]) -> Result<Option<Value>> {
        let p = parse_program(src)?;
        let mut i = Interpreter::new(&p)?;
        Ok(i.call(func, args)?.ret)
    }

    fn run_i64(src: &str, func: &str, args: &[Value]) -> i64 {
        run(src, func, args).unwrap().unwrap().as_i64()
    }

    #[test]
    fn arithmetic_and_control_flow() {
        let src = r#"
            int fact(int n) { int r = 1; while (n > 1) { r *= n; n -= 1; } return r; }
        "#;
        assert_eq!(run_i64(src, "fact", &[Value::int(6)]), 720);
    }

    #[test]
    fn recursion() {
        let src = "int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }";
        assert_eq!(run_i64(src, "fib", &[Value::int(10)]), 55);
    }

    #[test]
    fn pointers_and_arrays() {
        let src = r#"
            int sum(int *a, int n) {
                int s = 0;
                for (int i = 0; i < n; i++) s += a[i];
                return s;
            }
            int driver(void) {
                int buf[5] = {1, 2, 3, 4, 5};
                return sum(buf, 5);
            }
        "#;
        assert_eq!(run_i64(src, "driver", &[]), 15);
    }

    #[test]
    fn pointer_writes_visible_to_caller() {
        let src = r#"
            void add(int *list, int val, int n) {
                int i;
                for (i = 0; i < n; ++i) list[i] += val;
            }
            int driver(void) {
                int a[3] = {1, 2, 3};
                add(a, 10, 3);
                return a[0] + a[1] + a[2];
            }
        "#;
        assert_eq!(run_i64(src, "driver", &[]), 36);
    }

    #[test]
    fn structs_and_member_access() {
        let src = r#"
            struct point { int x; int y; };
            int dot(struct point *a, struct point *b) { return a->x * b->x + a->y * b->y; }
            int driver(void) {
                struct point p; struct point q;
                p.x = 1; p.y = 2; q.x = 3; q.y = 4;
                return dot(&p, &q);
            }
        "#;
        assert_eq!(run_i64(src, "driver", &[]), 11);
    }

    #[test]
    fn struct_assignment_copies() {
        let src = r#"
            struct s { int a; int b; };
            int driver(void) {
                struct s x; struct s y;
                x.a = 7; x.b = 9;
                y = x;
                x.a = 0;
                return y.a + y.b;
            }
        "#;
        assert_eq!(run_i64(src, "driver", &[]), 16);
    }

    #[test]
    fn globals_and_initializers() {
        let src = r#"
            int table[4] = {10, 20, 30, 40};
            int counter = 5;
            int next(void) { counter++; return table[counter - 6]; }
        "#;
        let p = parse_program(src).unwrap();
        let mut i = Interpreter::new(&p).unwrap();
        assert_eq!(i.call("next", &[]).unwrap().ret.unwrap().as_i64(), 10);
        assert_eq!(i.call("next", &[]).unwrap().ret.unwrap().as_i64(), 20);
    }

    #[test]
    fn unsigned_semantics() {
        let src = "unsigned f(unsigned a, unsigned b) { return a / b; }";
        let big = Value::of_kind(-4_i64, IntKind::UInt); // 0xfffffffc
        assert_eq!(
            run(src, "f", &[big, Value::of_kind(2, IntKind::UInt)]).unwrap().unwrap().as_i64(),
            0x7ffffffe
        );
        let src2 = "int f(unsigned a, int b) { return a > b; }";
        // -1 as unsigned is huge, so 0u > -1 is false but 0xffffffffu > 1.
        assert_eq!(run_i64(src2, "f", &[Value::of_kind(-1, IntKind::UInt), Value::int(1)]), 1);
    }

    #[test]
    fn char_wrapping() {
        let src = "int f(void) { char c = 200; return c; }";
        assert_eq!(run_i64(src, "f", &[]), 200u8 as i8 as i64);
    }

    #[test]
    fn shifts_mask_like_hardware() {
        let src = "int f(int a, int b) { return a << b; }";
        assert_eq!(run_i64(src, "f", &[Value::int(1), Value::int(33)]), 2);
    }

    #[test]
    fn division_by_zero_is_runtime_error() {
        let src = "int f(int a) { return 10 / a; }";
        let err = run(src, "f", &[Value::int(0)]).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::Runtime);
    }

    #[test]
    fn infinite_loop_times_out() {
        let src = "int f(void) { while (1) {} return 0; }";
        let p = parse_program(src).unwrap();
        let mut i =
            Interpreter::with_limits(&p, RunLimits { fuel: 10_000, max_depth: 10 }).unwrap();
        let err = i.call("f", &[]).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::Timeout);
    }

    #[test]
    fn string_builtins() {
        let src = r#"
            int f(void) {
                char buf[16];
                strcpy(buf, "hello");
                strcat(buf, "!");
                return strlen(buf);
            }
        "#;
        assert_eq!(run_i64(src, "f", &[]), 6);
    }

    #[test]
    fn memcpy_through_void_pointers() {
        let src = r#"
            int f(void) {
                int a[2] = {3, 4};
                int b[2];
                memcpy(b, a, 2 * sizeof(int));
                return b[0] * b[1];
            }
        "#;
        assert_eq!(run_i64(src, "f", &[]), 12);
    }

    #[test]
    fn goto_forward_and_backward() {
        let src = r#"
            int f(int n) {
                int s = 0;
              again:
                s += n;
                n -= 1;
                if (n > 0) goto again;
                if (s > 100) goto big;
                return s;
              big:
                return 100;
            }
        "#;
        assert_eq!(run_i64(src, "f", &[Value::int(4)]), 10);
        assert_eq!(run_i64(src, "f", &[Value::int(50)]), 100);
    }

    #[test]
    fn ternary_and_comma() {
        let src = "int f(int a) { int b = (a > 0) ? a : -a; return (b += 1, b * 2); }";
        assert_eq!(run_i64(src, "f", &[Value::int(-5)]), 12);
    }

    #[test]
    fn float_arithmetic() {
        let src = "double f(double x, double y) { return x * y + 0.5; }";
        let out = run(src, "f", &[Value::F64(2.0), Value::F64(3.0)]).unwrap().unwrap();
        assert_eq!(out.as_f64(), 6.5);
    }

    #[test]
    fn float_int_mixing() {
        let src = "int f(int n) { float x = n; x = x / 2; return (int)x; }";
        assert_eq!(run_i64(src, "f", &[Value::int(7)]), 3);
    }

    #[test]
    fn harness_buffer_roundtrip() {
        let src = "void dbl(int *p, int n) { for (int i = 0; i < n; i++) p[i] *= 2; }";
        let p = parse_program(src).unwrap();
        let mut interp = Interpreter::new(&p).unwrap();
        let mut bytes = Vec::new();
        for v in [1i32, 2, 3] {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        let buf = interp.alloc_buffer(&bytes);
        interp.call("dbl", &[Value::Ptr(buf), Value::int(3)]).unwrap();
        let out = interp.read_buffer(buf, 12).unwrap();
        let vals: Vec<i32> =
            out.chunks(4).map(|c| i32::from_le_bytes(c.try_into().unwrap())).collect();
        assert_eq!(vals, vec![2, 4, 6]);
    }

    #[test]
    fn out_of_bounds_faults_at_runtime() {
        let src = r#"
            int f(void) { int a[2] = {1, 2}; return a[5]; }
        "#;
        let err = run(src, "f", &[]).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::Runtime);
    }

    #[test]
    fn undefined_function_call_fails() {
        let src = "int f(int x) { return mystery(x); }";
        let err = run(src, "f", &[Value::int(1)]).unwrap_err();
        assert!(err.message().contains("undefined function"));
    }

    #[test]
    fn locals_freed_on_scope_exit() {
        let src = r#"
            int f(int n) {
                int total = 0;
                for (int i = 0; i < n; i++) { int tmp = i * 2; total += tmp; }
                return total;
            }
        "#;
        assert_eq!(run_i64(src, "f", &[Value::int(4)]), 12);
    }

    #[test]
    fn pointer_difference() {
        let src = "long f(int *a) { int *b = a + 3; return b - a; }";
        let p = parse_program(src).unwrap();
        let mut interp = Interpreter::new(&p).unwrap();
        let buf = interp.alloc_buffer(&[0u8; 16]);
        let out = interp.call("f", &[Value::Ptr(buf)]).unwrap().ret.unwrap();
        assert_eq!(out.as_i64(), 3);
    }

    #[test]
    fn sizeof_expressions() {
        let src = "long f(void) { int a[7]; return sizeof(a) + sizeof(long) + sizeof a[0]; }";
        assert_eq!(run_i64(src, "f", &[]), 28 + 8 + 4);
    }

    #[test]
    fn switch_dispatch_and_fallthrough() {
        let src = r#"
            int f(int x) {
                int r = 0;
                switch (x) {
                    case 1: r = 10; break;
                    case 2: r = 20;
                    case 3: r += 1; break;
                    default: r = -1;
                }
                return r;
            }
        "#;
        assert_eq!(run_i64(src, "f", &[Value::int(1)]), 10);
        assert_eq!(run_i64(src, "f", &[Value::int(2)]), 21, "fallthrough 2 -> 3");
        assert_eq!(run_i64(src, "f", &[Value::int(3)]), 1);
        assert_eq!(run_i64(src, "f", &[Value::int(9)]), -1);
    }

    #[test]
    fn switch_without_default_falls_through_silently() {
        let src = "int f(int x) { int r = 5; switch (x) { case 1: r = 1; break; } return r; }";
        assert_eq!(run_i64(src, "f", &[Value::int(7)]), 5);
    }

    #[test]
    fn postfix_vs_prefix() {
        let src = "int f(int x) { int a = x++; int b = ++x; return a * 100 + b * 10 + x; }";
        // a = 5, x = 7 after ++x, b = 7.
        assert_eq!(run_i64(src, "f", &[Value::int(5)]), 500 + 70 + 7);
    }
}
