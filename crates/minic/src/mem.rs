//! Byte-addressable segment memory for the MiniC interpreter.
//!
//! Every object (global, local, string literal, parameter buffer) lives in
//! its own *segment*; a pointer is a `(segment, offset)` pair. This models
//! real memory closely enough that `memcpy`, offset casts and aliasing all
//! behave like hardware, while still catching out-of-bounds and
//! use-after-free per object — the same checks a sanitizer would perform
//! when the paper's harness executes untrusted decompiled code.

use crate::value::Pointer;
use crate::{ErrorKind, MiniCError, Result};

/// One allocation: raw bytes plus liveness.
#[derive(Debug, Clone)]
struct Segment {
    data: Vec<u8>,
    alive: bool,
}

/// The interpreter's memory: an arena of segments.
///
/// Segment 0 is reserved as the null segment, so a freshly-created
/// [`Pointer::null`] faults on access.
///
/// # Example
///
/// ```
/// use slade_minic::mem::Memory;
///
/// let mut mem = Memory::new();
/// let p = mem.alloc(8);
/// mem.store_bytes(p, &42i64.to_le_bytes()).unwrap();
/// assert_eq!(mem.load_bytes(p, 8).unwrap(), 42i64.to_le_bytes());
/// ```
#[derive(Debug, Clone)]
pub struct Memory {
    segments: Vec<Segment>,
}

impl Default for Memory {
    fn default() -> Self {
        Self::new()
    }
}

impl Memory {
    /// Creates an empty memory with the reserved null segment.
    pub fn new() -> Self {
        Memory { segments: vec![Segment { data: Vec::new(), alive: false }] }
    }

    /// Allocates a zero-initialized segment of `size` bytes and returns a
    /// pointer to its start.
    pub fn alloc(&mut self, size: usize) -> Pointer {
        let seg = self.segments.len() as u32;
        self.segments.push(Segment { data: vec![0; size], alive: true });
        Pointer { seg, off: 0 }
    }

    /// Marks a segment dead (used when a scope exits); later access faults.
    pub fn free(&mut self, p: Pointer) {
        if let Some(s) = self.segments.get_mut(p.seg as usize) {
            s.alive = false;
            s.data.clear();
            s.data.shrink_to_fit();
        }
    }

    /// Size in bytes of the segment `p` points into.
    pub fn segment_size(&self, p: Pointer) -> Option<usize> {
        self.segments.get(p.seg as usize).filter(|s| s.alive).map(|s| s.data.len())
    }

    fn slice(&self, p: Pointer, len: usize) -> Result<&[u8]> {
        let seg = self
            .segments
            .get(p.seg as usize)
            .filter(|s| s.alive)
            .ok_or_else(|| oob(p, len, "access to dead or null segment"))?;
        let start = usize::try_from(p.off).map_err(|_| oob(p, len, "negative offset"))?;
        let end = start.checked_add(len).ok_or_else(|| oob(p, len, "offset overflow"))?;
        seg.data.get(start..end).ok_or_else(|| oob(p, len, "out of bounds"))
    }

    fn slice_mut(&mut self, p: Pointer, len: usize) -> Result<&mut [u8]> {
        let seg = self
            .segments
            .get_mut(p.seg as usize)
            .filter(|s| s.alive)
            .ok_or_else(|| oob(p, len, "access to dead or null segment"))?;
        let start = usize::try_from(p.off).map_err(|_| oob(p, len, "negative offset"))?;
        let end = start.checked_add(len).ok_or_else(|| oob(p, len, "offset overflow"))?;
        seg.data.get_mut(start..end).ok_or_else(|| oob(p, len, "out of bounds"))
    }

    /// Reads `len` bytes at `p`.
    ///
    /// # Errors
    ///
    /// Faults on null/dead segments and out-of-bounds ranges.
    pub fn load_bytes(&self, p: Pointer, len: usize) -> Result<Vec<u8>> {
        Ok(self.slice(p, len)?.to_vec())
    }

    /// Writes `bytes` at `p`.
    ///
    /// # Errors
    ///
    /// Faults on null/dead segments and out-of-bounds ranges.
    pub fn store_bytes(&mut self, p: Pointer, bytes: &[u8]) -> Result<()> {
        self.slice_mut(p, bytes.len())?.copy_from_slice(bytes);
        Ok(())
    }

    /// `memcpy`-style copy between possibly-overlapping regions.
    ///
    /// # Errors
    ///
    /// Faults if either range is invalid.
    pub fn copy(&mut self, dst: Pointer, src: Pointer, len: usize) -> Result<()> {
        let bytes = self.load_bytes(src, len)?;
        self.store_bytes(dst, &bytes)
    }

    /// `memset`-style fill.
    ///
    /// # Errors
    ///
    /// Faults if the range is invalid.
    pub fn fill(&mut self, dst: Pointer, byte: u8, len: usize) -> Result<()> {
        self.slice_mut(dst, len)?.fill(byte);
        Ok(())
    }

    /// Reads a NUL-terminated C string starting at `p` (capped at 1 MiB).
    ///
    /// # Errors
    ///
    /// Faults if the string runs past its segment without a terminator.
    pub fn load_cstr(&self, p: Pointer) -> Result<Vec<u8>> {
        let mut out = Vec::new();
        let mut off = p.off;
        loop {
            let b = self.slice(Pointer { seg: p.seg, off }, 1)?[0];
            if b == 0 {
                return Ok(out);
            }
            out.push(b);
            off += 1;
            if out.len() > 1 << 20 {
                return Err(oob(p, out.len(), "unterminated string"));
            }
        }
    }

    /// Number of live segments (for tests and leak accounting).
    pub fn live_segments(&self) -> usize {
        self.segments.iter().filter(|s| s.alive).count()
    }
}

fn oob(p: Pointer, len: usize, why: &str) -> MiniCError {
    MiniCError::new(
        ErrorKind::Runtime,
        format!("memory fault: {why} (seg {} off {} len {len})", p.seg, p.off),
        0,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_bytes() {
        let mut m = Memory::new();
        let p = m.alloc(16);
        m.store_bytes(p, &[1, 2, 3]).unwrap();
        assert_eq!(m.load_bytes(p, 3).unwrap(), vec![1, 2, 3]);
    }

    #[test]
    fn null_pointer_faults() {
        let m = Memory::new();
        assert!(m.load_bytes(Pointer::null(), 1).is_err());
    }

    #[test]
    fn out_of_bounds_faults() {
        let mut m = Memory::new();
        let p = m.alloc(4);
        assert!(m.load_bytes(p.offset(2), 4).is_err());
        assert!(m.load_bytes(p.offset(-1), 1).is_err());
    }

    #[test]
    fn use_after_free_faults() {
        let mut m = Memory::new();
        let p = m.alloc(4);
        m.free(p);
        assert!(m.load_bytes(p, 1).is_err());
    }

    #[test]
    fn cstr_reads_to_nul() {
        let mut m = Memory::new();
        let p = m.alloc(8);
        m.store_bytes(p, b"hi\0junk").unwrap();
        assert_eq!(m.load_cstr(p).unwrap(), b"hi");
    }

    #[test]
    fn overlapping_copy_behaves_like_memmove() {
        let mut m = Memory::new();
        let p = m.alloc(8);
        m.store_bytes(p, &[1, 2, 3, 4, 5, 6, 7, 8]).unwrap();
        m.copy(p.offset(2), p, 4).unwrap();
        assert_eq!(m.load_bytes(p, 8).unwrap(), vec![1, 2, 1, 2, 3, 4, 7, 8]);
    }
}
