//! The MiniC type system: scalar kinds, pointers, arrays, structs, typedefs,
//! and layout (size/alignment) computation.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Integer kinds, carrying width and signedness.
///
/// MiniC follows the LP64 model used by both target ISAs: `char` is 8 bits,
/// `short` 16, `int` 32, `long` (and pointers) 64.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IntKind {
    /// `char` (treated as signed, as GCC does on x86-64).
    Char,
    /// `unsigned char`
    UChar,
    /// `short`
    Short,
    /// `unsigned short`
    UShort,
    /// `int`
    Int,
    /// `unsigned int`
    UInt,
    /// `long` / `long long`
    Long,
    /// `unsigned long` / `unsigned long long` / `size_t`
    ULong,
}

impl IntKind {
    /// Size in bytes.
    pub fn size(self) -> usize {
        match self {
            IntKind::Char | IntKind::UChar => 1,
            IntKind::Short | IntKind::UShort => 2,
            IntKind::Int | IntKind::UInt => 4,
            IntKind::Long | IntKind::ULong => 8,
        }
    }

    /// Whether values of this kind are signed.
    pub fn signed(self) -> bool {
        matches!(self, IntKind::Char | IntKind::Short | IntKind::Int | IntKind::Long)
    }

    /// The unsigned kind of the same width.
    pub fn to_unsigned(self) -> IntKind {
        match self {
            IntKind::Char | IntKind::UChar => IntKind::UChar,
            IntKind::Short | IntKind::UShort => IntKind::UShort,
            IntKind::Int | IntKind::UInt => IntKind::UInt,
            IntKind::Long | IntKind::ULong => IntKind::ULong,
        }
    }

    /// Integer-promotion result: anything narrower than `int` promotes to `int`.
    pub fn promote(self) -> IntKind {
        if self.size() < 4 {
            IntKind::Int
        } else {
            self
        }
    }

    /// Conversion rank used by the usual arithmetic conversions.
    pub fn rank(self) -> u8 {
        match self {
            IntKind::Char | IntKind::UChar => 1,
            IntKind::Short | IntKind::UShort => 2,
            IntKind::Int | IntKind::UInt => 3,
            IntKind::Long | IntKind::ULong => 4,
        }
    }

    /// Wraps `v` (an infinitely-ranged value held in an `i64`) to this kind's
    /// width and signedness.
    ///
    /// ```
    /// use slade_minic::IntKind;
    /// assert_eq!(IntKind::Char.wrap(130), -126);
    /// assert_eq!(IntKind::UChar.wrap(-1), 255);
    /// assert_eq!(IntKind::UInt.wrap(-1), 0xffff_ffff);
    /// ```
    pub fn wrap(self, v: i64) -> i64 {
        match self {
            IntKind::Char => v as i8 as i64,
            IntKind::UChar => v as u8 as i64,
            IntKind::Short => v as i16 as i64,
            IntKind::UShort => v as u16 as i64,
            IntKind::Int => v as i32 as i64,
            IntKind::UInt => v as u32 as i64,
            IntKind::Long => v,
            // ULong keeps the bit pattern; comparisons reinterpret as u64.
            IntKind::ULong => v,
        }
    }

    /// C spelling of this kind.
    pub fn c_name(self) -> &'static str {
        match self {
            IntKind::Char => "char",
            IntKind::UChar => "unsigned char",
            IntKind::Short => "short",
            IntKind::UShort => "unsigned short",
            IntKind::Int => "int",
            IntKind::UInt => "unsigned int",
            IntKind::Long => "long",
            IntKind::ULong => "unsigned long",
        }
    }
}

/// A MiniC type.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Type {
    /// `void` (valid only as a return type or pointee).
    Void,
    /// Integer type.
    Int(IntKind),
    /// `float`
    Float,
    /// `double`
    Double,
    /// Pointer to a type.
    Ptr(Box<Type>),
    /// Fixed-size array.
    Array(Box<Type>, usize),
    /// A struct referenced by tag name; the definition lives in the program.
    Struct(String),
    /// A typedef name not yet resolved (resolved away by semantic analysis;
    /// may denote an *unknown* type in lenient mode, which is what the type
    /// inference engine consumes).
    Named(String),
}

impl Type {
    /// Shorthand for `int`.
    pub fn int() -> Type {
        Type::Int(IntKind::Int)
    }

    /// Shorthand for a pointer to `t`.
    pub fn ptr(t: Type) -> Type {
        Type::Ptr(Box::new(t))
    }

    /// True for any integer type.
    pub fn is_integer(&self) -> bool {
        matches!(self, Type::Int(_))
    }

    /// True for `float`/`double`.
    pub fn is_floating(&self) -> bool {
        matches!(self, Type::Float | Type::Double)
    }

    /// True for any arithmetic (integer or floating) type.
    pub fn is_arithmetic(&self) -> bool {
        self.is_integer() || self.is_floating()
    }

    /// True for pointers and arrays (which decay to pointers).
    pub fn is_pointerish(&self) -> bool {
        matches!(self, Type::Ptr(_) | Type::Array(..))
    }

    /// True if values of this type are passed/stored by value as scalars.
    pub fn is_scalar(&self) -> bool {
        self.is_arithmetic() || matches!(self, Type::Ptr(_))
    }

    /// The pointee/element type of a pointer or array, if any.
    pub fn pointee(&self) -> Option<&Type> {
        match self {
            Type::Ptr(t) => Some(t),
            Type::Array(t, _) => Some(t),
            _ => None,
        }
    }

    /// Array/pointer decay: arrays become pointers to their element type.
    pub fn decay(&self) -> Type {
        match self {
            Type::Array(t, _) => Type::Ptr(t.clone()),
            other => other.clone(),
        }
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Void => write!(f, "void"),
            Type::Int(k) => write!(f, "{}", k.c_name()),
            Type::Float => write!(f, "float"),
            Type::Double => write!(f, "double"),
            Type::Ptr(t) => write!(f, "{t}*"),
            Type::Array(t, n) => write!(f, "{t}[{n}]"),
            Type::Struct(name) => write!(f, "struct {name}"),
            Type::Named(name) => write!(f, "{name}"),
        }
    }
}

/// A struct definition: ordered fields with their types.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StructDef {
    /// Struct tag.
    pub name: String,
    /// `(field name, field type)` in declaration order.
    pub fields: Vec<(String, Type)>,
}

/// Computed layout of a struct: total size, alignment and field offsets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StructLayout {
    /// Total size in bytes, including tail padding.
    pub size: usize,
    /// Alignment in bytes.
    pub align: usize,
    /// Byte offset of each field, same order as the definition.
    pub offsets: Vec<usize>,
}

/// Resolves types to sizes and alignments, given the program's struct and
/// typedef tables.
///
/// # Example
///
/// ```
/// use slade_minic::types::{LayoutCtx, Type, IntKind};
/// use std::collections::HashMap;
///
/// let ctx = LayoutCtx::new(HashMap::new(), HashMap::new());
/// assert_eq!(ctx.size_of(&Type::Int(IntKind::Int)).unwrap(), 4);
/// assert_eq!(ctx.size_of(&Type::ptr(Type::int())).unwrap(), 8);
/// ```
#[derive(Debug, Clone, Default)]
pub struct LayoutCtx {
    structs: HashMap<String, StructDef>,
    typedefs: HashMap<String, Type>,
}

impl LayoutCtx {
    /// Creates a layout context from struct and typedef tables.
    pub fn new(structs: HashMap<String, StructDef>, typedefs: HashMap<String, Type>) -> Self {
        LayoutCtx { structs, typedefs }
    }

    /// Looks up a struct definition by tag.
    pub fn struct_def(&self, name: &str) -> Option<&StructDef> {
        self.structs.get(name)
    }

    /// Resolves typedef names until a structural type is reached.
    ///
    /// Unknown names resolve to themselves so lenient-mode consumers can
    /// observe them.
    pub fn resolve(&self, ty: &Type) -> Type {
        let mut t = ty.clone();
        let mut fuel = 32;
        while let Type::Named(name) = &t {
            match self.typedefs.get(name) {
                Some(next) if fuel > 0 => {
                    fuel -= 1;
                    t = next.clone();
                }
                _ => break,
            }
        }
        // Resolve nested pointee/element types too.
        match t {
            Type::Ptr(inner) => Type::Ptr(Box::new(self.resolve(&inner))),
            Type::Array(inner, n) => Type::Array(Box::new(self.resolve(&inner)), n),
            other => other,
        }
    }

    /// Size of a type in bytes.
    ///
    /// # Errors
    ///
    /// Returns `None` for `void`, unknown named types and undefined structs.
    pub fn size_of(&self, ty: &Type) -> Option<usize> {
        match self.resolve(ty) {
            Type::Void => None,
            Type::Int(k) => Some(k.size()),
            Type::Float => Some(4),
            Type::Double => Some(8),
            Type::Ptr(_) => Some(8),
            Type::Array(t, n) => Some(self.size_of(&t)? * n),
            Type::Struct(name) => Some(self.layout_of(&name)?.size),
            Type::Named(_) => None,
        }
    }

    /// Alignment of a type in bytes.
    pub fn align_of(&self, ty: &Type) -> Option<usize> {
        match self.resolve(ty) {
            Type::Void => None,
            Type::Int(k) => Some(k.size()),
            Type::Float => Some(4),
            Type::Double => Some(8),
            Type::Ptr(_) => Some(8),
            Type::Array(t, _) => self.align_of(&t),
            Type::Struct(name) => Some(self.layout_of(&name)?.align),
            Type::Named(_) => None,
        }
    }

    /// Computes the natural-alignment layout of struct `name`.
    pub fn layout_of(&self, name: &str) -> Option<StructLayout> {
        let def = self.structs.get(name)?;
        let mut size = 0usize;
        let mut align = 1usize;
        let mut offsets = Vec::with_capacity(def.fields.len());
        for (_, fty) in &def.fields {
            let fa = self.align_of(fty)?;
            let fs = self.size_of(fty)?;
            size = size.div_ceil(fa) * fa;
            offsets.push(size);
            size += fs;
            align = align.max(fa);
        }
        size = size.div_ceil(align) * align;
        if size == 0 {
            size = 1; // empty structs still occupy storage
        }
        Some(StructLayout { size, align, offsets })
    }

    /// Offset and type of field `field` within struct `name`.
    pub fn field_of(&self, name: &str, field: &str) -> Option<(usize, Type)> {
        let def = self.structs.get(name)?;
        let layout = self.layout_of(name)?;
        for (i, (fname, fty)) in def.fields.iter().enumerate() {
            if fname == field {
                return Some((layout.offsets[i], self.resolve(fty)));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx_with(def: StructDef) -> LayoutCtx {
        let mut m = HashMap::new();
        m.insert(def.name.clone(), def);
        LayoutCtx::new(m, HashMap::new())
    }

    #[test]
    fn scalar_sizes_follow_lp64() {
        let ctx = LayoutCtx::default();
        assert_eq!(ctx.size_of(&Type::Int(IntKind::Char)), Some(1));
        assert_eq!(ctx.size_of(&Type::Int(IntKind::Short)), Some(2));
        assert_eq!(ctx.size_of(&Type::Int(IntKind::Int)), Some(4));
        assert_eq!(ctx.size_of(&Type::Int(IntKind::Long)), Some(8));
        assert_eq!(ctx.size_of(&Type::ptr(Type::Void)), Some(8));
        assert_eq!(ctx.size_of(&Type::Double), Some(8));
    }

    #[test]
    fn struct_layout_inserts_padding() {
        let def = StructDef {
            name: "s".into(),
            fields: vec![
                ("c".into(), Type::Int(IntKind::Char)),
                ("d".into(), Type::Double),
                ("i".into(), Type::Int(IntKind::Int)),
            ],
        };
        let ctx = ctx_with(def);
        let layout = ctx.layout_of("s").unwrap();
        assert_eq!(layout.offsets, vec![0, 8, 16]);
        assert_eq!(layout.align, 8);
        assert_eq!(layout.size, 24); // tail padded to alignment
    }

    #[test]
    fn typedef_resolution_is_transitive() {
        let mut tds = HashMap::new();
        tds.insert("a".to_string(), Type::Named("b".into()));
        tds.insert("b".to_string(), Type::Int(IntKind::Long));
        let ctx = LayoutCtx::new(HashMap::new(), tds);
        assert_eq!(ctx.resolve(&Type::Named("a".into())), Type::Int(IntKind::Long));
        assert_eq!(ctx.size_of(&Type::ptr(Type::Named("a".into()))), Some(8));
    }

    #[test]
    fn cyclic_typedefs_terminate() {
        let mut tds = HashMap::new();
        tds.insert("a".to_string(), Type::Named("b".into()));
        tds.insert("b".to_string(), Type::Named("a".into()));
        let ctx = LayoutCtx::new(HashMap::new(), tds);
        // Must not hang; size remains unknown.
        assert_eq!(ctx.size_of(&Type::Named("a".into())), None);
    }

    #[test]
    fn promotion_and_wrapping() {
        assert_eq!(IntKind::Char.promote(), IntKind::Int);
        assert_eq!(IntKind::UInt.promote(), IntKind::UInt);
        assert_eq!(IntKind::Short.wrap(40000), 40000u16 as i16 as i64);
        assert_eq!(IntKind::UShort.wrap(-1), 65535);
    }

    #[test]
    fn array_layouts() {
        let ctx = LayoutCtx::default();
        let arr = Type::Array(Box::new(Type::Int(IntKind::Int)), 10);
        assert_eq!(ctx.size_of(&arr), Some(40));
        assert_eq!(ctx.align_of(&arr), Some(4));
        assert_eq!(arr.decay(), Type::ptr(Type::int()));
    }
}
