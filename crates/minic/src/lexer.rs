//! Hand-written lexer for MiniC.
//!
//! Handles decimal/hex/octal integer literals with `u`/`l` suffixes, float
//! literals (with optional exponent and `f` suffix), char and string literals
//! with the usual escapes, line and block comments, and the full punctuation
//! set in [`crate::token::PUNCTS`].

use crate::token::{Token, TokenKind, PUNCTS};
use crate::{ErrorKind, MiniCError, Result};

/// Streaming lexer over MiniC source text.
///
/// # Example
///
/// ```
/// use slade_minic::{Lexer, TokenKind};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let tokens = Lexer::new("int x = 0x1f;").tokenize()?;
/// assert!(matches!(tokens[0].kind, TokenKind::Ident(ref s) if s == "int"));
/// assert!(matches!(tokens[3].kind, TokenKind::IntLit { value: 31, .. }));
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
}

impl<'a> Lexer<'a> {
    /// Creates a lexer over `src`.
    pub fn new(src: &'a str) -> Self {
        Lexer { src: src.as_bytes(), pos: 0, line: 1 }
    }

    /// Lexes the entire input, appending a trailing [`TokenKind::Eof`].
    ///
    /// # Errors
    ///
    /// Returns a [`MiniCError`] with kind [`ErrorKind::Lex`] on malformed
    /// literals, unterminated comments/strings, or stray bytes.
    pub fn tokenize(mut self) -> Result<Vec<Token>> {
        let mut out = Vec::new();
        loop {
            self.skip_trivia()?;
            let line = self.line;
            let Some(c) = self.peek() else {
                out.push(Token { kind: TokenKind::Eof, line });
                return Ok(out);
            };
            let kind = if c.is_ascii_alphabetic() || c == b'_' {
                self.lex_ident()
            } else if c.is_ascii_digit()
                || (c == b'.' && self.peek_at(1).is_some_and(|d| d.is_ascii_digit()))
            {
                self.lex_number()?
            } else if c == b'\'' {
                self.lex_char()?
            } else if c == b'"' {
                self.lex_string()?
            } else {
                self.lex_punct()?
            };
            out.push(Token { kind, line });
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek_at(&self, n: usize) -> Option<u8> {
        self.src.get(self.pos + n).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn err(&self, msg: impl Into<String>) -> MiniCError {
        MiniCError::new(ErrorKind::Lex, msg, self.line)
    }

    fn skip_trivia(&mut self) -> Result<()> {
        loop {
            match self.peek() {
                Some(c) if c.is_ascii_whitespace() => {
                    self.bump();
                }
                Some(b'/') if self.peek_at(1) == Some(b'/') => {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                Some(b'/') if self.peek_at(1) == Some(b'*') => {
                    self.bump();
                    self.bump();
                    loop {
                        match self.peek() {
                            None => return Err(self.err("unterminated block comment")),
                            Some(b'*') if self.peek_at(1) == Some(b'/') => {
                                self.bump();
                                self.bump();
                                break;
                            }
                            _ => {
                                self.bump();
                            }
                        }
                    }
                }
                // Preprocessor lines are not part of MiniC; skip them so that
                // pasted real-world snippets with `#include` still lex.
                Some(b'#') => {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn lex_ident(&mut self) -> TokenKind {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == b'_' {
                self.bump();
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).unwrap().to_string();
        TokenKind::Ident(text)
    }

    fn lex_number(&mut self) -> Result<TokenKind> {
        let start = self.pos;
        let mut is_float = false;
        if self.peek() == Some(b'0') && matches!(self.peek_at(1), Some(b'x') | Some(b'X')) {
            self.bump();
            self.bump();
            let digits_start = self.pos;
            while self.peek().is_some_and(|c| c.is_ascii_hexdigit()) {
                self.bump();
            }
            if self.pos == digits_start {
                return Err(self.err("hex literal requires digits"));
            }
            let text = std::str::from_utf8(&self.src[digits_start..self.pos]).unwrap();
            let value = u64::from_str_radix(text, 16)
                .map_err(|_| self.err("hex literal out of range"))?;
            let (unsigned, long) = self.lex_int_suffix();
            return Ok(TokenKind::IntLit { value, unsigned, long });
        }
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.bump();
        }
        if self.peek() == Some(b'.') && self.peek_at(1) != Some(b'.') {
            is_float = true;
            self.bump();
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.bump();
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            let mut look = 1;
            if matches!(self.peek_at(1), Some(b'+') | Some(b'-')) {
                look = 2;
            }
            if self.peek_at(look).is_some_and(|c| c.is_ascii_digit()) {
                is_float = true;
                for _ in 0..look {
                    self.bump();
                }
                while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                    self.bump();
                }
            }
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).unwrap();
        if is_float {
            let single = matches!(self.peek(), Some(b'f') | Some(b'F'));
            if single {
                self.bump();
            }
            let value: f64 = text.parse().map_err(|_| self.err("bad float literal"))?;
            Ok(TokenKind::FloatLit { value, single })
        } else if matches!(self.peek(), Some(b'f') | Some(b'F')) {
            self.bump();
            let value: f64 = text.parse().map_err(|_| self.err("bad float literal"))?;
            Ok(TokenKind::FloatLit { value, single: true })
        } else {
            let value: u64 = if text.len() > 1 && text.starts_with('0') {
                u64::from_str_radix(&text[1..], 8).map_err(|_| self.err("bad octal literal"))?
            } else {
                text.parse().map_err(|_| self.err("integer literal out of range"))?
            };
            let (unsigned, long) = self.lex_int_suffix();
            Ok(TokenKind::IntLit { value, unsigned, long })
        }
    }

    fn lex_int_suffix(&mut self) -> (bool, bool) {
        let mut unsigned = false;
        let mut long = false;
        while let Some(c) = self.peek() {
            match c {
                b'u' | b'U' if !unsigned => {
                    unsigned = true;
                    self.bump();
                }
                b'l' | b'L' => {
                    long = true;
                    self.bump();
                }
                _ => break,
            }
        }
        (unsigned, long)
    }

    fn lex_escape(&mut self) -> Result<u8> {
        let c = self.bump().ok_or_else(|| self.err("unterminated escape"))?;
        Ok(match c {
            b'n' => b'\n',
            b't' => b'\t',
            b'r' => b'\r',
            b'0' => 0,
            b'\\' => b'\\',
            b'\'' => b'\'',
            b'"' => b'"',
            b'a' => 0x07,
            b'b' => 0x08,
            b'f' => 0x0c,
            b'v' => 0x0b,
            b'x' => {
                let mut v: u32 = 0;
                let mut seen = false;
                while let Some(h) = self.peek() {
                    if let Some(d) = (h as char).to_digit(16) {
                        v = v * 16 + d;
                        seen = true;
                        self.bump();
                    } else {
                        break;
                    }
                }
                if !seen {
                    return Err(self.err("\\x escape requires hex digits"));
                }
                (v & 0xff) as u8
            }
            other => return Err(self.err(format!("unknown escape '\\{}'", other as char))),
        })
    }

    fn lex_char(&mut self) -> Result<TokenKind> {
        self.bump(); // opening quote
        let c = self.bump().ok_or_else(|| self.err("unterminated char literal"))?;
        let value = if c == b'\\' { self.lex_escape()? } else { c };
        if self.bump() != Some(b'\'') {
            return Err(self.err("unterminated char literal"));
        }
        Ok(TokenKind::CharLit(value))
    }

    fn lex_string(&mut self) -> Result<TokenKind> {
        self.bump(); // opening quote
        let mut out = Vec::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string literal")),
                Some(b'"') => break,
                Some(b'\\') => out.push(self.lex_escape()?),
                Some(c) => out.push(c),
            }
        }
        Ok(TokenKind::StrLit(String::from_utf8_lossy(&out).into_owned()))
    }

    fn lex_punct(&mut self) -> Result<TokenKind> {
        for p in PUNCTS {
            if self.src[self.pos..].starts_with(p.as_bytes()) {
                for _ in 0..p.len() {
                    self.bump();
                }
                return Ok(TokenKind::Punct(p));
            }
        }
        let c = self.peek().unwrap();
        Err(self.err(format!("unexpected character '{}'", c as char)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        Lexer::new(src).tokenize().unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_idents_and_keywords_alike() {
        let ks = kinds("int foo_1 _bar");
        assert_eq!(ks.len(), 4);
        assert!(matches!(&ks[0], TokenKind::Ident(s) if s == "int"));
        assert!(matches!(&ks[1], TokenKind::Ident(s) if s == "foo_1"));
        assert!(matches!(&ks[2], TokenKind::Ident(s) if s == "_bar"));
    }

    #[test]
    fn lexes_integer_literal_forms() {
        assert!(matches!(kinds("42")[0], TokenKind::IntLit { value: 42, unsigned: false, .. }));
        assert!(matches!(kinds("0x2a")[0], TokenKind::IntLit { value: 42, .. }));
        assert!(matches!(kinds("052")[0], TokenKind::IntLit { value: 42, .. }));
        assert!(matches!(kinds("42u")[0], TokenKind::IntLit { value: 42, unsigned: true, .. }));
        assert!(matches!(
            kinds("42ul")[0],
            TokenKind::IntLit { unsigned: true, long: true, .. }
        ));
    }

    #[test]
    fn lexes_float_literal_forms() {
        assert!(matches!(kinds("1.5")[0], TokenKind::FloatLit { single: false, .. }));
        assert!(matches!(kinds("1.5f")[0], TokenKind::FloatLit { single: true, .. }));
        assert!(
            matches!(kinds("1e3")[0], TokenKind::FloatLit { value, .. } if value == 1000.0)
        );
        assert!(matches!(kinds(".25")[0], TokenKind::FloatLit { value, .. } if value == 0.25));
        assert!(
            matches!(kinds("2f")[0], TokenKind::FloatLit { value, single: true } if value == 2.0)
        );
    }

    #[test]
    fn lexes_char_and_string_escapes() {
        assert!(matches!(kinds("'\\n'")[0], TokenKind::CharLit(b'\n')));
        assert!(matches!(kinds("'\\x41'")[0], TokenKind::CharLit(b'A')));
        assert!(matches!(&kinds("\"a\\tb\"")[0], TokenKind::StrLit(s) if s == "a\tb"));
    }

    #[test]
    fn lexes_longest_punct_first() {
        let ks = kinds("a <<= b >> c->d");
        assert!(ks.iter().any(|k| matches!(k, TokenKind::Punct("<<="))));
        assert!(ks.iter().any(|k| matches!(k, TokenKind::Punct(">>"))));
        assert!(ks.iter().any(|k| matches!(k, TokenKind::Punct("->"))));
    }

    #[test]
    fn skips_comments_and_preprocessor_lines() {
        let ks = kinds("#include <stdio.h>\n// line\n/* block\n*/ x");
        assert_eq!(ks.len(), 2);
        assert!(matches!(&ks[0], TokenKind::Ident(s) if s == "x"));
    }

    #[test]
    fn reports_unterminated_string() {
        let err = Lexer::new("\"abc").tokenize().unwrap_err();
        assert_eq!(err.kind(), crate::ErrorKind::Lex);
    }

    #[test]
    fn tracks_line_numbers() {
        let toks = Lexer::new("a\nb\n\nc").tokenize().unwrap();
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 2);
        assert_eq!(toks[2].line, 4);
    }
}
