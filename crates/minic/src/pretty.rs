//! Pretty-printer: turns MiniC ASTs back into canonical C source.
//!
//! Used everywhere a tool must *emit* C: the dataset generator (ground-truth
//! source), the Ghidra-like lifter, the type-inference engine (injected
//! headers), and for normalizing code before edit-distance comparison.

use crate::ast::*;
use crate::types::Type;
use std::fmt::Write;

/// Renders a whole program as C source.
///
/// Builtin typedefs injected by the parser are skipped so round-tripping
/// `parse → print` is stable.
///
/// # Example
///
/// ```
/// let p = slade_minic::parse_program("int f(int x){return x+1;}").unwrap();
/// let printed = slade_minic::pretty_program(&p);
/// assert!(printed.contains("return x + 1;"));
/// ```
pub fn pretty_program(program: &Program) -> String {
    let mut out = String::new();
    for item in &program.items {
        match item {
            Item::Typedef { name, ty } => {
                if crate::parser::BUILTIN_TYPEDEFS_NAMES.contains(&name.as_str()) {
                    continue;
                }
                let _ = writeln!(out, "typedef {};", declare(ty, name));
            }
            Item::Struct(def) => {
                let _ = writeln!(out, "struct {} {{", def.name);
                for (fname, fty) in &def.fields {
                    let _ = writeln!(out, "  {};", declare(fty, fname));
                }
                let _ = writeln!(out, "}};");
            }
            Item::Global { name, ty, init, is_extern } => {
                let prefix = if *is_extern { "extern " } else { "" };
                match init {
                    Some(e) => {
                        let _ = writeln!(
                            out,
                            "{prefix}{} = {};",
                            declare(ty, name),
                            pretty_expr(e)
                        );
                    }
                    None => {
                        let _ = writeln!(out, "{prefix}{};", declare(ty, name));
                    }
                }
            }
            Item::Function(f) => {
                out.push_str(&pretty_function(f));
            }
        }
    }
    out
}

/// Renders one function (definition or prototype).
pub fn pretty_function(f: &Function) -> String {
    let mut out = String::new();
    let params = if f.params.is_empty() {
        "void".to_string()
    } else {
        f.params.iter().map(|(n, t)| declare(t, n)).collect::<Vec<_>>().join(", ")
    };
    let staticity = if f.is_static { "static " } else { "" };
    let _ = write!(out, "{staticity}{} {}({})", pretty_type(&f.ret), f.name, params);
    match &f.body {
        Some(body) => {
            out.push(' ');
            print_stmt(&mut out, body, 0);
        }
        None => out.push_str(";\n"),
    }
    out
}

/// Renders a type in prefix form (suitable before an identifier).
pub fn pretty_type(ty: &Type) -> String {
    match ty {
        Type::Ptr(inner) => format!("{}*", pretty_type(inner)),
        Type::Array(inner, n) => format!("{}[{n}]", pretty_type(inner)),
        Type::Struct(name) => format!("struct {name}"),
        other => other.to_string(),
    }
}

/// Renders `ty name` as a C declarator (handles array suffixes).
pub fn declare(ty: &Type, name: &str) -> String {
    match ty {
        Type::Array(inner, n) => format!("{}[{n}]", declare(inner, name)),
        Type::Ptr(inner) if matches!(**inner, Type::Array(..)) => {
            // Pointer-to-array is rare; fall back to a cast-style spelling.
            format!("{} {name}", pretty_type(ty))
        }
        Type::Ptr(inner) => format!("{} *{}", pretty_type(inner), strip_ptr(name)),
        other => format!("{} {name}", pretty_type(other)),
    }
}

fn strip_ptr(name: &str) -> String {
    name.to_string()
}

fn indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("  ");
    }
}

fn print_stmt(out: &mut String, stmt: &Stmt, level: usize) {
    match &stmt.kind {
        StmtKind::Block(stmts) => {
            out.push_str("{\n");
            for s in stmts {
                indent(out, level + 1);
                print_stmt(out, s, level + 1);
            }
            indent(out, level);
            out.push_str("}\n");
        }
        StmtKind::Decl { name, ty, init } => {
            out.push_str(&declare(ty, name));
            if let Some(e) = init {
                out.push_str(" = ");
                out.push_str(&pretty_init(e));
            }
            out.push_str(";\n");
        }
        StmtKind::Expr(e) => {
            out.push_str(&pretty_expr(e));
            out.push_str(";\n");
        }
        StmtKind::If { cond, then_branch, else_branch } => {
            out.push_str("if (");
            out.push_str(&pretty_expr(cond));
            out.push_str(") ");
            print_stmt_inline(out, then_branch, level);
            if let Some(e) = else_branch {
                indent(out, level);
                out.push_str("else ");
                print_stmt_inline(out, e, level);
            }
        }
        StmtKind::While { cond, body } => {
            out.push_str("while (");
            out.push_str(&pretty_expr(cond));
            out.push_str(") ");
            print_stmt_inline(out, body, level);
        }
        StmtKind::DoWhile { body, cond } => {
            out.push_str("do ");
            print_stmt_inline(out, body, level);
            indent(out, level);
            out.push_str("while (");
            out.push_str(&pretty_expr(cond));
            out.push_str(");\n");
        }
        StmtKind::For { init, cond, step, body } => {
            out.push_str("for (");
            match init {
                Some(s) => match &s.kind {
                    StmtKind::Decl { name, ty, init } => {
                        out.push_str(&declare(ty, name));
                        if let Some(e) = init {
                            out.push_str(" = ");
                            out.push_str(&pretty_expr(e));
                        }
                        out.push_str("; ");
                    }
                    StmtKind::Expr(e) => {
                        out.push_str(&pretty_expr(e));
                        out.push_str("; ");
                    }
                    _ => out.push_str("; "),
                },
                None => out.push_str("; "),
            }
            if let Some(c) = cond {
                out.push_str(&pretty_expr(c));
            }
            out.push_str("; ");
            if let Some(s) = step {
                out.push_str(&pretty_expr(s));
            }
            out.push_str(") ");
            print_stmt_inline(out, body, level);
        }
        StmtKind::Return(value) => {
            match value {
                Some(e) => {
                    out.push_str("return ");
                    out.push_str(&pretty_expr(e));
                    out.push_str(";\n");
                }
                None => out.push_str("return;\n"),
            };
        }
        StmtKind::Switch { scrutinee, arms } => {
            out.push_str("switch (");
            out.push_str(&pretty_expr(scrutinee));
            out.push_str(") {\n");
            for (label, body) in arms {
                indent(out, level);
                match label {
                    Some(v) => {
                        let _ = writeln!(out, "case {v}:");
                    }
                    None => out.push_str("default:\n"),
                }
                for s in body {
                    indent(out, level + 1);
                    print_stmt(out, s, level + 1);
                }
            }
            indent(out, level);
            out.push_str("}\n");
        }
        StmtKind::Break => out.push_str("break;\n"),
        StmtKind::Continue => out.push_str("continue;\n"),
        StmtKind::Goto(l) => {
            let _ = writeln!(out, "goto {l};");
        }
        StmtKind::Labeled { label, stmt } => {
            let _ = write!(out, "{label}: ");
            print_stmt_inline(out, stmt, level);
        }
        StmtKind::Empty => out.push_str(";\n"),
    }
}

fn print_stmt_inline(out: &mut String, stmt: &Stmt, level: usize) {
    if matches!(stmt.kind, StmtKind::Block(_)) {
        print_stmt(out, stmt, level);
    } else {
        out.push_str("{\n");
        indent(out, level + 1);
        print_stmt(out, stmt, level + 1);
        indent(out, level);
        out.push_str("}\n");
    }
}

fn pretty_init(e: &Expr) -> String {
    if let ExprKind::Call { callee, args } = &e.kind {
        if callee == "__init_list" {
            let inner: Vec<String> = args.iter().map(pretty_init).collect();
            return format!("{{{}}}", inner.join(", "));
        }
    }
    pretty_expr(e)
}

/// Renders one expression with minimal-but-safe parenthesization.
pub fn pretty_expr(e: &Expr) -> String {
    pretty_prec(e, 0)
}

fn prec_of(e: &Expr) -> u8 {
    match &e.kind {
        ExprKind::Comma(..) => 1,
        ExprKind::Assign { .. } => 2,
        ExprKind::Ternary { .. } => 3,
        ExprKind::Binary(op, ..) => match op {
            BinOp::LogOr => 4,
            BinOp::LogAnd => 5,
            BinOp::BitOr => 6,
            BinOp::BitXor => 7,
            BinOp::BitAnd => 8,
            BinOp::Eq | BinOp::Ne => 9,
            BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => 10,
            BinOp::Shl | BinOp::Shr => 11,
            BinOp::Add | BinOp::Sub => 12,
            BinOp::Mul | BinOp::Div | BinOp::Rem => 13,
        },
        ExprKind::Cast { .. }
        | ExprKind::Unary(..)
        | ExprKind::SizeofType(_)
        | ExprKind::SizeofExpr(_) => 14,
        _ => 15,
    }
}

fn pretty_prec(e: &Expr, min: u8) -> String {
    let p = prec_of(e);
    let body = match &e.kind {
        ExprKind::IntLit(v, k) => {
            if k.signed() {
                format!("{v}")
            } else if k.size() == 8 {
                format!("{}UL", *v as u64)
            } else {
                format!("{}U", (*v as u64) & 0xffff_ffff)
            }
        }
        ExprKind::FloatLit(v, single) => {
            let mut s = format!("{v}");
            if !s.contains('.') && !s.contains('e') && !s.contains("inf") && !s.contains("nan")
            {
                s.push_str(".0");
            }
            if *single {
                s.push('f');
            }
            s
        }
        ExprKind::StrLit(s) => format!("\"{}\"", escape_c(s)),
        ExprKind::Ident(name) => name.clone(),
        ExprKind::Unary(op, inner) => {
            let sym = match op {
                UnOp::Neg => "-",
                UnOp::Plus => "+",
                UnOp::Not => "!",
                UnOp::BitNot => "~",
                UnOp::Deref => "*",
                UnOp::Addr => "&",
                UnOp::PreInc => "++",
                UnOp::PreDec => "--",
            };
            format!("{sym}{}", pretty_prec(inner, 14))
        }
        ExprKind::Postfix(kind, inner) => {
            let sym = if matches!(kind, IncDec::Inc) { "++" } else { "--" };
            format!("{}{sym}", pretty_prec(inner, 15))
        }
        ExprKind::Binary(op, l, r) => {
            format!("{} {} {}", pretty_prec(l, p), op.symbol(), pretty_prec(r, p + 1))
        }
        ExprKind::Assign { op, target, value } => {
            let sym = match op {
                None => "=".to_string(),
                Some(o) => format!("{}=", o.symbol()),
            };
            format!("{} {sym} {}", pretty_prec(target, 3), pretty_prec(value, 2))
        }
        ExprKind::Call { callee, args } => {
            let inner: Vec<String> = args.iter().map(|a| pretty_prec(a, 2)).collect();
            format!("{callee}({})", inner.join(", "))
        }
        ExprKind::Index { base, index } => {
            format!("{}[{}]", pretty_prec(base, 15), pretty_expr(index))
        }
        ExprKind::Member { base, field, arrow } => {
            format!("{}{}{field}", pretty_prec(base, 15), if *arrow { "->" } else { "." })
        }
        ExprKind::Cast { ty, expr } => {
            format!("({}){}", pretty_type(ty), pretty_prec(expr, 14))
        }
        ExprKind::SizeofType(ty) => format!("sizeof({})", pretty_type(ty)),
        ExprKind::SizeofExpr(inner) => format!("sizeof({})", pretty_expr(inner)),
        ExprKind::Ternary { cond, then_expr, else_expr } => {
            format!(
                "{} ? {} : {}",
                pretty_prec(cond, 4),
                pretty_expr(then_expr),
                pretty_prec(else_expr, 3)
            )
        }
        ExprKind::Comma(a, b) => {
            format!("{}, {}", pretty_prec(a, 1), pretty_prec(b, 2))
        }
    };
    if p < min {
        format!("({body})")
    } else {
        body
    }
}

fn escape_c(s: &str) -> String {
    let mut out = String::new();
    for c in s.chars() {
        match c {
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\x{:02x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_program;

    /// Parse → print → parse must succeed and print identically (fixpoint).
    fn roundtrip(src: &str) {
        let p1 = parse_program(src).unwrap();
        let s1 = pretty_program(&p1);
        let p2 =
            parse_program(&s1).unwrap_or_else(|e| panic!("reparse failed: {e}\nsource:\n{s1}"));
        let s2 = pretty_program(&p2);
        assert_eq!(s1, s2, "printer not a fixpoint for:\n{src}");
    }

    #[test]
    fn roundtrips_basic_function() {
        roundtrip("int add(int a, int b) { return a + b; }");
    }

    #[test]
    fn roundtrips_control_flow() {
        roundtrip(
            "int f(int n) { int s = 0; for (int i = 0; i < n; i++) { if (i % 2) s += i; else s--; } while (s > 9) s /= 2; do s++; while (s < 0); return s; }",
        );
    }

    #[test]
    fn roundtrips_pointers_structs_arrays() {
        roundtrip(
            "struct p { int x; double d; }; int g[4] = {1,2,3,4}; int f(struct p *q, int *a) { q->x = a[1]; return g[0] + q->x; }",
        );
    }

    #[test]
    fn roundtrips_precedence() {
        let src = "int f(int a, int b, int c) { return (a + b) * c - a / (b - c); }";
        let p = parse_program(src).unwrap();
        let printed = pretty_program(&p);
        assert!(printed.contains("(a + b) * c"), "got: {printed}");
        roundtrip(src);
    }

    #[test]
    fn roundtrips_unary_chains() {
        roundtrip("int f(int *p) { return -*p + ~p[0] + !p[1]; }");
    }

    #[test]
    fn roundtrips_casts_and_sizeof() {
        roundtrip("long f(int x) { return (long)x + sizeof(int) + sizeof(x); }");
    }

    #[test]
    fn roundtrips_strings() {
        roundtrip("int f(char *s) { return strcmp(s, \"a\\nb\\\"c\"); }");
    }

    #[test]
    fn roundtrips_switch() {
        roundtrip(
            "int f(int x) { switch (x) { case 1: return 10; case 2: x += 1; break; default: x = 0; } return x; }",
        );
    }

    #[test]
    fn roundtrips_goto() {
        roundtrip("int f(int x) { top: x--; if (x > 0) goto top; return x; }");
    }

    #[test]
    fn semantic_preservation_via_interpreter() {
        // The printed program must behave identically to the original.
        use crate::{Interpreter, Value};
        let src =
            "int f(int n) { int a[4] = {3,1,4,1}; int s = 0; for (int i = 0; i < 4; i++) { s = s * 10 + a[i] + n; } return s; }";
        let p1 = parse_program(src).unwrap();
        let printed = pretty_program(&p1);
        let p2 = parse_program(&printed).unwrap();
        let mut i1 = Interpreter::new(&p1).unwrap();
        let mut i2 = Interpreter::new(&p2).unwrap();
        for n in [-2i64, 0, 7] {
            let a = i1.call("f", &[Value::int(n)]).unwrap().ret;
            let b = i2.call("f", &[Value::int(n)]).unwrap().ret;
            assert_eq!(a, b);
        }
    }
}
