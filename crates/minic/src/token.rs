//! Token definitions for the MiniC lexer.

use std::fmt;

/// A lexical token with its source line (1-based).
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// What kind of token this is, including any literal payload.
    pub kind: TokenKind,
    /// 1-based source line the token starts on.
    pub line: u32,
}

/// The kinds of tokens MiniC recognizes.
///
/// Keywords are folded into [`TokenKind::Ident`] by the lexer and
/// distinguished by the parser via [`is_keyword`]; this keeps the lexer
/// reusable for the lenient parsing mode used by type inference, where
/// unknown identifiers may act as type names.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Identifier or keyword.
    Ident(String),
    /// Integer literal with an `unsigned`/`long` suffix flag pair.
    IntLit {
        /// The literal's magnitude.
        value: u64,
        /// `u`/`U` suffix present.
        unsigned: bool,
        /// `l`/`L` suffix present.
        long: bool,
    },
    /// Floating literal; `single` is true for an `f`-suffixed literal.
    FloatLit {
        /// The literal value.
        value: f64,
        /// `f`/`F` suffix present (type `float`).
        single: bool,
    },
    /// Character literal, already unescaped.
    CharLit(u8),
    /// String literal, already unescaped (no surrounding quotes).
    StrLit(String),
    /// Punctuation or operator, e.g. `"+="`, `"->"`, `"("`.
    Punct(&'static str),
    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "{s}"),
            TokenKind::IntLit { value, .. } => write!(f, "{value}"),
            TokenKind::FloatLit { value, .. } => write!(f, "{value}"),
            TokenKind::CharLit(c) => write!(f, "'{}'", *c as char),
            TokenKind::StrLit(s) => write!(f, "\"{s}\""),
            TokenKind::Punct(p) => write!(f, "{p}"),
            TokenKind::Eof => write!(f, "<eof>"),
        }
    }
}

/// All multi- and single-character punctuation, longest first so the lexer
/// can match greedily.
pub const PUNCTS: &[&str] = &[
    "<<=", ">>=", "...", "->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "(", ")", "{", "}", "[", "]", ";", ",",
    ".", "+", "-", "*", "/", "%", "<", ">", "=", "&", "|", "^", "!", "~", "?", ":",
];

/// C keywords recognized by the parser.
pub const KEYWORDS: &[&str] = &[
    "void",
    "char",
    "short",
    "int",
    "long",
    "float",
    "double",
    "signed",
    "unsigned",
    "struct",
    "union",
    "enum",
    "typedef",
    "extern",
    "static",
    "const",
    "volatile",
    "restrict",
    "__restrict",
    "inline",
    "if",
    "else",
    "while",
    "do",
    "for",
    "return",
    "break",
    "continue",
    "goto",
    "sizeof",
    "switch",
    "case",
    "default",
];

/// Returns true if `s` is a C keyword (and therefore never a plain
/// identifier in MiniC source).
///
/// ```
/// assert!(slade_minic::token::is_keyword("while"));
/// assert!(!slade_minic::token::is_keyword("whilst"));
/// ```
pub fn is_keyword(s: &str) -> bool {
    KEYWORDS.contains(&s)
}
