//! Semantic analysis: name resolution and type annotation.
//!
//! [`Sema::check`] walks a parsed [`Program`] and produces a [`TypeMap`]
//! giving every expression node its C type, plus the struct/typedef layout
//! context and a function signature table. The interpreter and the compiler
//! both consume this map, so MiniC is typed exactly once.
//!
//! The checker is deliberately permissive in the places GCC merely warns
//! (int↔pointer conversions, pointer type mixing) and strict where GCC
//! errors (unknown identifiers, unknown struct fields, calling a *known*
//! function with the wrong arity, sizeless types). The strict cases are the
//! ones the paper's evaluation depends on: a decompiler that references
//! undefined types or misdeclares an external function must fail to compile.

use crate::ast::*;
use crate::types::{IntKind, LayoutCtx, Type};
use crate::{ErrorKind, MiniCError, Result};
use std::collections::HashMap;

/// A function signature: parameter types and return type.
#[derive(Debug, Clone, PartialEq)]
pub struct Signature {
    /// Parameter types, after array decay and typedef resolution.
    pub params: Vec<Type>,
    /// Return type, typedef-resolved.
    pub ret: Type,
    /// True for variadic builtins such as `printf`.
    pub variadic: bool,
}

/// The result of semantic analysis over one program.
#[derive(Debug, Clone)]
pub struct TypeMap {
    types: Vec<Type>,
    lvalues: Vec<bool>,
    /// Layout context with all struct definitions and typedefs resolved.
    pub layout: LayoutCtx,
    /// Signatures of all functions (definitions, prototypes and builtins).
    pub signatures: HashMap<String, Signature>,
    /// Types of globals, typedef-resolved (arrays not decayed).
    pub globals: HashMap<String, Type>,
}

impl TypeMap {
    /// The type of expression `id`, as written (arrays not decayed).
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by the parser run that was checked.
    pub fn type_of(&self, id: NodeId) -> &Type {
        &self.types[id as usize]
    }

    /// The value type of expression `id`: arrays decay to pointers.
    pub fn value_type(&self, id: NodeId) -> Type {
        self.types[id as usize].decay()
    }

    /// Whether expression `id` designates an object (can be assigned /
    /// address-taken).
    pub fn is_lvalue(&self, id: NodeId) -> bool {
        self.lvalues[id as usize]
    }
}

/// The semantic analyzer. See the [module docs](self) for the rules.
#[derive(Debug)]
pub struct Sema<'p> {
    program: &'p Program,
    layout: LayoutCtx,
    signatures: HashMap<String, Signature>,
    globals: HashMap<String, Type>,
    types: Vec<Type>,
    lvalues: Vec<bool>,
    scopes: Vec<HashMap<String, Type>>,
    current_ret: Type,
}

impl<'p> Sema<'p> {
    /// Runs semantic analysis over `program`.
    ///
    /// # Errors
    ///
    /// Returns the first semantic error (kind [`ErrorKind::Type`]).
    pub fn check(program: &'p Program) -> Result<TypeMap> {
        let mut structs = HashMap::new();
        let mut typedefs = HashMap::new();
        for item in &program.items {
            match item {
                Item::Struct(def) => {
                    structs.insert(def.name.clone(), def.clone());
                }
                Item::Typedef { name, ty } => {
                    typedefs.insert(name.clone(), ty.clone());
                }
                _ => {}
            }
        }
        let layout = LayoutCtx::new(structs, typedefs);
        let mut sema = Sema {
            program,
            layout,
            signatures: builtin_signatures(),
            globals: HashMap::new(),
            types: vec![Type::Void; program.node_count as usize],
            lvalues: vec![false; program.node_count as usize],
            scopes: Vec::new(),
            current_ret: Type::Void,
        };
        sema.collect_items()?;
        for item in &sema.program.items {
            if let Item::Function(f) = item {
                if f.body.is_some() {
                    sema.check_function(f)?;
                }
            }
        }
        // Check global initializers in a plain scope.
        sema.scopes.push(HashMap::new());
        let globals: Vec<_> = sema
            .program
            .items
            .iter()
            .filter_map(|i| match i {
                Item::Global { init: Some(init), ty, .. } => Some((init.clone(), ty.clone())),
                _ => None,
            })
            .collect();
        for (init, ty) in globals {
            sema.check_initializer(&init, &sema.layout.resolve(&ty))?;
        }
        sema.scopes.pop();
        Ok(TypeMap {
            types: sema.types,
            lvalues: sema.lvalues,
            layout: sema.layout,
            signatures: sema.signatures,
            globals: sema.globals,
        })
    }

    fn err(&self, line: u32, msg: impl Into<String>) -> MiniCError {
        MiniCError::new(ErrorKind::Type, msg, line)
    }

    fn collect_items(&mut self) -> Result<()> {
        for item in &self.program.items {
            match item {
                Item::Global { name, ty, .. } => {
                    let rty = self.layout.resolve(ty);
                    if self.layout.size_of(&rty).is_none() {
                        return Err(self.err(0, format!("global `{name}` has unknown size")));
                    }
                    self.globals.insert(name.clone(), rty);
                }
                Item::Function(f) => {
                    let params: Vec<Type> =
                        f.params.iter().map(|(_, t)| self.layout.resolve(t).decay()).collect();
                    let ret = self.layout.resolve(&f.ret);
                    self.signatures
                        .insert(f.name.clone(), Signature { params, ret, variadic: false });
                }
                _ => {}
            }
        }
        Ok(())
    }

    fn check_function(&mut self, f: &Function) -> Result<()> {
        self.current_ret = self.layout.resolve(&f.ret);
        self.scopes.push(HashMap::new());
        for (name, ty) in &f.params {
            let rty = self.layout.resolve(ty).decay();
            if !rty.is_scalar() && !matches!(rty, Type::Struct(_)) {
                return Err(self.err(0, format!("parameter `{name}` has invalid type {rty}")));
            }
            if let Type::Struct(s) = &rty {
                if self.layout.layout_of(s).is_none() {
                    return Err(self
                        .err(0, format!("parameter `{name}` has incomplete type struct {s}")));
                }
            }
            self.scopes.last_mut().unwrap().insert(name.clone(), rty);
        }
        let body = f.body.as_ref().unwrap();
        self.check_stmt(body)?;
        self.scopes.pop();
        Ok(())
    }

    fn lookup(&self, name: &str) -> Option<Type> {
        for scope in self.scopes.iter().rev() {
            if let Some(t) = scope.get(name) {
                return Some(t.clone());
            }
        }
        self.globals.get(name).cloned()
    }

    fn check_stmt(&mut self, stmt: &Stmt) -> Result<()> {
        match &stmt.kind {
            StmtKind::Block(stmts) => {
                self.scopes.push(HashMap::new());
                for s in stmts {
                    self.check_stmt(s)?;
                }
                self.scopes.pop();
            }
            StmtKind::Decl { name, ty, init } => {
                let rty = self.layout.resolve(ty);
                if self.layout.size_of(&rty).is_none() {
                    return Err(self.err(
                        stmt.line,
                        format!("variable `{name}` has unknown or incomplete type `{ty}`"),
                    ));
                }
                if let Some(init) = init {
                    self.check_initializer(init, &rty)?;
                }
                self.scopes.last_mut().unwrap().insert(name.clone(), rty);
            }
            StmtKind::Expr(e) => {
                self.check_expr(e)?;
            }
            StmtKind::If { cond, then_branch, else_branch } => {
                let t = self.check_expr(cond)?;
                self.require_scalar(&t, cond.line)?;
                self.check_stmt(then_branch)?;
                if let Some(e) = else_branch {
                    self.check_stmt(e)?;
                }
            }
            StmtKind::While { cond, body } | StmtKind::DoWhile { body, cond } => {
                let t = self.check_expr(cond)?;
                self.require_scalar(&t, cond.line)?;
                self.check_stmt(body)?;
            }
            StmtKind::For { init, cond, step, body } => {
                self.scopes.push(HashMap::new());
                if let Some(init) = init {
                    self.check_stmt(init)?;
                }
                if let Some(cond) = cond {
                    let t = self.check_expr(cond)?;
                    self.require_scalar(&t, cond.line)?;
                }
                if let Some(step) = step {
                    self.check_expr(step)?;
                }
                self.check_stmt(body)?;
                self.scopes.pop();
            }
            StmtKind::Return(value) => {
                if let Some(v) = value {
                    let t = self.check_expr(v)?;
                    if self.current_ret == Type::Void {
                        return Err(self.err(stmt.line, "returning a value from void function"));
                    }
                    let ret = self.current_ret.clone();
                    self.require_assignable(&ret, &t, stmt.line)?;
                } else if self.current_ret != Type::Void {
                    return Err(self.err(stmt.line, "missing return value"));
                }
            }
            StmtKind::Switch { scrutinee, arms } => {
                let t = self.check_expr(scrutinee)?;
                if !t.decay().is_integer() {
                    return Err(self.err(stmt.line, "switch on non-integer value"));
                }
                let mut seen = std::collections::HashSet::new();
                for (label, body) in arms {
                    if !seen.insert(*label) {
                        return Err(self.err(stmt.line, "duplicate case label"));
                    }
                    self.scopes.push(HashMap::new());
                    for s in body {
                        self.check_stmt(s)?;
                    }
                    self.scopes.pop();
                }
            }
            StmtKind::Break | StmtKind::Continue | StmtKind::Empty | StmtKind::Goto(_) => {}
            StmtKind::Labeled { stmt, .. } => self.check_stmt(stmt)?,
        }
        Ok(())
    }

    fn check_initializer(&mut self, init: &Expr, target: &Type) -> Result<()> {
        if let ExprKind::Call { callee, args } = &init.kind {
            if callee == "__init_list" {
                let Type::Array(elem, n) = target else {
                    return Err(self.err(init.line, "brace initializer for non-array"));
                };
                if args.len() > *n {
                    return Err(self.err(init.line, "too many initializer elements"));
                }
                for a in args {
                    self.check_initializer(a, elem)?;
                }
                self.set(init.id, target.clone(), false);
                return Ok(());
            }
        }
        let t = self.check_expr(init)?;
        self.require_assignable(target, &t, init.line)
    }

    fn set(&mut self, id: NodeId, ty: Type, lvalue: bool) -> Type {
        self.types[id as usize] = ty.clone();
        self.lvalues[id as usize] = lvalue;
        ty
    }

    fn require_scalar(&self, t: &Type, line: u32) -> Result<()> {
        if t.decay().is_scalar() {
            Ok(())
        } else {
            Err(self.err(line, format!("expected scalar value, found `{t}`")))
        }
    }

    /// Checks C-with-warnings assignability: arithmetic↔arithmetic, any
    /// pointer↔pointer, int↔pointer (GCC warns, we allow), struct↔same struct.
    fn require_assignable(&self, dst: &Type, src: &Type, line: u32) -> Result<()> {
        let d = dst.decay();
        let s = src.decay();
        let ok = (d.is_arithmetic() && s.is_arithmetic())
            || (d.is_pointerish() && s.is_pointerish())
            || (d.is_pointerish() && s.is_integer())
            || (d.is_integer() && s.is_pointerish())
            || matches!((&d, &s), (Type::Struct(a), Type::Struct(b)) if a == b);
        if ok {
            Ok(())
        } else {
            Err(self.err(line, format!("cannot assign `{s}` to `{d}`")))
        }
    }

    /// Usual arithmetic conversions for two arithmetic operand types.
    fn common_arith(&self, a: &Type, b: &Type) -> Type {
        match (a, b) {
            (Type::Double, _) | (_, Type::Double) => Type::Double,
            (Type::Float, _) | (_, Type::Float) => Type::Float,
            (Type::Int(x), Type::Int(y)) => {
                let x = x.promote();
                let y = y.promote();
                let k = if x == y {
                    x
                } else if x.rank() == y.rank() {
                    // Same rank, different signedness: unsigned wins.
                    x.to_unsigned()
                } else if x.rank() > y.rank() {
                    if x.signed() && !y.signed() && x.size() == y.size() {
                        x.to_unsigned()
                    } else {
                        x
                    }
                } else if y.signed() && !x.signed() && y.size() == x.size() {
                    y.to_unsigned()
                } else {
                    y
                };
                Type::Int(k)
            }
            _ => Type::Int(IntKind::Int),
        }
    }

    fn check_expr(&mut self, e: &Expr) -> Result<Type> {
        let line = e.line;
        let ty = match &e.kind {
            ExprKind::IntLit(_, k) => self.set(e.id, Type::Int(*k), false),
            ExprKind::FloatLit(_, single) => {
                self.set(e.id, if *single { Type::Float } else { Type::Double }, false)
            }
            ExprKind::StrLit(_) => self.set(e.id, Type::ptr(Type::Int(IntKind::Char)), false),
            ExprKind::Ident(name) => {
                let Some(t) = self.lookup(name) else {
                    return Err(self.err(line, format!("unknown identifier `{name}`")));
                };
                self.set(e.id, t, true)
            }
            ExprKind::Unary(op, inner) => {
                let it = self.check_expr(inner)?;
                let vt = it.decay();
                let result = match op {
                    UnOp::Neg | UnOp::Plus => {
                        if !vt.is_arithmetic() {
                            return Err(self.err(line, "unary +/- on non-arithmetic value"));
                        }
                        match &vt {
                            Type::Int(k) => Type::Int(k.promote()),
                            other => other.clone(),
                        }
                    }
                    UnOp::Not => Type::int(),
                    UnOp::BitNot => {
                        let Type::Int(k) = vt else {
                            return Err(self.err(line, "`~` on non-integer"));
                        };
                        Type::Int(k.promote())
                    }
                    UnOp::Deref => {
                        let Some(p) = vt.pointee() else {
                            return Err(self.err(line, format!("cannot dereference `{vt}`")));
                        };
                        let t = self.layout.resolve(p);
                        return Ok(self.set(e.id, t, true));
                    }
                    UnOp::Addr => {
                        if !self.lvalues[inner.id as usize] {
                            return Err(self.err(line, "cannot take address of rvalue"));
                        }
                        Type::ptr(it.clone())
                    }
                    UnOp::PreInc | UnOp::PreDec => {
                        self.require_lvalue(inner, line)?;
                        vt.clone()
                    }
                };
                self.set(e.id, result, false)
            }
            ExprKind::Postfix(_, inner) => {
                let it = self.check_expr(inner)?;
                self.require_lvalue(inner, line)?;
                self.set(e.id, it.decay(), false)
            }
            ExprKind::Binary(op, l, r) => {
                let lt = self.check_expr(l)?.decay();
                let rt = self.check_expr(r)?.decay();
                let result = self.binary_type(*op, &lt, &rt, line)?;
                self.set(e.id, result, false)
            }
            ExprKind::Assign { op, target, value } => {
                let tt = self.check_expr(target)?;
                self.require_lvalue(target, line)?;
                let vt = self.check_expr(value)?;
                if let Some(op) = op {
                    self.binary_type(*op, &tt.decay(), &vt.decay(), line)?;
                } else {
                    self.require_assignable(&tt, &vt, line)?;
                }
                self.set(e.id, tt.decay(), false)
            }
            ExprKind::Call { callee, args } => {
                let sig = self.signatures.get(callee).cloned();
                match sig {
                    Some(sig) => {
                        if !sig.variadic && sig.params.len() != args.len() {
                            return Err(self.err(
                                line,
                                format!(
                                    "`{callee}` expects {} argument(s), got {}",
                                    sig.params.len(),
                                    args.len()
                                ),
                            ));
                        }
                        for (i, a) in args.iter().enumerate() {
                            let at = self.check_expr(a)?;
                            if let Some(pt) = sig.params.get(i) {
                                self.require_assignable(pt, &at, a.line)?;
                            }
                        }
                        self.set(e.id, sig.ret.clone(), false)
                    }
                    None => {
                        // Implicit declaration: C89-style `int f()`. The
                        // interpreter errors if the function never appears.
                        for a in args {
                            self.check_expr(a)?;
                        }
                        self.signatures.insert(
                            callee.clone(),
                            Signature {
                                params: args.iter().map(|_| Type::int()).collect(),
                                ret: Type::int(),
                                variadic: true,
                            },
                        );
                        self.set(e.id, Type::int(), false)
                    }
                }
            }
            ExprKind::Index { base, index } => {
                let bt = self.check_expr(base)?.decay();
                let it = self.check_expr(index)?.decay();
                let (ptr, _idx) = if bt.is_pointerish() {
                    (bt.clone(), it)
                } else if it.is_pointerish() {
                    (it, bt.clone()) // `2[arr]` — legal C
                } else {
                    return Err(self.err(line, format!("cannot index `{bt}`")));
                };
                let elem = self.layout.resolve(ptr.pointee().unwrap());
                if self.layout.size_of(&elem).is_none() {
                    return Err(self.err(line, "indexing pointer to incomplete type"));
                }
                self.set(e.id, elem, true)
            }
            ExprKind::Member { base, field, arrow } => {
                let bt = self.check_expr(base)?;
                let sname = if *arrow {
                    let vt = bt.decay();
                    match vt.pointee().map(|p| self.layout.resolve(p)) {
                        Some(Type::Struct(s)) => s,
                        _ => {
                            return Err(
                                self.err(line, format!("`->` on non-struct-pointer `{bt}`"))
                            )
                        }
                    }
                } else {
                    match self.layout.resolve(&bt) {
                        Type::Struct(s) => s,
                        other => {
                            return Err(self.err(line, format!("`.` on non-struct `{other}`")))
                        }
                    }
                };
                let Some((_, fty)) = self.layout.field_of(&sname, field) else {
                    return Err(
                        self.err(line, format!("struct {sname} has no field `{field}`"))
                    );
                };
                self.set(e.id, fty, true)
            }
            ExprKind::Cast { ty, expr } => {
                self.check_expr(expr)?;
                let rty = self.layout.resolve(ty);
                if matches!(rty, Type::Named(_)) {
                    return Err(self.err(line, format!("cast to unknown type `{ty}`")));
                }
                self.set(e.id, rty, false)
            }
            ExprKind::SizeofType(ty) => {
                let rty = self.layout.resolve(ty);
                if self.layout.size_of(&rty).is_none() && !matches!(rty, Type::Ptr(_)) {
                    return Err(self.err(line, format!("sizeof unknown type `{ty}`")));
                }
                self.set(e.id, Type::Int(IntKind::ULong), false)
            }
            ExprKind::SizeofExpr(inner) => {
                self.check_expr(inner)?;
                self.set(e.id, Type::Int(IntKind::ULong), false)
            }
            ExprKind::Ternary { cond, then_expr, else_expr } => {
                let ct = self.check_expr(cond)?;
                self.require_scalar(&ct, line)?;
                let tt = self.check_expr(then_expr)?.decay();
                let et = self.check_expr(else_expr)?.decay();
                let result = if tt.is_arithmetic() && et.is_arithmetic() {
                    self.common_arith(&tt, &et)
                } else if tt.is_pointerish() {
                    tt
                } else {
                    et
                };
                self.set(e.id, result, false)
            }
            ExprKind::Comma(a, b) => {
                self.check_expr(a)?;
                let bt = self.check_expr(b)?.decay();
                self.set(e.id, bt, false)
            }
        };
        Ok(ty)
    }

    fn require_lvalue(&self, e: &Expr, line: u32) -> Result<()> {
        if self.lvalues[e.id as usize] {
            Ok(())
        } else {
            Err(self.err(line, "expression is not assignable"))
        }
    }

    fn binary_type(&self, op: BinOp, lt: &Type, rt: &Type, line: u32) -> Result<Type> {
        if op.is_logical() {
            self.require_scalar(lt, line)?;
            self.require_scalar(rt, line)?;
            return Ok(Type::int());
        }
        if op.is_comparison() {
            let ok = (lt.is_arithmetic() && rt.is_arithmetic())
                || (lt.is_pointerish() && rt.is_pointerish())
                || (lt.is_pointerish() && rt.is_integer())
                || (lt.is_integer() && rt.is_pointerish());
            if !ok {
                return Err(self.err(line, format!("cannot compare `{lt}` and `{rt}`")));
            }
            return Ok(Type::int());
        }
        match op {
            BinOp::Add => {
                if lt.is_pointerish() && rt.is_integer() {
                    self.pointer_arith_ok(lt, line)?;
                    Ok(lt.clone())
                } else if rt.is_pointerish() && lt.is_integer() {
                    self.pointer_arith_ok(rt, line)?;
                    Ok(rt.clone())
                } else if lt.is_arithmetic() && rt.is_arithmetic() {
                    Ok(self.common_arith(lt, rt))
                } else {
                    Err(self.err(line, format!("invalid operands to `+`: `{lt}`, `{rt}`")))
                }
            }
            BinOp::Sub => {
                if lt.is_pointerish() && rt.is_pointerish() {
                    Ok(Type::Int(IntKind::Long)) // ptrdiff_t
                } else if lt.is_pointerish() && rt.is_integer() {
                    self.pointer_arith_ok(lt, line)?;
                    Ok(lt.clone())
                } else if lt.is_arithmetic() && rt.is_arithmetic() {
                    Ok(self.common_arith(lt, rt))
                } else {
                    Err(self.err(line, format!("invalid operands to `-`: `{lt}`, `{rt}`")))
                }
            }
            BinOp::Mul | BinOp::Div => {
                if lt.is_arithmetic() && rt.is_arithmetic() {
                    Ok(self.common_arith(lt, rt))
                } else {
                    Err(self.err(line, "invalid operands to `*`/`/`".to_string()))
                }
            }
            BinOp::Rem
            | BinOp::Shl
            | BinOp::Shr
            | BinOp::BitAnd
            | BinOp::BitOr
            | BinOp::BitXor => {
                if lt.is_integer() && rt.is_integer() {
                    if matches!(op, BinOp::Shl | BinOp::Shr) {
                        // Shift result has the promoted left operand type.
                        let Type::Int(k) = lt else { unreachable!() };
                        Ok(Type::Int(k.promote()))
                    } else {
                        Ok(self.common_arith(lt, rt))
                    }
                } else {
                    Err(self.err(line, "bitwise/shift/mod on non-integers"))
                }
            }
            _ => unreachable!("comparisons handled above"),
        }
    }

    fn pointer_arith_ok(&self, t: &Type, line: u32) -> Result<()> {
        let elem = self.layout.resolve(t.pointee().unwrap());
        if self.layout.size_of(&elem).is_some() || elem == Type::Void {
            Ok(())
        } else {
            Err(self.err(line, "pointer arithmetic on incomplete type"))
        }
    }
}

/// Signatures for the libc subset MiniC provides natively.
fn builtin_signatures() -> HashMap<String, Signature> {
    use IntKind::*;
    let mut m = HashMap::new();
    let vp = Type::ptr(Type::Void);
    let cp = Type::ptr(Type::Int(Char));
    let ul = Type::Int(ULong);
    let i = Type::int();
    let l = Type::Int(Long);
    let d = Type::Double;
    let f = Type::Float;
    let mut def = |name: &str, params: Vec<Type>, ret: Type| {
        m.insert(name.to_string(), Signature { params, ret, variadic: false });
    };
    def("memcpy", vec![vp.clone(), vp.clone(), ul.clone()], vp.clone());
    def("memmove", vec![vp.clone(), vp.clone(), ul.clone()], vp.clone());
    def("memset", vec![vp.clone(), i.clone(), ul.clone()], vp.clone());
    def("memcmp", vec![vp.clone(), vp.clone(), ul.clone()], i.clone());
    def("strlen", vec![cp.clone()], ul.clone());
    def("strcpy", vec![cp.clone(), cp.clone()], cp.clone());
    def("strncpy", vec![cp.clone(), cp.clone(), ul.clone()], cp.clone());
    def("strcmp", vec![cp.clone(), cp.clone()], i.clone());
    def("strncmp", vec![cp.clone(), cp.clone(), ul.clone()], i.clone());
    def("strcat", vec![cp.clone(), cp.clone()], cp.clone());
    def("strchr", vec![cp.clone(), i.clone()], cp.clone());
    def("abs", vec![i.clone()], i.clone());
    def("labs", vec![l.clone()], l.clone());
    def("fabs", vec![d.clone()], d.clone());
    def("fabsf", vec![f.clone()], f.clone());
    def("sqrt", vec![d.clone()], d.clone());
    def("sqrtf", vec![f.clone()], f.clone());
    def("sin", vec![d.clone()], d.clone());
    def("cos", vec![d.clone()], d.clone());
    def("tan", vec![d.clone()], d.clone());
    def("exp", vec![d.clone()], d.clone());
    def("log", vec![d.clone()], d.clone());
    def("pow", vec![d.clone(), d.clone()], d.clone());
    def("floor", vec![d.clone()], d.clone());
    def("ceil", vec![d.clone()], d.clone());
    def("fmod", vec![d.clone(), d.clone()], d.clone());
    def("fmin", vec![d.clone(), d.clone()], d.clone());
    def("fmax", vec![d.clone(), d.clone()], d.clone());
    def("isdigit", vec![i.clone()], i.clone());
    def("isalpha", vec![i.clone()], i.clone());
    def("isspace", vec![i.clone()], i.clone());
    def("isupper", vec![i.clone()], i.clone());
    def("islower", vec![i.clone()], i.clone());
    def("toupper", vec![i.clone()], i.clone());
    def("tolower", vec![i.clone()], i.clone());
    def("putchar", vec![i.clone()], i.clone());
    m.insert("printf".to_string(), Signature { params: vec![cp], ret: i, variadic: true });
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_program;

    fn check(src: &str) -> Result<TypeMap> {
        let p = parse_program(src)?;
        Sema::check(&p)
    }

    #[test]
    fn accepts_well_typed_program() {
        check(
            r#"
            struct pt { int x; int y; };
            int sum(struct pt *p, int n) {
                int s = 0;
                for (int i = 0; i < n; i++) s += p[i].x + p[i].y;
                return s;
            }"#,
        )
        .unwrap();
    }

    #[test]
    fn rejects_unknown_identifier() {
        let err = check("int f(void) { return missing; }").unwrap_err();
        assert_eq!(err.kind(), crate::ErrorKind::Type);
    }

    #[test]
    fn rejects_unknown_field() {
        let err =
            check("struct s { int a; }; int f(struct s *p) { return p->b; }").unwrap_err();
        assert!(err.message().contains("no field"));
    }

    #[test]
    fn rejects_wrong_arity_for_known_function() {
        let err =
            check("int g(int a) { return a; } int f(void) { return g(1, 2); }").unwrap_err();
        assert!(err.message().contains("expects 1 argument"));
    }

    #[test]
    fn allows_implicit_extern_call() {
        // Calling an undeclared function is C89-legal; execution would fail.
        check("int f(int x) { return ext_helper(x); }").unwrap();
    }

    #[test]
    fn pointer_arithmetic_scaling_types() {
        let tm_src = "long f(int *p, int *q) { return q - p; }";
        check(tm_src).unwrap();
    }

    #[test]
    fn usual_arithmetic_conversions() {
        let p = parse_program("unsigned f(unsigned a, int b) { return a + b; }").unwrap();
        let tm = Sema::check(&p).unwrap();
        // Find the Add expression and confirm it's unsigned.
        fn find_add(e: &Expr, tm: &TypeMap, out: &mut Vec<Type>) {
            if let ExprKind::Binary(BinOp::Add, l, r) = &e.kind {
                out.push(tm.value_type(e.id));
                find_add(l, tm, out);
                find_add(r, tm, out);
            }
        }
        let f = p.function("f").unwrap();
        let mut found = Vec::new();
        if let StmtKind::Block(ss) = &f.body.as_ref().unwrap().kind {
            if let StmtKind::Return(Some(e)) = &ss[0].kind {
                find_add(e, &tm, &mut found);
            }
        }
        assert_eq!(found, vec![Type::Int(IntKind::UInt)]);
    }

    #[test]
    fn rejects_incomplete_local() {
        let err = check("int f(void) { struct nope s; return 0; }").unwrap_err();
        assert!(err.message().contains("unknown or incomplete"));
    }

    #[test]
    fn rejects_deref_of_int() {
        assert!(check("int f(int x) { return *x; }").is_err());
    }

    #[test]
    fn rejects_address_of_rvalue() {
        assert!(check("int *f(int x) { return &(x + 1); }").is_err());
    }

    #[test]
    fn builtin_signatures_enforced() {
        assert!(check("void f(char *s) { strlen(s, 3); }").is_err());
        check("unsigned long f(char *s) { return strlen(s); }").unwrap();
    }

    #[test]
    fn struct_assignment_same_tag_ok() {
        check("struct s { int a; }; void f(struct s *p, struct s *q) { *p = *q; }").unwrap();
    }

    #[test]
    fn switch_rules() {
        check("int f(int x) { switch (x) { case 1: return 1; default: return 0; } }").unwrap();
        assert!(check("double g(void); int f(void) { switch (g()) { default: return 0; } }")
            .is_err());
        assert!(
            check(
                "int f(int x) { switch (x) { case 1: return 1; case 1: return 2; } return 0; }"
            )
            .is_err(),
            "duplicate labels"
        );
    }

    #[test]
    fn void_return_rules() {
        assert!(check("void f(void) { return 1; }").is_err());
        assert!(check("int f(void) { return; }").is_err());
    }
}
