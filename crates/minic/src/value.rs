//! Runtime values for the MiniC interpreter.

use crate::types::{IntKind, Type};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A typed pointer into [`crate::mem::Memory`]: segment id plus byte offset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Pointer {
    /// Segment index (0 is the reserved null segment).
    pub seg: u32,
    /// Byte offset within the segment; may go out of bounds transiently
    /// (one-past-the-end pointers are legal in C), checked on access.
    pub off: i64,
}

impl Pointer {
    /// The null pointer.
    pub fn null() -> Pointer {
        Pointer { seg: 0, off: 0 }
    }

    /// True for the null pointer (any offset in segment 0 counts).
    pub fn is_null(self) -> bool {
        self.seg == 0 && self.off == 0
    }

    /// This pointer displaced by `bytes`.
    pub fn offset(self, bytes: i64) -> Pointer {
        Pointer { seg: self.seg, off: self.off + bytes }
    }
}

/// A runtime value: integer (with kind), float, double or pointer.
///
/// Integers are stored sign-extended in an `i64` and re-wrapped to their
/// kind's width on every operation, so arithmetic matches the target's
/// two's-complement behaviour bit for bit.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Value {
    /// Integer value of the given kind (value already wrapped to width).
    Int(i64, IntKind),
    /// `float`
    F32(f32),
    /// `double`
    F64(f64),
    /// Pointer value.
    Ptr(Pointer),
}

impl Value {
    /// An `int`-kinded integer.
    pub fn int(v: i64) -> Value {
        Value::Int(IntKind::Int.wrap(v), IntKind::Int)
    }

    /// A `long`-kinded integer.
    pub fn long(v: i64) -> Value {
        Value::Int(v, IntKind::Long)
    }

    /// An integer of a specific kind, wrapped to width.
    pub fn of_kind(v: i64, kind: IntKind) -> Value {
        Value::Int(kind.wrap(v), kind)
    }

    /// The raw `i64` payload of an integer or pointer offset.
    ///
    /// # Panics
    ///
    /// Panics on float values; use [`Value::as_f64`] for those.
    pub fn as_i64(&self) -> i64 {
        match self {
            Value::Int(v, _) => *v,
            Value::Ptr(p) => ((p.seg as i64) << 32) | (p.off & 0xffff_ffff),
            other => panic!("as_i64 on {other:?}"),
        }
    }

    /// Numeric value as an `f64` (integers convert; pointers panic).
    ///
    /// # Panics
    ///
    /// Panics on pointer values.
    pub fn as_f64(&self) -> f64 {
        match self {
            Value::Int(v, k) if !k.signed() && k.size() == 8 => (*v as u64) as f64,
            Value::Int(v, _) => *v as f64,
            Value::F32(v) => *v as f64,
            Value::F64(v) => *v,
            Value::Ptr(_) => panic!("as_f64 on pointer"),
        }
    }

    /// The pointer payload.
    ///
    /// # Panics
    ///
    /// Panics if the value is not a pointer.
    pub fn as_ptr(&self) -> Pointer {
        match self {
            Value::Ptr(p) => *p,
            other => panic!("as_ptr on {other:?}"),
        }
    }

    /// C truthiness: nonzero / non-null.
    pub fn is_truthy(&self) -> bool {
        match self {
            Value::Int(v, _) => *v != 0,
            Value::F32(v) => *v != 0.0,
            Value::F64(v) => *v != 0.0,
            Value::Ptr(p) => !p.is_null(),
        }
    }

    /// Converts this value to `ty` following C conversion rules
    /// (truncation/extension for integers, rounding for floats, bit reuse
    /// for pointer↔integer).
    pub fn convert_to(&self, ty: &Type) -> Value {
        match ty {
            Type::Int(k) => match self {
                Value::Int(v, _) => Value::of_kind(*v, *k),
                Value::F32(v) => Value::of_kind(*v as i64, *k),
                Value::F64(v) => Value::of_kind(*v as i64, *k),
                Value::Ptr(p) => Value::of_kind(((p.seg as i64) << 32) | p.off, *k),
            },
            Type::Float => Value::F32(match self {
                Value::Int(v, k) if !k.signed() && k.size() == 8 => (*v as u64) as f32,
                Value::Int(v, _) => *v as f32,
                Value::F32(v) => *v,
                Value::F64(v) => *v as f32,
                Value::Ptr(_) => 0.0,
            }),
            Type::Double => Value::F64(match self {
                Value::Int(v, k) if !k.signed() && k.size() == 8 => (*v as u64) as f64,
                Value::Int(v, _) => *v as f64,
                Value::F32(v) => *v as f64,
                Value::F64(v) => *v,
                Value::Ptr(_) => 0.0,
            }),
            Type::Ptr(_) | Type::Array(..) => match self {
                Value::Ptr(p) => Value::Ptr(*p),
                Value::Int(v, _) => {
                    // Integer→pointer reuses our packed representation; 0
                    // stays null.
                    if *v == 0 {
                        Value::Ptr(Pointer::null())
                    } else {
                        Value::Ptr(Pointer { seg: (*v >> 32) as u32, off: *v & 0xffff_ffff })
                    }
                }
                other => *other,
            },
            _ => *self,
        }
    }

    /// Byte width of this value when stored.
    pub fn width(&self) -> usize {
        match self {
            Value::Int(_, k) => k.size(),
            Value::F32(_) => 4,
            Value::F64(_) => 8,
            Value::Ptr(_) => 8,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v, k) if !k.signed() => write!(f, "{}", *v as u64 & mask(k.size())),
            Value::Int(v, _) => write!(f, "{v}"),
            Value::F32(v) => write!(f, "{v}"),
            Value::F64(v) => write!(f, "{v}"),
            Value::Ptr(p) if p.is_null() => write!(f, "NULL"),
            Value::Ptr(p) => write!(f, "&seg{}+{}", p.seg, p.off),
        }
    }
}

fn mask(size: usize) -> u64 {
    if size >= 8 {
        u64::MAX
    } else {
        (1u64 << (size * 8)) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_wrapping_on_construction() {
        assert_eq!(Value::of_kind(300, IntKind::Char), Value::Int(44, IntKind::Char));
        assert_eq!(Value::of_kind(-1, IntKind::UChar), Value::Int(255, IntKind::UChar));
    }

    #[test]
    fn conversions_follow_c_rules() {
        let v = Value::F64(3.99);
        assert_eq!(v.convert_to(&Type::int()), Value::int(3)); // trunc toward zero
        let neg = Value::F64(-3.99);
        assert_eq!(neg.convert_to(&Type::int()), Value::int(-3));
        let big = Value::of_kind(u32::MAX as i64, IntKind::UInt);
        assert_eq!(big.convert_to(&Type::Double).as_f64(), u32::MAX as f64);
    }

    #[test]
    fn truthiness() {
        assert!(Value::int(1).is_truthy());
        assert!(!Value::int(0).is_truthy());
        assert!(!Value::Ptr(Pointer::null()).is_truthy());
        assert!(Value::F64(0.5).is_truthy());
    }

    #[test]
    fn null_roundtrip_through_int() {
        let z = Value::int(0).convert_to(&Type::ptr(Type::int()));
        assert_eq!(z, Value::Ptr(Pointer::null()));
    }

    #[test]
    fn unsigned_display() {
        assert_eq!(Value::of_kind(-1, IntKind::UInt).to_string(), "4294967295");
        assert_eq!(Value::of_kind(-1, IntKind::Int).to_string(), "-1");
    }
}
