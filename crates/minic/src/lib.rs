//! MiniC: the C-subset frontend, semantic analyzer, pretty-printer and
//! interpreter underpinning the SLaDe reproduction.
//!
//! The paper trains on real-world C functions (ExeBench/AnghaBench) compiled
//! by GCC and tests decompiled hypotheses by recompiling and executing them.
//! This crate is the stand-in for "the C language" in that loop: it parses a
//! realistic subset of C (scalars, pointers, arrays, structs, typedefs,
//! control flow, external calls, string literals), checks and annotates types,
//! pretty-prints canonical source, and executes programs on a byte-addressable
//! segment memory so that pointer tricks (`memcpy`, offset casts, aliasing)
//! behave like they do on hardware.
//!
//! # Example
//!
//! ```
//! use slade_minic::{parse_program, Interpreter, Value};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let src = "int add(int a, int b) { return a + b; }";
//! let program = parse_program(src)?;
//! let mut interp = Interpreter::new(&program)?;
//! let out = interp.call("add", &[Value::int(2), Value::int(40)])?;
//! assert_eq!(out.ret.unwrap().as_i64(), 42);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod interp;
pub mod lexer;
pub mod mem;
pub mod parser;
pub mod pretty;
pub mod sema;
pub mod token;
pub mod types;
pub mod value;

pub use ast::{BinOp, Expr, ExprKind, Function, Item, Program, Stmt, StmtKind, UnOp};
pub use interp::{CallOutcome, Interpreter, RunLimits};
pub use lexer::Lexer;
pub use parser::{parse_program, parse_program_lenient, Parser};
pub use pretty::{pretty_expr, pretty_program, pretty_type};
pub use sema::{Sema, TypeMap};
pub use token::{Token, TokenKind};
pub use types::{IntKind, StructDef, Type};
pub use value::{Pointer, Value};

use std::fmt;

/// Any error produced while lexing, parsing, type-checking or executing
/// MiniC source.
///
/// The `Display` form is a single lowercase sentence with a source location
/// when one is known, suitable for bubbling straight up to evaluation logs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MiniCError {
    kind: ErrorKind,
    message: String,
    /// 1-based line, 0 when unknown.
    line: u32,
}

/// Broad classification of a [`MiniCError`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ErrorKind {
    /// Malformed token stream (bad literal, stray character).
    Lex,
    /// Syntax error.
    Parse,
    /// Type error or unresolved name found during semantic analysis.
    Type,
    /// Runtime fault: bad memory access, division by zero, missing function.
    Runtime,
    /// Execution exceeded the configured fuel budget (assumed non-termination).
    Timeout,
}

impl MiniCError {
    /// Creates an error of the given kind with a source line (0 = unknown).
    pub fn new(kind: ErrorKind, message: impl Into<String>, line: u32) -> Self {
        MiniCError { kind, message: message.into(), line }
    }

    /// The broad classification of this error.
    pub fn kind(&self) -> ErrorKind {
        self.kind
    }

    /// The human-readable message, without location prefix.
    pub fn message(&self) -> &str {
        &self.message
    }

    /// 1-based source line, or 0 when not tied to a location.
    pub fn line(&self) -> u32 {
        self.line
    }
}

impl fmt::Display for MiniCError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let tag = match self.kind {
            ErrorKind::Lex => "lex error",
            ErrorKind::Parse => "parse error",
            ErrorKind::Type => "type error",
            ErrorKind::Runtime => "runtime error",
            ErrorKind::Timeout => "timeout",
        };
        if self.line > 0 {
            write!(f, "{tag} at line {}: {}", self.line, self.message)
        } else {
            write!(f, "{tag}: {}", self.message)
        }
    }
}

impl std::error::Error for MiniCError {}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, MiniCError>;
