//! Abstract syntax tree for MiniC.
//!
//! Every expression carries a [`NodeId`] assigned by the parser so that
//! semantic analysis can attach types in a side table without rebuilding the
//! tree (see [`crate::sema`]).

use crate::types::{IntKind, StructDef, Type};
use serde::{Deserialize, Serialize};

/// Unique id for an expression node within one parsed program.
pub type NodeId = u32;

/// A full translation unit: type definitions, globals and functions.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Program {
    /// Items in source order.
    pub items: Vec<Item>,
    /// Number of expression nodes allocated (ids are `0..node_count`).
    pub node_count: u32,
    /// Type names the lenient parser accepted without a definition
    /// (consumed by the type-inference engine).
    pub unknown_types: Vec<String>,
}

impl Program {
    /// All function definitions in the program, in source order.
    pub fn functions(&self) -> impl Iterator<Item = &Function> {
        self.items.iter().filter_map(|item| match item {
            Item::Function(f) if f.body.is_some() => Some(f),
            _ => None,
        })
    }

    /// Finds a function (definition or prototype) by name.
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.items.iter().find_map(|item| match item {
            Item::Function(f) if f.name == name => Some(f),
            _ => None,
        })
    }

    /// All struct definitions.
    pub fn structs(&self) -> impl Iterator<Item = &StructDef> {
        self.items.iter().filter_map(|item| match item {
            Item::Struct(s) => Some(s),
            _ => None,
        })
    }
}

/// A top-level item.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Item {
    /// `struct S { ... };`
    Struct(StructDef),
    /// `typedef <ty> <name>;`
    Typedef {
        /// The new type name.
        name: String,
        /// The aliased type.
        ty: Type,
    },
    /// Global variable, optionally initialized with a constant expression.
    Global {
        /// Variable name.
        name: String,
        /// Declared type.
        ty: Type,
        /// Constant initializer, when written.
        init: Option<Expr>,
        /// Declared `extern` (no storage here).
        is_extern: bool,
    },
    /// Function definition (`body: Some`) or prototype (`body: None`).
    Function(Function),
}

/// A function definition or prototype.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Function {
    /// Function name.
    pub name: String,
    /// Return type.
    pub ret: Type,
    /// `(name, type)` parameter list.
    pub params: Vec<(String, Type)>,
    /// Body, absent for prototypes/extern declarations.
    pub body: Option<Stmt>,
    /// True when declared `static` (kept for round-trip printing).
    pub is_static: bool,
}

/// A statement with its source line.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Stmt {
    /// What the statement does.
    pub kind: StmtKind,
    /// 1-based source line.
    pub line: u32,
}

/// Statement kinds.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum StmtKind {
    /// `{ ... }`
    Block(Vec<Stmt>),
    /// Local declaration. Multiple declarators are desugared by the parser
    /// into consecutive `Decl`s.
    Decl {
        /// Local name.
        name: String,
        /// Declared type.
        ty: Type,
        /// Initializer, when written.
        init: Option<Expr>,
    },
    /// Expression statement.
    Expr(Expr),
    /// `if (cond) then else?`
    If {
        /// Condition.
        cond: Expr,
        /// Taken when the condition is non-zero.
        then_branch: Box<Stmt>,
        /// Optional `else` branch.
        else_branch: Option<Box<Stmt>>,
    },
    /// `while (cond) body`
    While {
        /// Loop condition, tested before each iteration.
        cond: Expr,
        /// Loop body.
        body: Box<Stmt>,
    },
    /// `do body while (cond);`
    DoWhile {
        /// Loop body, run at least once.
        body: Box<Stmt>,
        /// Condition, tested after each iteration.
        cond: Expr,
    },
    /// `for (init; cond; step) body` — any clause may be absent.
    For {
        /// Init clause (declaration or expression).
        init: Option<Box<Stmt>>,
        /// Continuation condition.
        cond: Option<Expr>,
        /// Per-iteration step expression.
        step: Option<Expr>,
        /// Loop body.
        body: Box<Stmt>,
    },
    /// `return e?;`
    Return(Option<Expr>),
    /// `break;`
    Break,
    /// `continue;`
    Continue,
    /// `goto label;` (needed to round-trip lifter output)
    Goto(String),
    /// `label: stmt`
    Labeled {
        /// The label name.
        label: String,
        /// The labelled statement.
        stmt: Box<Stmt>,
    },
    /// `switch (scrutinee) { arms }` — each arm is `(case value, body)`,
    /// with `None` for `default:`; C fallthrough semantics apply.
    Switch {
        /// The switched-on expression.
        scrutinee: Expr,
        /// `(case value, body)` arms; `None` is `default:`.
        arms: Vec<(Option<i64>, Vec<Stmt>)>,
    },
    /// `;`
    Empty,
}

/// An expression node: kind plus parser-assigned id and line.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Expr {
    /// What the expression computes.
    pub kind: ExprKind,
    /// Side-table key for semantic information.
    pub id: NodeId,
    /// 1-based source line.
    pub line: u32,
}

/// Expression kinds.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum ExprKind {
    /// Integer literal with its original kind.
    IntLit(i64, IntKind),
    /// Floating literal; `bool` is true for `float` (f-suffixed).
    FloatLit(f64, bool),
    /// String literal.
    StrLit(String),
    /// Variable or function reference.
    Ident(String),
    /// Unary operator application.
    Unary(UnOp, Box<Expr>),
    /// `e++` / `e--` (postfix).
    Postfix(IncDec, Box<Expr>),
    /// Binary operator application.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// Assignment; `op` is `None` for `=` and the compound operator otherwise.
    Assign {
        /// `None` for `=`, the operator for `op=` compound forms.
        op: Option<BinOp>,
        /// Assigned-to lvalue.
        target: Box<Expr>,
        /// Right-hand side.
        value: Box<Expr>,
    },
    /// Function call by name.
    Call {
        /// Called function name.
        callee: String,
        /// Arguments in source order.
        args: Vec<Expr>,
    },
    /// `base[index]`
    Index {
        /// Array or pointer expression.
        base: Box<Expr>,
        /// Element index.
        index: Box<Expr>,
    },
    /// `base.field` (`arrow == false`) or `base->field` (`arrow == true`).
    Member {
        /// Struct value or pointer.
        base: Box<Expr>,
        /// Field name.
        field: String,
        /// True for `->`, false for `.`.
        arrow: bool,
    },
    /// `(ty) e`
    Cast {
        /// Target type.
        ty: Type,
        /// Cast operand.
        expr: Box<Expr>,
    },
    /// `sizeof(ty)`
    SizeofType(Type),
    /// `sizeof e`
    SizeofExpr(Box<Expr>),
    /// `cond ? then : else`
    Ternary {
        /// Condition.
        cond: Box<Expr>,
        /// Value when non-zero.
        then_expr: Box<Expr>,
        /// Value when zero.
        else_expr: Box<Expr>,
    },
    /// `a, b`
    Comma(Box<Expr>, Box<Expr>),
}

/// Prefix unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum UnOp {
    /// `-e`
    Neg,
    /// `!e`
    Not,
    /// `~e`
    BitNot,
    /// `*e`
    Deref,
    /// `&e`
    Addr,
    /// `++e`
    PreInc,
    /// `--e`
    PreDec,
    /// `+e` (no-op, kept for round-tripping)
    Plus,
}

/// Whether a postfix operator increments or decrements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IncDec {
    /// `e++`
    Inc,
    /// `e--`
    Dec,
}

/// Binary operators (excluding assignment, which is [`ExprKind::Assign`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `&`
    BitAnd,
    /// `|`
    BitOr,
    /// `^`
    BitXor,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `&&`
    LogAnd,
    /// `||`
    LogOr,
}

impl BinOp {
    /// True for `< <= > >= == !=` — operators whose result is `int` 0/1.
    pub fn is_comparison(self) -> bool {
        matches!(self, BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge | BinOp::Eq | BinOp::Ne)
    }

    /// True for `&&`/`||`, which short-circuit.
    pub fn is_logical(self) -> bool {
        matches!(self, BinOp::LogAnd | BinOp::LogOr)
    }

    /// The C spelling of the operator.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Rem => "%",
            BinOp::Shl => "<<",
            BinOp::Shr => ">>",
            BinOp::BitAnd => "&",
            BinOp::BitOr => "|",
            BinOp::BitXor => "^",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::LogAnd => "&&",
            BinOp::LogOr => "||",
        }
    }
}
