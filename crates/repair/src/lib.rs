//! Heuristic program repair for decompilation hypotheses.
//!
//! The paper's conclusion (§X) names *program repair* as the next lever for
//! improving neural decompilation accuracy: many hypotheses are semantically
//! right but fail to compile for shallow, mechanical reasons. This crate
//! implements that future-work direction as a deterministic repair loop:
//!
//! 1. **structural sanitation** ([`textfix`]) — close unterminated
//!    literals, drop trailing garbage past the last top-level `}`, balance
//!    `()/{}/[]`;
//! 2. **error-driven fixes** ([`errfix`]) — re-compile in the item's
//!    calling context and, per diagnostic, declare unknown identifiers,
//!    typedef unknown types, or (last resort) delete a garbled line.
//!
//! Repair is *conservative*: a hypothesis that already compiles is returned
//! byte-identical, every step is recorded in the [`RepairReport`], and the
//! loop gives up rather than guess when no fix matches the diagnostic.
//! Semantic correctness is still decided downstream by the IO harness — a
//! repair that compiles but diverges is rejected there, exactly like any
//! other beam candidate.
//!
//! # Example
//!
//! ```
//! use slade_repair::repair;
//!
//! // The decoder stopped mid-function: one `}` is missing.
//! let report = repair("int twice(int a) { return a * 2;", "");
//! let fixed = report.source.expect("repairable");
//! assert!(fixed.ends_with('}'));
//! assert!(!report.steps.is_empty());
//! ```

#![warn(missing_docs)]

pub mod errfix;
pub mod textfix;

pub use errfix::fix_for_error;
pub use textfix::{balance_delimiters, close_literals, sanitize, truncate_trailing_garbage};

use serde::{Deserialize, Serialize};
use slade_minic::{parse_program, MiniCError, Sema};

/// One applied repair, in application order.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum RepairStep {
    /// Appended a closing `"`, `'` or `*/` at end of input.
    ClosedStringLiteral,
    /// Appended missing and/or dropped stray delimiters.
    BalancedDelimiters {
        /// Closers appended at the end, in order.
        appended: String,
        /// Number of stray closers removed.
        stripped: usize,
    },
    /// Removed non-whitespace text after the last top-level `}`.
    TruncatedTrailingGarbage {
        /// How many characters of garbage were removed.
        removed_chars: usize,
    },
    /// Prepended a declaration for an identifier the model referenced but
    /// never introduced.
    DeclaredIdentifier {
        /// The identifier.
        name: String,
    },
    /// Prepended `typedef long <name>;` for an out-of-context type name.
    InjectedTypedef {
        /// The type name.
        name: String,
    },
    /// Deleted one unparsable line inside the hypothesis.
    DeletedLine {
        /// 1-based line in the full (context + hypothesis) program.
        line: u32,
    },
    /// Renamed the defined function to the symbol name from the assembly
    /// (the decompiler always knows the label it is lifting; models can
    /// hallucinate a different name).
    RenamedFunction {
        /// Name the model emitted.
        from: String,
        /// Expected symbol name.
        to: String,
    },
}

/// The outcome of [`repair`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RepairReport {
    /// The repaired hypothesis when it compiles in context; `None` when the
    /// loop could not produce a compiling program.
    pub source: Option<String>,
    /// Every step applied, in order (empty when the input already compiled).
    pub steps: Vec<RepairStep>,
    /// Error-driven rounds consumed (structural sanitation is round 0).
    pub rounds: usize,
}

impl RepairReport {
    /// True when the hypothesis compiled without any modification.
    pub fn was_already_valid(&self) -> bool {
        self.source.is_some() && self.steps.is_empty()
    }
}

/// Maximum error-driven fix rounds; each round repairs exactly one
/// diagnostic, so this bounds how many distinct defects we will chase.
const MAX_ROUNDS: usize = 6;

/// Parses and type-checks `hypothesis` inside `context` (the item's
/// calling program), the same compilability notion the IO harness uses.
///
/// # Errors
///
/// Returns the first lex/parse/type diagnostic.
pub fn try_compile(hypothesis: &str, context: &str) -> Result<(), MiniCError> {
    let full = format!("{context}\n{hypothesis}");
    let program = parse_program(&full)?;
    Sema::check(&program)?;
    Ok(())
}

/// Repairs `hypothesis` until it compiles in `context` or the fix
/// repertoire is exhausted. See the crate docs for the loop structure.
pub fn repair(hypothesis: &str, context: &str) -> RepairReport {
    if try_compile(hypothesis, context).is_ok() {
        return RepairReport {
            source: Some(hypothesis.to_string()),
            steps: Vec::new(),
            rounds: 0,
        };
    }
    // Round 0: structural sanitation.
    let (mut current, mut steps) = sanitize(hypothesis);
    // 1-based line where the hypothesis begins inside the full program:
    // `try_compile` prepends `context` plus one newline, so the hypothesis
    // starts after every newline of that prefix.
    let hyp_first_line = context.matches('\n').count() as u32 + 2;
    let mut rounds = 0usize;
    loop {
        let err = match try_compile(&current, context) {
            Ok(()) => {
                return RepairReport { source: Some(current), steps, rounds };
            }
            Err(e) => e,
        };
        if rounds >= MAX_ROUNDS {
            return RepairReport { source: None, steps, rounds };
        }
        let Some((next, step)) = fix_for_error(&current, &err, hyp_first_line) else {
            return RepairReport { source: None, steps, rounds };
        };
        if next == current {
            // A fix that changes nothing would loop forever.
            return RepairReport { source: None, steps, rounds };
        }
        current = next;
        steps.push(step);
        rounds += 1;
    }
}

/// The name of the (first) function a hypothesis defines: the identifier
/// immediately before the first top-level `(`. Purely textual, so it works
/// on hypotheses that do not yet parse.
pub fn defined_function_name(src: &str) -> Option<String> {
    let paren = src.find('(')?;
    let head = &src[..paren];
    let name: String = head
        .chars()
        .rev()
        .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
        .collect::<String>()
        .chars()
        .rev()
        .collect();
    if name.is_empty() || name.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        None
    } else {
        Some(name)
    }
}

/// Renames the function a hypothesis defines to `expected` — the symbol
/// name is always known from the assembly label, but a model can
/// hallucinate a different (training-frequent) name, which makes the
/// hypothesis unlinkable against the calling context. Replaces every
/// word-boundary occurrence of the emitted name (so recursive calls follow
/// the definition). Returns `None` when the name already matches or cannot
/// be determined.
pub fn rename_function(hypothesis: &str, expected: &str) -> Option<(String, RepairStep)> {
    let from = defined_function_name(hypothesis)?;
    if from == expected {
        return None;
    }
    let mut out = String::with_capacity(hypothesis.len());
    let bytes = hypothesis.as_bytes();
    let mut i = 0usize;
    let is_word = |b: u8| b.is_ascii_alphanumeric() || b == b'_';
    while i < bytes.len() {
        if hypothesis[i..].starts_with(&from)
            && (i == 0 || !is_word(bytes[i - 1]))
            && (i + from.len() == bytes.len() || !is_word(bytes[i + from.len()]))
        {
            out.push_str(expected);
            i += from.len();
        } else {
            // Advance one full UTF-8 character.
            let ch = hypothesis[i..].chars().next().expect("in-bounds char");
            out.push(ch);
            i += ch.len_utf8();
        }
    }
    Some((out, RepairStep::RenamedFunction { from, to: expected.to_string() }))
}

/// Expands beam candidates with their repaired forms: for every
/// `(hypothesis, header)` pair that fails to compile, a repaired variant is
/// appended after the originals (first-passing-IO selection then prefers
/// unrepaired candidates, keeping the paper's pipeline semantics intact).
/// When `expected_name` is given (the assembly symbol), candidates defining
/// a different function are additionally rename-repaired.
pub fn repair_candidates(
    candidates: &[(String, String)],
    context: &str,
    expected_name: Option<&str>,
) -> Vec<(String, String)> {
    let mut out: Vec<(String, String)> = candidates.to_vec();
    for (hyp, header) in candidates {
        let ctx_with_header = format!("{context}\n{header}");
        // Mechanical compile repair first.
        let repaired: Option<String> = if try_compile(hyp, &ctx_with_header).is_ok() {
            None
        } else {
            repair(hyp, &ctx_with_header).source.filter(|fixed| fixed != hyp)
        };
        let best = repaired.as_deref().unwrap_or(hyp);
        // Symbol-name repair on top of whichever form compiles.
        let renamed = expected_name
            .and_then(|want| rename_function(best, want))
            .and_then(|(text, _)| try_compile(&text, &ctx_with_header).is_ok().then_some(text));
        if let Some(fixed) = repaired {
            out.push((fixed, header.clone()));
        }
        if let Some(renamed) = renamed {
            out.push((renamed, header.clone()));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_hypothesis_is_returned_unchanged() {
        let hyp = "int f(int a) { return a * 3; }";
        let report = repair(hyp, "");
        assert_eq!(report.source.as_deref(), Some(hyp));
        assert!(report.was_already_valid());
        assert_eq!(report.rounds, 0);
    }

    #[test]
    fn missing_brace_is_repaired_to_compiling_code() {
        let report = repair("int f(int a) { return a * 3;", "");
        assert!(!report.was_already_valid());
        let fixed = report.source.expect("repairable");
        assert!(try_compile(&fixed, "").is_ok());
    }

    #[test]
    fn unknown_global_is_declared() {
        let hyp = "int f(int a) { total += a; return total; }";
        let report = repair(hyp, "");
        let fixed = report.source.expect("repairable");
        assert!(fixed.contains("long total;"));
        assert!(try_compile(&fixed, "").is_ok());
        assert!(report
            .steps
            .iter()
            .any(|s| matches!(s, RepairStep::DeclaredIdentifier { name } if name == "total")));
    }

    #[test]
    fn unknown_type_gets_typedef_backstop() {
        let hyp = "size_tt f(size_tt a) { return a + 1; }";
        let report = repair(hyp, "");
        let fixed = report.source.expect("repairable");
        assert!(fixed.contains("typedef long size_tt;"));
        assert!(try_compile(&fixed, "").is_ok());
    }

    #[test]
    fn repair_respects_context_declarations() {
        // `counter` exists in the context: nothing to declare, the raw
        // hypothesis compiles as-is.
        let ctx = "int counter;";
        let hyp = "int f(void) { counter++; return counter; }";
        let report = repair(hyp, ctx);
        assert!(report.was_already_valid());
    }

    #[test]
    fn hopeless_input_reports_failure_with_bounded_rounds() {
        let report = repair("@@@ ???", "");
        assert!(report.source.is_none());
        assert!(report.rounds <= MAX_ROUNDS);
    }

    #[test]
    fn truncation_then_balance_compose() {
        let hyp = "int f(int a) { if (a > 0) { return 1; } return 0; }\nint g(int";
        let report = repair(hyp, "");
        let fixed = report.source.expect("repairable");
        assert!(try_compile(&fixed, "").is_ok());
        assert!(!fixed.contains("int g"));
    }

    #[test]
    fn repair_candidates_appends_only_fixed_variants() {
        let good = ("int f(int a) { return a; }".to_string(), String::new());
        let fixable = ("int g(int a) { return a * 2;".to_string(), String::new());
        let hopeless = ("@#!".to_string(), String::new());
        let all =
            repair_candidates(&[good.clone(), fixable.clone(), hopeless.clone()], "", None);
        // Originals preserved in order, one repaired variant appended.
        assert_eq!(all[0], good);
        assert_eq!(all[1], fixable);
        assert_eq!(all[2], hopeless);
        assert_eq!(all.len(), 4);
        assert!(try_compile(&all[3].0, "").is_ok());
    }

    #[test]
    fn defined_name_is_extracted_from_broken_text() {
        assert_eq!(defined_function_name("int foo_bar(int a) {"), Some("foo_bar".into()));
        assert_eq!(
            defined_function_name("unsigned long f2(void) { return 1; }"),
            Some("f2".into())
        );
        assert_eq!(defined_function_name("no parens here"), None);
        assert_eq!(defined_function_name("(starts with paren"), None);
    }

    #[test]
    fn rename_function_follows_recursive_calls() {
        let hyp = "int fact(int n) { if (n < 2) return 1; return n * fact(n - 1); }";
        let (renamed, step) = rename_function(hyp, "factorial").unwrap();
        assert_eq!(
            renamed,
            "int factorial(int n) { if (n < 2) return 1; return n * factorial(n - 1); }"
        );
        assert_eq!(
            step,
            RepairStep::RenamedFunction { from: "fact".into(), to: "factorial".into() }
        );
        // Matching names are left alone.
        assert!(rename_function(&renamed, "factorial").is_none());
    }

    #[test]
    fn rename_respects_word_boundaries() {
        let hyp = "int f(int fx) { return fx + f2(fx); }";
        let (renamed, _) = rename_function(hyp, "g").unwrap();
        // `fx` and `f2` must survive; only the standalone `f` changes.
        assert_eq!(renamed, "int g(int fx) { return fx + f2(fx); }");
    }

    #[test]
    fn repair_candidates_rename_wrong_symbol() {
        // Model hallucinated `blend_mask`; assembly symbol is `scale3`.
        let wrong = ("int blend_mask(int a) { return a * 3; }".to_string(), String::new());
        let all = repair_candidates(std::slice::from_ref(&wrong), "", Some("scale3"));
        assert_eq!(all[0], wrong);
        assert_eq!(all.len(), 2);
        assert!(all[1].0.contains("int scale3(int a)"), "{}", all[1].0);
        assert!(try_compile(&all[1].0, "").is_ok());
    }

    #[test]
    fn repair_candidates_compose_fix_then_rename() {
        // Broken parens AND the wrong name: both repairs stack.
        let broken =
            ("int blend_mask(int a) { return a * 3) + 1); }".to_string(), String::new());
        let all = repair_candidates(&[broken], "", Some("scale3"));
        let renamed = all.iter().find(|(h, _)| h.contains("scale3")).expect("renamed variant");
        assert!(try_compile(&renamed.0, "").is_ok());
    }

    #[test]
    fn deleted_line_repair_recovers_function() {
        let hyp = "int f(int a) {\n  int r = a + 1;\n  $$$ !!!\n  return r;\n}";
        let report = repair(hyp, "");
        let fixed = report.source.expect("repairable");
        assert!(try_compile(&fixed, "").is_ok());
        assert!(fixed.contains("return r;"));
        assert!(!fixed.contains("$$$"));
    }

    #[test]
    fn report_serializes_for_experiment_logs() {
        let report = repair("int f(int a) { return a;", "");
        let json = serde_json::to_string(&report).unwrap();
        let back: RepairReport = serde_json::from_str(&json).unwrap();
        assert_eq!(report, back);
    }
}
