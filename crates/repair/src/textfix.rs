//! Text-level structural repairs applied before any parse attempt.
//!
//! Neural decoders fail in characteristic ways: they stop mid-token when
//! the length budget runs out (unbalanced delimiters, unterminated string
//! literals) or keep sampling past the function's closing brace (trailing
//! garbage). These repairs normalize exactly those shapes and nothing
//! else — a structurally well-formed hypothesis passes through unchanged.

use crate::RepairStep;

/// Scanner state shared by the fixes: tracks whether a byte position is
/// inside a string literal, character literal, or comment so delimiter
/// counting ignores quoted text.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ctx {
    Code,
    Str,
    Chr,
    LineComment,
    BlockComment,
}

/// Walks `src`, invoking `f(position, character, context)` for every char.
/// Returns the context the scan ended in.
fn scan(src: &str, mut f: impl FnMut(usize, char, Ctx)) -> Ctx {
    let mut ctx = Ctx::Code;
    let mut prev = '\0';
    let mut chars = src.char_indices().peekable();
    while let Some((i, c)) = chars.next() {
        match ctx {
            Ctx::Code => {
                match c {
                    '"' => ctx = Ctx::Str,
                    '\'' => ctx = Ctx::Chr,
                    '/' if chars.peek().map(|&(_, n)| n) == Some('/') => {
                        ctx = Ctx::LineComment;
                    }
                    '/' if chars.peek().map(|&(_, n)| n) == Some('*') => {
                        ctx = Ctx::BlockComment;
                    }
                    _ => {}
                }
                f(i, c, Ctx::Code);
            }
            Ctx::Str => {
                f(i, c, Ctx::Str);
                if c == '"' && prev != '\\' {
                    ctx = Ctx::Code;
                }
            }
            Ctx::Chr => {
                f(i, c, Ctx::Chr);
                if c == '\'' && prev != '\\' {
                    ctx = Ctx::Code;
                }
            }
            Ctx::LineComment => {
                f(i, c, Ctx::LineComment);
                if c == '\n' {
                    ctx = Ctx::Code;
                }
            }
            Ctx::BlockComment => {
                f(i, c, Ctx::BlockComment);
                if c == '/' && prev == '*' && i > 0 {
                    ctx = Ctx::Code;
                }
            }
        }
        // An escaped backslash must not hide the following quote.
        prev = if prev == '\\' && c == '\\' { '\0' } else { c };
    }
    ctx
}

/// Closes an unterminated string or character literal at the end of the
/// hypothesis (the decoder ran out of budget mid-literal).
pub fn close_literals(src: &str) -> (String, Option<RepairStep>) {
    let end = scan(src, |_, _, _| {});
    match end {
        Ctx::Str => (format!("{src}\""), Some(RepairStep::ClosedStringLiteral)),
        Ctx::Chr => (format!("{src}'"), Some(RepairStep::ClosedStringLiteral)),
        Ctx::BlockComment => (format!("{src}*/"), Some(RepairStep::ClosedStringLiteral)),
        _ => (src.to_string(), None),
    }
}

/// Drops non-whitespace text after the last top-level `}` — the "kept
/// sampling past the end" failure. Text is only removed when a top-level
/// close brace exists and something other than whitespace follows it.
pub fn truncate_trailing_garbage(src: &str) -> (String, Option<RepairStep>) {
    let mut depth: i32 = 0;
    let mut last_close: Option<usize> = None;
    scan(src, |i, c, ctx| {
        if ctx != Ctx::Code {
            return;
        }
        match c {
            '{' => depth += 1,
            '}' => {
                depth -= 1;
                if depth <= 0 {
                    last_close = Some(i);
                    depth = depth.max(0);
                }
            }
            _ => {}
        }
    });
    let Some(pos) = last_close else { return (src.to_string(), None) };
    let tail = &src[pos + 1..];
    if tail.trim().is_empty() {
        return (src.to_string(), None);
    }
    let removed = tail.trim().len();
    (
        src[..=pos].to_string(),
        Some(RepairStep::TruncatedTrailingGarbage { removed_chars: removed }),
    )
}

/// Balances `()`, `{}` and `[]`: unmatched closers are dropped, missing
/// closers are appended in nesting order. Quoted text and comments are
/// ignored by the counter.
pub fn balance_delimiters(src: &str) -> (String, Option<RepairStep>) {
    let mut stack: Vec<char> = Vec::new();
    let mut drop_positions: Vec<usize> = Vec::new();
    scan(src, |i, c, ctx| {
        if ctx != Ctx::Code {
            return;
        }
        match c {
            '(' | '{' | '[' => stack.push(c),
            ')' | '}' | ']' => {
                let opener = match c {
                    ')' => '(',
                    '}' => '{',
                    _ => '[',
                };
                if stack.last() == Some(&opener) {
                    stack.pop();
                } else {
                    // Either nothing open or a mismatched nesting: drop it.
                    drop_positions.push(i);
                }
            }
            _ => {}
        }
    });
    if stack.is_empty() && drop_positions.is_empty() {
        return (src.to_string(), None);
    }
    let mut out = String::with_capacity(src.len() + stack.len());
    let mut drops = drop_positions.iter().copied().peekable();
    for (i, c) in src.char_indices() {
        if drops.peek() == Some(&i) {
            drops.next();
            continue;
        }
        out.push(c);
    }
    let mut appended = String::new();
    for opener in stack.iter().rev() {
        appended.push(match opener {
            '(' => ')',
            '{' => '}',
            _ => ']',
        });
    }
    // Closing braces read better on their own lines.
    if appended.contains('}') && !out.ends_with('\n') {
        out.push('\n');
    }
    out.push_str(&appended);
    let stripped = drop_positions.len();
    (out, Some(RepairStep::BalancedDelimiters { appended, stripped }))
}

/// Runs the structural fixes in dependency order (literals first so the
/// delimiter scan sees correct quoting, truncation before balancing so
/// appended braces don't legitimize garbage). Returns the cleaned text and
/// the steps that actually changed something.
pub fn sanitize(src: &str) -> (String, Vec<RepairStep>) {
    let mut steps = Vec::new();
    let (s, step) = close_literals(src);
    steps.extend(step);
    let (s, step) = truncate_trailing_garbage(&s);
    steps.extend(step);
    let (s, step) = balance_delimiters(&s);
    steps.extend(step);
    (s, steps)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn well_formed_text_is_untouched() {
        let src = "int f(int a) { return a + 1; }";
        let (out, steps) = sanitize(src);
        assert_eq!(out, src);
        assert!(steps.is_empty());
    }

    #[test]
    fn missing_closers_are_appended() {
        let (out, step) = balance_delimiters("int f(int a) { if (a) { return 1;");
        assert!(out.ends_with("}}"), "{out}");
        assert!(matches!(step, Some(RepairStep::BalancedDelimiters { .. })));
    }

    #[test]
    fn stray_closers_are_dropped() {
        let (out, _) = balance_delimiters("int f(void) { return 1; } } )");
        assert_eq!(out.matches('}').count(), 1);
        assert!(!out.contains(')') || out.contains('('));
    }

    #[test]
    fn unterminated_string_is_closed() {
        let (out, step) = close_literals("char *s = \"abc");
        assert!(out.ends_with('"'));
        assert_eq!(step, Some(RepairStep::ClosedStringLiteral));
    }

    #[test]
    fn braces_inside_strings_do_not_count() {
        let src = "int f(void) { puts(\"}{\"); return 0; }";
        let (out, step) = balance_delimiters(src);
        assert_eq!(out, src);
        assert!(step.is_none());
    }

    #[test]
    fn trailing_garbage_is_removed() {
        let src = "int f(void) { return 1; }\nint g(int x { return";
        let (out, step) = truncate_trailing_garbage(src);
        assert_eq!(out, "int f(void) { return 1; }");
        assert!(matches!(step, Some(RepairStep::TruncatedTrailingGarbage { .. })));
    }

    #[test]
    fn complete_second_function_is_kept() {
        let src = "int f(void) { return 1; }\nint g(void) { return 2; }";
        let (out, step) = truncate_trailing_garbage(src);
        assert_eq!(out, src);
        assert!(step.is_none());
    }

    #[test]
    fn unterminated_block_comment_is_closed() {
        let (out, _) = close_literals("int f(void) { return 1; } /* trailing");
        assert!(out.ends_with("*/"));
    }
}
