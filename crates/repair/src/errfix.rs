//! Error-driven repairs: each fix is keyed off the compiler's diagnostic
//! for the current hypothesis and produces one modified candidate.
//!
//! The repertoire mirrors what a programmer does with a decompiler's
//! almost-right output: declare the identifier the model forgot, give an
//! out-of-context type a plausible definition, or delete the one garbled
//! line that breaks the parse.

use crate::RepairStep;
use slade_minic::{ErrorKind, MiniCError};

/// Extracts the first backtick-quoted fragment of a diagnostic message.
fn quoted(message: &str) -> Option<&str> {
    message.split('`').nth(1)
}

/// True when `name` is a plausible C identifier (the only thing we will
/// ever declare or typedef on the model's behalf).
fn is_identifier(name: &str) -> bool {
    !name.is_empty()
        && name.chars().next().is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
        && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// C keywords that must never be typedef'd or declared as variables.
const KEYWORDS: &[&str] = &[
    "auto", "break", "case", "char", "const", "continue", "default", "do", "double", "else",
    "enum", "extern", "float", "for", "goto", "if", "int", "long", "register", "return",
    "short", "signed", "sizeof", "static", "struct", "switch", "typedef", "union", "unsigned",
    "void", "volatile", "while",
];

fn is_typedefable(name: &str) -> bool {
    is_identifier(name) && !KEYWORDS.contains(&name)
}

/// Proposes one repaired hypothesis for `err`, or `None` when the
/// diagnostic matches no known fix. `hyp_first_line` is the 1-based line
/// of the full program where the hypothesis starts (diagnostics point into
/// the concatenated context + hypothesis source).
pub fn fix_for_error(
    hypothesis: &str,
    err: &MiniCError,
    hyp_first_line: u32,
) -> Option<(String, RepairStep)> {
    let msg = err.message();
    match err.kind() {
        ErrorKind::Type if msg.starts_with("unknown identifier") => {
            let name = quoted(msg)?;
            if !is_identifier(name) {
                return None;
            }
            // Indexed or dereferenced use needs storage, not a scalar.
            let subscripted = hypothesis.contains(&format!("{name}["))
                || hypothesis.contains(&format!("*{name}"));
            let decl = if subscripted {
                format!("long {name}[64];\n")
            } else {
                format!("long {name};\n")
            };
            Some((
                format!("{decl}{hypothesis}"),
                RepairStep::DeclaredIdentifier { name: name.to_string() },
            ))
        }
        ErrorKind::Parse | ErrorKind::Lex if msg.contains("unknown type name") => {
            let name = quoted(msg)?;
            if !is_typedefable(name) {
                return None;
            }
            Some((
                format!("typedef long {name};\n{hypothesis}"),
                RepairStep::InjectedTypedef { name: name.to_string() },
            ))
        }
        // An identifier where a declaration was expected is how the parser
        // reports an unknown *return* type at file scope — the exact
        // out-of-context-typedef shape type inference targets; repair keeps
        // a backstop for when that stage is disabled.
        ErrorKind::Parse
            if msg.starts_with("expected declaration")
                && quoted(msg).is_some_and(is_typedefable) =>
        {
            let name = quoted(msg).expect("guard checked");
            Some((
                format!("typedef long {name};\n{hypothesis}"),
                RepairStep::InjectedTypedef { name: name.to_string() },
            ))
        }
        ErrorKind::Parse | ErrorKind::Lex if err.line() >= hyp_first_line => {
            // Last resort: delete the offending line inside the hypothesis.
            let hyp_line = (err.line() - hyp_first_line) as usize;
            let lines: Vec<&str> = hypothesis.lines().collect();
            if hyp_line >= lines.len() || lines[hyp_line].trim().is_empty() {
                return None;
            }
            // Never delete the signature line — that guarantees failure.
            if hyp_line == 0 {
                return None;
            }
            let mut kept: Vec<&str> = Vec::with_capacity(lines.len() - 1);
            for (i, l) in lines.iter().enumerate() {
                if i != hyp_line {
                    kept.push(l);
                }
            }
            Some((kept.join("\n"), RepairStep::DeletedLine { line: err.line() }))
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slade_minic::ErrorKind;

    fn err(kind: ErrorKind, msg: &str, line: u32) -> MiniCError {
        MiniCError::new(kind, msg, line)
    }

    #[test]
    fn unknown_identifier_gets_declared() {
        let hyp = "int f(int a) { return a + counter; }";
        let e = err(ErrorKind::Type, "unknown identifier `counter`", 2);
        let (fixed, step) = fix_for_error(hyp, &e, 2).unwrap();
        assert!(fixed.starts_with("long counter;\n"));
        assert_eq!(step, RepairStep::DeclaredIdentifier { name: "counter".into() });
    }

    #[test]
    fn subscripted_identifier_gets_array_storage() {
        let hyp = "int f(int i) { return table[i]; }";
        let e = err(ErrorKind::Type, "unknown identifier `table`", 2);
        let (fixed, _) = fix_for_error(hyp, &e, 2).unwrap();
        assert!(fixed.starts_with("long table[64];\n"), "{fixed}");
    }

    #[test]
    fn unknown_type_gets_typedef() {
        let hyp = "my_int f(my_int a) { return a; }";
        let e = err(ErrorKind::Parse, "unknown type name `my_int`", 2);
        let (fixed, step) = fix_for_error(hyp, &e, 2).unwrap();
        assert!(fixed.starts_with("typedef long my_int;\n"));
        assert_eq!(step, RepairStep::InjectedTypedef { name: "my_int".into() });
    }

    #[test]
    fn garbled_line_is_deleted() {
        let hyp = "int f(int a) {\n%%%garbage%%%\nreturn a;\n}";
        let e = err(ErrorKind::Parse, "expected `;`, found `%`", 3);
        // Hypothesis starts at full-program line 2: error line 3 = hyp line 1.
        let (fixed, step) = fix_for_error(hyp, &e, 2).unwrap();
        assert!(!fixed.contains("garbage"));
        assert_eq!(step, RepairStep::DeletedLine { line: 3 });
    }

    #[test]
    fn signature_line_is_never_deleted() {
        let hyp = "int f(int a( {\nreturn a;\n}";
        let e = err(ErrorKind::Parse, "expected `)`, found `(`", 5);
        assert!(fix_for_error(hyp, &e, 5).is_none());
    }

    #[test]
    fn context_errors_are_not_ours_to_fix() {
        let hyp = "int f(void) { return 1; }";
        let e = err(ErrorKind::Parse, "expected declaration, found `@`", 1);
        // Error at line 1, hypothesis starts at line 4: context problem.
        assert!(fix_for_error(hyp, &e, 4).is_none());
    }

    #[test]
    fn non_identifier_names_are_rejected() {
        let hyp = "int f(void) { return 1; }";
        let e = err(ErrorKind::Type, "unknown identifier `1bad`", 2);
        assert!(fix_for_error(hyp, &e, 2).is_none());
    }
}
