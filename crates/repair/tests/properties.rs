//! Property tests for the repair loop's safety contracts:
//! never panic, never "fix" something into a non-compiling state, and
//! never touch already-valid hypotheses.

use proptest::prelude::*;
use slade_repair::{repair, sanitize, try_compile};

/// C-flavoured text: identifiers, digits, operators, delimiters, quotes —
/// weighted so delimiters and quotes (the repair triggers) are common.
fn c_soup() -> impl Strategy<Value = String> {
    prop::collection::vec(
        prop_oneof![
            3 => "[a-z_]{1,6}",
            1 => "[0-9]{1,3}",
            2 => prop::sample::select(vec![
                "{", "}", "(", ")", "[", "]", ";", ",", "+", "-", "*", "/", "=",
                "\"", "'", "->", "&&", "||", "<", ">", "int", "long", "return",
                "if", "while", "for", " ", "\n",
            ])
            .prop_map(str::to_string),
        ],
        0..60,
    )
    .prop_map(|parts| parts.join(" "))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Repair must never panic and, when it claims success, the result must
    /// actually compile in the empty context.
    #[test]
    fn repair_is_safe_on_arbitrary_soup(src in c_soup()) {
        let report = repair(&src, "");
        if let Some(fixed) = &report.source {
            prop_assert!(try_compile(fixed, "").is_ok(),
                "claimed repaired but does not compile:\n{fixed}");
        }
    }

    /// Structural sanitation always yields balanced delimiters outside
    /// string/char literals (counted naively after stripping quotes).
    #[test]
    fn sanitize_balances_delimiters(src in c_soup()) {
        let (out, _) = sanitize(&src);
        // Strip string/char literal contents with the same simple rule the
        // fixer uses: once literals are closed, quotes pair up.
        let mut depth_paren = 0i64;
        let mut depth_brace = 0i64;
        let mut depth_brack = 0i64;
        let mut in_str = false;
        let mut in_chr = false;
        let mut prev = '\0';
        for c in out.chars() {
            if in_str {
                if c == '"' && prev != '\\' { in_str = false; }
            } else if in_chr {
                if c == '\'' && prev != '\\' { in_chr = false; }
            } else {
                match c {
                    '"' => in_str = true,
                    '\'' => in_chr = true,
                    '(' => depth_paren += 1,
                    ')' => depth_paren -= 1,
                    '{' => depth_brace += 1,
                    '}' => depth_brace -= 1,
                    '[' => depth_brack += 1,
                    ']' => depth_brack -= 1,
                    _ => {}
                }
                prop_assert!(depth_paren >= 0 && depth_brace >= 0 && depth_brack >= 0,
                    "negative depth in: {out}");
            }
            prev = if prev == '\\' && c == '\\' { '\0' } else { c };
        }
        prop_assert_eq!(depth_paren, 0, "unbalanced parens: {}", &out);
        prop_assert_eq!(depth_brace, 0, "unbalanced braces: {}", &out);
        prop_assert_eq!(depth_brack, 0, "unbalanced brackets: {}", &out);
    }

    /// A hypothesis that already compiles is returned byte-identical with
    /// an empty step list, for any simple function body expression.
    #[test]
    fn valid_functions_pass_through(a in 0i64..100, b in 0i64..100) {
        let hyp = format!("long f(long x) {{ return x * {a} + {b}; }}");
        let report = repair(&hyp, "");
        prop_assert!(report.was_already_valid());
        prop_assert_eq!(report.source.as_deref(), Some(hyp.as_str()));
    }
}
