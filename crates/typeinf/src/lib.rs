//! Type inference for partial C programs — the PsycheC stand-in (§VI-B).
//!
//! SLaDe's model may emit code referencing types it saw in training
//! (`my_int`, `SClock`, …) that the evaluation context does not define. Like
//! PsycheC, this crate (1) parses the partial program leniently, (2)
//! generates constraints from syntax-directed usage rules, (3) solves them
//! and synthesizes the missing `typedef`/`struct` declarations so the
//! program compiles.
//!
//! # Example
//!
//! ```
//! use slade_typeinf::infer_missing_types;
//!
//! let hypothesis = "my_int twice(my_int x) { return x + x; }";
//! let header = infer_missing_types(hypothesis, "").unwrap();
//! assert!(header.contains("typedef"));
//! let full = format!("{header}\n{hypothesis}");
//! assert!(slade_minic::parse_program(&full).is_ok());
//! ```

#![warn(missing_docs)]

use slade_minic::ast::{Expr, ExprKind, Item, Program, Stmt, StmtKind};
use slade_minic::types::Type;
use slade_minic::{parse_program, parse_program_lenient, Sema};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;

/// Inference failure: the program does not even parse leniently, or the
/// synthesized header still does not make it compile.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InferError(pub String);

impl fmt::Display for InferError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "type inference failed: {}", self.0)
    }
}

impl std::error::Error for InferError {}

/// What the solver concluded a type variable must be.
#[derive(Debug, Clone, PartialEq)]
enum Solved {
    /// Scalar typedef to this MiniC type.
    Scalar(Type),
    /// Struct with the given fields.
    Struct(BTreeMap<String, Type>),
}

/// Infers the missing type declarations of `hypothesis` given an evaluation
/// `context` (which may already define some names). Returns a header to
/// prepend; empty when nothing is missing.
///
/// # Errors
///
/// Fails if the hypothesis cannot be parsed leniently, or if the program
/// still does not type-check after injection.
pub fn infer_missing_types(hypothesis: &str, context: &str) -> Result<String, InferError> {
    // Fast path: already compiles in context.
    let combined = format!("{context}\n{hypothesis}");
    if parse_program(&combined).and_then(|p| Sema::check(&p).map(|_| ())).is_ok() {
        return Ok(String::new());
    }
    let program = parse_program_lenient(&combined)
        .map_err(|e| InferError(format!("lenient parse: {e}")))?;
    // Names already defined by the context or the hypothesis itself.
    let defined: BTreeSet<String> = program
        .items
        .iter()
        .filter_map(|i| match i {
            Item::Typedef { name, .. } => Some(name.clone()),
            Item::Struct(def) => Some(def.name.clone()),
            _ => None,
        })
        .collect();
    let mut vars: BTreeMap<String, Solved> = BTreeMap::new();
    for unknown in &program.unknown_types {
        if !defined.contains(unknown) {
            vars.insert(unknown.clone(), Solved::Scalar(Type::int()));
        }
    }
    // Undefined struct tags referenced as `struct S`.
    let mut undefined_structs: BTreeSet<String> = BTreeSet::new();
    collect_struct_tags(&program, &mut undefined_structs);
    for tag in &undefined_structs {
        if !defined.contains(tag) {
            vars.entry(format!("struct {tag}")).or_insert(Solved::Struct(BTreeMap::new()));
        }
    }
    if vars.is_empty() {
        return Err(InferError("program is ill-typed but no unknown types found".into()));
    }
    // Constraint generation: walk every function, tracking variables whose
    // declared type mentions an unknown name, and observe their usage.
    let mut ctx = ConstraintCtx { vars: &mut vars, var_types: HashMap::new() };
    for item in &program.items {
        if let Item::Function(f) = item {
            for (pname, pty) in &f.params {
                ctx.bind(pname, pty);
            }
            if let Some(body) = &f.body {
                ctx.walk_stmt(body);
            }
            ctx.var_types.clear();
        }
    }
    // Synthesize the header.
    let mut header = String::new();
    for (name, solved) in &vars {
        match solved {
            Solved::Scalar(ty) => {
                if let Some(tag) = name.strip_prefix("struct ") {
                    // A tag never used by field: emit an opaque-ish struct.
                    let _ = ty;
                    header.push_str(&format!("struct {tag} {{ int __pad; }};\n"));
                } else {
                    header.push_str(&format!("typedef {} {name};\n", c_name(ty)));
                }
            }
            Solved::Struct(fields) => {
                let tag = name.strip_prefix("struct ").unwrap_or(name);
                header.push_str(&format!("struct {tag} {{"));
                if fields.is_empty() {
                    header.push_str(" int __pad;");
                } else {
                    for (fname, fty) in fields {
                        header.push_str(&format!(" {} {fname};", c_name(fty)));
                    }
                }
                header.push_str(" };\n");
                if !name.starts_with("struct ") {
                    header.push_str(&format!("typedef struct {tag} {name};\n"));
                }
            }
        }
    }
    // Verify the injection works.
    let full = format!("{header}\n{combined}");
    let p = parse_program(&full).map_err(|e| InferError(format!("after injection: {e}")))?;
    Sema::check(&p).map_err(|e| InferError(format!("after injection: {e}")))?;
    Ok(header)
}

fn c_name(ty: &Type) -> String {
    slade_minic::pretty_type(ty)
}

fn collect_struct_tags(program: &Program, out: &mut BTreeSet<String>) {
    let defined: BTreeSet<String> = program.structs().map(|d| d.name.clone()).collect();
    fn scan_type(ty: &Type, defined: &BTreeSet<String>, out: &mut BTreeSet<String>) {
        match ty {
            Type::Struct(tag) if !defined.contains(tag) => {
                out.insert(tag.clone());
            }
            Type::Ptr(inner) | Type::Array(inner, _) => scan_type(inner, defined, out),
            _ => {}
        }
    }
    for item in &program.items {
        match item {
            Item::Function(f) => {
                for (_, t) in &f.params {
                    scan_type(t, &defined, out);
                }
                scan_type(&f.ret, &defined, out);
                if let Some(body) = &f.body {
                    scan_stmt_types(body, &defined, out);
                }
            }
            Item::Global { ty, .. } => scan_type(ty, &defined, out),
            _ => {}
        }
    }
    fn scan_stmt_types(s: &Stmt, defined: &BTreeSet<String>, out: &mut BTreeSet<String>) {
        match &s.kind {
            StmtKind::Decl { ty, .. } => scan_type(ty, defined, out),
            StmtKind::Block(ss) => ss.iter().for_each(|s| scan_stmt_types(s, defined, out)),
            StmtKind::If { then_branch, else_branch, .. } => {
                scan_stmt_types(then_branch, defined, out);
                if let Some(e) = else_branch {
                    scan_stmt_types(e, defined, out);
                }
            }
            StmtKind::While { body, .. }
            | StmtKind::DoWhile { body, .. }
            | StmtKind::For { body, .. } => scan_stmt_types(body, defined, out),
            StmtKind::Labeled { stmt, .. } => scan_stmt_types(stmt, defined, out),
            _ => {}
        }
    }
}

/// Tracks which local variables have unknown-typed declarations and turns
/// their usages into constraints.
struct ConstraintCtx<'a> {
    vars: &'a mut BTreeMap<String, Solved>,
    /// variable name → (type-var name, pointer depth)
    var_types: HashMap<String, (String, usize)>,
}

impl ConstraintCtx<'_> {
    fn bind(&mut self, var: &str, ty: &Type) {
        let mut depth = 0usize;
        let mut t = ty;
        loop {
            match t {
                Type::Ptr(inner) | Type::Array(inner, _) => {
                    depth += 1;
                    t = inner;
                }
                Type::Named(name) if self.vars.contains_key(name) => {
                    self.var_types.insert(var.to_string(), (name.clone(), depth));
                    return;
                }
                Type::Struct(tag) => {
                    let key = format!("struct {tag}");
                    if self.vars.contains_key(&key) {
                        self.var_types.insert(var.to_string(), (key, depth));
                    }
                    return;
                }
                _ => return,
            }
        }
    }

    fn walk_stmt(&mut self, s: &Stmt) {
        match &s.kind {
            StmtKind::Block(ss) => ss.iter().for_each(|s| self.walk_stmt(s)),
            StmtKind::Decl { name, ty, init } => {
                self.bind(name, ty);
                if let Some(e) = init {
                    self.walk_expr(e);
                }
            }
            StmtKind::Expr(e) | StmtKind::Return(Some(e)) => self.walk_expr(e),
            StmtKind::If { cond, then_branch, else_branch } => {
                self.walk_expr(cond);
                self.walk_stmt(then_branch);
                if let Some(e) = else_branch {
                    self.walk_stmt(e);
                }
            }
            StmtKind::While { cond, body } | StmtKind::DoWhile { body, cond } => {
                self.walk_expr(cond);
                self.walk_stmt(body);
            }
            StmtKind::For { init, cond, step, body } => {
                if let Some(i) = init {
                    self.walk_stmt(i);
                }
                if let Some(c) = cond {
                    self.walk_expr(c);
                }
                if let Some(st) = step {
                    self.walk_expr(st);
                }
                self.walk_stmt(body);
            }
            StmtKind::Labeled { stmt, .. } => self.walk_stmt(stmt),
            StmtKind::Switch { scrutinee, arms } => {
                self.walk_expr(scrutinee);
                for (_, body) in arms {
                    for s in body {
                        self.walk_stmt(s);
                    }
                }
            }
            _ => {}
        }
    }

    /// The type-var behind an expression, if it traces back to an
    /// unknown-typed variable, with the residual pointer depth.
    fn trace(&self, e: &Expr) -> Option<(String, usize)> {
        match &e.kind {
            ExprKind::Ident(name) => self.var_types.get(name).cloned(),
            ExprKind::Unary(slade_minic::ast::UnOp::Deref, inner) => {
                let (v, d) = self.trace(inner)?;
                (d > 0).then(|| (v, d - 1))
            }
            ExprKind::Index { base, .. } => {
                let (v, d) = self.trace(base)?;
                (d > 0).then(|| (v, d - 1))
            }
            ExprKind::Cast { expr, .. } => self.trace(expr),
            _ => None,
        }
    }

    fn observe_field(&mut self, tv: &str, field: &str, ty: Type) {
        let entry = self.vars.get_mut(tv);
        if let Some(solved) = entry {
            match solved {
                Solved::Struct(fields) => {
                    fields.entry(field.to_string()).or_insert(ty);
                }
                Solved::Scalar(_) => {
                    let mut fields = BTreeMap::new();
                    fields.insert(field.to_string(), ty);
                    *solved = Solved::Struct(fields);
                }
            }
        }
    }

    fn walk_expr(&mut self, e: &Expr) {
        match &e.kind {
            ExprKind::Member { base, field, arrow } => {
                self.walk_expr(base);
                let traced = if *arrow {
                    self.trace(base).and_then(|(v, d)| (d >= 1).then_some(v))
                } else {
                    self.trace(base).and_then(|(v, d)| (d == 0).then_some(v))
                };
                if let Some(tv) = traced {
                    // Field type guess: int unless used with float literals —
                    // refined by the enclosing assignment below.
                    self.observe_field(&tv, field, Type::int());
                }
            }
            ExprKind::Assign { target, value, .. } => {
                self.walk_expr(target);
                self.walk_expr(value);
                // `x->f += 1.5` → field f is double.
                if let ExprKind::Member { base, field, arrow } = &target.kind {
                    let traced = if *arrow {
                        self.trace(base).and_then(|(v, d)| (d >= 1).then_some(v))
                    } else {
                        self.trace(base).and_then(|(v, d)| (d == 0).then_some(v))
                    };
                    if let Some(tv) = traced {
                        if expr_is_floatish(value) {
                            if let Some(Solved::Struct(fields)) = self.vars.get_mut(&tv) {
                                fields.insert(field.clone(), Type::Double);
                            }
                        }
                    }
                }
            }
            ExprKind::Binary(_, l, r) => {
                self.walk_expr(l);
                self.walk_expr(r);
                // Scalar unknowns used in float arithmetic become double.
                for side in [l, r] {
                    if let Some((tv, 0)) = self.trace(side) {
                        let other = if std::ptr::eq(&**side, &**l) { r } else { l };
                        if expr_is_floatish(other) {
                            if let Some(s @ Solved::Scalar(_)) = self.vars.get_mut(&tv) {
                                *s = Solved::Scalar(Type::Double);
                            }
                        }
                    }
                }
            }
            ExprKind::Unary(_, a)
            | ExprKind::Postfix(_, a)
            | ExprKind::Cast { expr: a, .. }
            | ExprKind::SizeofExpr(a) => self.walk_expr(a),
            ExprKind::Call { args, .. } => args.iter().for_each(|a| self.walk_expr(a)),
            ExprKind::Index { base, index } => {
                self.walk_expr(base);
                self.walk_expr(index);
            }
            ExprKind::Ternary { cond, then_expr, else_expr } => {
                self.walk_expr(cond);
                self.walk_expr(then_expr);
                self.walk_expr(else_expr);
            }
            ExprKind::Comma(a, b) => {
                self.walk_expr(a);
                self.walk_expr(b);
            }
            _ => {}
        }
    }
}

fn expr_is_floatish(e: &Expr) -> bool {
    match &e.kind {
        ExprKind::FloatLit(..) => true,
        ExprKind::Binary(_, l, r) => expr_is_floatish(l) || expr_is_floatish(r),
        ExprKind::Unary(_, a) => expr_is_floatish(a),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slade_minic::{Interpreter, Value};

    fn check_runs(header: &str, hypothesis: &str, func: &str, args: &[Value]) -> i64 {
        let full = format!("{header}\n{hypothesis}");
        let p = parse_program(&full).unwrap_or_else(|e| panic!("{e}\n{full}"));
        let mut i = Interpreter::new(&p).unwrap_or_else(|e| panic!("{e}\n{full}"));
        i.call(func, args).unwrap().ret.unwrap().as_i64()
    }

    #[test]
    fn infers_scalar_typedef() {
        let hyp = "my_int twice(my_int x) { return x + x; }";
        let header = infer_missing_types(hyp, "").unwrap();
        assert!(header.contains("typedef int my_int;"), "{header}");
        assert_eq!(check_runs(&header, hyp, "twice", &[Value::int(21)]), 42);
    }

    #[test]
    fn infers_float_scalar_from_usage() {
        let hyp = "real scale(real x) { return x * 1.5; }";
        let header = infer_missing_types(hyp, "").unwrap();
        assert!(header.contains("typedef double real;"), "{header}");
    }

    #[test]
    fn infers_struct_fields_from_member_access() {
        // The paper's clock_add failure case shape: unknown struct pointer.
        let hyp = r#"
            void clock_add(struct clock *ev, double d) {
                if (ev) { ev->constev += 1; ev->constsp++; }
            }
        "#;
        let header = infer_missing_types(hyp, "").unwrap();
        assert!(header.contains("struct clock"), "{header}");
        assert!(header.contains("constev"), "{header}");
        assert!(header.contains("constsp"), "{header}");
        let full = format!("{header}\n{hyp}");
        assert!(parse_program(&full).and_then(|p| Sema::check(&p).map(|_| ())).is_ok());
    }

    #[test]
    fn infers_typedeffed_struct() {
        let hyp = "int get_x(SClock *c) { return c->seqno; }";
        let header = infer_missing_types(hyp, "").unwrap();
        assert!(header.contains("typedef struct"), "{header}");
        assert!(header.contains("seqno"), "{header}");
    }

    #[test]
    fn respects_context_definitions() {
        let ctx = "typedef long my_int;";
        let hyp = "my_int id(my_int x) { return x; }";
        let header = infer_missing_types(hyp, ctx).unwrap();
        assert!(header.is_empty(), "context already defines it: {header}");
    }

    #[test]
    fn fails_on_unparseable_garbage() {
        assert!(infer_missing_types("int f( {", "").is_err());
    }

    #[test]
    fn pointer_typedefs_survive_indexing() {
        let hyp = "int first(vec_t *v) { return v[0].len; }";
        let header = infer_missing_types(hyp, "").unwrap();
        let full = format!("{header}\n{hyp}");
        assert!(
            parse_program(&full).and_then(|p| Sema::check(&p).map(|_| ())).is_ok(),
            "{full}"
        );
    }
}
