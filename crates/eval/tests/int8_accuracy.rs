//! Eval-accuracy gate for the int8 weight backend: quantizing the decode
//! path must not regress IO-correctness on the seed eval set.
//!
//! This is the end-to-end acceptance test of the quantization scheme —
//! the per-kernel error-bound property tests (`slade_nn`) say each matmul
//! stays close to f32; this says the *composition* (every projection of
//! every layer of every decode step, through beam search, type inference,
//! and the IO harness) still selects compiling/correct hypotheses.

use slade::{Backend, TrainProfile};
use slade_compiler::{Isa, OptLevel};
use slade_dataset::{generate_exebench_eval, generate_train, DatasetProfile};
use slade_eval::{evaluate, Tool, ToolContext};
use std::sync::Arc;

#[test]
fn int8_backend_does_not_regress_eval_accuracy() {
    let data = DatasetProfile::tiny();
    let train = generate_train(data, 42);
    let eval_items = generate_exebench_eval(data, 42, &train);
    let mut ctx =
        ToolContext::train(&train, Isa::X86_64, OptLevel::O0, TrainProfile::tiny(), 42);
    assert_eq!(ctx.slade.backend(), Backend::F32);

    let f32_records = evaluate(&ctx, &eval_items, &[Tool::Slade]);
    assert!(!f32_records.is_empty());
    let f32_correct = f32_records.iter().filter(|r| r.correct).count();
    let f32_compiles = f32_records.iter().filter(|r| r.compiles).count();

    // Same trained weights, int8 decode path.
    let mut quantized = (*ctx.slade).clone();
    quantized.set_backend(Backend::Int8);
    ctx.slade = Arc::new(quantized);
    assert_eq!(ctx.slade.backend(), Backend::Int8);

    let int8_records = evaluate(&ctx, &eval_items, &[Tool::Slade]);
    assert_eq!(int8_records.len(), f32_records.len());
    let int8_correct = int8_records.iter().filter(|r| r.correct).count();
    let int8_compiles = int8_records.iter().filter(|r| r.compiles).count();

    assert!(
        int8_correct >= f32_correct,
        "int8 regressed IO-correctness: {int8_correct} < {f32_correct} (of {})",
        f32_records.len()
    );
    assert!(
        int8_compiles >= f32_compiles,
        "int8 regressed compile rate: {int8_compiles} < {f32_compiles} (of {})",
        f32_records.len()
    );
}
