//! Regenerators for every table and figure in the paper's evaluation.
//!
//! Each `figN_*` function returns the printed report as a `String` (also
//! suitable for EXPERIMENTS.md) so the bench harness, the `figures` binary
//! and the tests share one implementation. Paper values are embedded for
//! side-by-side comparison; at reproduction scale the *shape* (orderings,
//! collapse points) is the claim, not the absolute numbers.

use crate::metrics::pearson;
use crate::tools::{evaluate, summarize, EvalRecord, Tool, ToolContext};
use slade::TrainProfile;
use slade_compiler::{Isa, OptLevel};
use slade_dataset::{
    generate_exebench_eval, generate_synth, generate_train, DatasetItem, DatasetProfile,
    SYNTH_CATEGORIES,
};
use std::fmt::Write;

/// Everything needed to reproduce the evaluation: trained tool contexts for
/// all four ISA × opt configurations plus the eval sets.
pub struct Reproduction {
    /// Tool contexts in the order (x86 O0, x86 O3, ARM O0, ARM O3).
    pub contexts: Vec<ToolContext>,
    /// Held-out ExeBench-like items.
    pub exebench: Vec<DatasetItem>,
    /// Synth suite items.
    pub synth: Vec<DatasetItem>,
}

/// The four evaluated configurations, in paper order.
pub const CONFIGS: [(Isa, OptLevel); 4] = [
    (Isa::X86_64, OptLevel::O0),
    (Isa::X86_64, OptLevel::O3),
    (Isa::Arm64, OptLevel::O0),
    (Isa::Arm64, OptLevel::O3),
];

impl Reproduction {
    /// Generates datasets and trains the four configurations. This is the
    /// expensive step (minutes at the default profile on one core); reuse
    /// the value across figures.
    pub fn build(data: DatasetProfile, train_profile: TrainProfile, seed: u64) -> Self {
        let train = generate_train(data, seed);
        let exebench = generate_exebench_eval(data, seed, &train);
        let synth = generate_synth(data, seed, &train);
        let contexts = CONFIGS
            .iter()
            .map(|&(isa, opt)| ToolContext::train(&train, isa, opt, train_profile, seed))
            .collect();
        Reproduction { contexts, exebench, synth }
    }

    /// The context for a configuration.
    pub fn context(&self, isa: Isa, opt: OptLevel) -> &ToolContext {
        self.contexts
            .iter()
            .find(|c| c.isa == isa && c.opt == opt)
            .expect("all four configs built")
    }

    /// Routes every figure's neural decode pass through `threads` worker
    /// shards (`slade_serve`); `1` restores in-thread decoding. Figure
    /// numbers are identical either way — only wall-clock changes.
    pub fn set_threads(&mut self, threads: usize) {
        for ctx in &mut self.contexts {
            ctx.threads = threads.max(1);
        }
    }
}

fn tools_for(isa: Isa, opt: OptLevel, include_ablation: bool) -> Vec<Tool> {
    let mut tools = Vec::new();
    if isa == Isa::X86_64 && opt == OptLevel::O0 {
        tools.push(Tool::Btc);
    }
    tools.push(Tool::ChatGpt);
    tools.push(Tool::Ghidra);
    tools.push(Tool::Slade);
    if include_ablation {
        tools.push(Tool::SladeNoTypes);
    }
    tools
}

fn bars(
    out: &mut String,
    title: &str,
    records: &[EvalRecord],
    tools: &[Tool],
    paper: &[(&str, f64, f64)],
) {
    let _ = writeln!(out, "== {title} ==");
    let _ = writeln!(
        out,
        "{:<18} {:>12} {:>12} {:>14} {:>14}",
        "tool", "IO acc %", "edit sim %", "paper IO %", "paper sim %"
    );
    for &tool in tools {
        let (acc, sim) = summarize(records, tool);
        let (pacc, psim) = paper
            .iter()
            .find(|(name, ..)| *name == tool.label())
            .map(|(_, a, s)| (*a, *s))
            .unwrap_or((f64::NAN, f64::NAN));
        let _ = writeln!(
            out,
            "{:<18} {:>12.1} {:>12.1} {:>14.1} {:>14.1}",
            tool.label(),
            acc,
            sim,
            pacc,
            psim
        );
    }
}

/// Figure 4: ExeBench x86, `-O0` and `-O3`.
pub fn fig4(repro: &Reproduction) -> String {
    let mut out = String::new();
    let paper_o0: &[(&str, f64, f64)] = &[
        ("BTC", 0.0, 40.0),
        ("ChatGPT", 22.2, 44.0),
        ("Ghidra", 50.8, 43.0),
        ("SLaDe", 59.5, 71.0),
    ];
    let paper_o3: &[(&str, f64, f64)] =
        &[("ChatGPT", 13.6, 34.0), ("Ghidra", 17.6, 32.0), ("SLaDe", 52.2, 60.0)];
    for (opt, paper) in [(OptLevel::O0, paper_o0), (OptLevel::O3, paper_o3)] {
        let ctx = repro.context(Isa::X86_64, opt);
        let tools = tools_for(Isa::X86_64, opt, false);
        let records = evaluate(ctx, &repro.exebench, &tools);
        bars(&mut out, &format!("Fig 4: ExeBench x86 {opt}"), &records, &tools, paper);
    }
    out
}

/// Figure 5: ExeBench ARM, `-O0` and `-O3`.
pub fn fig5(repro: &Reproduction) -> String {
    let mut out = String::new();
    let paper_o0: &[(&str, f64, f64)] =
        &[("ChatGPT", 17.4, 40.0), ("Ghidra", 23.4, 37.0), ("SLaDe", 52.7, 61.0)];
    let paper_o3: &[(&str, f64, f64)] =
        &[("ChatGPT", 15.7, 31.0), ("Ghidra", 7.3, 27.0), ("SLaDe", 46.2, 55.0)];
    for (opt, paper) in [(OptLevel::O0, paper_o0), (OptLevel::O3, paper_o3)] {
        let ctx = repro.context(Isa::Arm64, opt);
        let tools = tools_for(Isa::Arm64, opt, false);
        let records = evaluate(ctx, &repro.exebench, &tools);
        bars(&mut out, &format!("Fig 5: ExeBench ARM {opt}"), &records, &tools, paper);
    }
    out
}

/// Figure 6: Synth `-O0`, x86 and ARM.
pub fn fig6(repro: &Reproduction) -> String {
    let mut out = String::new();
    let paper_x86: &[(&str, f64, f64)] = &[
        ("BTC", 0.0, 44.0),
        ("ChatGPT", 46.4, 66.0),
        ("Ghidra", 88.4, 32.0),
        ("SLaDe", 83.9, 74.0),
    ];
    let paper_arm: &[(&str, f64, f64)] =
        &[("ChatGPT", 39.3, 63.0), ("Ghidra", 91.1, 32.0), ("SLaDe", 77.7, 69.0)];
    for (isa, paper) in [(Isa::X86_64, paper_x86), (Isa::Arm64, paper_arm)] {
        let ctx = repro.context(isa, OptLevel::O0);
        let tools = tools_for(isa, OptLevel::O0, false);
        let records = evaluate(ctx, &repro.synth, &tools);
        bars(&mut out, &format!("Fig 6: Synth O0 {isa}"), &records, &tools, paper);
    }
    out
}

/// Figure 7: Synth `-O3`, x86 and ARM.
pub fn fig7(repro: &Reproduction) -> String {
    let mut out = String::new();
    let paper_x86: &[(&str, f64, f64)] =
        &[("ChatGPT", 12.5, 33.0), ("Ghidra", 44.6, 19.0), ("SLaDe", 52.7, 55.0)];
    let paper_arm: &[(&str, f64, f64)] =
        &[("ChatGPT", 12.5, 30.0), ("Ghidra", 24.1, 16.0), ("SLaDe", 53.6, 59.0)];
    for (isa, paper) in [(Isa::X86_64, paper_x86), (Isa::Arm64, paper_arm)] {
        let ctx = repro.context(isa, OptLevel::O3);
        let tools = tools_for(isa, OptLevel::O3, false);
        let records = evaluate(ctx, &repro.synth, &tools);
        bars(&mut out, &format!("Fig 7: Synth O3 {isa}"), &records, &tools, paper);
    }
    out
}

/// Figure 8: IO accuracy vs assembly length (ExeBench x86 -O0), bucketed.
pub fn fig8(repro: &Reproduction) -> String {
    let ctx = repro.context(Isa::X86_64, OptLevel::O0);
    let tools = [Tool::ChatGpt, Tool::Ghidra, Tool::Slade];
    let records = evaluate(ctx, &repro.exebench, &tools);
    let mut out = String::new();
    let _ = writeln!(out, "== Fig 8: IO accuracy vs assembly length (x86 O0) ==");
    let max_len = records.iter().map(|r| r.asm_chars).max().unwrap_or(1);
    let buckets = 4usize;
    let _ = writeln!(out, "{:<18} accuracy per length quartile (short → long)", "tool");
    for tool in tools {
        let mut row = format!("{:<18}", tool.label());
        for b in 0..buckets {
            let lo = max_len * b / buckets;
            let hi = max_len * (b + 1) / buckets;
            let in_bucket: Vec<&EvalRecord> = records
                .iter()
                .filter(|r| r.tool == tool && r.asm_chars > lo && r.asm_chars <= hi)
                .collect();
            if in_bucket.is_empty() {
                row.push_str("     -  ");
            } else {
                let acc = 100.0 * in_bucket.iter().filter(|r| r.correct).count() as f64
                    / in_bucket.len() as f64;
                row.push_str(&format!(" {acc:>6.1} "));
            }
        }
        let _ = writeln!(out, "{row}");
    }
    let _ =
        writeln!(out, "paper shape: all tools decline with length; neural decline steeper.");
    out
}

/// Figure 9: distribution of assembly lengths (character counts).
pub fn fig9(repro: &Reproduction) -> String {
    let ctx = repro.context(Isa::X86_64, OptLevel::O0);
    let opts = slade_compiler::CompileOpts::new(ctx.isa, ctx.opt);
    let mut lens: Vec<usize> = repro
        .exebench
        .iter()
        .filter_map(|item| {
            let p = slade_minic::parse_program(&item.full_src()).ok()?;
            slade_compiler::compile_function(&p, &item.name, opts).ok().map(|a| a.len())
        })
        .collect();
    lens.sort_unstable();
    let mut out = String::new();
    let _ = writeln!(out, "== Fig 9: assembly length distribution (chars, x86 O0) ==");
    if lens.is_empty() {
        return out;
    }
    let max = *lens.last().unwrap();
    let buckets = 8usize;
    for b in 0..buckets {
        let lo = max * b / buckets;
        let hi = max * (b + 1) / buckets;
        let n = lens.iter().filter(|&&l| l > lo && l <= hi).count();
        let _ = writeln!(out, "{:>6}-{:<6} {:>4} {}", lo, hi, n, "#".repeat(n.min(60)));
    }
    let median = lens[lens.len() / 2];
    let _ =
        writeln!(out, "median {median} chars — paper shape: strong bias to short functions.");
    out
}

/// Figure 10: type-inference ablation across all eight suite × config cells.
pub fn fig10(repro: &Reproduction) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== Fig 10: SLaDe with vs without type inference ==");
    let _ = writeln!(out, "{:<22} {:>12} {:>16}", "configuration", "SLaDe %", "w/out types %");
    for (suite_name, items) in [("Synth", &repro.synth), ("Exe", &repro.exebench)] {
        for &(isa, opt) in &CONFIGS {
            let ctx = repro.context(isa, opt);
            let records = evaluate(ctx, items, &[Tool::Slade, Tool::SladeNoTypes]);
            let (with, _) = summarize(&records, Tool::Slade);
            let (without, _) = summarize(&records, Tool::SladeNoTypes);
            let _ = writeln!(
                out,
                "{:<22} {:>12.1} {:>16.1}",
                format!("{suite_name}-{opt}-{isa}"),
                with,
                without
            );
        }
    }
    let _ = writeln!(out, "paper shape: type inference adds ~14% on average (never hurts).");
    out
}

/// Figure 11: per-category IO accuracy on Synth `-O3` for both ISAs.
pub fn fig11(repro: &Reproduction) -> String {
    let mut out = String::new();
    for isa in [Isa::X86_64, Isa::Arm64] {
        let ctx = repro.context(isa, OptLevel::O3);
        let tools = [Tool::ChatGpt, Tool::Ghidra, Tool::Slade];
        let records = evaluate(ctx, &repro.synth, &tools);
        let _ = writeln!(out, "== Fig 11: Synth O3 {isa} per-category IO accuracy ==");
        let _ = write!(out, "{:<14}", "category");
        for t in tools {
            let _ = write!(out, "{:>12}", t.label());
        }
        let _ = writeln!(out);
        for cat in SYNTH_CATEGORIES {
            let _ = write!(out, "{:<14}", format!("{cat:?}"));
            for tool in tools {
                let cat_recs: Vec<&EvalRecord> =
                    records.iter().filter(|r| r.tool == tool && r.category == cat).collect();
                if cat_recs.is_empty() {
                    let _ = write!(out, "{:>12}", "-");
                } else {
                    let acc = 100.0 * cat_recs.iter().filter(|r| r.correct).count() as f64
                        / cat_recs.len() as f64;
                    let _ = write!(out, "{acc:>12.1}");
                }
            }
            let _ = writeln!(out);
        }
    }
    let _ = writeln!(out, "paper shape: simpl_int easiest, Sketchadapt hardest for SLaDe.");
    out
}

/// Table I: Pearson correlation of features vs IO accuracy.
pub fn table1(repro: &Reproduction) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== Table I: Pearson correlation of features vs IO accuracy ==");
    for &(isa, opt) in &CONFIGS {
        let ctx = repro.context(isa, opt);
        let tools = [Tool::ChatGpt, Tool::Ghidra, Tool::Slade];
        let records = evaluate(ctx, &repro.exebench, &tools);
        let _ = writeln!(out, "-- {isa} {opt} --");
        let _ = writeln!(
            out,
            "{:<16} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
            "tool", "compiles", "edit sim", "asm len", "C len", "#args", "#ptrs"
        );
        for tool in tools {
            let recs: Vec<&EvalRecord> = records.iter().filter(|r| r.tool == tool).collect();
            let correct: Vec<f64> = recs.iter().map(|r| r.correct as u8 as f64).collect();
            let series = [
                recs.iter().map(|r| r.compiles as u8 as f64).collect::<Vec<f64>>(),
                recs.iter().map(|r| r.edit_sim.unwrap_or(0.0)).collect(),
                recs.iter().map(|r| r.asm_chars as f64).collect(),
                recs.iter().map(|r| r.c_chars as f64).collect(),
                recs.iter().map(|r| r.num_args as f64).collect(),
                recs.iter().map(|r| r.num_pointers as f64).collect(),
            ];
            let _ = write!(out, "{:<16}", tool.label());
            for s in &series {
                let _ = write!(out, " {:>10.2}", pearson(s, &correct));
            }
            let _ = writeln!(out);
        }
    }
    let _ = writeln!(
        out,
        "paper shape: compiles correlates strongly (weakest for ChatGPT); edit sim correlates for neural tools; lengths correlate negatively."
    );
    out
}

/// Runs every figure and table, returning the combined report.
pub fn run_all(repro: &Reproduction) -> String {
    let mut out = String::new();
    for (name, text) in [
        ("fig4", fig4(repro)),
        ("fig5", fig5(repro)),
        ("fig6", fig6(repro)),
        ("fig7", fig7(repro)),
        ("fig8", fig8(repro)),
        ("fig9", fig9(repro)),
        ("fig10", fig10(repro)),
        ("fig11", fig11(repro)),
        ("table1", table1(repro)),
    ] {
        let _ = writeln!(out, "\n#### {name} ####");
        out.push_str(&text);
    }
    out
}
