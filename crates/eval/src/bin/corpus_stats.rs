//! Prints token-length statistics of the generated corpus under the
//! paper's tokenizer — the token-level companion to Fig. 9's character
//! histogram, and the tool for choosing `max_src_len`/`max_tgt_len`
//! (pairs over the caps are skipped by training, so caps below the
//! distribution's bulk silently starve the model).
//!
//! Usage: `cargo run -p slade-eval --bin corpus_stats --release [-- N]`

use slade::{make_pairs, normalize_asm};
use slade_compiler::{Isa, OptLevel};
use slade_dataset::{generate_train, DatasetProfile};
use slade_tokenizer::UnigramTokenizer;

fn percentiles(mut lens: Vec<usize>) -> String {
    if lens.is_empty() {
        return "no data".to_string();
    }
    lens.sort_unstable();
    let pct = |p: usize| lens[(lens.len() - 1) * p / 100];
    format!(
        "min {:>4}  p25 {:>4}  p50 {:>4}  p75 {:>4}  p90 {:>4}  p99 {:>4}  max {:>4}",
        lens[0],
        pct(25),
        pct(50),
        pct(75),
        pct(90),
        pct(99),
        lens[lens.len() - 1]
    )
}

fn main() {
    let n: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(260);
    let data = DatasetProfile { train: n, exebench_eval: 0, synth_per_category: 0 };
    let items = generate_train(data, 2024);
    println!("{} generated items", items.len());
    for (isa, opt) in [
        (Isa::X86_64, OptLevel::O0),
        (Isa::X86_64, OptLevel::O3),
        (Isa::Arm64, OptLevel::O0),
        (Isa::Arm64, OptLevel::O3),
    ] {
        let pairs = make_pairs(&items, isa, opt);
        let mut corpus = Vec::new();
        for (a, c) in &pairs {
            corpus.push(normalize_asm(a));
            corpus.push(c.clone());
        }
        let tok = UnigramTokenizer::train(&corpus, 300);
        let raw_lens: Vec<usize> = pairs.iter().map(|(a, _)| tok.encode(a).len()).collect();
        let asm_lens: Vec<usize> =
            pairs.iter().map(|(a, _)| tok.encode(&normalize_asm(a)).len()).collect();
        let c_lens: Vec<usize> = pairs.iter().map(|(_, c)| tok.encode(c).len()).collect();
        println!("-- {isa} {opt} ({} pairs, vocab {}) --", pairs.len(), tok.vocab_size());
        println!("   asm tokens (raw):        {}", percentiles(raw_lens));
        println!("   asm tokens (normalized): {}", percentiles(asm_lens));
        println!("   C   tokens: {}", percentiles(c_lens));
    }
}
