//! Regenerates every figure and table from the paper's evaluation, and —
//! with `ablations` — the ablation/extension suite.
//!
//! Usage:
//! `cargo run -p slade-eval --bin figures --release [-- tiny|default]
//! [ablations] [--threads N]`
//!
//! `--threads N` routes every neural decode pass through the
//! `slade_serve` worker pool with `N` shards (default 1: in-thread
//! decode, fully deterministic by construction; figure numbers are
//! identical either way — the pool is property-tested element-wise
//! equivalent).

use slade::TrainProfile;
use slade_dataset::DatasetProfile;
use slade_eval::ablations::{run_all_ablations, AblationSetup};
use slade_eval::figures::{run_all, Reproduction};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let profile_arg = if args.iter().any(|a| a == "tiny") { "tiny" } else { "default" };
    let want_ablations = args.iter().any(|a| a == "ablations");
    let threads = args
        .iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(1)
        .max(1);
    let (data, train) = match profile_arg {
        "tiny" => (DatasetProfile::tiny(), TrainProfile::tiny()),
        _ => (DatasetProfile::default_profile(), TrainProfile::default_profile()),
    };
    let start = std::time::Instant::now();
    if want_ablations {
        eprintln!("running ablation suite (profile: {profile_arg}, threads: {threads})...");
        let setup = AblationSetup::build(data, train, 2024).with_threads(threads);
        println!("{}", run_all_ablations(&setup));
    } else {
        eprintln!(
            "building reproduction (profile: {profile_arg}, threads: {threads}) — training 4 configurations..."
        );
        let mut repro = Reproduction::build(data, train, 2024);
        repro.set_threads(threads);
        eprintln!("training done in {:.1}s; evaluating...", start.elapsed().as_secs_f64());
        println!("{}", run_all(&repro));
    }
}
