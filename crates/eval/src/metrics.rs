//! Evaluation metrics: edit distance/similarity (§III-A.b) and Pearson
//! correlation (Table I).

/// Levenshtein edit distance between two character sequences, computed with
/// the classic dynamic program from the paper's Figure 3.
pub fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// Normalizes whitespace so formatting differences don't dominate the
/// comparison (the paper normalizes sequences before edit distance).
pub fn normalize_ws(s: &str) -> String {
    s.split_whitespace().collect::<Vec<_>>().join(" ")
}

/// Edit similarity: `1 − distance / len(ground truth)`, clamped to `[0, 1]`
/// (§III-A.b: normalized to the ground-truth length so higher = more
/// readable).
pub fn edit_similarity(hypothesis: &str, ground_truth: &str) -> f64 {
    let h = normalize_ws(hypothesis);
    let g = normalize_ws(ground_truth);
    if g.is_empty() {
        return if h.is_empty() { 1.0 } else { 0.0 };
    }
    let d = edit_distance(&h, &g) as f64;
    (1.0 - d / g.chars().count() as f64).max(0.0)
}

/// Pearson's correlation coefficient between two equally-long series
/// (Table I). Returns 0 for degenerate series.
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    let n = xs.len().min(ys.len());
    if n < 2 {
        return 0.0;
    }
    let mx = xs[..n].iter().sum::<f64>() / n as f64;
    let my = ys[..n].iter().sum::<f64>() / n as f64;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for i in 0..n {
        let dx = xs[i] - mx;
        let dy = ys[i] - my;
        cov += dx * dy;
        vx += dx * dx;
        vy += dy * dy;
    }
    if vx == 0.0 || vy == 0.0 {
        0.0
    } else {
        cov / (vx.sqrt() * vy.sqrt())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_basics() {
        assert_eq!(edit_distance("", ""), 0);
        assert_eq!(edit_distance("abc", "abc"), 0);
        assert_eq!(edit_distance("abc", "axc"), 1);
        assert_eq!(edit_distance("abc", ""), 3);
        assert_eq!(edit_distance("kitten", "sitting"), 3);
    }

    #[test]
    fn similarity_is_one_for_identical_modulo_whitespace() {
        let a = "int f(int x) { return x; }";
        let b = "int f(int x)\n{\n  return x;\n}";
        assert!((edit_similarity(a, b) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn similarity_clamps_at_zero() {
        assert_eq!(edit_similarity(&"x".repeat(500), "ab"), 0.0);
    }

    #[test]
    fn pearson_signs() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let up = [2.0, 4.0, 6.0, 8.0];
        let down = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&xs, &up) - 1.0).abs() < 1e-9);
        assert!((pearson(&xs, &down) + 1.0).abs() < 1e-9);
        assert_eq!(pearson(&xs, &[5.0, 5.0, 5.0, 5.0]), 0.0);
    }

    /// Property: distance is symmetric and satisfies the triangle
    /// inequality on small random strings.
    #[test]
    fn distance_metric_properties() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(9);
        for _ in 0..50 {
            let mk = |rng: &mut rand_chacha::ChaCha8Rng| -> String {
                (0..rng.gen_range(0..8))
                    .map(|_| if rng.gen_bool(0.5) { 'a' } else { 'b' })
                    .collect()
            };
            let a = mk(&mut rng);
            let b = mk(&mut rng);
            let c = mk(&mut rng);
            assert_eq!(edit_distance(&a, &b), edit_distance(&b, &a));
            assert!(edit_distance(&a, &c) <= edit_distance(&a, &b) + edit_distance(&b, &c));
        }
    }
}
