//! Evaluation harness for the SLaDe reproduction: metrics, IO-equivalence
//! testing, tool dispatch, and regenerators for every figure and table in
//! the paper's evaluation (Figures 4–11 and Table I).
//!
//! Entry points:
//! - [`harness::judge`] — IO-equivalence verdict for one hypothesis;
//! - [`tools::evaluate`] — run a set of decompilers over a dataset;
//! - [`figures::Reproduction::build`] + [`figures::run_all`] — regenerate
//!   the whole evaluation (also exposed as the `figures` binary and the
//!   `figures` bench target).
//!
//! # Example
//!
//! ```no_run
//! use slade_eval::figures::{run_all, Reproduction};
//! use slade::TrainProfile;
//! use slade_dataset::DatasetProfile;
//!
//! let repro = Reproduction::build(DatasetProfile::tiny(), TrainProfile::tiny(), 0);
//! println!("{}", run_all(&repro));
//! ```

#![warn(missing_docs)]

pub mod ablations;
pub mod figures;
pub mod harness;
pub mod metrics;
pub mod tools;

pub use ablations::{run_all_ablations, AblationSetup};
pub use harness::{judge, observe, reference_observations, CallObservation, Verdict};
pub use metrics::{edit_distance, edit_similarity, pearson};
pub use tools::{evaluate, summarize, EvalRecord, Tool, ToolContext};

#[cfg(test)]
mod tests {
    use super::*;
    use slade::TrainProfile;
    use slade_compiler::{Isa, OptLevel};
    use slade_dataset::{generate_exebench_eval, generate_train, DatasetProfile};

    /// End-to-end smoke test: train a tiny SLaDe, evaluate all tools on a
    /// tiny held-out set, and sanity-check the structural expectations that
    /// do not depend on model quality.
    #[test]
    fn tiny_end_to_end_evaluation() {
        let data = DatasetProfile::tiny();
        let train = generate_train(data, 42);
        let eval_items = generate_exebench_eval(data, 42, &train);
        let ctx = tools::ToolContext::train(
            &train,
            Isa::X86_64,
            OptLevel::O0,
            TrainProfile::tiny(),
            42,
        );
        let records =
            evaluate(&ctx, &eval_items, &[Tool::Slade, Tool::Ghidra, Tool::ChatGpt, Tool::Btc]);
        assert!(!records.is_empty());
        // Ghidra at O0 on simple items should mostly lift & compile.
        let ghidra: Vec<&EvalRecord> =
            records.iter().filter(|r| r.tool == Tool::Ghidra).collect();
        let compiled = ghidra.iter().filter(|r| r.compiles).count();
        assert!(
            compiled * 2 >= ghidra.len(),
            "lifter compiled only {compiled}/{}",
            ghidra.len()
        );
        // Every record carries features for Table I.
        assert!(records.iter().all(|r| r.asm_chars > 0 && r.c_chars > 0));
    }

    #[test]
    fn threaded_evaluation_matches_single_threaded() {
        let data = DatasetProfile::tiny();
        let train = generate_train(data, 21);
        let eval_items = generate_exebench_eval(data, 21, &train);
        let ctx = tools::ToolContext::train(
            &train,
            Isa::X86_64,
            OptLevel::O0,
            TrainProfile::tiny(),
            21,
        );
        let tools_run = [Tool::Slade, Tool::SladeNoTypes];
        let sequential = evaluate(&ctx, &eval_items, &tools_run);
        let threaded = evaluate(&ctx.with_threads(3), &eval_items, &tools_run);
        assert_eq!(sequential.len(), threaded.len());
        for (a, b) in sequential.iter().zip(&threaded) {
            assert_eq!(a.item, b.item);
            assert_eq!(a.compiles, b.compiles, "{}", a.item);
            assert_eq!(a.correct, b.correct, "{}", a.item);
            assert_eq!(a.edit_sim, b.edit_sim, "{}", a.item);
        }
    }

    #[test]
    fn summarize_is_percentage_bounded() {
        let data = DatasetProfile::tiny();
        let train = generate_train(data, 7);
        let ctx = tools::ToolContext::train(
            &train,
            Isa::X86_64,
            OptLevel::O0,
            TrainProfile::tiny(),
            7,
        );
        let eval_items = generate_exebench_eval(data, 7, &train);
        let records = evaluate(&ctx, &eval_items, &[Tool::Ghidra]);
        let (acc, sim) = summarize(&records, Tool::Ghidra);
        assert!((0.0..=100.0).contains(&acc));
        assert!((0.0..=100.0).contains(&sim));
    }
}
