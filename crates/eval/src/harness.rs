//! IO-equivalence harness (§III-A.a).
//!
//! A decompilation hypothesis is inserted into the *original calling
//! context* (the paper's methodology for every tool), compiled (parsed +
//! type-checked), and executed on the item's concrete inputs. It is IO
//! accurate when every input produces the same return value and the same
//! visible memory effects (output buffers) as the ground truth, with
//! non-termination treated as non-equivalence.

use slade_dataset::{ArgSpec, DatasetItem};
use slade_minic::{parse_program, Interpreter, RunLimits, Value};

/// Observable outcome of one call: normalized return value plus the bytes
/// of every pointer argument after the call.
#[derive(Debug, Clone, PartialEq)]
pub struct CallObservation {
    /// Return value bits (f64-normalized for floats), `None` for void or
    /// runtime error.
    pub ret: Option<i64>,
    /// Float return (compared with tolerance).
    pub fret: Option<f64>,
    /// Post-call contents of each buffer argument.
    pub buffers: Vec<Vec<u8>>,
}

/// Verdict for one hypothesis against one item.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Verdict {
    /// Parsed and type-checked in context.
    pub compiles: bool,
    /// All IO examples matched.
    pub correct: bool,
}

/// Executes `func` from `program_src` on `inputs`, returning one
/// observation per input.
///
/// # Errors
///
/// Returns a string description on parse/type errors (compile failure) —
/// runtime faults on *individual* inputs are folded into the observation.
pub fn observe(
    program_src: &str,
    func: &str,
    inputs: &[Vec<ArgSpec>],
) -> Result<Vec<Option<CallObservation>>, String> {
    let program = parse_program(program_src).map_err(|e| e.to_string())?;
    if program.function(func).and_then(|f| f.body.as_ref()).is_none() {
        return Err(format!("function `{func}` not defined"));
    }
    let mut out = Vec::new();
    for input in inputs {
        // Fresh interpreter per input so globals reset between examples.
        let mut interp = match Interpreter::with_limits(
            &program,
            RunLimits { fuel: 2_000_000, max_depth: 128 },
        ) {
            Ok(i) => i,
            Err(e) => return Err(e.to_string()),
        };
        let mut args = Vec::new();
        let mut bufs = Vec::new();
        for spec in input {
            match spec {
                ArgSpec::Int(v) => args.push(Value::long(*v)),
                ArgSpec::F64(v) => args.push(Value::F64(*v)),
                ArgSpec::IntBuf(vs) => {
                    let bytes: Vec<u8> = vs.iter().flat_map(|v| v.to_le_bytes()).collect();
                    let p = interp.alloc_buffer(&bytes);
                    bufs.push((p, bytes.len()));
                    args.push(Value::Ptr(p));
                }
                ArgSpec::F64Buf(vs) => {
                    let bytes: Vec<u8> = vs.iter().flat_map(|v| v.to_le_bytes()).collect();
                    let p = interp.alloc_buffer(&bytes);
                    bufs.push((p, bytes.len()));
                    args.push(Value::Ptr(p));
                }
                ArgSpec::CharBuf(bs) => {
                    let mut bytes = bs.clone();
                    bytes.push(0);
                    let p = interp.alloc_buffer(&bytes);
                    bufs.push((p, bytes.len()));
                    args.push(Value::Ptr(p));
                }
            }
        }
        match interp.call(func, &args) {
            Ok(outcome) => {
                let (ret, fret) = match outcome.ret {
                    Some(Value::F32(v)) => (None, Some(v as f64)),
                    Some(Value::F64(v)) => (None, Some(v)),
                    Some(v) => (Some(v.as_i64()), None),
                    None => (None, None),
                };
                let buffers = bufs
                    .iter()
                    .map(|(p, len)| interp.read_buffer(*p, *len).unwrap_or_default())
                    .collect();
                out.push(Some(CallObservation { ret, fret, buffers }));
            }
            Err(_) => out.push(None),
        }
    }
    Ok(out)
}

fn observations_match(a: &CallObservation, b: &CallObservation) -> bool {
    // Integer returns compare on the low 32 bits when both fit (the
    // hypothesis may declare a wider return type, as lifters do).
    let ret_ok = match (a.ret, b.ret) {
        (Some(x), Some(y)) => x == y || (x as i32) == (y as i32),
        (None, None) => true,
        // One side void/errored, other valued: if the reference is void,
        // ignore the hypothesis's extra return value (lifters return
        // registers for void functions).
        (None, Some(_)) => true,
        (Some(_), None) => false,
    };
    let fret_ok = match (a.fret, b.fret) {
        (Some(x), Some(y)) => (x - y).abs() <= 1e-6 * x.abs().max(y.abs()).max(1.0),
        (None, None) => true,
        (None, Some(_)) => true,
        (Some(_), None) => false,
    };
    ret_ok && fret_ok && a.buffers == b.buffers
}

/// Reference observations for an item (ground truth in its own context).
///
/// # Errors
///
/// Propagates compile errors (should not happen for generated items).
pub fn reference_observations(
    item: &DatasetItem,
) -> Result<Vec<Option<CallObservation>>, String> {
    observe(&item.full_src(), &item.name, &item.inputs)
}

/// Judges one hypothesis: inserted into the item's context (plus an
/// optional inferred-type header), compiled and compared against the
/// reference on every input.
pub fn judge(
    item: &DatasetItem,
    reference: &[Option<CallObservation>],
    hypothesis: &str,
    header: &str,
) -> Verdict {
    let _timer = slade_obs::StageTimer::start(slade_obs::StageHist::Judge);
    let program_src = format!("{}\n{header}\n{hypothesis}", item.context_src);
    match observe(&program_src, &item.name, &item.inputs) {
        Err(_) => Verdict { compiles: false, correct: false },
        Ok(obs) => {
            let correct = !reference.is_empty()
                && reference.len() == obs.len()
                && reference.iter().zip(&obs).all(|(r, h)| match (r, h) {
                    (Some(r), Some(h)) => observations_match(r, h),
                    // Reference errored (rare): treat as unmatchable.
                    _ => false,
                });
            Verdict { compiles: true, correct }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slade_dataset::{generate_train, DatasetProfile};

    #[test]
    fn ground_truth_is_self_equivalent() {
        let items = generate_train(DatasetProfile::tiny(), 2);
        let mut checked = 0;
        for item in items.iter().take(8) {
            let refs = reference_observations(item).unwrap();
            let v = judge(item, &refs, &item.func_src, "");
            assert!(v.compiles && v.correct, "self-check failed for:\n{}", item.full_src());
            checked += 1;
        }
        assert!(checked > 0);
    }

    #[test]
    fn wrong_hypothesis_is_detected() {
        let items = generate_train(DatasetProfile::tiny(), 2);
        let item = items
            .iter()
            .find(|i| i.func_src.starts_with("int") && i.context_src.is_empty())
            .expect("an int item");
        let refs = reference_observations(item).unwrap();
        // A type-correct but semantically wrong function of the same arity.
        let arity = item.inputs[0].len();
        let params: Vec<String> = (0..arity).map(|i| format!("long p{i}")).collect();
        let wrong = format!("long {}({}) {{ return 123456; }}", item.name, params.join(", "));
        let v = judge(item, &refs, &wrong, "");
        assert!(v.compiles, "wrong-but-valid must compile");
        assert!(!v.correct, "must be caught by IO: {wrong}");
    }

    #[test]
    fn non_compiling_hypothesis_reports_compiles_false() {
        let items = generate_train(DatasetProfile::tiny(), 2);
        let refs = reference_observations(&items[0]).unwrap();
        let v = judge(&items[0], &refs, "int broken( { return; }", "");
        assert!(!v.compiles && !v.correct);
    }

    #[test]
    fn infinite_hypothesis_is_non_equivalent() {
        let items = generate_train(DatasetProfile::tiny(), 4);
        let item = items
            .iter()
            .find(|i| {
                i.context_src.is_empty()
                    && i.inputs[0].len() == 2
                    && matches!(i.inputs[0][0], ArgSpec::Int(_))
            })
            .expect("two-int item");
        let refs = reference_observations(item).unwrap();
        let hyp = format!("int {}(int a, int b) {{ while (1) {{ }} return 0; }}", item.name);
        let v = judge(item, &refs, &hyp, "");
        assert!(v.compiles && !v.correct);
    }
}
