//! Tool dispatch: runs every decompiler on a dataset and records the
//! per-item measurements behind all of the paper's figures and tables.

use crate::harness::{judge, reference_observations, Verdict};
use crate::metrics::edit_similarity;
use serde::{Deserialize, Serialize};
use slade::{make_pairs, normalize_asm, Slade, SladeBuilder, TrainProfile};
use slade_baselines::{ghidra_decompile, BtcBaseline, ChatGptSim};
use slade_compiler::{compile_function, CompileOpts, Isa, OptLevel};
use slade_dataset::{ArgSpec, DatasetItem};
use slade_minic::parse_program;
use slade_nn::{Seq2Seq, TransformerConfig};
use slade_serve::{ServeConfig, ServeRuntime};
use slade_tokenizer::{special, WordTokenizer};
use std::sync::Arc;

/// The decompilers under evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Tool {
    /// This paper's system.
    Slade,
    /// Ablation: SLaDe without the type-inference stage (Fig. 10).
    SladeNoTypes,
    /// Extension (paper §X): SLaDe with program repair on non-compiling
    /// beam candidates.
    SladeRepair,
    /// Extension (paper §X): analytic-first hybrid — the rule-based
    /// lifter's output is tried before the neural candidates, with the
    /// first IO-passing hypothesis selected.
    Hybrid,
    /// Rule-based industrial decompiler stand-in.
    Ghidra,
    /// Large-language-model stand-in.
    ChatGpt,
    /// Neural baseline (x86 `-O0` only, like the original).
    Btc,
}

impl Tool {
    /// Display name as used in the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            Tool::Slade => "SLaDe",
            Tool::SladeNoTypes => "SLaDe w/out Type",
            Tool::SladeRepair => "SLaDe+Repair",
            Tool::Hybrid => "Hybrid",
            Tool::Ghidra => "Ghidra",
            Tool::ChatGpt => "ChatGPT",
            Tool::Btc => "BTC",
        }
    }
}

/// One measurement: a tool on an item.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EvalRecord {
    /// The tool.
    pub tool: Tool,
    /// Item name.
    pub item: String,
    /// Item category.
    pub category: slade_dataset::Category,
    /// Whether the hypothesis compiled in context.
    pub compiles: bool,
    /// Whether it passed all IO examples.
    pub correct: bool,
    /// Edit similarity to the ground truth (None when no output produced).
    pub edit_sim: Option<f64>,
    /// Assembly length in characters (Fig. 8–9 feature).
    pub asm_chars: usize,
    /// Ground-truth C length in characters.
    pub c_chars: usize,
    /// Number of function arguments.
    pub num_args: usize,
    /// Number of pointer arguments.
    pub num_pointers: usize,
}

/// The trained models plus retrieval corpus for one ISA × opt configuration.
pub struct ToolContext {
    /// Target ISA.
    pub isa: Isa,
    /// Optimization level.
    pub opt: OptLevel,
    /// Trained SLaDe (shared so the serving runtime's shard workers can
    /// hold it without cloning the weights).
    pub slade: Arc<Slade>,
    /// ChatGPT simulator (retrieval corpus = training set).
    pub chatgpt: ChatGptSim,
    /// BTC baseline (only populated for x86 -O0, like the original tool).
    pub btc: Option<BtcBaseline>,
    /// Worker threads for the neural decode pass. `1` (the default) calls
    /// [`Slade::decompile_batch`] on the evaluating thread — the fully
    /// deterministic-by-construction path; `> 1` routes through the
    /// [`slade_serve`] worker pool, whose output is element-wise identical
    /// (property-tested) but uses OS threads.
    pub threads: usize,
}

impl ToolContext {
    /// Trains everything for one configuration.
    pub fn train(
        items: &[DatasetItem],
        isa: Isa,
        opt: OptLevel,
        profile: TrainProfile,
        seed: u64,
    ) -> Self {
        let slade = SladeBuilder::new(isa, opt).profile(profile).train(items, seed);
        let pairs = make_pairs(items, isa, opt);
        let chatgpt = ChatGptSim::new(&pairs);
        let btc = (isa == Isa::X86_64 && opt == OptLevel::O0)
            .then(|| train_btc(&pairs, profile, seed ^ 0xb7c));
        ToolContext { isa, opt, slade: Arc::new(slade), chatgpt, btc, threads: 1 }
    }

    /// Sets the neural-decode worker count (see the `threads` field).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    fn asm_isa(&self) -> slade_asm::Isa {
        match self.isa {
            Isa::X86_64 => slade_asm::Isa::X86_64,
            Isa::Arm64 => slade_asm::Isa::Arm64,
        }
    }
}

/// Trains the BTC-like baseline: same architecture, word-level tokenizer,
/// half the training epochs (it predates the paper's recipe).
fn train_btc(pairs: &[(String, String)], profile: TrainProfile, seed: u64) -> BtcBaseline {
    // Normalize once per pair; the corpus pass and every training epoch
    // below reuse the same strings.
    let pairs: Vec<(String, &String)> =
        pairs.iter().map(|(a, c)| (normalize_asm(a), c)).collect();
    let mut corpus = Vec::new();
    for (a, c) in &pairs {
        corpus.push(a.clone());
        corpus.push((*c).clone());
    }
    let tokenizer = WordTokenizer::train(&corpus, profile.vocab);
    let cfg = TransformerConfig {
        vocab: tokenizer.vocab_size(),
        d_model: profile.d_model,
        n_heads: profile.n_heads,
        d_ff: profile.d_ff,
        enc_layers: profile.layers,
        dec_layers: profile.layers,
        max_len: profile.max_src_len.max(profile.max_tgt_len) + 2,
        backend: Default::default(),
    };
    let mut model = Seq2Seq::new(cfg, seed);
    for _ in 0..profile.epochs.div_ceil(2) {
        let mut n = 0;
        model.zero_grads();
        for (asm, c) in &pairs {
            let src = tokenizer.encode(asm);
            let tgt = tokenizer.encode(c);
            if src.is_empty()
                || tgt.is_empty()
                || src.len() > profile.max_src_len
                || tgt.len() + 1 > profile.max_tgt_len
            {
                continue;
            }
            let mut dec = vec![special::BOS];
            dec.extend_from_slice(&tgt);
            let mut labels = tgt.clone();
            labels.push(special::EOS);
            model.train_pair(&src, &dec, &labels);
            n += 1;
            if n == profile.batch {
                model.adam_step(profile.lr, profile.weight_decay, 1.0 / n as f32);
                model.zero_grads();
                n = 0;
            }
        }
        if n > 0 {
            model.adam_step(profile.lr, profile.weight_decay, 1.0 / n as f32);
            model.zero_grads();
        }
    }
    BtcBaseline { model, tokenizer }
}

/// One evaluable item: compiled assembly plus reference observations.
struct EvalCase<'a> {
    idx: usize,
    item: &'a DatasetItem,
    asm: String,
    /// [`normalize_asm`] output, computed **once** here — every consumer
    /// (the neural tokenizer path, the serving runtime's cache key, the
    /// BTC baseline) sees provably the same string.
    norm_asm: String,
    reference: Vec<Option<crate::harness::CallObservation>>,
}

/// Evaluates `tools` on `items` under `ctx`'s configuration.
///
/// All SLaDe-family decompilations run as **one** batched engine pass
/// over every item — [`Slade::decompile_batch_normalized`] on the
/// evaluating thread, or the [`slade_serve`] worker pool when
/// `ctx.threads > 1` (identical output, property-tested). The per-item
/// work that remains is type inference, candidate judging, and the
/// non-neural baselines.
pub fn evaluate(ctx: &ToolContext, items: &[DatasetItem], tools: &[Tool]) -> Vec<EvalRecord> {
    let opts = CompileOpts::new(ctx.isa, ctx.opt);
    // Pre-pass: compile every item, normalize its assembly once, and
    // capture its reference behaviour.
    let cases: Vec<EvalCase> = items
        .iter()
        .enumerate()
        .filter_map(|(idx, item)| {
            let program = parse_program(&item.full_src()).ok()?;
            let asm = compile_function(&program, &item.name, opts).ok()?;
            let reference = reference_observations(item).ok()?;
            let norm_asm = normalize_asm(&asm);
            Some(EvalCase { idx, item, asm, norm_asm, reference })
        })
        .collect();
    // One batched decode for the whole corpus when any neural tool runs.
    let needs_neural = tools.iter().any(|t| {
        matches!(t, Tool::Slade | Tool::SladeNoTypes | Tool::SladeRepair | Tool::Hybrid)
    });
    let beams: Vec<Vec<String>> = if needs_neural {
        let norms: Vec<&str> = cases.iter().map(|c| c.norm_asm.as_str()).collect();
        if ctx.threads > 1 {
            let runtime = ServeRuntime::start(
                Arc::clone(&ctx.slade),
                ServeConfig::with_shards(ctx.threads),
            );
            runtime.decompile_batch_normalized(&norms)
        } else {
            ctx.slade.decompile_batch_normalized(&norms)
        }
    } else {
        Vec::new()
    };
    let mut out = Vec::new();
    for (ci, case) in cases.iter().enumerate() {
        let (idx, item, asm, reference) = (case.idx, case.item, &case.asm, &case.reference);
        let num_pointers = item.inputs.first().map(|args| {
            args.iter()
                .filter(|a| {
                    matches!(a, ArgSpec::IntBuf(_) | ArgSpec::F64Buf(_) | ArgSpec::CharBuf(_))
                })
                .count()
        });
        let base = EvalRecord {
            tool: Tool::Slade,
            item: item.name.clone(),
            category: item.category,
            compiles: false,
            correct: false,
            edit_sim: None,
            asm_chars: asm.len(),
            c_chars: item.func_src.len(),
            num_args: item.inputs.first().map(|a| a.len()).unwrap_or(0),
            num_pointers: num_pointers.unwrap_or(0),
        };
        for &tool in tools {
            let mut rec = EvalRecord { tool, ..base.clone() };
            match tool {
                Tool::Slade | Tool::SladeNoTypes | Tool::SladeRepair | Tool::Hybrid => {
                    // Per-example trace: an Example root span with one
                    // child per post-decode stage, feeding the
                    // stage-breakdown section of BENCH_serve.json and
                    // `slade-cli trace`.
                    let o = slade_obs::obs();
                    let ex_trace = o.next_trace_id();
                    let ex_start = o.now_us();
                    let emit_child =
                        |stage: slade_obs::Stage, span_id: u32, start_us: u64, detail: u64| {
                            o.record_span(slade_obs::SpanRecord {
                                trace_id: ex_trace,
                                span_id,
                                parent: 1,
                                stage,
                                start_us,
                                dur_us: o.now_us().saturating_sub(start_us),
                                detail,
                            });
                        };
                    let typeinf_start = o.now_us();
                    let mut candidates: Vec<(String, String)> = if tool == Tool::SladeNoTypes {
                        beams[ci].iter().map(|h| (h.clone(), String::new())).collect()
                    } else {
                        let timer = slade_obs::StageTimer::start(slade_obs::StageHist::TypeInf);
                        let cands: Vec<(String, String)> = beams[ci]
                            .iter()
                            .map(|h| {
                                let header =
                                    slade_typeinf::infer_missing_types(h, &item.context_src)
                                        .unwrap_or_default();
                                (h.clone(), header)
                            })
                            .collect();
                        drop(timer);
                        emit_child(
                            slade_obs::Stage::TypeInf,
                            2,
                            typeinf_start,
                            cands.len() as u64,
                        );
                        cands
                    };
                    if tool == Tool::SladeRepair {
                        let repair_start = o.now_us();
                        let timer = slade_obs::StageTimer::start(slade_obs::StageHist::Repair);
                        candidates = slade_repair::repair_candidates(
                            &candidates,
                            &item.context_src,
                            Some(&item.name),
                        );
                        drop(timer);
                        emit_child(
                            slade_obs::Stage::Repair,
                            3,
                            repair_start,
                            candidates.len() as u64,
                        );
                    }
                    if tool == Tool::Hybrid {
                        // Analytic-first: a successful lift is tried before
                        // any neural candidate (paper §X integration).
                        if let Ok(lifted) = ghidra_decompile(asm, ctx.asm_isa(), &item.name) {
                            candidates.insert(0, (lifted, String::new()));
                        }
                    }
                    let judge_start = o.now_us();
                    let mut chosen: Option<(&str, Verdict)> = None;
                    let mut verdicts = Vec::new();
                    for (hyp, header) in &candidates {
                        let v = judge(item, reference, hyp, header);
                        verdicts.push((hyp.as_str(), v));
                        if v.correct {
                            chosen = Some((hyp.as_str(), v));
                            break;
                        }
                    }
                    // The BTC verification stage: one span covering the
                    // whole hypothesis loop, detail = hypotheses judged.
                    emit_child(slade_obs::Stage::Judge, 4, judge_start, verdicts.len() as u64);
                    // Paper: the first hypothesis passing IO; else the top
                    // beam (first compiling preferred for edit similarity).
                    let selected = chosen.or_else(|| {
                        verdicts
                            .iter()
                            .find(|(_, v)| v.compiles)
                            .or_else(|| verdicts.first())
                            .map(|(h, v)| (*h, *v))
                    });
                    if let Some((hyp, v)) = selected {
                        rec.compiles = v.compiles;
                        rec.correct = v.correct;
                        rec.edit_sim = Some(edit_similarity(hyp, &item.func_src));
                    }
                    o.record_span(slade_obs::SpanRecord {
                        trace_id: ex_trace,
                        span_id: 1,
                        parent: 0,
                        stage: slade_obs::Stage::Example,
                        start_us: ex_start,
                        dur_us: o.now_us().saturating_sub(ex_start),
                        detail: rec.correct as u64,
                    });
                }
                Tool::Ghidra => {
                    match ghidra_decompile(asm, ctx.asm_isa(), &item.name) {
                        Ok(hyp) => {
                            let v = judge(item, reference, &hyp, "");
                            rec.compiles = v.compiles;
                            rec.correct = v.correct;
                            rec.edit_sim = Some(edit_similarity(&hyp, &item.func_src));
                        }
                        Err(_) => {
                            // Lift failure: no output at all.
                        }
                    }
                }
                Tool::ChatGpt => {
                    let hyp = ctx.chatgpt.decompile(asm, &item.name, idx as u64);
                    let v = judge(item, reference, &hyp, "");
                    rec.compiles = v.compiles;
                    rec.correct = v.correct;
                    rec.edit_sim = Some(edit_similarity(&hyp, &item.func_src));
                }
                Tool::Btc => {
                    let Some(btc) = &ctx.btc else { continue };
                    let signature =
                        item.func_src.split('{').next().unwrap_or("").trim().to_string();
                    let hyp = btc.decompile(&case.norm_asm, &signature);
                    let v = judge(item, reference, &hyp, "");
                    rec.compiles = v.compiles;
                    rec.correct = v.correct;
                    rec.edit_sim = Some(edit_similarity(&hyp, &item.func_src));
                }
            }
            out.push(rec);
        }
    }
    out
}

/// Aggregates `(io_accuracy_pct, mean_edit_similarity_pct)` for one tool.
pub fn summarize(records: &[EvalRecord], tool: Tool) -> (f64, f64) {
    let recs: Vec<&EvalRecord> = records.iter().filter(|r| r.tool == tool).collect();
    if recs.is_empty() {
        return (0.0, 0.0);
    }
    let acc = 100.0 * recs.iter().filter(|r| r.correct).count() as f64 / recs.len() as f64;
    let sims: Vec<f64> = recs.iter().filter_map(|r| r.edit_sim).collect();
    let sim = if sims.is_empty() {
        0.0
    } else {
        100.0 * sims.iter().sum::<f64>() / sims.len() as f64
    };
    (acc, sim)
}
