//! Ablations of the paper's design choices and implementations of its §X
//! future-work directions, measured end to end.
//!
//! The paper motivates, but does not tabulate, several recipe decisions:
//! dropout-free regularization (§I, §V-C), the code tokenizer's
//! digit-by-digit and punctuation-splitting rules (§IV), the 8k "small"
//! vocabulary (§IV), and beam width k = 5 (§VI-A). Section X additionally
//! names pre-training, program repair and neural/analytic integration as
//! future work. Each experiment here isolates one of those choices on one
//! configuration (ExeBench-like, x86, the cheapest cell) and reports the
//! same metrics as the main figures plus the held-out teacher-forced loss
//! and token accuracy, which are more sensitive at reproduction scale.
//!
//! Every runner returns its report as a `String` so the `ablations` bench
//! target, the `figures --ablations` binary and the tests share one
//! implementation — the same convention as [`crate::figures`].

use crate::metrics::edit_similarity;
use crate::tools::{evaluate, summarize, Tool, ToolContext};
use slade::{make_pairs, Slade, SladeBuilder, TrainProfile};
use slade_baselines::ChatGptSim;
use slade_compiler::{Isa, OptLevel};
use slade_dataset::{generate_exebench_eval, generate_train, DatasetItem, DatasetProfile};
use slade_tokenizer::{special, TokenizerOptions, WordTokenizer};
use std::fmt::Write;
use std::time::Instant;

/// Shared inputs for the ablation suite: one train set, one held-out
/// ExeBench-like eval set, and the base training profile to perturb.
pub struct AblationSetup {
    /// Training items.
    pub train: Vec<DatasetItem>,
    /// Held-out items (token-hash deduplicated against `train`).
    pub eval: Vec<DatasetItem>,
    /// The unperturbed (paper-recipe) profile.
    pub profile: TrainProfile,
    /// Seed for training and evaluation.
    pub seed: u64,
    /// Worker threads for the neural decode passes (1 = in-thread
    /// decode; >1 routes every [`evaluate`] call through the
    /// `slade_serve` pool).
    pub threads: usize,
}

impl AblationSetup {
    /// Generates datasets for the suite.
    pub fn build(data: DatasetProfile, profile: TrainProfile, seed: u64) -> Self {
        let train = generate_train(data, seed);
        let eval = generate_exebench_eval(data, seed, &train);
        AblationSetup { train, eval, profile, seed, threads: 1 }
    }

    /// Sets the decode worker count for every evaluation in the suite.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }
}

/// Held-out teacher-forced statistics of a trained model over the eval
/// pairs: `(mean_loss, token_accuracy)`.
fn heldout_stats(slade: &Slade, setup: &AblationSetup, isa: Isa, opt: OptLevel) -> (f64, f64) {
    let pairs = make_pairs(&setup.eval, isa, opt);
    let mut loss_sum = 0.0f64;
    let mut acc_sum = 0.0f64;
    let mut n = 0usize;
    for (asm, c) in &pairs {
        let src = slade.tokenizer.encode(asm);
        let tgt = slade.tokenizer.encode(c);
        let max_len = slade.model.cfg.max_len.saturating_sub(2);
        if src.is_empty() || tgt.is_empty() || tgt.len() + 1 > max_len {
            continue;
        }
        let mut dec_input = vec![special::BOS];
        dec_input.extend_from_slice(&tgt);
        let mut labels = tgt.clone();
        labels.push(special::EOS);
        loss_sum += f64::from(slade.model.eval_loss(&src, &dec_input, &labels));
        acc_sum += slade.model.eval_token_accuracy(&src, &dec_input, &labels);
        n += 1;
    }
    if n == 0 {
        return (f64::NAN, f64::NAN);
    }
    (loss_sum / n as f64, acc_sum / n as f64)
}

/// Builds a [`ToolContext`] around an externally trained SLaDe so the
/// standard [`evaluate`] dispatch can run on ablated models.
fn context_for(slade: Slade, setup: &AblationSetup, isa: Isa, opt: OptLevel) -> ToolContext {
    let pairs = make_pairs(&setup.train, isa, opt);
    ToolContext {
        isa,
        opt,
        slade: std::sync::Arc::new(slade),
        chatgpt: ChatGptSim::new(&pairs),
        btc: None,
        threads: setup.threads,
    }
}

fn metric_row(
    out: &mut String,
    label: &str,
    loss: f64,
    tok_acc: f64,
    io_acc: f64,
    edit: f64,
    extra: &str,
) {
    let _ = writeln!(
        out,
        "{label:<26} {loss:>10.3} {tok_acc:>10.3} {io_acc:>10.1} {edit:>10.1} {extra}"
    );
}

fn metric_header(out: &mut String, extra: &str) {
    let _ = writeln!(
        out,
        "{:<26} {:>10} {:>10} {:>10} {:>10} {extra}",
        "variant", "val loss", "tok acc", "IO acc %", "edit %"
    );
}

/// Dropout ablation (paper §V-C: "we do not use dropout ... weight decay
/// regularization alone yielded better results"). Trains the same model at
/// several dropout probabilities; the paper's claim reproduces when the
/// p = 0 row has the lowest held-out loss.
pub fn ablation_dropout(setup: &AblationSetup) -> String {
    let (isa, opt) = (Isa::X86_64, OptLevel::O0);
    let mut out = String::new();
    let _ = writeln!(out, "== Ablation: dropout vs weight-decay-only (x86 O0) ==");
    metric_header(&mut out, "");
    for p in [0.0f32, 0.1, 0.3] {
        let mut profile = setup.profile;
        profile.dropout = p;
        let slade =
            SladeBuilder::new(isa, opt).profile(profile).train(&setup.train, setup.seed);
        let (loss, tok) = heldout_stats(&slade, setup, isa, opt);
        let ctx = context_for(slade, setup, isa, opt);
        let records = evaluate(&ctx, &setup.eval, &[Tool::Slade]);
        let (acc, sim) = summarize(&records, Tool::Slade);
        metric_row(&mut out, &format!("dropout={p}"), loss, tok, acc, sim, "");
    }
    let _ = writeln!(
        out,
        "paper claim: the dropout-free row should win on held-out loss/accuracy."
    );
    out
}

/// Tokenizer ablation (§IV): the paper's recipe against variants with
/// digit-by-digit splitting disabled and punctuation splitting disabled,
/// plus the word-level (BTC-style) tokenizer's OOV rate for reference.
pub fn ablation_tokenizer(setup: &AblationSetup) -> String {
    let (isa, opt) = (Isa::X86_64, OptLevel::O0);
    let mut out = String::new();
    let _ = writeln!(out, "== Ablation: tokenizer rules (x86 O0) ==");
    metric_header(&mut out, "vocab");
    let variants: [(&str, TokenizerOptions); 3] = [
        ("paper (digit+punct split)", TokenizerOptions::default()),
        ("no digit split", TokenizerOptions { digit_split: false, punct_split: true }),
        ("no punct split", TokenizerOptions { digit_split: true, punct_split: false }),
    ];
    for (label, options) in variants {
        let mut profile = setup.profile;
        profile.tokenizer = options;
        let slade =
            SladeBuilder::new(isa, opt).profile(profile).train(&setup.train, setup.seed);
        let (loss, tok) = heldout_stats(&slade, setup, isa, opt);
        let vocab = slade.tokenizer.vocab_size();
        let ctx = context_for(slade, setup, isa, opt);
        let records = evaluate(&ctx, &setup.eval, &[Tool::Slade]);
        let (acc, sim) = summarize(&records, Tool::Slade);
        metric_row(&mut out, label, loss, tok, acc, sim, &format!("{vocab}"));
    }
    // Word-level reference: the failure mode subword tokenization removes.
    let pairs = make_pairs(&setup.train, isa, opt);
    let mut corpus = Vec::new();
    for (a, c) in &pairs {
        corpus.push(a.clone());
        corpus.push(c.clone());
    }
    let word = WordTokenizer::train(&corpus, setup.profile.vocab);
    let eval_pairs = make_pairs(&setup.eval, isa, opt);
    let oov: f64 = if eval_pairs.is_empty() {
        0.0
    } else {
        eval_pairs.iter().map(|(a, c)| (word.oov_rate(a) + word.oov_rate(c)) / 2.0).sum::<f64>()
            / eval_pairs.len() as f64
    };
    let _ = writeln!(
        out,
        "word-level (BTC) reference: held-out OOV rate {:.1}% — every OOV token is \
         unrecoverable at decode time; subword variants have 0% by construction.",
        100.0 * oov
    );
    let _ = writeln!(
        out,
        "note: digit/punct splitting trades *longer sequences* for *consistent \
         segmentation*; at tiny scale the shorter no-split sequences can score \
         better on loss, while the consistency payoff (exact numeric copying, \
         §IV) binds at paper scale where IO correctness hinges on literals."
    );
    out
}

/// Vocabulary-size ablation (§IV: "a small vocabulary size of 8k" against
/// NLP-typical >30k). At reproduction scale the sweep brackets the profile
/// default from both sides.
pub fn ablation_vocab(setup: &AblationSetup) -> String {
    let (isa, opt) = (Isa::X86_64, OptLevel::O0);
    let mut out = String::new();
    let _ = writeln!(out, "== Ablation: tokenizer vocabulary size (x86 O0) ==");
    metric_header(&mut out, "actual vocab");
    let base = setup.profile.vocab;
    for target in [base / 4, base, base * 4] {
        let mut profile = setup.profile;
        profile.vocab = target.max(64);
        let slade =
            SladeBuilder::new(isa, opt).profile(profile).train(&setup.train, setup.seed);
        let (loss, tok) = heldout_stats(&slade, setup, isa, opt);
        let vocab = slade.tokenizer.vocab_size();
        let ctx = context_for(slade, setup, isa, opt);
        let records = evaluate(&ctx, &setup.eval, &[Tool::Slade]);
        let (acc, sim) = summarize(&records, Tool::Slade);
        metric_row(
            &mut out,
            &format!("target={}", profile.vocab),
            loss,
            tok,
            acc,
            sim,
            &format!("{vocab}"),
        );
    }
    let _ = writeln!(
        out,
        "paper shape: a small code vocabulary suffices; growing it inflates \
         the embedding table without helping."
    );
    out
}

/// Beam-width ablation (§VI-A: k = 5, first IO-passing candidate wins).
/// One model is trained, then re-decoded at several widths; wall-clock
/// decode time is reported per item.
pub fn ablation_beam(setup: &AblationSetup) -> String {
    let (isa, opt) = (Isa::X86_64, OptLevel::O0);
    let mut out = String::new();
    let _ = writeln!(out, "== Ablation: beam width (x86 O0) ==");
    let _ = writeln!(
        out,
        "{:<10} {:>10} {:>10} {:>14}",
        "beam k", "IO acc %", "edit %", "ms per item"
    );
    let slade =
        SladeBuilder::new(isa, opt).profile(setup.profile).train(&setup.train, setup.seed);
    for k in [1usize, 2, 5, 8] {
        let mut variant = slade.clone();
        variant.set_beam(k);
        let ctx = context_for(variant, setup, isa, opt);
        let start = Instant::now();
        let records = evaluate(&ctx, &setup.eval, &[Tool::Slade]);
        let elapsed = start.elapsed().as_secs_f64();
        let per_item =
            if records.is_empty() { f64::NAN } else { 1e3 * elapsed / records.len() as f64 };
        let (acc, sim) = summarize(&records, Tool::Slade);
        let _ = writeln!(out, "{k:<10} {acc:>10.1} {sim:>10.1} {per_item:>14.1}");
    }
    let _ = writeln!(
        out,
        "paper shape: accuracy is monotone in k (IO selection can only gain \
         from more candidates). Wall-clock can *drop* as k grows: decoding \
         stops once k hypotheses reach EOS, while a k = 1 greedy path that \
         never emits EOS pays the full length budget."
    );
    out
}

/// Pre-training ablation (§X future work): BART-style denoising epochs
/// over the raw corpus before seq2seq fine-tuning, at equal fine-tuning
/// budget.
pub fn ablation_pretrain(setup: &AblationSetup) -> String {
    let (isa, opt) = (Isa::X86_64, OptLevel::O0);
    let mut out = String::new();
    let _ = writeln!(out, "== Extension: denoising pre-training (x86 O0) ==");
    metric_header(&mut out, "");
    for pre in [0usize, 2] {
        let mut profile = setup.profile;
        profile.pretrain_epochs = pre;
        let slade =
            SladeBuilder::new(isa, opt).profile(profile).train(&setup.train, setup.seed);
        let (loss, tok) = heldout_stats(&slade, setup, isa, opt);
        let ctx = context_for(slade, setup, isa, opt);
        let records = evaluate(&ctx, &setup.eval, &[Tool::Slade]);
        let (acc, sim) = summarize(&records, Tool::Slade);
        metric_row(&mut out, &format!("pretrain epochs={pre}"), loss, tok, acc, sim, "");
    }
    let _ = writeln!(
        out,
        "expected: denoising exposure to the corpus lowers held-out loss at \
         equal fine-tuning budget (the paper's §X hypothesis)."
    );
    out
}

/// Program-repair extension (§X future work): the standard pipeline
/// against one where non-compiling beam candidates are mechanically
/// repaired before IO selection.
pub fn ablation_repair(setup: &AblationSetup) -> String {
    let (isa, opt) = (Isa::X86_64, OptLevel::O0);
    let mut out = String::new();
    let _ = writeln!(out, "== Extension: program repair on beam candidates (x86 O0) ==");
    let slade =
        SladeBuilder::new(isa, opt).profile(setup.profile).train(&setup.train, setup.seed);
    let ctx = context_for(slade, setup, isa, opt);
    let records = evaluate(&ctx, &setup.eval, &[Tool::Slade, Tool::SladeRepair]);
    let _ = writeln!(
        out,
        "{:<16} {:>12} {:>12} {:>12}",
        "variant", "compiles %", "IO acc %", "edit %"
    );
    for tool in [Tool::Slade, Tool::SladeRepair] {
        let recs: Vec<_> = records.iter().filter(|r| r.tool == tool).collect();
        let compiles = if recs.is_empty() {
            0.0
        } else {
            100.0 * recs.iter().filter(|r| r.compiles).count() as f64 / recs.len() as f64
        };
        let (acc, sim) = summarize(&records, tool);
        let _ = writeln!(out, "{:<16} {compiles:>12.1} {acc:>12.1} {sim:>12.1}", tool.label());
    }
    let _ = writeln!(
        out,
        "repair can only add candidates, so compile rate and IO accuracy are \
         monotone; IO selection still rejects semantically wrong repairs."
    );
    out
}

/// Neural/analytic integration (§X: "how learnable and analytic approaches
/// could be best integrated"): the hybrid tries the rule-based lift first
/// and falls back to the neural beam, so it inherits the lifter's near-
/// perfect simple-`-O0` behaviour *and* the neural model's tolerance of
/// configurations where the lifter collapses.
pub fn ablation_hybrid(setup: &AblationSetup) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== Extension: analytic-first hybrid (x86 O0 and O3) ==");
    for opt in [OptLevel::O0, OptLevel::O3] {
        let isa = Isa::X86_64;
        let slade =
            SladeBuilder::new(isa, opt).profile(setup.profile).train(&setup.train, setup.seed);
        let ctx = context_for(slade, setup, isa, opt);
        let tools = [Tool::Ghidra, Tool::Slade, Tool::Hybrid];
        let records = evaluate(&ctx, &setup.eval, &tools);
        let _ = writeln!(out, "-- x86 {opt} --");
        let _ = writeln!(out, "{:<16} {:>12} {:>12}", "tool", "IO acc %", "edit %");
        for tool in tools {
            let (acc, sim) = summarize(&records, tool);
            let _ = writeln!(out, "{:<16} {acc:>12.1} {sim:>12.1}", tool.label());
        }
    }
    let _ = writeln!(
        out,
        "expected: hybrid IO accuracy ≥ max(Ghidra, SLaDe) per configuration \
         (first-passing selection can only gain from the extra candidate)."
    );
    out
}

/// Edit-similarity sanity panel printed alongside the ablations: the
/// metric itself on known pairs, so report readers can calibrate what a
/// given percentage means.
pub fn edit_similarity_panel() -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== Edit-similarity calibration ==");
    let cases = [
        ("identical", "int f(int a) { return a; }", "int f(int a) { return a; }"),
        ("renamed args", "int f(int a) { return a; }", "int f(int x) { return x; }"),
        ("different body", "int f(int a) { return a; }", "int f(int a) { return 2 * a + 7; }"),
        ("unrelated", "int f(int a) { return a; }", "void g(char *p) { *p = 0; }"),
    ];
    for (label, a, b) in cases {
        let _ = writeln!(out, "{:<16} {:>6.1}%", label, 100.0 * edit_similarity(a, b));
    }
    out
}

/// Runs the whole ablation suite, returning the combined report.
pub fn run_all_ablations(setup: &AblationSetup) -> String {
    let mut out = String::new();
    for (name, text) in [
        ("dropout", ablation_dropout(setup)),
        ("tokenizer", ablation_tokenizer(setup)),
        ("vocab", ablation_vocab(setup)),
        ("beam", ablation_beam(setup)),
        ("pretrain", ablation_pretrain(setup)),
        ("repair", ablation_repair(setup)),
        ("hybrid", ablation_hybrid(setup)),
        ("edit-sim panel", edit_similarity_panel()),
    ] {
        let _ = writeln!(out, "\n#### ablation: {name} ####");
        out.push_str(&text);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimal setup: enough items to train and evaluate, small enough that
    /// each test stays in the seconds range (beam decoding dominates).
    fn tiny_setup() -> AblationSetup {
        let data = DatasetProfile { train: 24, exebench_eval: 6, synth_per_category: 1 };
        let mut profile = TrainProfile::tiny();
        profile.epochs = 1;
        AblationSetup::build(data, profile, 11)
    }

    #[test]
    fn beam_ablation_runs_and_reports_all_widths() {
        let setup = tiny_setup();
        let report = ablation_beam(&setup);
        for k in ["1", "2", "5", "8"] {
            assert!(report.lines().any(|l| l.starts_with(k)), "missing k={k}:\n{report}");
        }
    }

    #[test]
    fn repair_ablation_is_monotone_in_compile_rate() {
        let setup = tiny_setup();
        let (isa, opt) = (Isa::X86_64, OptLevel::O0);
        let slade =
            SladeBuilder::new(isa, opt).profile(setup.profile).train(&setup.train, setup.seed);
        let ctx = context_for(slade, &setup, isa, opt);
        let records = evaluate(&ctx, &setup.eval, &[Tool::Slade, Tool::SladeRepair]);
        let rate = |tool: Tool| {
            let recs: Vec<_> = records.iter().filter(|r| r.tool == tool).collect();
            recs.iter().filter(|r| r.compiles).count() as f64 / recs.len().max(1) as f64
        };
        assert!(
            rate(Tool::SladeRepair) >= rate(Tool::Slade),
            "repair lowered the compile rate"
        );
    }

    #[test]
    fn hybrid_is_at_least_as_accurate_as_parts() {
        let setup = tiny_setup();
        let (isa, opt) = (Isa::X86_64, OptLevel::O0);
        let slade =
            SladeBuilder::new(isa, opt).profile(setup.profile).train(&setup.train, setup.seed);
        let ctx = context_for(slade, &setup, isa, opt);
        let tools = [Tool::Ghidra, Tool::Slade, Tool::Hybrid];
        let records = evaluate(&ctx, &setup.eval, &tools);
        let (ghidra, _) = summarize(&records, Tool::Ghidra);
        let (slade_acc, _) = summarize(&records, Tool::Slade);
        let (hybrid, _) = summarize(&records, Tool::Hybrid);
        assert!(
            hybrid + 1e-9 >= ghidra.max(slade_acc),
            "hybrid {hybrid} < max({ghidra}, {slade_acc})"
        );
    }

    #[test]
    fn heldout_stats_are_finite_for_trained_model() {
        let setup = tiny_setup();
        let (isa, opt) = (Isa::X86_64, OptLevel::O0);
        let slade =
            SladeBuilder::new(isa, opt).profile(setup.profile).train(&setup.train, setup.seed);
        let (loss, tok) = heldout_stats(&slade, &setup, isa, opt);
        assert!(loss.is_finite() && loss > 0.0, "loss {loss}");
        assert!((0.0..=1.0).contains(&tok), "token accuracy {tok}");
    }

    #[test]
    fn edit_similarity_panel_is_ordered() {
        let report = edit_similarity_panel();
        // identical must be 100%, unrelated must be the lowest row.
        assert!(report.contains("identical"));
        let grab = |label: &str| {
            report
                .lines()
                .find(|l| l.starts_with(label))
                .and_then(|l| l.split_whitespace().last())
                .and_then(|v| v.trim_end_matches('%').parse::<f64>().ok())
                .unwrap()
        };
        assert_eq!(grab("identical"), 100.0);
        assert!(grab("renamed") > grab("unrelated"));
    }
}
