//! Assembly text model and parser for the two ISAs the compiler emits.
//!
//! Consumers: the Ghidra-like lifter (assembly → C), the x86 emulator (runs
//! the real assembly for IO-equivalence), and the evaluation harness
//! (assembly-length features from Table I / Figures 8–9).
//!
//! The parser understands exactly the dialects `slade-compiler` produces:
//! GCC-flavoured AT&T x86-64 and AArch64. Unknown instructions are kept as
//! opaque [`Inst`]s — consumers decide whether that is an error (the lifter
//! treats unknown vector instructions as a lift failure, just as Ghidra
//! trips over what it cannot model).
//!
//! # Example
//!
//! ```
//! use slade_asm::{parse_asm, Isa};
//!
//! let text = "\t.text\nf:\n\tmovl %edi, %eax\n\tret\n";
//! let file = parse_asm(text, Isa::X86_64);
//! assert_eq!(file.functions.len(), 1);
//! assert_eq!(file.functions[0].name, "f");
//! assert_eq!(file.functions[0].instructions().count(), 2);
//! ```

#![warn(missing_docs)]

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Instruction-set architecture of an assembly file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Isa {
    /// AT&T-syntax x86-64.
    X86_64,
    /// AArch64.
    Arm64,
}

/// An operand of a parsed instruction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Operand {
    /// Register, name without `%` (x86) or as written (ARM): `rax`, `w8`.
    Reg(String),
    /// Immediate (`$5` / `#5`).
    Imm(i64),
    /// x86 memory operand `disp(base,index,scale)`.
    Mem {
        /// Constant displacement.
        disp: i64,
        /// Base register, if present.
        base: Option<String>,
        /// Index register, if present.
        index: Option<String>,
        /// Index scale factor (1 when unwritten).
        scale: i64,
    },
    /// RIP-relative symbol: `sym(%rip)`.
    RipSym(String),
    /// ARM memory operand `[base, #off]` with optional pre-writeback (`!`).
    MemArm {
        /// Base register.
        base: String,
        /// Byte offset.
        off: i64,
        /// `[base, #off]!` pre-index writeback form.
        pre_writeback: bool,
    },
    /// Branch/call target or bare symbol.
    Sym(String),
    /// ARM `:lo12:sym` relocation operand.
    Lo12(String),
    /// ARM condition code operand (`lt` in `cset w8, lt`).
    Cond(String),
    /// ARM shifted-immediate modifier (`lsl #16`): the shift amount.
    Lsl(i64),
}

/// One parsed instruction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Inst {
    /// Lower-case mnemonic, including any `b.cond` suffix.
    pub mnemonic: String,
    /// Operands in source order.
    pub operands: Vec<Operand>,
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.mnemonic)?;
        for (i, op) in self.operands.iter().enumerate() {
            write!(f, "{}{:?}", if i == 0 { " " } else { ", " }, op)?;
        }
        Ok(())
    }
}

/// A line in a function body.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Line {
    /// Local label (`.L3:`).
    Label(String),
    /// Instruction.
    Inst(Inst),
}

/// A parsed function: name plus body lines.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AsmFunction {
    /// Symbol name.
    pub name: String,
    /// Body lines in order.
    pub lines: Vec<Line>,
}

impl AsmFunction {
    /// Iterates over instructions only.
    pub fn instructions(&self) -> impl Iterator<Item = &Inst> {
        self.lines.iter().filter_map(|l| match l {
            Line::Inst(i) => Some(i),
            Line::Label(_) => None,
        })
    }

    /// Index of each label within [`AsmFunction::lines`].
    pub fn label_positions(&self) -> HashMap<String, usize> {
        let mut out = HashMap::new();
        for (i, l) in self.lines.iter().enumerate() {
            if let Line::Label(name) = l {
                out.insert(name.clone(), i);
            }
        }
        out
    }
}

/// A parsed assembly file: functions plus rodata blobs.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct AsmFile {
    /// Functions in file order.
    pub functions: Vec<AsmFunction>,
    /// `label → bytes` (with trailing NUL) from `.string` directives.
    pub rodata: HashMap<String, Vec<u8>>,
}

impl AsmFile {
    /// Finds a function by name.
    pub fn function(&self, name: &str) -> Option<&AsmFunction> {
        self.functions.iter().find(|f| f.name == name)
    }
}

/// Parses assembly text into an [`AsmFile`]. Never fails: unknown syntax
/// degrades to opaque instructions, mirroring how binary tools skip what
/// they cannot model.
pub fn parse_asm(text: &str, isa: Isa) -> AsmFile {
    let mut file = AsmFile::default();
    let mut current: Option<AsmFunction> = None;
    let mut in_rodata = false;
    let mut last_label: Option<String> = None;
    for raw in text.lines() {
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_suffix(':') {
            let name = rest.trim().to_string();
            if in_rodata {
                last_label = Some(name);
            } else if name.starts_with(".L") {
                if let Some(f) = &mut current {
                    f.lines.push(Line::Label(name));
                }
            } else {
                if let Some(f) = current.take() {
                    file.functions.push(f);
                }
                current = Some(AsmFunction { name, lines: Vec::new() });
            }
            continue;
        }
        if line.starts_with('.') {
            if line.starts_with(".section") {
                in_rodata = line.contains("rodata");
                continue;
            }
            if line.starts_with(".text") {
                in_rodata = false;
                continue;
            }
            if in_rodata {
                if let Some(rest) = line.strip_prefix(".string") {
                    if let Some(label) = last_label.take() {
                        file.rodata.insert(label, unescape_string(rest.trim()));
                    }
                }
            }
            // Other directives (.globl, .type, .cfi_*, .size) carry no
            // semantics for our consumers.
            continue;
        }
        let inst = parse_inst(line, isa);
        if let Some(f) = &mut current {
            f.lines.push(Line::Inst(inst));
        }
    }
    if let Some(f) = current.take() {
        file.functions.push(f);
    }
    file
}

fn strip_comment(line: &str) -> &str {
    match line.find("//") {
        Some(idx) => &line[..idx],
        None => line,
    }
}

fn parse_inst(line: &str, isa: Isa) -> Inst {
    let (mnemonic, rest) = match line.find(char::is_whitespace) {
        Some(i) => (&line[..i], line[i..].trim()),
        None => (line, ""),
    };
    let operands = if rest.is_empty() {
        Vec::new()
    } else {
        split_operands(rest).into_iter().map(|tok| parse_operand(tok.trim(), isa)).collect()
    };
    Inst { mnemonic: mnemonic.to_lowercase(), operands }
}

/// Splits on commas that are not inside parentheses or brackets.
fn split_operands(s: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut start = 0usize;
    for (i, c) in s.char_indices() {
        match c {
            '(' | '[' => depth += 1,
            ')' | ']' => depth -= 1,
            ',' if depth == 0 => {
                out.push(&s[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    out.push(&s[start..]);
    out
}

fn parse_operand(tok: &str, isa: Isa) -> Operand {
    match isa {
        Isa::X86_64 => parse_x86_operand(tok),
        Isa::Arm64 => parse_arm_operand(tok),
    }
}

fn parse_int(s: &str) -> Option<i64> {
    let s = s.trim();
    if let Some(hex) = s.strip_prefix("0x") {
        return i64::from_str_radix(hex, 16).ok();
    }
    if let Some(hex) = s.strip_prefix("-0x") {
        return i64::from_str_radix(hex, 16).ok().map(|v| -v);
    }
    s.parse().ok()
}

fn parse_x86_operand(tok: &str) -> Operand {
    if let Some(reg) = tok.strip_prefix('%') {
        return Operand::Reg(reg.to_string());
    }
    if let Some(imm) = tok.strip_prefix('$') {
        return Operand::Imm(parse_int(imm).unwrap_or(0));
    }
    if let Some(open) = tok.find('(') {
        let disp_str = &tok[..open];
        let inner = &tok[open + 1..tok.len().saturating_sub(1)];
        if inner == "%rip" {
            return Operand::RipSym(disp_str.to_string());
        }
        let disp = if disp_str.is_empty() { 0 } else { parse_int(disp_str).unwrap_or(0) };
        let parts: Vec<&str> = inner.split(',').map(str::trim).collect();
        let base = parts
            .first()
            .filter(|p| !p.is_empty())
            .map(|p| p.trim_start_matches('%').to_string());
        let index = parts
            .get(1)
            .filter(|p| !p.is_empty())
            .map(|p| p.trim_start_matches('%').to_string());
        let scale = parts.get(2).and_then(|p| parse_int(p)).unwrap_or(1);
        return Operand::Mem { disp, base, index, scale };
    }
    Operand::Sym(tok.to_string())
}

fn parse_arm_operand(tok: &str) -> Operand {
    if let Some(imm) = tok.strip_prefix('#') {
        return Operand::Imm(parse_int(imm).unwrap_or(0));
    }
    if let Some(rest) = tok.strip_prefix(":lo12:") {
        return Operand::Lo12(rest.to_string());
    }
    if tok.starts_with('[') {
        let pre_writeback = tok.ends_with('!');
        let inner = tok.trim_end_matches('!').trim_start_matches('[').trim_end_matches(']');
        let parts: Vec<&str> = inner.split(',').map(str::trim).collect();
        let base = parts[0].to_string();
        let off =
            parts.get(1).and_then(|p| p.strip_prefix('#')).and_then(parse_int).unwrap_or(0);
        return Operand::MemArm { base, off, pre_writeback };
    }
    if let Some(rest) = tok.strip_prefix("lsl #") {
        return Operand::Lsl(parse_int(rest).unwrap_or(0));
    }
    if is_arm_reg(tok) {
        return Operand::Reg(tok.to_string());
    }
    if is_arm_cond(tok) {
        return Operand::Cond(tok.to_string());
    }
    Operand::Sym(tok.to_string())
}

fn is_arm_reg(tok: &str) -> bool {
    if matches!(tok, "sp" | "xzr" | "wzr") {
        return true;
    }
    let mut chars = tok.chars();
    let Some(c) = chars.next() else { return false };
    if !matches!(c, 'w' | 'x' | 's' | 'd') {
        return false;
    }
    let rest: String = chars.collect();
    !rest.is_empty() && rest.chars().all(|c| c.is_ascii_digit())
}

fn is_arm_cond(tok: &str) -> bool {
    matches!(
        tok,
        "eq" | "ne" | "lt" | "le" | "gt" | "ge" | "lo" | "ls" | "hi" | "hs" | "mi" | "pl"
    )
}

fn unescape_string(s: &str) -> Vec<u8> {
    let s = s.trim().trim_start_matches('"').trim_end_matches('"');
    let mut out = Vec::new();
    let mut chars = s.bytes().peekable();
    while let Some(b) = chars.next() {
        if b != b'\\' {
            out.push(b);
            continue;
        }
        match chars.next() {
            Some(b'n') => out.push(b'\n'),
            Some(b't') => out.push(b'\t'),
            Some(b'r') => out.push(b'\r'),
            Some(b'"') => out.push(b'"'),
            Some(b'\\') => out.push(b'\\'),
            Some(d) if d.is_ascii_digit() => {
                let mut v = (d - b'0') as u32;
                for _ in 0..2 {
                    if let Some(&n) = chars.peek() {
                        if n.is_ascii_digit() {
                            v = v * 8 + (n - b'0') as u32;
                            chars.next();
                        }
                    }
                }
                out.push((v & 0xff) as u8);
            }
            Some(other) => out.push(other),
            None => {}
        }
    }
    out.push(0);
    out
}

/// Counts the instructions in a blob of assembly text (used by the length
/// analyses behind Figures 8–9 and Table I).
pub fn instruction_count(text: &str, isa: Isa) -> usize {
    parse_asm(text, isa).functions.iter().map(|f| f.instructions().count()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_x86_operand_forms() {
        assert_eq!(parse_x86_operand("%rax"), Operand::Reg("rax".into()));
        assert_eq!(parse_x86_operand("$42"), Operand::Imm(42));
        assert_eq!(parse_x86_operand("$-8"), Operand::Imm(-8));
        assert_eq!(
            parse_x86_operand("-16(%rbp)"),
            Operand::Mem { disp: -16, base: Some("rbp".into()), index: None, scale: 1 }
        );
        assert_eq!(parse_x86_operand("g(%rip)"), Operand::RipSym("g".into()));
        assert_eq!(parse_x86_operand(".L3"), Operand::Sym(".L3".into()));
    }

    #[test]
    fn parses_arm_operand_forms() {
        assert_eq!(parse_arm_operand("w8"), Operand::Reg("w8".into()));
        assert_eq!(parse_arm_operand("#42"), Operand::Imm(42));
        assert_eq!(
            parse_arm_operand("[x29, #16]"),
            Operand::MemArm { base: "x29".into(), off: 16, pre_writeback: false }
        );
        assert_eq!(
            parse_arm_operand("[sp, #-32]!"),
            Operand::MemArm { base: "sp".into(), off: -32, pre_writeback: true }
        );
        assert_eq!(parse_arm_operand(":lo12:g"), Operand::Lo12("g".into()));
        assert_eq!(parse_arm_operand("lt"), Operand::Cond("lt".into()));
    }

    #[test]
    fn splits_operands_respecting_brackets() {
        assert_eq!(split_operands("w8, [x29, #16]"), vec!["w8", " [x29, #16]"]);
        assert_eq!(split_operands("-8(%rbp), %eax"), vec!["-8(%rbp)", " %eax"]);
    }

    #[test]
    fn parses_whole_function_with_labels() {
        let text =
            "\t.text\n\t.globl f\nf:\n\tmovl %edi, %eax\n.L1:\n\taddl $1, %eax\n\tjmp .L1\n";
        let file = parse_asm(text, Isa::X86_64);
        let f = file.function("f").unwrap();
        assert_eq!(f.instructions().count(), 3);
        assert!(f.label_positions().contains_key(".L1"));
    }

    #[test]
    fn parses_rodata_strings() {
        let text = "\t.section .rodata\n.LC0:\n\t.string \"hi\\n\"\n\t.text\nf:\n\tret\n";
        let file = parse_asm(text, Isa::X86_64);
        assert_eq!(file.rodata.get(".LC0").unwrap(), &b"hi\n\0".to_vec());
    }

    #[test]
    fn roundtrips_compiler_output() {
        use slade_compiler::{compile_function, CompileOpts, OptLevel};
        let p = slade_minic::parse_program(
            "int f(int *a, int n) { int s = 0; for (int i = 0; i < n; i++) s += a[i]; return s; }",
        )
        .unwrap();
        for (isa_c, isa_a) in [
            (slade_compiler::Isa::X86_64, Isa::X86_64),
            (slade_compiler::Isa::Arm64, Isa::Arm64),
        ] {
            for opt in [OptLevel::O0, OptLevel::O3] {
                let asm = compile_function(&p, "f", CompileOpts::new(isa_c, opt)).unwrap();
                let file = parse_asm(&asm, isa_a);
                let f = file.function("f").expect("function parsed");
                assert!(f.instructions().count() > 5, "{isa_c:?} {opt:?}:\n{asm}");
            }
        }
    }

    #[test]
    fn unknown_lines_do_not_panic() {
        let file = parse_asm("f:\n\tsome_weird_insn %a, %b\n", Isa::X86_64);
        assert_eq!(file.functions[0].instructions().count(), 1);
    }

    #[test]
    fn instruction_count_sums_functions() {
        let text = "f:\n\tret\ng:\n\tnop\n\tret\n";
        assert_eq!(instruction_count(text, Isa::X86_64), 3);
    }
}
