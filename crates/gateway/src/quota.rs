//! Per-client token-bucket quotas, layered **on top of** the runtime's
//! global `queue_cap`: the queue cap protects the process, the buckets
//! protect clients from each other. A client is identified by its
//! `x-slade-client` header when present, else by peer IP; each key gets
//! an independent bucket of `burst` tokens refilled at `rps` tokens per
//! second, and a submission with no token available is shed with `429`
//! *before* it ever reaches [`slade_serve::ServeRuntime::try_submit`] —
//! so quota sheds and global sheds stay separately attributable in the
//! conservation accounting (DESIGN.md §13).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Quota configuration; `rps <= 0` disables quotas entirely.
#[derive(Debug, Clone, Copy)]
pub struct QuotaConfig {
    /// Steady-state refill rate, tokens (requests) per second per client.
    pub rps: f64,
    /// Bucket capacity: the burst a previously idle client may spend at
    /// once. Clamped to at least 1 token when quotas are enabled.
    pub burst: f64,
}

impl Default for QuotaConfig {
    fn default() -> Self {
        QuotaConfig { rps: 0.0, burst: 8.0 }
    }
}

/// One client's bucket plus its shed/admit accounting.
#[derive(Debug)]
struct Bucket {
    tokens: f64,
    refilled: Instant,
    admitted: u64,
    shed: u64,
}

/// Admission decision for one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuotaDecision {
    /// A token was available (or quotas are disabled).
    Admit,
    /// The client's bucket is empty — shed with `429`.
    Shed,
}

/// Clients beyond [`QuotaTable::MAX_CLIENTS`] share one overflow bucket
/// so a key-spoofing flood cannot grow the table without bound.
const OVERFLOW_KEY: &str = "_overflow";

/// The per-client bucket table.
#[derive(Debug)]
pub struct QuotaTable {
    cfg: QuotaConfig,
    buckets: Mutex<HashMap<String, Bucket>>,
    shed_total: AtomicU64,
}

impl QuotaTable {
    /// Distinct client keys tracked before new keys collapse into the
    /// shared overflow bucket.
    pub const MAX_CLIENTS: usize = 4096;

    /// A table for `cfg` (no buckets until clients arrive).
    pub fn new(cfg: QuotaConfig) -> Self {
        QuotaTable { cfg, buckets: Mutex::new(HashMap::new()), shed_total: AtomicU64::new(0) }
    }

    /// Whether quotas are enforced at all.
    pub fn enabled(&self) -> bool {
        self.cfg.rps > 0.0
    }

    /// Spends one token from `client`'s bucket, refilling by elapsed
    /// time first. Never blocks: an empty bucket sheds immediately.
    pub fn check(&self, client: &str) -> QuotaDecision {
        if !self.enabled() {
            return QuotaDecision::Admit;
        }
        let burst = self.cfg.burst.max(1.0);
        let now = Instant::now();
        let mut buckets = self.buckets.lock().expect("quota lock");
        let key = if buckets.contains_key(client) || buckets.len() < Self::MAX_CLIENTS {
            client
        } else {
            OVERFLOW_KEY
        };
        let bucket = buckets.entry(key.to_string()).or_insert(Bucket {
            tokens: burst,
            refilled: now,
            admitted: 0,
            shed: 0,
        });
        let elapsed = now.saturating_duration_since(bucket.refilled).as_secs_f64();
        bucket.tokens = (bucket.tokens + elapsed * self.cfg.rps).min(burst);
        bucket.refilled = now;
        if bucket.tokens >= 1.0 {
            bucket.tokens -= 1.0;
            bucket.admitted += 1;
            QuotaDecision::Admit
        } else {
            bucket.shed += 1;
            self.shed_total.fetch_add(1, Ordering::Relaxed);
            QuotaDecision::Shed
        }
    }

    /// Total submissions shed by quota, across all clients.
    pub fn shed_total(&self) -> u64 {
        self.shed_total.load(Ordering::Relaxed)
    }

    /// Per-client `(key, admitted, shed)` counters, sorted by key for a
    /// deterministic exposition.
    pub fn per_client(&self) -> Vec<(String, u64, u64)> {
        let buckets = self.buckets.lock().expect("quota lock");
        let mut rows: Vec<(String, u64, u64)> =
            buckets.iter().map(|(k, b)| (k.clone(), b.admitted, b.shed)).collect();
        rows.sort();
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_quota_always_admits() {
        let q = QuotaTable::new(QuotaConfig::default());
        for _ in 0..1000 {
            assert_eq!(q.check("anyone"), QuotaDecision::Admit);
        }
        assert_eq!(q.shed_total(), 0);
    }

    #[test]
    fn burst_then_shed_is_per_client() {
        let q = QuotaTable::new(QuotaConfig { rps: 0.001, burst: 3.0 });
        for _ in 0..3 {
            assert_eq!(q.check("a"), QuotaDecision::Admit);
        }
        // Bucket empty, refill negligible at 0.001 rps.
        assert_eq!(q.check("a"), QuotaDecision::Shed);
        assert_eq!(q.check("a"), QuotaDecision::Shed);
        // An unrelated client still has its full burst.
        assert_eq!(q.check("b"), QuotaDecision::Admit);
        assert_eq!(q.shed_total(), 2);
        let rows = q.per_client();
        assert_eq!(rows, vec![("a".into(), 3, 2), ("b".into(), 1, 0)]);
    }

    #[test]
    fn refill_restores_tokens() {
        let q = QuotaTable::new(QuotaConfig { rps: 1000.0, burst: 1.0 });
        assert_eq!(q.check("c"), QuotaDecision::Admit);
        // At 1000 tokens/sec a few ms restores the single-token bucket.
        std::thread::sleep(std::time::Duration::from_millis(5));
        assert_eq!(q.check("c"), QuotaDecision::Admit);
    }

    #[test]
    fn table_growth_is_bounded() {
        let q = QuotaTable::new(QuotaConfig { rps: 0.001, burst: 1.0 });
        for i in 0..(QuotaTable::MAX_CLIENTS + 50) {
            q.check(&format!("client-{i}"));
        }
        let rows = q.per_client();
        // MAX_CLIENTS distinct buckets plus the shared overflow bucket.
        assert_eq!(rows.len(), QuotaTable::MAX_CLIENTS + 1);
        assert!(rows.iter().any(|(k, _, _)| k == "_overflow"));
    }
}
