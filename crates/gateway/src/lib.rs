//! `slade_gateway` — a dependency-free HTTP/1.1 front-end over the
//! serving runtime's admission tier ([`slade_serve::ServeRuntime`]).
//!
//! The workspace is offline/vendored, so the server is hand-rolled on
//! `std::net` (no tokio/hyper): an acceptor thread feeds a bounded
//! connection queue, a small pool of connection workers parses requests
//! with the hardened reader in [`http`], and — the load-bearing design
//! point — decompile responses are delivered by a **separate** delivery
//! pool that polls [`slade_serve::RequestHandle::try_take`], so one slow
//! decode never pins a connection worker. Admission is layered:
//! per-client token buckets ([`quota`]) shed abusive clients with `429`
//! before the runtime's global `queue_cap` sheds everyone with `429`,
//! and the two sheds stay separately attributable in the conservation
//! accounting (DESIGN.md §13).
//!
//! Routes: `POST /v1/decompile` (JSON in, JSON or chunked NDJSON out),
//! `GET /metrics` (runtime + `slade_gateway_*` Prometheus families),
//! `GET /healthz`. Shutdown drains gracefully: stop accepting, finish
//! in-flight deliveries, give up with `503` at a bounded deadline.

pub mod http;
mod metrics;
pub mod quota;

pub use metrics::{ClientQuota, GatewaySnapshot, StatusCount};

use http::{Limits, Outcome, Request};
use metrics::GwMetrics;
use quota::{QuotaConfig, QuotaDecision, QuotaTable};
use serde::Serialize;
use serde_json::Value;
use slade_compiler::{Isa, OptLevel};
use slade_serve::{RequestHandle, ServeRuntime, SubmitError};
use std::collections::VecDeque;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Gateway tuning; [`GatewayConfig::default`] suits tests and small
/// deployments.
#[derive(Debug, Clone)]
pub struct GatewayConfig {
    /// Bind address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Connection workers: threads parsing requests and writing
    /// immediate responses.
    pub conn_threads: usize,
    /// Delivery workers: threads polling in-flight decompile handles.
    pub delivery_threads: usize,
    /// Parser hardening limits.
    pub limits: Limits,
    /// Socket read/write timeout — the slowloris guard; a peer that
    /// stalls a request longer than this gets `408`.
    pub read_timeout: Duration,
    /// How long a delivery may poll before answering `504`. Configure
    /// [`slade_serve::ServeConfig::with_request_timeout`] alongside so
    /// the runtime expires the job too.
    pub poll_timeout: Duration,
    /// Per-client token buckets (`rps <= 0` disables).
    pub quota: QuotaConfig,
    /// Accepted connections waiting for a worker before the acceptor
    /// sheds new ones with `503`.
    pub conn_backlog: usize,
    /// Grace given to in-flight deliveries at shutdown before they are
    /// abandoned with `503`.
    pub drain_deadline: Duration,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        GatewayConfig {
            addr: "127.0.0.1:0".to_string(),
            conn_threads: 4,
            delivery_threads: 2,
            limits: Limits::default(),
            read_timeout: Duration::from_secs(5),
            poll_timeout: Duration::from_secs(30),
            quota: QuotaConfig::default(),
            conn_backlog: 64,
            drain_deadline: Duration::from_secs(5),
        }
    }
}

/// One live connection: the socket plus its pipelining carry buffer and
/// the gauge guard that keeps `connections_active` honest on every exit
/// path (including panics and drain drops).
struct Conn {
    stream: TcpStream,
    carry: Vec<u8>,
    /// Peer IP (no port) — the quota key when `x-slade-client` is absent.
    peer: String,
    _active: ActiveGuard,
}

/// Decrements `connections_active` when the connection dies.
struct ActiveGuard(Arc<Inner>);

impl Drop for ActiveGuard {
    fn drop(&mut self) {
        self.0.metrics.connections_active.fetch_sub(1, Ordering::Relaxed);
    }
}

/// An admitted decompile waiting for its result: the connection moves
/// from the connection pool to the delivery pool with it.
struct Delivery {
    conn: Conn,
    handle: RequestHandle,
    /// Poll deadline (`now + poll_timeout` at submit).
    deadline: Instant,
    keep_alive: bool,
    /// Stream candidates as chunked NDJSON instead of one JSON body.
    stream: bool,
    /// Client-requested beam narrower than the model's (`beam` option).
    beam_cap: Option<usize>,
}

/// State shared by every gateway thread.
struct Inner {
    runtime: Arc<ServeRuntime>,
    cfg: GatewayConfig,
    metrics: GwMetrics,
    quota: QuotaTable,
    shutdown: AtomicBool,
    /// Drain deadline, set once at shutdown.
    drain_by: Mutex<Option<Instant>>,
    conns: (Mutex<VecDeque<Conn>>, Condvar),
    deliveries: (Mutex<VecDeque<Delivery>>, Condvar),
    pending_deliveries: AtomicUsize,
}

impl Inner {
    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }

    /// The effective deadline for `d` — its own poll deadline, capped by
    /// the drain deadline once shutdown starts.
    fn effective_deadline(&self, d: &Delivery) -> Instant {
        match *self.drain_by.lock().expect("drain lock") {
            Some(by) => d.deadline.min(by),
            None => d.deadline,
        }
    }
}

/// JSON error body for every non-200 answer.
#[derive(Serialize)]
struct ErrorBody {
    error: String,
}

/// JSON success body for buffered (non-streaming) decompiles.
#[derive(Serialize)]
struct DecompileBody {
    trace_id: u64,
    candidates: Vec<String>,
}

/// JSON body for `GET /healthz`.
#[derive(Serialize)]
struct HealthBody {
    status: String,
    draining: bool,
}

fn json_error(reason: &str) -> Vec<u8> {
    serde_json::to_string(&ErrorBody { error: reason.to_string() })
        .expect("error body serializes")
        .into_bytes()
}

/// What routing decided for one parsed request.
enum Routed {
    /// Write `status` + JSON `body` now, on the connection worker.
    Immediate { status: u16, content_type: &'static str, body: Vec<u8> },
    /// Admitted: hand the connection to the delivery pool.
    Submitted { handle: RequestHandle, stream: bool, beam_cap: Option<usize> },
}

fn immediate(status: u16, reason: &str) -> Routed {
    Routed::Immediate { status, content_type: "application/json", body: json_error(reason) }
}

/// The HTTP/1.1 front-end. Dropping it (or calling
/// [`Gateway::shutdown`]) drains and joins every thread.
pub struct Gateway {
    inner: Arc<Inner>,
    local_addr: SocketAddr,
    threads: Vec<JoinHandle<()>>,
}

impl Gateway {
    /// Binds `cfg.addr` and starts the acceptor, connection, and
    /// delivery threads.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn start(runtime: Arc<ServeRuntime>, cfg: GatewayConfig) -> io::Result<Gateway> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let local_addr = listener.local_addr()?;
        let inner = Arc::new(Inner {
            runtime,
            quota: QuotaTable::new(cfg.quota),
            cfg,
            metrics: GwMetrics::default(),
            shutdown: AtomicBool::new(false),
            drain_by: Mutex::new(None),
            conns: (Mutex::new(VecDeque::new()), Condvar::new()),
            deliveries: (Mutex::new(VecDeque::new()), Condvar::new()),
            pending_deliveries: AtomicUsize::new(0),
        });
        let mut threads = Vec::new();
        {
            let inner = Arc::clone(&inner);
            threads.push(
                std::thread::Builder::new()
                    .name("gw-accept".into())
                    .spawn(move || accept_loop(&inner, listener))
                    .expect("spawn acceptor"),
            );
        }
        for i in 0..inner.cfg.conn_threads.max(1) {
            let inner = Arc::clone(&inner);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("gw-conn-{i}"))
                    .spawn(move || conn_loop(&inner))
                    .expect("spawn conn worker"),
            );
        }
        for i in 0..inner.cfg.delivery_threads.max(1) {
            let inner = Arc::clone(&inner);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("gw-deliver-{i}"))
                    .spawn(move || delivery_loop(&inner))
                    .expect("spawn delivery worker"),
            );
        }
        Ok(Gateway { inner, local_addr, threads })
    }

    /// The bound address (resolves `:0` to the ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The runtime this gateway fronts.
    pub fn runtime(&self) -> &Arc<ServeRuntime> {
        &self.inner.runtime
    }

    /// Combined Prometheus exposition: the runtime's document with the
    /// `slade_gateway_*` families appended (family names are disjoint,
    /// so the result still passes `validate_exposition`).
    pub fn metrics_text(&self) -> String {
        let mut doc = self.inner.runtime.metrics_text();
        doc.push_str(&self.inner.metrics.prometheus(
            self.inner.quota.shed_total(),
            &self.inner.quota.per_client(),
            self.inner.pending_deliveries.load(Ordering::Relaxed),
        ));
        doc
    }

    /// Point-in-time gateway counters (runtime counters come from
    /// [`ServeRuntime::metrics`]).
    pub fn metrics(&self) -> GatewaySnapshot {
        self.inner.metrics.snapshot(
            self.inner.quota.shed_total(),
            &self.inner.quota.per_client(),
            self.inner.pending_deliveries.load(Ordering::Relaxed),
        )
    }

    /// Graceful drain: stop accepting, close idle connections, let
    /// in-flight deliveries finish until the drain deadline, then join
    /// every thread. (Dropping the gateway does the same.)
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        if self.inner.shutdown.swap(true, Ordering::AcqRel) {
            return;
        }
        self.inner.metrics.draining.store(true, Ordering::Relaxed);
        *self.inner.drain_by.lock().expect("drain lock") =
            Some(Instant::now() + self.inner.cfg.drain_deadline);
        // Wake the acceptor out of its blocking accept().
        let _ = TcpStream::connect(self.local_addr);
        self.inner.conns.1.notify_all();
        self.inner.deliveries.1.notify_all();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        // Belt and braces against enqueue/exit races: anything still
        // queued holds an `ActiveGuard(Arc<Inner>)`, which would keep
        // `Inner` (and the runtime behind it) alive in a cycle.
        self.inner.conns.0.lock().expect("conn lock").clear();
        self.inner.deliveries.0.lock().expect("delivery lock").clear();
    }
}

impl Drop for Gateway {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

fn accept_loop(inner: &Arc<Inner>, listener: TcpListener) {
    loop {
        let (stream, peer) = match listener.accept() {
            Ok(pair) => pair,
            Err(_) => {
                if inner.shutting_down() {
                    return;
                }
                continue;
            }
        };
        if inner.shutting_down() {
            return; // the wake-up connection (or a late arrival)
        }
        inner.metrics.connections.fetch_add(1, Ordering::Relaxed);
        inner.metrics.connections_active.fetch_add(1, Ordering::Relaxed);
        let _ = stream.set_read_timeout(Some(inner.cfg.read_timeout));
        let _ = stream.set_write_timeout(Some(inner.cfg.read_timeout));
        let _ = stream.set_nodelay(true);
        let mut conn = Conn {
            stream,
            carry: Vec::new(),
            peer: peer.ip().to_string(),
            _active: ActiveGuard(Arc::clone(inner)),
        };
        let mut q = inner.conns.0.lock().expect("conn lock");
        if q.len() >= inner.cfg.conn_backlog {
            drop(q);
            inner.metrics.backlog_shed.fetch_add(1, Ordering::Relaxed);
            respond(
                inner,
                &mut conn,
                503,
                "application/json",
                &json_error("overloaded"),
                false,
            );
            continue; // conn drops here
        }
        q.push_back(conn);
        drop(q);
        inner.conns.1.notify_one();
    }
}

fn conn_loop(inner: &Arc<Inner>) {
    loop {
        let conn = {
            let mut q = inner.conns.0.lock().expect("conn lock");
            loop {
                if inner.shutting_down() {
                    q.clear(); // drain: close queued idle connections
                    return;
                }
                if let Some(c) = q.pop_front() {
                    break c;
                }
                q = inner.conns.1.wait(q).expect("conn wait");
            }
        };
        serve_conn(inner, conn);
    }
}

/// Serves requests on one connection until it closes, errors, hands off
/// to the delivery pool, or shutdown starts.
fn serve_conn(inner: &Arc<Inner>, mut conn: Conn) {
    loop {
        if inner.shutting_down() {
            return;
        }
        match http::read_request(&mut conn.stream, &mut conn.carry, &inner.cfg.limits) {
            Outcome::Closed => return,
            Outcome::Reject { status, reason } => {
                inner.metrics.parse_rejects.fetch_add(1, Ordering::Relaxed);
                respond(
                    inner,
                    &mut conn,
                    status,
                    "application/json",
                    &json_error(&reason),
                    false,
                );
                return;
            }
            Outcome::Request(req) => {
                let keep_alive = req.keep_alive;
                match route(inner, &req, &conn.peer) {
                    Routed::Immediate { status, content_type, body } => {
                        if !respond(inner, &mut conn, status, content_type, &body, keep_alive)
                            || !keep_alive
                        {
                            return;
                        }
                    }
                    Routed::Submitted { handle, stream, beam_cap } => {
                        inner.pending_deliveries.fetch_add(1, Ordering::Relaxed);
                        let delivery = Delivery {
                            conn,
                            handle,
                            deadline: Instant::now() + inner.cfg.poll_timeout,
                            keep_alive,
                            stream,
                            beam_cap,
                        };
                        inner.deliveries.0.lock().expect("delivery lock").push_back(delivery);
                        inner.deliveries.1.notify_one();
                        return; // the delivery pool owns the conn now
                    }
                }
            }
        }
    }
}

/// Writes a fixed-length response and counts its status; returns whether
/// the write succeeded (a failed write closes the connection).
fn respond(
    inner: &Arc<Inner>,
    conn: &mut Conn,
    status: u16,
    content_type: &str,
    body: &[u8],
    keep_alive: bool,
) -> bool {
    inner.metrics.bump_status(status);
    http::write_response(&mut conn.stream, status, content_type, body, keep_alive).is_ok()
}

fn route(inner: &Arc<Inner>, req: &Request, peer: &str) -> Routed {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => {
            let body = serde_json::to_string(&HealthBody {
                status: "ok".to_string(),
                draining: inner.shutting_down(),
            })
            .expect("health body serializes");
            Routed::Immediate {
                status: 200,
                content_type: "application/json",
                body: body.into_bytes(),
            }
        }
        ("GET", "/metrics") => {
            let mut doc = inner.runtime.metrics_text();
            doc.push_str(&inner.metrics.prometheus(
                inner.quota.shed_total(),
                &inner.quota.per_client(),
                inner.pending_deliveries.load(Ordering::Relaxed),
            ));
            Routed::Immediate {
                status: 200,
                content_type: "text/plain; version=0.0.4",
                body: doc.into_bytes(),
            }
        }
        ("POST", "/v1/decompile") => route_decompile(inner, req, peer),
        (_, "/healthz") | (_, "/metrics") => immediate(405, "method not allowed"),
        (_, "/v1/decompile") => immediate(405, "method not allowed"),
        _ => immediate(404, "no such route"),
    }
}

/// Parses and validates a decompile submission, checks quota, and
/// submits to the runtime.
fn route_decompile(inner: &Arc<Inner>, req: &Request, peer: &str) -> Routed {
    let Ok(text) = std::str::from_utf8(&req.body) else {
        return immediate(400, "body is not UTF-8");
    };
    let Ok(value) = Value::parse(text) else {
        return immediate(400, "body is not valid JSON");
    };
    let Some(obj) = value.as_object() else {
        return immediate(400, "body must be a JSON object");
    };
    let asm = match obj.get("asm").and_then(Value::as_str) {
        Some(s) if !s.trim().is_empty() => s,
        Some(_) => return immediate(400, "`asm` must not be empty"),
        None => return immediate(400, "`asm` (string) is required"),
    };
    let slade = inner.runtime.slade();
    // Optional options must match the served model: the gateway fronts
    // one model, so a mismatch is a conflict (409), not a bad request.
    if let Some(v) = obj.get("isa") {
        let Some(isa) = v.as_str().and_then(parse_isa) else {
            return immediate(400, "`isa` must be one of x86|x86_64|arm|arm64|aarch64");
        };
        if isa != slade.isa() {
            return immediate(409, &format!("served model targets isa `{}`", slade.isa()));
        }
    }
    if let Some(v) = obj.get("opt") {
        let Some(opt) = v.as_str().and_then(parse_opt) else {
            return immediate(400, "`opt` must be O0 or O3");
        };
        if opt != slade.opt() {
            return immediate(409, &format!("served model targets opt `{}`", slade.opt()));
        }
    }
    let beam_cap = match obj.get("beam") {
        None => None,
        Some(Value::UInt(n)) if *n >= 1 => {
            let n = *n as usize;
            if n > slade.beam() {
                return immediate(
                    409,
                    &format!("served model decodes beam {}, requested {n}", slade.beam()),
                );
            }
            Some(n)
        }
        Some(Value::Int(n)) if *n >= 1 && (*n as usize) <= slade.beam() => Some(*n as usize),
        Some(_) => {
            return immediate(
                400,
                &format!("`beam` must be an integer in 1..={}", slade.beam()),
            )
        }
    };
    let stream = match obj.get("stream") {
        None => false,
        Some(Value::Bool(b)) => *b,
        Some(_) => return immediate(400, "`stream` must be a boolean"),
    };
    if inner.shutting_down() {
        return immediate(503, "draining");
    }
    // Offered counts every submission that passed parsing + validation,
    // *before* quota: the edge identity is
    // `offered == quota_shed + runtime.submitted` (DESIGN.md §13).
    inner.metrics.decompile_offered.fetch_add(1, Ordering::Relaxed);
    let client = req.header("x-slade-client").unwrap_or(peer);
    if inner.quota.check(client) == QuotaDecision::Shed {
        return immediate(429, "per-client quota exceeded");
    }
    match inner.runtime.try_submit(asm) {
        Ok(handle) => Routed::Submitted { handle, stream, beam_cap },
        Err(SubmitError::Overloaded) => {
            inner.metrics.overload_shed.fetch_add(1, Ordering::Relaxed);
            immediate(429, "admission queue at capacity")
        }
        Err(SubmitError::DeadlineExceeded) => immediate(504, "deadline exceeded"),
    }
}

fn parse_isa(s: &str) -> Option<Isa> {
    match s.to_ascii_lowercase().as_str() {
        "x86" | "x86_64" | "x86-64" => Some(Isa::X86_64),
        "arm" | "arm64" | "aarch64" => Some(Isa::Arm64),
        _ => None,
    }
}

fn parse_opt(s: &str) -> Option<OptLevel> {
    match s.to_ascii_uppercase().as_str() {
        "O0" => Some(OptLevel::O0),
        "O3" => Some(OptLevel::O3),
        _ => None,
    }
}

fn delivery_loop(inner: &Arc<Inner>) {
    loop {
        let delivery = {
            let mut q = inner.deliveries.0.lock().expect("delivery lock");
            loop {
                if let Some(d) = q.pop_front() {
                    break d;
                }
                if inner.shutting_down() {
                    return;
                }
                let (guard, _) = inner
                    .deliveries
                    .1
                    .wait_timeout(q, Duration::from_millis(20))
                    .expect("delivery wait");
                q = guard;
            }
        };
        match delivery.handle.try_take() {
            Some(outcome) => finish_delivery(inner, delivery, outcome),
            None => {
                if Instant::now() >= inner.effective_deadline(&delivery) {
                    let drained = inner.shutting_down();
                    let (status, reason) = if drained {
                        inner.metrics.drain_aborts.fetch_add(1, Ordering::Relaxed);
                        (503, "abandoned at drain deadline")
                    } else {
                        inner.metrics.poll_timeouts.fetch_add(1, Ordering::Relaxed);
                        (504, "deadline exceeded before a result")
                    };
                    let Delivery { mut conn, .. } = delivery;
                    inner.pending_deliveries.fetch_sub(1, Ordering::Relaxed);
                    respond(
                        inner,
                        &mut conn,
                        status,
                        "application/json",
                        &json_error(reason),
                        false,
                    );
                } else {
                    // Not ready: requeue and yield briefly so a pool
                    // with only unready items does not spin.
                    inner.deliveries.0.lock().expect("delivery lock").push_back(delivery);
                    std::thread::sleep(Duration::from_millis(1));
                }
            }
        }
    }
}

/// Writes the final response for a completed request and, on keep-alive,
/// hands the connection back to the connection pool.
fn finish_delivery(
    inner: &Arc<Inner>,
    delivery: Delivery,
    outcome: Result<Vec<String>, SubmitError>,
) {
    let Delivery { mut conn, handle, keep_alive, stream, beam_cap, .. } = delivery;
    inner.pending_deliveries.fetch_sub(1, Ordering::Relaxed);
    let keep_alive = keep_alive && !inner.shutting_down();
    let wrote = match outcome {
        Ok(mut candidates) => {
            if let Some(cap) = beam_cap {
                candidates.truncate(cap);
            }
            if stream {
                inner.metrics.streamed.fetch_add(1, Ordering::Relaxed);
                inner.metrics.bump_status(200);
                write_stream(&mut conn.stream, handle.trace_id(), &candidates, keep_alive)
                    .is_ok()
            } else {
                let body = serde_json::to_string(&DecompileBody {
                    trace_id: handle.trace_id(),
                    candidates,
                })
                .expect("decompile body serializes");
                respond(inner, &mut conn, 200, "application/json", body.as_bytes(), keep_alive)
            }
        }
        Err(SubmitError::DeadlineExceeded) => {
            inner.metrics.poll_timeouts.fetch_add(1, Ordering::Relaxed);
            respond(
                inner,
                &mut conn,
                504,
                "application/json",
                &json_error("deadline exceeded before a result"),
                keep_alive,
            )
        }
        Err(SubmitError::Overloaded) => {
            // Unreachable post-admission, but keep the mapping total.
            inner.metrics.overload_shed.fetch_add(1, Ordering::Relaxed);
            respond(
                inner,
                &mut conn,
                429,
                "application/json",
                &json_error("admission queue at capacity"),
                keep_alive,
            )
        }
    };
    // Re-check the flag at enqueue time: shutdown may have started
    // while the response was being written, and a conn parked in the
    // queue after the workers exit would never be popped — its
    // `ActiveGuard` would then cycle `Inner → queue → conn → Inner`.
    if wrote && keep_alive && !inner.shutting_down() {
        inner.conns.0.lock().expect("conn lock").push_back(conn);
        inner.conns.1.notify_one();
    }
}

/// Streams candidates as chunked NDJSON: one `{"index","candidate"}`
/// line per hypothesis as it is written, then a `{"done":true}` trailer
/// with the count and trace id.
fn write_stream(
    stream: &mut TcpStream,
    trace_id: u64,
    candidates: &[String],
    keep_alive: bool,
) -> io::Result<()> {
    #[derive(Serialize)]
    struct Line {
        index: usize,
        candidate: String,
    }
    #[derive(Serialize)]
    struct Trailer {
        done: bool,
        count: usize,
        trace_id: u64,
    }
    http::write_chunked_head(stream, 200, "application/x-ndjson", keep_alive)?;
    for (index, candidate) in candidates.iter().enumerate() {
        let line = serde_json::to_string(&Line { index, candidate: candidate.clone() })
            .expect("stream line serializes");
        http::write_chunk(stream, format!("{line}\n").as_bytes())?;
    }
    let trailer =
        serde_json::to_string(&Trailer { done: true, count: candidates.len(), trace_id })
            .expect("trailer serializes");
    http::write_chunk(stream, format!("{trailer}\n").as_bytes())?;
    http::finish_chunked(stream)
}
