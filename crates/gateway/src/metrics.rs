//! Gateway-side metrics: wire/edge counters the serving runtime cannot
//! see (connections, HTTP statuses, parse rejects, quota sheds), kept as
//! relaxed atomics and exported as `slade_gateway_*` Prometheus families
//! appended to [`slade_serve::ServeRuntime::metrics_text`]'s document.
//!
//! The edge extends the admission tier's conservation invariant
//! (DESIGN.md §13): every decompile submission that passes parsing and
//! validation is counted in `decompile_offered`, and
//!
//! ```text
//! decompile_offered == quota_shed + runtime.submitted
//! ```
//!
//! when the gateway is the runtime's only client — quota sheds never
//! reach `try_submit`, everything else lands in exactly one runtime
//! terminal state (`shed`/`expired`/`coalesced`/`decoded`/`hits`).

use serde::Serialize;
use slade_obs::export::PromText;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};

/// Status codes the gateway emits, each with its own counter slot (an
/// unexpected code lands in the `other` slot rather than being lost).
pub(crate) const STATUS_CODES: [u16; 15] =
    [200, 400, 404, 405, 408, 409, 411, 413, 429, 431, 500, 501, 503, 504, 505];

/// Shared mutable gateway metrics (one per gateway).
#[derive(Debug, Default)]
pub(crate) struct GwMetrics {
    /// Connections accepted by the listener.
    pub connections: AtomicU64,
    /// Currently open connections (gauge; guard-decremented on close).
    pub connections_active: AtomicUsize,
    /// Connections refused because the connection queue was at backlog.
    pub backlog_shed: AtomicU64,
    /// Requests rejected by the HTTP parser (maps 1:1 onto 4xx/5xx
    /// reject statuses, before any routing).
    pub parse_rejects: AtomicU64,
    /// Decompile submissions that passed parse + validation (the
    /// left-hand side of the edge conservation identity).
    pub decompile_offered: AtomicU64,
    /// Decompile submissions answered 429 because the runtime queue was
    /// at `queue_cap` (`SubmitError::Overloaded`).
    pub overload_shed: AtomicU64,
    /// Deliveries answered 504 because polling outlived the deadline.
    pub poll_timeouts: AtomicU64,
    /// Responses streamed with chunked transfer-encoding.
    pub streamed: AtomicU64,
    /// Deliveries answered 503 because drain gave up on them.
    pub drain_aborts: AtomicU64,
    /// Whether the gateway is draining (shutdown in progress).
    pub draining: AtomicBool,
    /// Responses by status code, slots matching [`STATUS_CODES`].
    status: [AtomicU64; STATUS_CODES.len()],
    /// Responses with a status outside [`STATUS_CODES`].
    status_other: AtomicU64,
}

impl GwMetrics {
    /// Counts one response with `code`.
    pub fn bump_status(&self, code: u16) {
        match STATUS_CODES.iter().position(|&c| c == code) {
            Some(i) => self.status[i].fetch_add(1, Ordering::Relaxed),
            None => self.status_other.fetch_add(1, Ordering::Relaxed),
        };
    }

    /// Point-in-time snapshot.
    pub fn snapshot(
        &self,
        quota_shed: u64,
        quota_clients: &[(String, u64, u64)],
        pending_deliveries: usize,
    ) -> GatewaySnapshot {
        let by_status: Vec<StatusCount> = STATUS_CODES
            .iter()
            .zip(self.status.iter())
            .map(|(&code, slot)| StatusCount { code, count: slot.load(Ordering::Relaxed) })
            .filter(|s| s.count > 0)
            .collect();
        GatewaySnapshot {
            connections: self.connections.load(Ordering::Relaxed),
            connections_active: self.connections_active.load(Ordering::Relaxed),
            backlog_shed: self.backlog_shed.load(Ordering::Relaxed),
            parse_rejects: self.parse_rejects.load(Ordering::Relaxed),
            requests: by_status.iter().map(|s| s.count).sum::<u64>()
                + self.status_other.load(Ordering::Relaxed),
            by_status,
            decompile_offered: self.decompile_offered.load(Ordering::Relaxed),
            quota_shed,
            quota_clients: quota_clients
                .iter()
                .map(|(k, admitted, shed)| ClientQuota {
                    client: k.clone(),
                    admitted: *admitted,
                    shed: *shed,
                })
                .collect(),
            overload_shed: self.overload_shed.load(Ordering::Relaxed),
            poll_timeouts: self.poll_timeouts.load(Ordering::Relaxed),
            streamed: self.streamed.load(Ordering::Relaxed),
            drain_aborts: self.drain_aborts.load(Ordering::Relaxed),
            pending_deliveries,
            draining: self.draining.load(Ordering::Relaxed),
        }
    }

    /// The `slade_gateway_*` families as one exposition fragment
    /// (appended to the runtime's document; family names are disjoint by
    /// the `slade_gateway_` prefix, so the combined text stays valid).
    pub fn prometheus(
        &self,
        quota_shed: u64,
        quota_clients: &[(String, u64, u64)],
        pending_deliveries: usize,
    ) -> String {
        let mut p = PromText::new();
        p.counter(
            "slade_gateway_connections_total",
            "TCP connections accepted by the gateway listener.",
            self.connections.load(Ordering::Relaxed),
        );
        p.gauge(
            "slade_gateway_connections_active",
            "Connections currently open.",
            self.connections_active.load(Ordering::Relaxed) as f64,
        );
        p.counter(
            "slade_gateway_backlog_shed_total",
            "Connections refused at the connection-queue backlog cap.",
            self.backlog_shed.load(Ordering::Relaxed),
        );
        let mut by_status: Vec<(String, u64)> = STATUS_CODES
            .iter()
            .zip(self.status.iter())
            .map(|(&code, slot)| (code.to_string(), slot.load(Ordering::Relaxed)))
            .filter(|(_, n)| *n > 0)
            .collect();
        let other = self.status_other.load(Ordering::Relaxed);
        if other > 0 {
            by_status.push(("other".to_string(), other));
        }
        p.counter_series(
            "slade_gateway_requests_total",
            "HTTP responses by status code.",
            "code",
            &by_status,
        );
        p.counter(
            "slade_gateway_parse_rejects_total",
            "Requests rejected by the HTTP parser (malformed, oversized, timed out).",
            self.parse_rejects.load(Ordering::Relaxed),
        );
        p.counter(
            "slade_gateway_decompile_offered_total",
            "Decompile submissions that passed parsing and validation.",
            self.decompile_offered.load(Ordering::Relaxed),
        );
        p.counter(
            "slade_gateway_quota_shed_total",
            "Decompile submissions shed by per-client token buckets.",
            quota_shed,
        );
        // Per-client shed cardinality is bounded: only clients that were
        // actually shed, capped at 64 series (heaviest first).
        let mut shed_rows: Vec<(String, u64)> = quota_clients
            .iter()
            .filter(|(_, _, shed)| *shed > 0)
            .map(|(k, _, shed)| (k.clone(), *shed))
            .collect();
        shed_rows.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        shed_rows.truncate(64);
        if !shed_rows.is_empty() {
            p.counter_series(
                "slade_gateway_quota_shed_client_total",
                "Quota sheds per client (top 64 clients by shed count).",
                "client",
                &shed_rows,
            );
        }
        p.counter(
            "slade_gateway_overload_shed_total",
            "Decompile submissions answered 429 by the runtime queue cap.",
            self.overload_shed.load(Ordering::Relaxed),
        );
        p.counter(
            "slade_gateway_poll_timeouts_total",
            "Deliveries answered 504 after the polling deadline.",
            self.poll_timeouts.load(Ordering::Relaxed),
        );
        p.counter(
            "slade_gateway_streams_total",
            "Responses streamed with chunked transfer-encoding.",
            self.streamed.load(Ordering::Relaxed),
        );
        p.counter(
            "slade_gateway_drain_aborts_total",
            "In-flight deliveries abandoned (503) at the drain deadline.",
            self.drain_aborts.load(Ordering::Relaxed),
        );
        p.gauge(
            "slade_gateway_pending_deliveries",
            "Requests submitted to the runtime, response not yet written.",
            pending_deliveries as f64,
        );
        p.gauge(
            "slade_gateway_draining",
            "1 while the gateway is draining for shutdown.",
            if self.draining.load(Ordering::Relaxed) { 1.0 } else { 0.0 },
        );
        p.finish()
    }
}

/// One status-code slice of [`GatewaySnapshot::by_status`].
#[derive(Debug, Clone, Serialize)]
pub struct StatusCount {
    /// HTTP status code.
    pub code: u16,
    /// Responses with that code.
    pub count: u64,
}

/// One client's quota accounting.
#[derive(Debug, Clone, Serialize)]
pub struct ClientQuota {
    /// Client key (`x-slade-client` header value or peer IP).
    pub client: String,
    /// Submissions admitted through the bucket.
    pub admitted: u64,
    /// Submissions shed by the bucket.
    pub shed: u64,
}

/// Point-in-time view of the gateway edge.
#[derive(Debug, Clone, Serialize)]
pub struct GatewaySnapshot {
    /// Connections accepted so far.
    pub connections: u64,
    /// Connections open right now.
    pub connections_active: usize,
    /// Connections refused at the backlog cap.
    pub backlog_shed: u64,
    /// Requests rejected by the HTTP parser.
    pub parse_rejects: u64,
    /// Total HTTP responses written.
    pub requests: u64,
    /// Responses by status code (non-zero slots only).
    pub by_status: Vec<StatusCount>,
    /// Decompile submissions that passed parsing and validation.
    pub decompile_offered: u64,
    /// Submissions shed by per-client quotas (never reached the runtime).
    pub quota_shed: u64,
    /// Per-client quota accounting.
    pub quota_clients: Vec<ClientQuota>,
    /// Submissions answered 429 by the runtime's global queue cap.
    pub overload_shed: u64,
    /// Deliveries answered 504 after the polling deadline.
    pub poll_timeouts: u64,
    /// Responses streamed with chunked transfer-encoding.
    pub streamed: u64,
    /// Deliveries abandoned (503) at the drain deadline.
    pub drain_aborts: u64,
    /// Requests in the runtime with no response written yet.
    pub pending_deliveries: usize,
    /// Whether shutdown drain is in progress.
    pub draining: bool,
}

#[cfg(test)]
mod tests {
    use super::*;
    use slade_obs::export::validate_exposition;

    #[test]
    fn exposition_fragment_validates_and_counts() {
        let m = GwMetrics::default();
        m.connections.fetch_add(3, Ordering::Relaxed);
        m.bump_status(200);
        m.bump_status(200);
        m.bump_status(429);
        m.bump_status(777); // unexpected code → "other"
        let clients = vec![("a".to_string(), 5, 2), ("b".to_string(), 1, 0)];
        let text = m.prometheus(2, &clients, 1);
        let stats = validate_exposition(&text).expect("valid fragment");
        assert!(stats.families >= 10, "families: {}", stats.families);
        assert!(text.contains("slade_gateway_requests_total{code=\"200\"} 2"));
        assert!(text.contains("slade_gateway_requests_total{code=\"other\"} 1"));
        assert!(text.contains("slade_gateway_quota_shed_client_total{client=\"a\"} 2"));
        assert!(!text.contains("client=\"b\""), "zero-shed clients are not exported");
        let snap = m.snapshot(2, &clients, 1);
        assert_eq!(snap.requests, 4);
        assert_eq!(snap.status_other_free_total(), 3);
    }

    impl GatewaySnapshot {
        /// Test helper: responses accounted to a known status slot.
        fn status_other_free_total(&self) -> u64 {
            self.by_status.iter().map(|s| s.count).sum()
        }
    }
}
