//! Hand-rolled, hardened HTTP/1.1 support on `std::net` — the workspace
//! is offline/vendored, so there is no hyper/tokio to lean on.
//!
//! The request reader is written for a hostile network edge: every limit
//! is explicit ([`Limits`]), a stalled peer hits the socket read timeout
//! and gets `408` (slowloris guard), malformed framing gets a specific
//! `4xx`/`5xx` and a closed connection, and no input — truncated,
//! oversized, non-UTF-8, pipelined garbage — may panic or hang
//! (`tests/parser_fuzz.rs` drives this with proptest). Bytes read past
//! one request's body stay in the connection's carry buffer so pipelined
//! requests are parsed in order, never dropped.
//!
//! The module also carries the response writers (fixed-length and
//! chunked transfer-encoding, used for streaming beam candidates) and a
//! tiny blocking client ([`request`] / [`get_url`]) that the CLI's
//! `stats --url` scrape mode, the benches, and the end-to-end tests
//! reuse instead of shelling out to curl.

use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Parser hardening limits; every bound maps to a specific reject
/// status rather than unbounded buffering.
#[derive(Debug, Clone)]
pub struct Limits {
    /// Request line + headers byte cap (`431` past it).
    pub max_header_bytes: usize,
    /// `content-length` cap (`413` past it).
    pub max_body_bytes: usize,
    /// Header count cap (`431` past it).
    pub max_headers: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits { max_header_bytes: 8 * 1024, max_body_bytes: 1 << 20, max_headers: 64 }
    }
}

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    /// Uppercase method token.
    pub method: String,
    /// Request target (origin form, starts with `/`).
    pub path: String,
    /// Headers with lowercased names, in arrival order.
    pub headers: Vec<(String, String)>,
    /// Raw body bytes (`content-length` framed).
    pub body: Vec<u8>,
    /// Whether the connection should persist after the response
    /// (HTTP/1.1 default, `connection` header honored both ways).
    pub keep_alive: bool,
}

impl Request {
    /// First value of a header by lowercase name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
    }
}

/// What one read attempt produced.
#[derive(Debug)]
pub enum Outcome {
    /// A complete, well-formed request.
    Request(Request),
    /// Peer closed (or I/O failed) at a request boundary — hang up
    /// silently; there is nothing to answer.
    Closed,
    /// Protocol violation: answer `status` and close the connection.
    Reject {
        /// HTTP status to answer with (4xx/5xx).
        status: u16,
        /// Human-readable violation, returned in the JSON error body.
        reason: String,
    },
}

fn reject(status: u16, reason: impl Into<String>) -> Outcome {
    Outcome::Reject { status, reason: reason.into() }
}

/// Index just past the `\r\n\r\n` (or lenient `\n\n`) head terminator.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    let mut i = 0;
    while i < buf.len() {
        if buf[i] == b'\n' {
            if i + 1 < buf.len() && buf[i + 1] == b'\n' {
                return Some(i + 2);
            }
            if i + 2 < buf.len() && buf[i + 1] == b'\r' && buf[i + 2] == b'\n' {
                return Some(i + 3);
            }
        }
        i += 1;
    }
    None
}

/// Reads one request from `stream`, carrying unconsumed bytes (pipelined
/// follow-ups) across calls in `carry`. Socket read timeouts must be
/// configured by the caller; a timeout mid-request maps to `408`.
/// Generic over [`Read`] so the fuzz suite can drive it with raw byte
/// slices (where EOF stands in for a closed socket).
pub fn read_request<R: Read>(stream: &mut R, carry: &mut Vec<u8>, limits: &Limits) -> Outcome {
    // Accumulate until the head terminator, bounded by max_header_bytes.
    let head_end = loop {
        if let Some(end) = find_head_end(carry) {
            // The bound applies even when the oversized head arrived
            // complete in one read — not only while still buffering.
            if end > limits.max_header_bytes {
                return reject(431, "request head exceeds limit");
            }
            break end;
        }
        if carry.len() > limits.max_header_bytes {
            return reject(431, "request head exceeds limit");
        }
        let mut chunk = [0u8; 4096];
        match stream.read(&mut chunk) {
            Ok(0) => {
                return if carry.iter().all(|b| b.is_ascii_whitespace()) {
                    Outcome::Closed // clean close between requests
                } else {
                    reject(400, "connection closed mid request head")
                };
            }
            Ok(n) => carry.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                return if carry.iter().all(|b| b.is_ascii_whitespace()) {
                    Outcome::Closed // idle keep-alive, not a slow request
                } else {
                    reject(408, "request head read timed out")
                };
            }
            Err(_) => return Outcome::Closed,
        }
    };
    let head = match std::str::from_utf8(&carry[..head_end]) {
        Ok(s) => s.to_string(),
        Err(_) => return reject(400, "request head is not UTF-8"),
    };
    let mut lines = head.split('\n').map(|l| l.strip_suffix('\r').unwrap_or(l));
    // Tolerate leading blank lines between pipelined requests (RFC 9112
    // allows a CRLF before the request line).
    let request_line = loop {
        match lines.next() {
            Some("") => continue,
            Some(line) => break line,
            None => return reject(400, "empty request head"),
        }
    };
    let mut parts = request_line.split(' ');
    let (method, path, version) = match (parts.next(), parts.next(), parts.next(), parts.next())
    {
        (Some(m), Some(p), Some(v), None) if !m.is_empty() && !p.is_empty() => (m, p, v),
        _ => return reject(400, "malformed request line"),
    };
    if !method.bytes().all(|b| b.is_ascii_uppercase()) {
        return reject(400, "malformed method token");
    }
    if !path.starts_with('/') {
        return reject(400, "request target must be origin-form");
    }
    let default_keep_alive = match version {
        "HTTP/1.1" => true,
        "HTTP/1.0" => false,
        v if v.starts_with("HTTP/") => return reject(505, "unsupported HTTP version"),
        _ => return reject(400, "malformed HTTP version"),
    };
    let mut headers: Vec<(String, String)> = Vec::new();
    let mut content_length: Option<u64> = None;
    for line in lines {
        if line.is_empty() {
            continue; // the terminator's blank line
        }
        if headers.len() >= limits.max_headers {
            return reject(431, "too many headers");
        }
        let Some((name, value)) = line.split_once(':') else {
            return reject(400, "malformed header line");
        };
        if name.is_empty()
            || !name.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_')
        {
            return reject(400, "malformed header name");
        }
        let name = name.to_ascii_lowercase();
        let value = value.trim().to_string();
        if name == "content-length" {
            let parsed: Option<u64> =
                value.bytes().all(|b| b.is_ascii_digit()).then(|| value.parse().ok()).flatten();
            let Some(n) = parsed else {
                return reject(400, "malformed content-length");
            };
            if content_length.is_some_and(|prev| prev != n) {
                return reject(400, "conflicting content-length headers");
            }
            content_length = Some(n);
        }
        if name == "transfer-encoding" {
            return reject(501, "chunked request bodies are not supported");
        }
        headers.push((name, value));
    }
    let body_len = match content_length {
        Some(n) => n,
        None if method == "POST" || method == "PUT" || method == "PATCH" => {
            return reject(411, "content-length required");
        }
        None => 0,
    };
    if body_len > limits.max_body_bytes as u64 {
        return reject(413, "body exceeds limit");
    }
    let body_len = body_len as usize;
    // Body: take what the head read over-fetched, then read the rest.
    let mut body: Vec<u8> = Vec::with_capacity(body_len);
    let buffered = (carry.len() - head_end).min(body_len);
    body.extend_from_slice(&carry[head_end..head_end + buffered]);
    carry.drain(..head_end + buffered);
    while body.len() < body_len {
        let mut chunk = [0u8; 4096];
        let want = (body_len - body.len()).min(chunk.len());
        match stream.read(&mut chunk[..want]) {
            Ok(0) => return reject(400, "connection closed mid body"),
            Ok(n) => body.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                return reject(408, "body read timed out");
            }
            Err(_) => return Outcome::Closed,
        }
    }
    let keep_alive = match headers.iter().find(|(n, _)| n == "connection") {
        Some((_, v)) if v.eq_ignore_ascii_case("close") => false,
        Some((_, v)) if v.eq_ignore_ascii_case("keep-alive") => true,
        _ => default_keep_alive,
    };
    Outcome::Request(Request {
        method: method.to_string(),
        path: path.to_string(),
        headers,
        body,
        keep_alive,
    })
}

/// Canonical reason phrase for the statuses the gateway emits.
pub fn status_reason(code: u16) -> &'static str {
    match code {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        411 => "Length Required",
        413 => "Content Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        505 => "HTTP Version Not Supported",
        _ => "Unknown",
    }
}

/// Writes a fixed-length response.
pub fn write_response<W: Write>(
    stream: &mut W,
    status: u16,
    content_type: &str,
    body: &[u8],
    keep_alive: bool,
) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.1 {status} {}\r\ncontent-type: {content_type}\r\ncontent-length: {}\r\nconnection: {}\r\n\r\n",
        status_reason(status),
        body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

/// Starts a chunked transfer-encoding response (follow with
/// [`write_chunk`] then [`finish_chunked`]).
pub fn write_chunked_head<W: Write>(
    stream: &mut W,
    status: u16,
    content_type: &str,
    keep_alive: bool,
) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.1 {status} {}\r\ncontent-type: {content_type}\r\ntransfer-encoding: chunked\r\nconnection: {}\r\n\r\n",
        status_reason(status),
        if keep_alive { "keep-alive" } else { "close" },
    );
    stream.write_all(head.as_bytes())
}

/// One chunk of a chunked response (empty data is skipped — a zero-size
/// chunk would terminate the stream).
pub fn write_chunk<W: Write>(stream: &mut W, data: &[u8]) -> std::io::Result<()> {
    if data.is_empty() {
        return Ok(());
    }
    stream.write_all(format!("{:x}\r\n", data.len()).as_bytes())?;
    stream.write_all(data)?;
    stream.write_all(b"\r\n")?;
    stream.flush()
}

/// Terminates a chunked response.
pub fn finish_chunked<W: Write>(stream: &mut W) -> std::io::Result<()> {
    stream.write_all(b"0\r\n\r\n")?;
    stream.flush()
}

/// A response read by the tiny blocking client.
#[derive(Debug)]
pub struct ClientResponse {
    /// Status code from the status line.
    pub status: u16,
    /// Headers with lowercased names.
    pub headers: Vec<(String, String)>,
    /// Body bytes, chunked transfer-encoding already decoded.
    pub body: Vec<u8>,
}

impl ClientResponse {
    /// Body as UTF-8 (lossy).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }

    /// First value of a header by lowercase name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
    }
}

fn read_exact_from(buf: &mut Vec<u8>, stream: &mut TcpStream, n: usize) -> Result<(), String> {
    while buf.len() < n {
        let mut chunk = [0u8; 4096];
        match stream.read(&mut chunk) {
            Ok(0) => return Err("connection closed mid response".into()),
            Ok(got) => buf.extend_from_slice(&chunk[..got]),
            Err(e) => return Err(format!("read: {e}")),
        }
    }
    Ok(())
}

/// Issues one blocking HTTP/1.1 request over a fresh connection and
/// reads the full response (fixed-length or chunked).
///
/// # Errors
///
/// Connection, timeout, and malformed-response errors as text.
pub fn request(
    addr: &str,
    method: &str,
    path: &str,
    headers: &[(&str, &str)],
    body: &[u8],
    timeout: Duration,
) -> Result<ClientResponse, String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    stream.set_read_timeout(Some(timeout)).map_err(|e| e.to_string())?;
    stream.set_write_timeout(Some(timeout)).map_err(|e| e.to_string())?;
    let _ = stream.set_nodelay(true);
    let mut req = format!("{method} {path} HTTP/1.1\r\nhost: {addr}\r\nconnection: close\r\n");
    for (name, value) in headers {
        req.push_str(&format!("{name}: {value}\r\n"));
    }
    req.push_str(&format!("content-length: {}\r\n\r\n", body.len()));
    stream.write_all(req.as_bytes()).map_err(|e| format!("write: {e}"))?;
    stream.write_all(body).map_err(|e| format!("write: {e}"))?;
    read_response(&mut stream)
}

/// Reads one full response from an already-written stream.
///
/// # Errors
///
/// Timeout and malformed-response errors as text.
pub fn read_response(stream: &mut TcpStream) -> Result<ClientResponse, String> {
    let mut buf: Vec<u8> = Vec::new();
    let head_end = loop {
        if let Some(end) = find_head_end(&buf) {
            break end;
        }
        if buf.len() > 64 * 1024 {
            return Err("response head exceeds 64 KiB".into());
        }
        let mut chunk = [0u8; 4096];
        match stream.read(&mut chunk) {
            Ok(0) => return Err("connection closed mid response head".into()),
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) => return Err(format!("read: {e}")),
        }
    };
    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| "response head is not UTF-8".to_string())?;
    let mut lines = head.split('\n').map(|l| l.strip_suffix('\r').unwrap_or(l));
    let status_line = lines.next().ok_or("empty response")?;
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("malformed status line `{status_line}`"))?;
    let mut headers: Vec<(String, String)> = Vec::new();
    for line in lines {
        if let Some((n, v)) = line.split_once(':') {
            headers.push((n.to_ascii_lowercase(), v.trim().to_string()));
        }
    }
    buf.drain(..head_end);
    let chunked = headers
        .iter()
        .any(|(n, v)| n == "transfer-encoding" && v.eq_ignore_ascii_case("chunked"));
    let body = if chunked {
        let mut body = Vec::new();
        loop {
            // Chunk size line.
            let line_end = loop {
                if let Some(pos) = buf.iter().position(|&b| b == b'\n') {
                    break pos + 1;
                }
                let need = buf.len() + 1;
                read_exact_from(&mut buf, stream, need)?;
            };
            let size_line = String::from_utf8_lossy(&buf[..line_end]).trim().to_string();
            buf.drain(..line_end);
            let size = usize::from_str_radix(&size_line, 16)
                .map_err(|_| format!("malformed chunk size `{size_line}`"))?;
            if size == 0 {
                break;
            }
            read_exact_from(&mut buf, stream, size + 2)?; // data + CRLF
            body.extend_from_slice(&buf[..size]);
            buf.drain(..size + 2);
        }
        body
    } else if let Some(n) = headers
        .iter()
        .find(|(n, _)| n == "content-length")
        .and_then(|(_, v)| v.parse::<usize>().ok())
    {
        read_exact_from(&mut buf, stream, n)?;
        buf.truncate(n);
        buf
    } else {
        // Read to EOF (connection: close framing).
        let mut rest = Vec::new();
        let _ = stream.read_to_end(&mut rest);
        buf.extend_from_slice(&rest);
        buf
    };
    Ok(ClientResponse { status, headers, body })
}

/// `GET` an `http://host:port/path` URL with the tiny client.
///
/// # Errors
///
/// Unsupported scheme, connection, and protocol errors as text.
pub fn get_url(url: &str, timeout: Duration) -> Result<ClientResponse, String> {
    let rest = url
        .strip_prefix("http://")
        .ok_or_else(|| format!("only http:// URLs are supported, got `{url}`"))?;
    let (addr, path) = match rest.split_once('/') {
        Some((addr, path)) => (addr.to_string(), format!("/{path}")),
        None => (rest.to_string(), "/".to_string()),
    };
    request(&addr, "GET", &path, &[], b"", timeout)
}
