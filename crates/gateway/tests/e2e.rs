//! End-to-end gateway tests over real sockets: concurrent HTTP clients
//! must get byte-identical hypotheses to calling the model directly,
//! overload and quota must shed with `429` while the extended
//! conservation identity holds (DESIGN.md §13), streaming must arrive
//! as well-formed chunked NDJSON, and shutdown must drain gracefully.

use serde_json::Value;
use slade::Slade;
use slade_compiler::{Isa, OptLevel};
use slade_gateway::{http, quota::QuotaConfig, Gateway, GatewayConfig};
use slade_nn::{Seq2Seq, TransformerConfig};
use slade_obs::export::validate_exposition;
use slade_serve::{MetricsSnapshot, ServeConfig, ServeRuntime};
use slade_tokenizer::UnigramTokenizer;
use std::sync::Arc;
use std::time::{Duration, Instant};

const BEAM: usize = 3;
const CLIENT_TIMEOUT: Duration = Duration::from_secs(30);

/// Untrained small-profile decompiler — decode cost is representative,
/// outputs are deterministic noise, which is all equivalence needs.
fn gw_slade() -> Arc<Slade> {
    let corpus: Vec<String> = (0..10).map(asm).collect();
    let tokenizer = UnigramTokenizer::train(&corpus, 200);
    let model = Seq2Seq::new(TransformerConfig::small(tokenizer.vocab_size()), 47);
    Arc::new(Slade::from_parts(model, tokenizer, Isa::X86_64, OptLevel::O0, BEAM, 10))
}

fn asm(i: usize) -> String {
    format!("h{i}:\n\tmovl %edi, %eax\n\timull ${i}, %eax\n\tret\n")
}

/// Test-sized gateway config: short read timeout so idle keep-alive
/// connections (and therefore shutdown) settle quickly.
fn gw_config() -> GatewayConfig {
    GatewayConfig {
        read_timeout: Duration::from_millis(500),
        drain_deadline: Duration::from_secs(5),
        ..GatewayConfig::default()
    }
}

fn decompile_body(asm: &str) -> String {
    format!("{{\"asm\":{}}}", Value::Str(asm.to_string()).render())
}

fn post(addr: &str, body: &str) -> http::ClientResponse {
    http::request(
        addr,
        "POST",
        "/v1/decompile",
        &[("content-type", "application/json")],
        body.as_bytes(),
        CLIENT_TIMEOUT,
    )
    .expect("request completes")
}

/// Candidates array from a 200 response body.
fn candidates(resp: &http::ClientResponse) -> Vec<String> {
    assert_eq!(resp.status, 200, "body: {}", resp.text());
    let v = Value::parse(&resp.text()).expect("valid JSON body");
    v.as_object()
        .and_then(|o| o.get("candidates"))
        .and_then(Value::as_array)
        .expect("candidates array")
        .iter()
        .map(|c| c.as_str().expect("string candidate").to_string())
        .collect()
}

fn assert_runtime_conservation(snap: &MetricsSnapshot) {
    assert_eq!(
        snap.shed + snap.expired + snap.coalesced + snap.decoded + snap.cache.hits,
        snap.submitted,
        "runtime conservation violated: {snap:?}",
    );
}

/// The edge identity: everything the gateway offered is either a quota
/// shed or a runtime submission (`direct` = submissions that bypassed
/// the gateway, e.g. a test occupying a worker).
fn assert_edge_conservation(gateway: &Gateway, direct: u64) {
    let gw = gateway.metrics();
    let rt = gateway.runtime().metrics();
    assert_eq!(
        gw.decompile_offered,
        gw.quota_shed + (rt.submitted - direct),
        "edge identity violated: gw={gw:?} rt={rt:?}",
    );
    // The combined partition: every offered request terminates in
    // exactly one of quota-shed or a runtime terminal state.
    let gateway_share = rt.submitted - direct;
    let direct_terminals =
        rt.shed + rt.expired + rt.coalesced + rt.decoded + rt.cache.hits - gateway_share; // terminals owed to direct submissions
    assert_eq!(
        gw.decompile_offered + direct_terminals,
        gw.quota_shed + rt.shed + rt.expired + rt.coalesced + rt.decoded + rt.cache.hits,
        "combined conservation violated: gw={gw:?} rt={rt:?}",
    );
    assert_runtime_conservation(&rt);
}

/// The headline equivalence: N concurrent socket clients, each POSTing a
/// distinct function, all get exactly what direct model decompilation
/// produces — byte for byte, regardless of interleaving.
#[test]
fn concurrent_clients_match_direct_decompile() {
    let slade = gw_slade();
    let inputs: Vec<String> = (0..6).map(asm).collect();
    let refs: Vec<&str> = inputs.iter().map(String::as_str).collect();
    let expected = slade.decompile_batch(&refs);
    let runtime =
        Arc::new(ServeRuntime::start(Arc::clone(&slade), ServeConfig::with_shards(2)));
    let gateway = Gateway::start(Arc::clone(&runtime), gw_config()).expect("bind");
    let addr = gateway.local_addr().to_string();
    let threads: Vec<_> = inputs
        .iter()
        .cloned()
        .map(|input| {
            let addr = addr.clone();
            std::thread::spawn(move || candidates(&post(&addr, &decompile_body(&input))))
        })
        .collect();
    for (i, t) in threads.into_iter().enumerate() {
        let got = t.join().expect("client thread");
        assert_eq!(got, expected[i], "client {i} diverged from direct decompile_batch");
    }
    let gw = gateway.metrics();
    assert_eq!(gw.decompile_offered, 6);
    assert_eq!(gw.quota_shed, 0);
    assert!(gw.connections >= 6);
    assert_edge_conservation(&gateway, 0);
    gateway.shutdown();
    Arc::try_unwrap(runtime).ok().expect("gateway dropped its handle").shutdown();
}

/// Overload: with the only worker asleep and `queue_cap` undersized,
/// exactly `queue_cap` concurrent submissions are accepted and the rest
/// answer `429` — and the gateway + runtime counters still partition
/// every offered request exactly.
#[test]
fn overload_sheds_429_and_conserves() {
    let runtime = Arc::new(ServeRuntime::start(
        gw_slade(),
        ServeConfig {
            shards: 1,
            lanes_per_shard: BEAM, // one decode at a time
            queue_cap: 2,
            test_decode_delay: Duration::from_millis(400),
            ..ServeConfig::default().without_cache().without_coalescing()
        },
    ));
    let gateway = Gateway::start(Arc::clone(&runtime), gw_config()).expect("bind");
    let addr = gateway.local_addr().to_string();
    // Occupy the worker directly (bypassing the gateway) so the burst
    // below races only the queue cap, not the decode.
    let busy = runtime.submit(&asm(0));
    let deadline = Instant::now() + Duration::from_secs(10);
    while runtime.metrics().queue_depth > 0 {
        assert!(Instant::now() < deadline, "queue never drained");
        std::thread::sleep(Duration::from_millis(2));
    }
    let threads: Vec<_> = (1..=6)
        .map(|i| {
            let addr = addr.clone();
            std::thread::spawn(move || post(&addr, &decompile_body(&asm(i))).status)
        })
        .collect();
    let statuses: Vec<u16> = threads.into_iter().map(|t| t.join().expect("client")).collect();
    busy.wait().expect("no timeout configured");
    let ok = statuses.iter().filter(|&&s| s == 200).count();
    let shed = statuses.iter().filter(|&&s| s == 429).count();
    assert_eq!(ok, 2, "exactly queue_cap accepts: {statuses:?}");
    assert_eq!(shed, 4, "the rest shed with 429: {statuses:?}");
    let gw = gateway.metrics();
    assert_eq!(gw.decompile_offered, 6);
    assert_eq!(gw.overload_shed, 4);
    assert_eq!(gw.quota_shed, 0);
    let rt = runtime.metrics();
    assert_eq!(rt.shed, 4);
    assert_edge_conservation(&gateway, 1); // `busy` bypassed the gateway
    gateway.shutdown();
    Arc::try_unwrap(runtime).ok().expect("gateway dropped its handle").shutdown();
}

/// `"stream": true` delivers candidates as chunked NDJSON: one line per
/// hypothesis plus a `done` trailer, identical content to the buffered
/// path, and the stream counter ticks.
#[test]
fn streaming_delivers_chunked_ndjson() {
    let slade = gw_slade();
    let expected = slade.decompile(&asm(3));
    let runtime =
        Arc::new(ServeRuntime::start(Arc::clone(&slade), ServeConfig::with_shards(1)));
    let gateway = Gateway::start(Arc::clone(&runtime), gw_config()).expect("bind");
    let addr = gateway.local_addr().to_string();
    let body = format!("{{\"asm\":{},\"stream\":true}}", Value::Str(asm(3)).render());
    let resp = post(&addr, &body);
    assert_eq!(resp.status, 200);
    assert_eq!(resp.header("transfer-encoding"), Some("chunked"));
    let lines: Vec<Value> = resp
        .text()
        .lines()
        .map(|l| Value::parse(l).expect("each NDJSON line parses"))
        .collect();
    assert_eq!(lines.len(), expected.len() + 1, "one line per candidate + trailer");
    for (i, line) in lines[..expected.len()].iter().enumerate() {
        let obj = line.as_object().expect("candidate line object");
        assert_eq!(obj.get("index"), Some(&Value::UInt(i as u64)));
        assert_eq!(
            obj.get("candidate").and_then(Value::as_str),
            Some(expected[i].as_str()),
            "streamed candidate {i} diverged",
        );
    }
    let trailer = lines.last().unwrap().as_object().expect("trailer object");
    assert_eq!(trailer.get("done"), Some(&Value::Bool(true)));
    assert_eq!(trailer.get("count"), Some(&Value::UInt(expected.len() as u64)));
    assert_eq!(gateway.metrics().streamed, 1);
    gateway.shutdown();
    Arc::try_unwrap(runtime).ok().expect("gateway dropped its handle").shutdown();
}

/// Per-client quotas: a client that exhausts its burst sheds with `429`
/// *before* the runtime sees the request, an unrelated client is
/// unaffected, and the per-client counters surface in both the snapshot
/// and the exposition.
#[test]
fn quota_sheds_per_client_before_admission() {
    let runtime = Arc::new(ServeRuntime::start(gw_slade(), ServeConfig::with_shards(1)));
    let gateway = Gateway::start(
        Arc::clone(&runtime),
        GatewayConfig { quota: QuotaConfig { rps: 0.001, burst: 2.0 }, ..gw_config() },
    )
    .expect("bind");
    let addr = gateway.local_addr().to_string();
    let send = |client: &str| {
        http::request(
            &addr,
            "POST",
            "/v1/decompile",
            &[("x-slade-client", client)],
            decompile_body(&asm(1)).as_bytes(),
            CLIENT_TIMEOUT,
        )
        .expect("request completes")
        .status
    };
    assert_eq!(send("greedy"), 200);
    assert_eq!(send("greedy"), 200);
    for _ in 0..3 {
        assert_eq!(send("greedy"), 429, "burst exhausted");
    }
    assert_eq!(send("polite"), 200, "quotas are per client");
    let gw = gateway.metrics();
    assert_eq!(gw.quota_shed, 3);
    assert_eq!(gw.decompile_offered, 6, "offered counts quota sheds too");
    let greedy = gw.quota_clients.iter().find(|c| c.client == "greedy").expect("tracked");
    assert_eq!((greedy.admitted, greedy.shed), (2, 3));
    assert_eq!(runtime.metrics().submitted, 3);
    assert_edge_conservation(&gateway, 0);
    let text = gateway.metrics_text();
    assert!(text.contains("slade_gateway_quota_shed_client_total{client=\"greedy\"} 3"));
    gateway.shutdown();
    Arc::try_unwrap(runtime).ok().expect("gateway dropped its handle").shutdown();
}

/// `/healthz`, `/metrics`, and the reject routes behave: the combined
/// exposition (runtime + gateway families) passes the strict validator
/// and carries `slade_gateway_requests_total`; bad routes and bad bodies
/// get their specific statuses.
#[test]
fn health_metrics_and_reject_routes() {
    let runtime = Arc::new(ServeRuntime::start(gw_slade(), ServeConfig::with_shards(1)));
    let gateway = Gateway::start(Arc::clone(&runtime), gw_config()).expect("bind");
    let addr = gateway.local_addr().to_string();
    let get = |path: &str| {
        http::request(&addr, "GET", path, &[], b"", CLIENT_TIMEOUT).expect("request completes")
    };
    let health = get("/healthz");
    assert_eq!(health.status, 200);
    let health_body = Value::parse(&health.text()).expect("health JSON");
    assert_eq!(
        health_body.as_object().and_then(|o| o.get("status")).and_then(Value::as_str),
        Some("ok"),
    );
    // One real request so the status families have content.
    assert_eq!(post(&addr, &decompile_body(&asm(2))).status, 200);
    // Reject routes, each with its specific status.
    assert_eq!(get("/nope").status, 404);
    assert_eq!(get("/v1/decompile").status, 405);
    assert_eq!(post(&addr, "{not json").status, 400);
    assert_eq!(post(&addr, "{\"asm\":\"\"}").status, 400);
    let mismatch = format!("{{\"asm\":{},\"isa\":\"arm64\"}}", Value::Str(asm(2)).render());
    assert_eq!(post(&addr, &mismatch).status, 409);
    let wide_beam = format!("{{\"asm\":{},\"beam\":99}}", Value::Str(asm(2)).render());
    assert_eq!(post(&addr, &wide_beam).status, 409);
    let scrape = get("/metrics");
    assert_eq!(scrape.status, 200);
    let text = scrape.text();
    let stats = validate_exposition(&text).expect("combined exposition is well-formed");
    assert!(stats.families > 15, "runtime + gateway families, got {}", stats.families);
    assert!(text.contains("slade_gateway_requests_total{code=\"200\"}"));
    assert!(text.contains("slade_gateway_requests_total{code=\"404\"}"));
    assert!(text.contains("slade_gateway_connections_total"));
    assert!(text.contains("slade_requests_submitted_total"), "runtime families present");
    // `Gateway::metrics_text` returns the same combined document.
    validate_exposition(&gateway.metrics_text()).expect("metrics_text is well-formed");
    gateway.shutdown();
    Arc::try_unwrap(runtime).ok().expect("gateway dropped its handle").shutdown();
}

/// A narrower `beam` option truncates the candidate list client-side of
/// the model's beam, without touching the runtime.
#[test]
fn beam_option_caps_candidates() {
    let slade = gw_slade();
    let expected = slade.decompile(&asm(4));
    assert!(expected.len() >= 2, "fixture must produce at least two hypotheses");
    let runtime =
        Arc::new(ServeRuntime::start(Arc::clone(&slade), ServeConfig::with_shards(1)));
    let gateway = Gateway::start(Arc::clone(&runtime), gw_config()).expect("bind");
    let addr = gateway.local_addr().to_string();
    let body = format!("{{\"asm\":{},\"beam\":1}}", Value::Str(asm(4)).render());
    let got = candidates(&post(&addr, &body));
    assert_eq!(got, expected[..1].to_vec(), "beam=1 keeps only the best hypothesis");
    gateway.shutdown();
    Arc::try_unwrap(runtime).ok().expect("gateway dropped its handle").shutdown();
}

/// Keep-alive: one connection serves several requests in order; the
/// carry buffer keeps pipelined bytes intact across deliveries.
#[test]
fn keep_alive_serves_sequential_requests() {
    use std::io::Write;
    let slade = gw_slade();
    let expected = slade.decompile(&asm(5));
    let runtime =
        Arc::new(ServeRuntime::start(Arc::clone(&slade), ServeConfig::with_shards(1)));
    let gateway = Gateway::start(Arc::clone(&runtime), gw_config()).expect("bind");
    let mut stream = std::net::TcpStream::connect(gateway.local_addr()).expect("connect");
    stream.set_read_timeout(Some(CLIENT_TIMEOUT)).expect("timeout");
    for round in 0..3 {
        let body = decompile_body(&asm(5));
        let req = format!(
            "POST /v1/decompile HTTP/1.1\r\nhost: t\r\ncontent-length: {}\r\n\r\n{body}",
            body.len(),
        );
        stream.write_all(req.as_bytes()).expect("write");
        let resp = http::read_response(&mut stream).expect("response");
        assert_eq!(resp.status, 200, "round {round}");
        assert_eq!(resp.header("connection"), Some("keep-alive"));
        let got = candidates(&resp);
        assert_eq!(got, expected, "round {round} diverged");
    }
    assert_eq!(gateway.metrics().connections, 1, "all rounds shared one connection");
    gateway.shutdown();
    Arc::try_unwrap(runtime).ok().expect("gateway dropped its handle").shutdown();
}

/// Graceful drain: a request in flight when shutdown starts is still
/// answered (within the drain deadline); afterwards the port is closed.
#[test]
fn shutdown_drains_in_flight_requests() {
    let runtime = Arc::new(ServeRuntime::start(
        gw_slade(),
        ServeConfig {
            shards: 1,
            lanes_per_shard: BEAM,
            test_decode_delay: Duration::from_millis(200),
            ..ServeConfig::default()
        },
    ));
    let gateway = Gateway::start(Arc::clone(&runtime), gw_config()).expect("bind");
    let addr = gateway.local_addr().to_string();
    let local = gateway.local_addr();
    let client = {
        let addr = addr.clone();
        std::thread::spawn(move || post(&addr, &decompile_body(&asm(6))))
    };
    // Let the request reach the delivery pool, then drain.
    std::thread::sleep(Duration::from_millis(80));
    gateway.shutdown();
    let resp = client.join().expect("client thread");
    assert_eq!(resp.status, 200, "in-flight request answered during drain");
    assert!(!candidates(&resp).is_empty());
    // The listener is gone: connecting now must fail (or be refused).
    match std::net::TcpStream::connect_timeout(&local, Duration::from_millis(500)) {
        Err(_) => {}
        Ok(mut s) => {
            // Some platforms complete the handshake from the dead
            // listener's backlog; the connection must then be dead.
            use std::io::Read;
            s.set_read_timeout(Some(Duration::from_millis(500))).expect("timeout");
            let mut buf = [0u8; 8];
            assert!(
                matches!(s.read(&mut buf), Ok(0) | Err(_)),
                "gateway still serving after shutdown",
            );
        }
    }
    Arc::try_unwrap(runtime).ok().expect("gateway dropped its handle").shutdown();
}
