//! Malformed-input robustness for the hardened HTTP parser: whatever
//! bytes arrive — random garbage, truncations at every offset, oversized
//! heads, corrupt framing, pipelined junk — `read_request` must return a
//! clean outcome (`Request`, `Closed`, or a specific 4xx/5xx `Reject`),
//! never panic, and never loop past the input. Readers are byte slices
//! (EOF stands in for a closed socket), so every call is also trivially
//! hang-free.

use proptest::prelude::*;
use slade_gateway::http::{read_request, Limits, Outcome};

/// Statuses the parser is allowed to reject with. On slice readers the
/// timeout path (408) is unreachable — EOF arrives instead.
const REJECT_STATUSES: [u16; 7] = [400, 408, 411, 413, 431, 501, 505];

/// Small limits so proptest-sized inputs can actually exceed them.
fn tight_limits() -> Limits {
    Limits { max_header_bytes: 256, max_body_bytes: 512, max_headers: 8 }
}

/// Drives the parser over `bytes` the way a connection worker would:
/// repeated calls, carry preserved, stopping at the first non-request
/// outcome. Returns the parsed request count and the final outcome.
fn drive(bytes: &[u8], limits: &Limits) -> (usize, Outcome) {
    let mut reader: &[u8] = bytes;
    let mut carry = Vec::new();
    let mut served = 0usize;
    // Each successful parse consumes at least one byte; anything else
    // terminates. The +2 headroom covers the empty-input `Closed` call.
    for _ in 0..bytes.len() + 2 {
        match read_request(&mut reader, &mut carry, limits) {
            Outcome::Request(_) => served += 1,
            other => return (served, other),
        }
    }
    panic!("parser failed to terminate on {} bytes", bytes.len());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    /// Arbitrary bytes: the parser terminates with a clean outcome and
    /// any reject uses one of its documented statuses.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in proptest::collection::vec(0u8..=255, 0..300)) {
        let (_, outcome) = drive(&bytes, &tight_limits());
        if let Outcome::Reject { status, reason } = outcome {
            prop_assert!(
                REJECT_STATUSES.contains(&status),
                "undocumented reject {status}: {reason}",
            );
            prop_assert!(!reason.is_empty());
        }
    }

    /// ASCII-ish garbage (more likely to get past the request line and
    /// into header/body framing paths than uniform bytes).
    #[test]
    fn asciiish_garbage_never_panics(
        bytes in proptest::collection::vec(
            prop_oneof![
                3 => 32u8..127,          // printable
                1 => proptest::sample::select(vec![b'\r', b'\n', b':', b' ']),
            ],
            0..300,
        ),
    ) {
        let (_, outcome) = drive(&bytes, &tight_limits());
        if let Outcome::Reject { status, .. } = outcome {
            prop_assert!(REJECT_STATUSES.contains(&status));
        }
    }

    /// Truncation at every offset of a well-formed POST: the full bytes
    /// parse, a zero-length read closes cleanly, and every cut in
    /// between is `400` — the connection died mid-request.
    #[test]
    fn truncation_points_reject_cleanly(cut_seed in 0usize..10_000) {
        let body = "{\"asm\":\"f:\\n\\tret\\n\"}";
        let full = format!(
            "POST /v1/decompile HTTP/1.1\r\nhost: t\r\ncontent-length: {}\r\n\r\n{body}",
            body.len(),
        );
        let bytes = full.as_bytes();
        let cut = cut_seed % (bytes.len() + 1);
        let (served, outcome) = drive(&bytes[..cut], &Limits::default());
        if cut == bytes.len() {
            prop_assert_eq!(served, 1, "full request must parse");
            prop_assert!(matches!(outcome, Outcome::Closed));
        } else if cut == 0 {
            prop_assert_eq!(served, 0);
            prop_assert!(matches!(outcome, Outcome::Closed), "empty input closes silently");
        } else {
            prop_assert_eq!(served, 0, "truncated request must not parse");
            match outcome {
                Outcome::Reject { status, .. } => prop_assert_eq!(status, 400),
                other => return Err(format!("expected 400, got {other:?}")),
            }
        }
    }

    /// Oversized heads: a header value long enough to blow
    /// `max_header_bytes`, or more headers than `max_headers`, must be
    /// `431` — never unbounded buffering.
    #[test]
    fn oversized_heads_reject_431(pad in 300usize..2000, many in 0u8..2) {
        let limits = tight_limits();
        let head = if many == 1 {
            let headers: String =
                (0..20).map(|i| format!("x-h{i}: v\r\n")).collect();
            format!("GET / HTTP/1.1\r\n{headers}\r\n")
        } else {
            format!("GET / HTTP/1.1\r\nx-pad: {}\r\n\r\n", "a".repeat(pad))
        };
        let (served, outcome) = drive(head.as_bytes(), &limits);
        prop_assert_eq!(served, 0);
        match outcome {
            Outcome::Reject { status, .. } => prop_assert_eq!(status, 431),
            other => return Err(format!("expected 431, got {other:?}")),
        }
    }

    /// Pipelined garbage behind a valid request: the valid request is
    /// served from the carry buffer, then the junk terminates cleanly.
    #[test]
    fn pipelined_garbage_after_valid_request(
        junk in proptest::collection::vec(0u8..=255, 1..200),
    ) {
        let mut bytes = b"GET /healthz HTTP/1.1\r\nhost: t\r\n\r\n".to_vec();
        bytes.extend_from_slice(&junk);
        let (served, outcome) = drive(&bytes, &tight_limits());
        prop_assert!(served >= 1, "the leading valid request must be served");
        if let Outcome::Reject { status, .. } = outcome {
            prop_assert!(REJECT_STATUSES.contains(&status));
        }
    }

    /// Two valid pipelined requests parse in order with bodies intact.
    #[test]
    fn pipelined_valid_requests_parse_in_order(n_body in 0usize..100) {
        let body = "x".repeat(n_body);
        let first = format!(
            "POST /v1/decompile HTTP/1.1\r\ncontent-length: {}\r\n\r\n{body}",
            body.len(),
        );
        let full = format!("{first}GET /metrics HTTP/1.1\r\n\r\n");
        let mut reader: &[u8] = full.as_bytes();
        let mut carry = Vec::new();
        let limits = Limits::default();
        match read_request(&mut reader, &mut carry, &limits) {
            Outcome::Request(req) => {
                prop_assert_eq!(req.method.as_str(), "POST");
                prop_assert_eq!(req.body, body.as_bytes().to_vec());
            }
            other => return Err(format!("first: {other:?}")),
        }
        match read_request(&mut reader, &mut carry, &limits) {
            Outcome::Request(req) => {
                prop_assert_eq!(req.method.as_str(), "GET");
                prop_assert_eq!(req.path.as_str(), "/metrics");
                prop_assert!(req.body.is_empty());
            }
            other => return Err(format!("second: {other:?}")),
        }
    }
}

/// Content-length corruption table: every malformed framing variant maps
/// to its specific status.
#[test]
fn content_length_corruption_is_mapped() {
    let cases: Vec<(String, u16)> = vec![
        // Non-numeric, signed, exponent, overflow, empty: all 400.
        ("POST / HTTP/1.1\r\ncontent-length: abc\r\n\r\n".into(), 400),
        ("POST / HTTP/1.1\r\ncontent-length: -1\r\n\r\n".into(), 400),
        ("POST / HTTP/1.1\r\ncontent-length: 1e3\r\n\r\n".into(), 400),
        ("POST / HTTP/1.1\r\ncontent-length: 18446744073709551616\r\n\r\n".into(), 400),
        ("POST / HTTP/1.1\r\ncontent-length:\r\n\r\n".into(), 400),
        // Conflicting duplicates: 400. Matching duplicates are fine.
        ("POST / HTTP/1.1\r\ncontent-length: 2\r\ncontent-length: 3\r\n\r\nab".into(), 400),
        // Body-carrying method without a length: 411.
        ("POST / HTTP/1.1\r\n\r\n".into(), 411),
        // Declared body over the limit: 413.
        (format!("POST / HTTP/1.1\r\ncontent-length: {}\r\n\r\n", 1 << 21), 413),
        // Chunked uploads are not implemented: 501.
        ("POST / HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n".into(), 501),
        // Unsupported/malformed versions.
        ("GET / HTTP/2.0\r\n\r\n".into(), 505),
        ("GET / FTP/1.1\r\n\r\n".into(), 400),
        // Lowercase method token, non-origin-form target.
        ("get / HTTP/1.1\r\n\r\n".into(), 400),
        ("GET http://x/ HTTP/1.1\r\n\r\n".into(), 400),
    ];
    for (raw, want) in cases {
        let (served, outcome) = drive(raw.as_bytes(), &Limits::default());
        assert_eq!(served, 0, "{raw:?} must not parse");
        match outcome {
            Outcome::Reject { status, reason } => {
                assert_eq!(status, want, "{raw:?} → {status} ({reason}), want {want}");
            }
            other => panic!("{raw:?} → {other:?}, want reject {want}"),
        }
    }
    // Matching duplicate content-lengths are accepted (RFC 9110 allows
    // deduplicating identical values).
    let ok = "POST / HTTP/1.1\r\ncontent-length: 2\r\ncontent-length: 2\r\n\r\nab";
    let (served, _) = drive(ok.as_bytes(), &Limits::default());
    assert_eq!(served, 1);
}
