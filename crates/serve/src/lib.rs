//! `slade_serve` — the multi-threaded serving runtime above
//! [`slade::Slade`] and the batched inference engine.
//!
//! The engine (`slade_nn::engine`) made one decode batch fast; this crate
//! makes a *process* serve: a *sharded worker pool* (one engine
//! [`slade_nn::engine::DecodeSession`] per thread, model shared via
//! `Arc`) scales across cores, an *admission queue* with
//! FIFO-with-deadline fairness feeds the shards and admits newly arrived
//! requests into **running** decode batches as finished requests free
//! lanes (continuous batching), a *result cache* keyed by the hash of
//! [`slade::normalize_asm`] output plus the ISA/opt/beam configuration
//! answers duplicate-heavy traffic without decoding, and a *metrics
//! surface* exposes queue depth, per-shard lane occupancy, latency
//! percentiles and cache hit rate as a plain struct snapshot.
//!
//! # Determinism
//!
//! Runtime output is element-wise identical to sequential
//! [`slade::Slade::decompile_batch`] for any shard count, arrival order,
//! and cache setting: every step-path kernel computes each lane's row
//! with a fixed summation order, lanes attend only their own caches, and
//! the beam policy runs per request — so batch composition, admission
//! time, and shard assignment cannot change a request's hypotheses, and
//! the cache stores exactly what decode would return (verified by the
//! equivalence property test in `tests/equivalence.rs`).
//!
//! # Example
//!
//! ```no_run
//! use slade_serve::{ServeConfig, ServeRuntime};
//! use std::sync::Arc;
//!
//! # fn demo(slade: slade::Slade) {
//! let runtime = ServeRuntime::start(Arc::new(slade), ServeConfig::with_shards(4));
//! let hypotheses = runtime.decompile("f:\n\tret\n");
//! println!("{} candidates, {:?}", hypotheses.len(), runtime.metrics());
//! # }
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod metrics;
pub mod queue;

pub use cache::{CacheKey, CacheStats, ResultCache};
pub use metrics::MetricsSnapshot;
pub use queue::AdmissionQueue;

use metrics::MetricsInner;
use slade::{normalize_asm, Slade};
use slade_nn::{DecodeRequest, InferenceEngine};
use slade_obs::{SpanRecord, Stage};
use slade_tokenizer::special;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Serving-runtime configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads, each with its own engine decode session. Requests
    /// shard across them; throughput scales with cores until the queue
    /// runs dry.
    pub shards: usize,
    /// Concurrent-lane budget per shard; `0` derives it from the model's
    /// [`slade::Slade::max_batch_lanes`] split across the shards.
    pub lanes_per_shard: usize,
    /// Result-cache capacity in entries; `0` disables caching.
    pub cache_capacity: usize,
    /// Admission patience: a request older than this is served strictly
    /// FIFO ahead of any fresher request (see [`queue::AdmissionQueue`]).
    pub max_wait: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            shards: 1,
            lanes_per_shard: 0,
            cache_capacity: 1024,
            max_wait: Duration::from_millis(100),
        }
    }
}

impl ServeConfig {
    /// Default configuration at a given shard count.
    pub fn with_shards(shards: usize) -> Self {
        ServeConfig { shards: shards.max(1), ..ServeConfig::default() }
    }

    /// Disables the result cache.
    pub fn without_cache(mut self) -> Self {
        self.cache_capacity = 0;
        self
    }
}

/// One queued decompilation job.
struct Job {
    norm_asm: String,
    key: Option<CacheKey>,
    slot: Arc<ResponseSlot>,
    submitted: Instant,
    /// Trace id for the request's span tree.
    trace_id: u64,
    /// Submit time, µs since the observability epoch (span start times).
    submitted_us: u64,
}

/// Fixed span ids within a request's trace: the tree shape is static
/// (root → queue/tokenize/encode/decode → per-step children), so ids are
/// assigned by position rather than a per-trace counter.
mod span_id {
    pub const REQUEST: u32 = 1;
    pub const QUEUE: u32 = 2;
    pub const TOKENIZE: u32 = 3;
    pub const ENCODE: u32 = 4;
    pub const DECODE: u32 = 5;
    /// Decode-step spans are `FIRST_STEP + step_index`.
    pub const FIRST_STEP: u32 = 6;
}

/// Completion cell a caller blocks on.
struct ResponseSlot {
    result: Mutex<Option<Vec<String>>>,
    ready: Condvar,
}

impl ResponseSlot {
    fn new() -> Self {
        ResponseSlot { result: Mutex::new(None), ready: Condvar::new() }
    }

    fn fulfill(&self, outputs: Vec<String>) {
        *self.result.lock().expect("slot lock") = Some(outputs);
        self.ready.notify_all();
    }
}

/// Handle to one in-flight request; [`RequestHandle::wait`] blocks until
/// its hypotheses are ready.
pub struct RequestHandle {
    slot: Arc<ResponseSlot>,
    trace_id: u64,
}

impl RequestHandle {
    /// The request's trace id — look up its span tree afterwards with
    /// [`ServeRuntime::trace_spans`] or `slade-cli trace`.
    pub fn trace_id(&self) -> u64 {
        self.trace_id
    }

    /// Blocks until the request completes; returns up to `beam`
    /// hypotheses, best first.
    pub fn wait(self) -> Vec<String> {
        let mut guard = self.slot.result.lock().expect("slot lock");
        while guard.is_none() {
            guard = self.slot.ready.wait(guard).expect("slot wait");
        }
        guard.take().expect("checked above")
    }

    /// Non-blocking poll; returns the result once, if ready.
    pub fn try_take(&self) -> Option<Vec<String>> {
        self.slot.result.lock().expect("slot lock").take()
    }
}

/// State shared between the front-end and the workers.
struct Shared {
    slade: Arc<Slade>,
    queue: Mutex<AdmissionQueue<Job>>,
    work: Condvar,
    cache: ResultCache,
    metrics: MetricsInner,
    shutdown: AtomicBool,
    lanes_per_shard: usize,
    max_wait: Duration,
}

/// The serving runtime: spawns the shard workers at
/// [`ServeRuntime::start`], serves until dropped (drop drains in-flight
/// work, then joins the workers).
pub struct ServeRuntime {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl ServeRuntime {
    /// Starts `config.shards` workers around a shared decompiler.
    pub fn start(slade: Arc<Slade>, config: ServeConfig) -> Self {
        let shards = config.shards.max(1);
        let beam = slade.beam().max(1);
        // Both branches floor at one full beam width — a shard with fewer
        // lanes could never admit anything and requests would hang — so
        // when `max_batch_lanes / shards < beam` the summed arenas exceed
        // the single-process cap by up to `shards × beam` lanes.
        let lanes_per_shard = if config.lanes_per_shard > 0 {
            config.lanes_per_shard.max(beam)
        } else {
            // Split the model's single-process lane budget across shards
            // so total arena memory stays at the configured cap (beam
            // floor aside).
            (slade.max_batch_lanes() / shards).max(beam)
        };
        // Resolve the kernel dispatch once up front so the metrics surface
        // reports what the workers will actually run with.
        let kernel_isa = slade_nn::kernels::active_tier().name();
        let backend = slade.model.cfg.backend.name();
        let shared = Arc::new(Shared {
            slade,
            queue: Mutex::new(AdmissionQueue::new()),
            work: Condvar::new(),
            cache: ResultCache::new(config.cache_capacity),
            metrics: MetricsInner::new(shards, lanes_per_shard, kernel_isa, backend),
            shutdown: AtomicBool::new(false),
            lanes_per_shard,
            max_wait: config.max_wait,
        });
        let workers = (0..shards)
            .map(|shard| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("slade-serve-{shard}"))
                    .spawn(move || worker_loop(&shared, shard))
                    .expect("spawn shard worker")
            })
            .collect();
        ServeRuntime { shared, workers }
    }

    /// Submits raw assembly text; returns immediately with a handle.
    pub fn submit(&self, asm_text: &str) -> RequestHandle {
        self.submit_normalized(normalize_asm(asm_text))
    }

    /// Submits assembly that is **already** [`normalize_asm`] output (the
    /// eval harness pre-normalizes once so cache key and tokenizer input
    /// are the same string). Raw text submitted here would be tokenized
    /// with its boilerplate intact.
    pub fn submit_normalized(&self, normalized_asm: String) -> RequestHandle {
        let sh = &*self.shared;
        let o = slade_obs::obs();
        sh.metrics.submitted.fetch_add(1, Ordering::Relaxed);
        let trace_id = o.next_trace_id();
        let submitted_us = o.now_us();
        let slot = Arc::new(ResponseSlot::new());
        let key = sh.cache.enabled().then(|| {
            CacheKey::new(
                &normalized_asm,
                sh.slade.isa(),
                sh.slade.opt(),
                sh.slade.beam().max(1),
                sh.slade.max_tgt_len(),
            )
        });
        if let Some(key) = &key {
            if let Some(outputs) = sh.cache.get(key, &normalized_asm) {
                let dur = o.now_us() - submitted_us;
                o.record_span(SpanRecord {
                    trace_id,
                    span_id: span_id::QUEUE, // position 2 in the fixed tree
                    parent: span_id::REQUEST,
                    stage: Stage::Cache,
                    start_us: submitted_us,
                    dur_us: dur,
                    detail: 1,
                });
                o.record_span(SpanRecord {
                    trace_id,
                    span_id: span_id::REQUEST,
                    parent: 0,
                    stage: Stage::Request,
                    start_us: submitted_us,
                    dur_us: dur,
                    detail: 1, // cache hit
                });
                sh.metrics.record_latency(Duration::ZERO);
                slot.fulfill(outputs);
                return RequestHandle { slot, trace_id };
            }
        }
        let job = Job {
            norm_asm: normalized_asm,
            key,
            slot: Arc::clone(&slot),
            submitted: Instant::now(),
            trace_id,
            submitted_us,
        };
        {
            let mut q = self.shared.queue.lock().expect("queue lock");
            let deadline = Instant::now() + sh.max_wait;
            q.push(job, deadline);
            sh.metrics.queue_depth.fetch_add(1, Ordering::Relaxed);
        }
        self.shared.work.notify_all();
        RequestHandle { slot, trace_id }
    }

    /// Decompiles one function, blocking until its hypotheses are ready.
    pub fn decompile(&self, asm_text: &str) -> Vec<String> {
        self.submit(asm_text).wait()
    }

    /// Decompiles a batch, preserving input order in the output —
    /// element-wise identical to [`Slade::decompile_batch`] on the same
    /// inputs, for any shard count and completion order.
    pub fn decompile_batch(&self, asm_texts: &[&str]) -> Vec<Vec<String>> {
        let handles: Vec<RequestHandle> =
            asm_texts.iter().map(|asm| self.submit(asm)).collect();
        handles.into_iter().map(RequestHandle::wait).collect()
    }

    /// [`ServeRuntime::decompile_batch`] over pre-normalized inputs.
    pub fn decompile_batch_normalized(&self, normalized_asm: &[&str]) -> Vec<Vec<String>> {
        let handles: Vec<RequestHandle> = normalized_asm
            .iter()
            .map(|asm| self.submit_normalized((*asm).to_string()))
            .collect();
        handles.into_iter().map(RequestHandle::wait).collect()
    }

    /// Point-in-time metrics snapshot.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.shared.metrics.snapshot(self.shared.cache.stats())
    }

    /// Prometheus text exposition of the full metrics surface: queue,
    /// lanes, cache, both latency histograms, per-stage histograms, and
    /// kernel counters. Assembled from snapshots — scraping never takes a
    /// lock a worker records through.
    pub fn metrics_text(&self) -> String {
        self.shared.metrics.prometheus(self.shared.cache.stats())
    }

    /// Every recorded span of one request's trace (see
    /// [`RequestHandle::trace_id`]), oldest first. Spans evicted by ring
    /// wraparound (capacity `SLADE_TRACE_RING`) are absent.
    pub fn trace_spans(&self, trace_id: u64) -> Vec<SpanRecord> {
        slade_obs::obs().ring().for_trace(trace_id)
    }

    /// The decompiler being served.
    pub fn slade(&self) -> &Arc<Slade> {
        &self.shared.slade
    }

    /// Requests admitted so far, as arrival sequence numbers in admission
    /// order — the observability hook the fairness tests assert on.
    pub fn admission_order(&self) -> Vec<u64> {
        self.shared.queue.lock().expect("queue lock").pop_order().to_vec()
    }

    /// Signals shutdown and joins the workers after they drain queued and
    /// in-flight requests.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        {
            // Store + notify under the queue lock: a worker that just saw
            // `shutdown == false` still holds the lock until it blocks on
            // the condvar, so notifying here cannot be lost between its
            // check and its wait.
            let _q = self.shared.queue.lock().expect("queue lock");
            self.shared.shutdown.store(true, Ordering::Release);
            self.shared.work.notify_all();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for ServeRuntime {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// One shard: a continuous-batching loop over an engine decode session.
///
/// Admission and stepping interleave: every iteration drains as many
/// queued jobs as the free lane budget admits (grouped, so their sources
/// encode as one batch) — *including while earlier requests are
/// mid-decode* — then advances all live lanes one step and completes
/// whatever finished, freeing lanes for the next iteration's admissions.
/// One in-flight request plus its trace bookkeeping.
struct Inflight {
    ticket: u64,
    job: Job,
    /// Decode span start, µs since the observability epoch.
    decode_start_us: u64,
    /// Batched steps this request has participated in.
    steps: u64,
}

fn worker_loop(shared: &Shared, shard: usize) {
    let slade = &shared.slade;
    let o = slade_obs::obs();
    let engine = InferenceEngine::new(&slade.model);
    let beam = slade.beam().max(1);
    let mut session = engine.session(shared.lanes_per_shard, slade.max_tgt_len());
    let mut inflight: Vec<Inflight> = Vec::new();
    let mut tokens_reported: u64 = 0;
    loop {
        // Admission: pop under the lock, in fairness order, while lanes
        // are free; block only when there is nothing to do at all.
        let mut batch: Vec<Job> = Vec::new();
        {
            let mut q = shared.queue.lock().expect("queue lock");
            loop {
                let mut free = session.free_lanes().saturating_sub(batch.len() * beam);
                while free >= beam {
                    match q.pop_next() {
                        Some((_seq, job)) => {
                            free -= beam;
                            batch.push(job);
                        }
                        None => break,
                    }
                }
                if !batch.is_empty() || !session.is_idle() {
                    break;
                }
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                q = shared.work.wait(q).expect("queue wait");
            }
        }
        if !batch.is_empty() {
            shared.metrics.queue_depth_sub(batch.len());
            let tracing = o.enabled();
            let popped_us = o.now_us();
            if tracing {
                for job in &batch {
                    o.record_span(SpanRecord {
                        trace_id: job.trace_id,
                        span_id: span_id::QUEUE,
                        parent: span_id::REQUEST,
                        stage: Stage::Queue,
                        start_us: job.submitted_us,
                        dur_us: popped_us.saturating_sub(job.submitted_us),
                        detail: shard as u64,
                    });
                }
            }
            let tok_timer = slade_obs::StageTimer::start(slade_obs::StageHist::Tokenize);
            let requests: Vec<DecodeRequest> = batch
                .iter()
                .map(|job| DecodeRequest {
                    src: slade.tokenizer.encode(&job.norm_asm),
                    bos: special::BOS,
                    eos: special::EOS,
                    max_len: slade.max_tgt_len(),
                    beam: slade.beam(),
                })
                .collect();
            let tokenize_us = tok_timer.elapsed_us();
            drop(tok_timer);
            let refs: Vec<&DecodeRequest> = requests.iter().collect();
            let encode_start_us = o.now_us();
            let tickets = session.admit_many(&refs);
            let admitted_us = o.now_us();
            for (ticket, job) in tickets.into_iter().zip(batch) {
                shared.metrics.record_queue_wait(job.submitted.elapsed());
                if tracing {
                    // Tokenize/encode ran batched; each member's span
                    // carries the group duration (the time the request
                    // actually spent in the stage).
                    o.record_span(SpanRecord {
                        trace_id: job.trace_id,
                        span_id: span_id::TOKENIZE,
                        parent: span_id::REQUEST,
                        stage: Stage::Tokenize,
                        start_us: popped_us,
                        dur_us: tokenize_us,
                        detail: 0,
                    });
                    o.record_span(SpanRecord {
                        trace_id: job.trace_id,
                        span_id: span_id::ENCODE,
                        parent: span_id::REQUEST,
                        stage: Stage::Encode,
                        start_us: encode_start_us,
                        dur_us: admitted_us.saturating_sub(encode_start_us),
                        detail: 0,
                    });
                }
                inflight.push(Inflight { ticket, job, decode_start_us: admitted_us, steps: 0 });
            }
        }
        let tracing = o.enabled();
        let step_start_us = if tracing && !inflight.is_empty() { o.now_us() } else { 0 };
        let finished = session.step();
        if tracing && !inflight.is_empty() {
            let step_dur_us = o.now_us().saturating_sub(step_start_us);
            let live = inflight.len() as u64;
            for f in inflight.iter_mut() {
                o.record_span(SpanRecord {
                    trace_id: f.job.trace_id,
                    span_id: span_id::FIRST_STEP.saturating_add(f.steps as u32),
                    parent: span_id::DECODE,
                    stage: Stage::DecodeStep,
                    start_us: step_start_us,
                    dur_us: step_dur_us,
                    detail: live,
                });
                f.steps += 1;
            }
        } else {
            for f in inflight.iter_mut() {
                f.steps += 1;
            }
        }
        for (ticket, beams) in finished {
            let at = inflight
                .iter()
                .position(|f| f.ticket == ticket)
                .expect("finished ticket is in flight");
            let Inflight { job, decode_start_us, steps, .. } = inflight.swap_remove(at);
            let outputs: Vec<String> =
                beams.iter().map(|ids| slade.tokenizer.decode(ids)).collect();
            if let Some(key) = job.key {
                shared.cache.insert(key, &job.norm_asm, outputs.clone());
            }
            let elapsed = job.submitted.elapsed();
            if tracing {
                let done_us = o.now_us();
                o.record_span(SpanRecord {
                    trace_id: job.trace_id,
                    span_id: span_id::DECODE,
                    parent: span_id::REQUEST,
                    stage: Stage::Decode,
                    start_us: decode_start_us,
                    dur_us: done_us.saturating_sub(decode_start_us),
                    detail: steps,
                });
                o.record_span(SpanRecord {
                    trace_id: job.trace_id,
                    span_id: span_id::REQUEST,
                    parent: 0,
                    stage: Stage::Request,
                    start_us: job.submitted_us,
                    dur_us: done_us.saturating_sub(job.submitted_us),
                    detail: 0,
                });
            }
            let slow = o.slow_threshold_us();
            if slow > 0 && elapsed.as_micros() as u64 >= slow {
                o.count(slade_obs::KernelCtr::SlowRequests, 1);
                eprintln!(
                    "slade-serve: slow request trace_id={} shard={shard} {}ms (threshold {}ms, {steps} steps); inspect with `slade-cli trace {}`",
                    job.trace_id,
                    elapsed.as_millis(),
                    slow / 1000,
                    job.trace_id,
                );
            }
            shared.metrics.record_latency(elapsed);
            job.slot.fulfill(outputs);
        }
        shared.metrics.shard_lanes[shard].store(session.live_lanes(), Ordering::Relaxed);
        let decoded = session.decoded_tokens();
        shared.metrics.decode_tokens.fetch_add(decoded - tokens_reported, Ordering::Relaxed);
        tokens_reported = decoded;
    }
}
