//! `slade_serve` — the multi-threaded serving runtime above
//! [`slade::Slade`] and the batched inference engine.
//!
//! The engine (`slade_nn::engine`) made one decode batch fast; this crate
//! makes a *process* serve: a *sharded worker pool* (one engine
//! [`slade_nn::engine::DecodeSession`] per thread, model shared via
//! `Arc`) scales across cores, an *admission queue* with
//! FIFO-with-deadline fairness feeds the shards and admits newly arrived
//! requests into **running** decode batches as finished requests free
//! lanes (continuous batching), a *result cache* keyed by the hash of
//! [`slade::normalize_asm`] output plus the ISA/opt/beam configuration
//! answers duplicate-heavy traffic without decoding, and a *metrics
//! surface* exposes queue depth, per-shard lane occupancy, latency
//! percentiles and cache hit rate as a plain struct snapshot.
//!
//! # Determinism
//!
//! Runtime output is element-wise identical to sequential
//! [`slade::Slade::decompile_batch`] for any shard count, arrival order,
//! and cache setting: every step-path kernel computes each lane's row
//! with a fixed summation order, lanes attend only their own caches, and
//! the beam policy runs per request — so batch composition, admission
//! time, and shard assignment cannot change a request's hypotheses, and
//! the cache stores exactly what decode would return (verified by the
//! equivalence property test in `tests/equivalence.rs`).
//!
//! # Example
//!
//! ```no_run
//! use slade_serve::{ServeConfig, ServeRuntime};
//! use std::sync::Arc;
//!
//! # fn demo(slade: slade::Slade) {
//! let runtime = ServeRuntime::start(Arc::new(slade), ServeConfig::with_shards(4));
//! let hypotheses = runtime.decompile("f:\n\tret\n");
//! println!("{} candidates, {:?}", hypotheses.len(), runtime.metrics());
//! # }
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod metrics;
pub mod queue;

pub use cache::{CacheKey, CacheStats, ResultCache};
pub use metrics::MetricsSnapshot;
pub use queue::AdmissionQueue;

use metrics::MetricsInner;
use slade::{normalize_asm, Slade};
use slade_nn::{DecodeRequest, InferenceEngine};
use slade_tokenizer::special;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Serving-runtime configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads, each with its own engine decode session. Requests
    /// shard across them; throughput scales with cores until the queue
    /// runs dry.
    pub shards: usize,
    /// Concurrent-lane budget per shard; `0` derives it from the model's
    /// [`slade::Slade::max_batch_lanes`] split across the shards.
    pub lanes_per_shard: usize,
    /// Result-cache capacity in entries; `0` disables caching.
    pub cache_capacity: usize,
    /// Admission patience: a request older than this is served strictly
    /// FIFO ahead of any fresher request (see [`queue::AdmissionQueue`]).
    pub max_wait: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            shards: 1,
            lanes_per_shard: 0,
            cache_capacity: 1024,
            max_wait: Duration::from_millis(100),
        }
    }
}

impl ServeConfig {
    /// Default configuration at a given shard count.
    pub fn with_shards(shards: usize) -> Self {
        ServeConfig { shards: shards.max(1), ..ServeConfig::default() }
    }

    /// Disables the result cache.
    pub fn without_cache(mut self) -> Self {
        self.cache_capacity = 0;
        self
    }
}

/// One queued decompilation job.
struct Job {
    norm_asm: String,
    key: Option<CacheKey>,
    slot: Arc<ResponseSlot>,
    submitted: Instant,
}

/// Completion cell a caller blocks on.
struct ResponseSlot {
    result: Mutex<Option<Vec<String>>>,
    ready: Condvar,
}

impl ResponseSlot {
    fn new() -> Self {
        ResponseSlot { result: Mutex::new(None), ready: Condvar::new() }
    }

    fn fulfill(&self, outputs: Vec<String>) {
        *self.result.lock().expect("slot lock") = Some(outputs);
        self.ready.notify_all();
    }
}

/// Handle to one in-flight request; [`RequestHandle::wait`] blocks until
/// its hypotheses are ready.
pub struct RequestHandle {
    slot: Arc<ResponseSlot>,
}

impl RequestHandle {
    /// Blocks until the request completes; returns up to `beam`
    /// hypotheses, best first.
    pub fn wait(self) -> Vec<String> {
        let mut guard = self.slot.result.lock().expect("slot lock");
        while guard.is_none() {
            guard = self.slot.ready.wait(guard).expect("slot wait");
        }
        guard.take().expect("checked above")
    }

    /// Non-blocking poll; returns the result once, if ready.
    pub fn try_take(&self) -> Option<Vec<String>> {
        self.slot.result.lock().expect("slot lock").take()
    }
}

/// State shared between the front-end and the workers.
struct Shared {
    slade: Arc<Slade>,
    queue: Mutex<AdmissionQueue<Job>>,
    work: Condvar,
    cache: ResultCache,
    metrics: MetricsInner,
    shutdown: AtomicBool,
    lanes_per_shard: usize,
    max_wait: Duration,
}

/// The serving runtime: spawns the shard workers at
/// [`ServeRuntime::start`], serves until dropped (drop drains in-flight
/// work, then joins the workers).
pub struct ServeRuntime {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl ServeRuntime {
    /// Starts `config.shards` workers around a shared decompiler.
    pub fn start(slade: Arc<Slade>, config: ServeConfig) -> Self {
        let shards = config.shards.max(1);
        let beam = slade.beam().max(1);
        // Both branches floor at one full beam width — a shard with fewer
        // lanes could never admit anything and requests would hang — so
        // when `max_batch_lanes / shards < beam` the summed arenas exceed
        // the single-process cap by up to `shards × beam` lanes.
        let lanes_per_shard = if config.lanes_per_shard > 0 {
            config.lanes_per_shard.max(beam)
        } else {
            // Split the model's single-process lane budget across shards
            // so total arena memory stays at the configured cap (beam
            // floor aside).
            (slade.max_batch_lanes() / shards).max(beam)
        };
        // Resolve the kernel dispatch once up front so the metrics surface
        // reports what the workers will actually run with.
        let kernel_isa = slade_nn::kernels::active_tier().name();
        let backend = slade.model.cfg.backend.name();
        let shared = Arc::new(Shared {
            slade,
            queue: Mutex::new(AdmissionQueue::new()),
            work: Condvar::new(),
            cache: ResultCache::new(config.cache_capacity),
            metrics: MetricsInner::new(shards, lanes_per_shard, kernel_isa, backend),
            shutdown: AtomicBool::new(false),
            lanes_per_shard,
            max_wait: config.max_wait,
        });
        let workers = (0..shards)
            .map(|shard| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("slade-serve-{shard}"))
                    .spawn(move || worker_loop(&shared, shard))
                    .expect("spawn shard worker")
            })
            .collect();
        ServeRuntime { shared, workers }
    }

    /// Submits raw assembly text; returns immediately with a handle.
    pub fn submit(&self, asm_text: &str) -> RequestHandle {
        self.submit_normalized(normalize_asm(asm_text))
    }

    /// Submits assembly that is **already** [`normalize_asm`] output (the
    /// eval harness pre-normalizes once so cache key and tokenizer input
    /// are the same string). Raw text submitted here would be tokenized
    /// with its boilerplate intact.
    pub fn submit_normalized(&self, normalized_asm: String) -> RequestHandle {
        let sh = &*self.shared;
        sh.metrics.submitted.fetch_add(1, Ordering::Relaxed);
        let slot = Arc::new(ResponseSlot::new());
        let key = sh.cache.enabled().then(|| {
            CacheKey::new(
                &normalized_asm,
                sh.slade.isa(),
                sh.slade.opt(),
                sh.slade.beam().max(1),
                sh.slade.max_tgt_len(),
            )
        });
        if let Some(key) = &key {
            if let Some(outputs) = sh.cache.get(key, &normalized_asm) {
                sh.metrics.record_latency(Duration::ZERO);
                slot.fulfill(outputs);
                return RequestHandle { slot };
            }
        }
        let job = Job {
            norm_asm: normalized_asm,
            key,
            slot: Arc::clone(&slot),
            submitted: Instant::now(),
        };
        {
            let mut q = self.shared.queue.lock().expect("queue lock");
            let deadline = Instant::now() + sh.max_wait;
            q.push(job, deadline);
            sh.metrics.queue_depth.store(q.len(), Ordering::Relaxed);
        }
        self.shared.work.notify_all();
        RequestHandle { slot }
    }

    /// Decompiles one function, blocking until its hypotheses are ready.
    pub fn decompile(&self, asm_text: &str) -> Vec<String> {
        self.submit(asm_text).wait()
    }

    /// Decompiles a batch, preserving input order in the output —
    /// element-wise identical to [`Slade::decompile_batch`] on the same
    /// inputs, for any shard count and completion order.
    pub fn decompile_batch(&self, asm_texts: &[&str]) -> Vec<Vec<String>> {
        let handles: Vec<RequestHandle> =
            asm_texts.iter().map(|asm| self.submit(asm)).collect();
        handles.into_iter().map(RequestHandle::wait).collect()
    }

    /// [`ServeRuntime::decompile_batch`] over pre-normalized inputs.
    pub fn decompile_batch_normalized(&self, normalized_asm: &[&str]) -> Vec<Vec<String>> {
        let handles: Vec<RequestHandle> = normalized_asm
            .iter()
            .map(|asm| self.submit_normalized((*asm).to_string()))
            .collect();
        handles.into_iter().map(RequestHandle::wait).collect()
    }

    /// Point-in-time metrics snapshot.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.shared.metrics.snapshot(self.shared.cache.stats())
    }

    /// The decompiler being served.
    pub fn slade(&self) -> &Arc<Slade> {
        &self.shared.slade
    }

    /// Requests admitted so far, as arrival sequence numbers in admission
    /// order — the observability hook the fairness tests assert on.
    pub fn admission_order(&self) -> Vec<u64> {
        self.shared.queue.lock().expect("queue lock").pop_order().to_vec()
    }

    /// Signals shutdown and joins the workers after they drain queued and
    /// in-flight requests.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        {
            // Store + notify under the queue lock: a worker that just saw
            // `shutdown == false` still holds the lock until it blocks on
            // the condvar, so notifying here cannot be lost between its
            // check and its wait.
            let _q = self.shared.queue.lock().expect("queue lock");
            self.shared.shutdown.store(true, Ordering::Release);
            self.shared.work.notify_all();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for ServeRuntime {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// One shard: a continuous-batching loop over an engine decode session.
///
/// Admission and stepping interleave: every iteration drains as many
/// queued jobs as the free lane budget admits (grouped, so their sources
/// encode as one batch) — *including while earlier requests are
/// mid-decode* — then advances all live lanes one step and completes
/// whatever finished, freeing lanes for the next iteration's admissions.
fn worker_loop(shared: &Shared, shard: usize) {
    let slade = &shared.slade;
    let engine = InferenceEngine::new(&slade.model);
    let beam = slade.beam().max(1);
    let mut session = engine.session(shared.lanes_per_shard, slade.max_tgt_len());
    let mut inflight: Vec<(u64, Job)> = Vec::new();
    let mut tokens_reported: u64 = 0;
    loop {
        // Admission: pop under the lock, in fairness order, while lanes
        // are free; block only when there is nothing to do at all.
        let mut batch: Vec<Job> = Vec::new();
        {
            let mut q = shared.queue.lock().expect("queue lock");
            loop {
                let mut free = session.free_lanes().saturating_sub(batch.len() * beam);
                while free >= beam {
                    match q.pop_next() {
                        Some((_seq, job)) => {
                            free -= beam;
                            batch.push(job);
                        }
                        None => break,
                    }
                }
                if !batch.is_empty() || !session.is_idle() {
                    break;
                }
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                q = shared.work.wait(q).expect("queue wait");
            }
            shared.metrics.queue_depth.store(q.len(), Ordering::Relaxed);
        }
        if !batch.is_empty() {
            let requests: Vec<DecodeRequest> = batch
                .iter()
                .map(|job| DecodeRequest {
                    src: slade.tokenizer.encode(&job.norm_asm),
                    bos: special::BOS,
                    eos: special::EOS,
                    max_len: slade.max_tgt_len(),
                    beam: slade.beam(),
                })
                .collect();
            let refs: Vec<&DecodeRequest> = requests.iter().collect();
            let tickets = session.admit_many(&refs);
            for (ticket, job) in tickets.into_iter().zip(batch) {
                shared.metrics.record_queue_wait(job.submitted.elapsed());
                inflight.push((ticket, job));
            }
        }
        for (ticket, beams) in session.step() {
            let at = inflight
                .iter()
                .position(|(t, _)| *t == ticket)
                .expect("finished ticket is in flight");
            let (_, job) = inflight.swap_remove(at);
            let outputs: Vec<String> =
                beams.iter().map(|ids| slade.tokenizer.decode(ids)).collect();
            if let Some(key) = job.key {
                shared.cache.insert(key, &job.norm_asm, outputs.clone());
            }
            shared.metrics.record_latency(job.submitted.elapsed());
            job.slot.fulfill(outputs);
        }
        shared.metrics.shard_lanes[shard].store(session.live_lanes(), Ordering::Relaxed);
        let decoded = session.decoded_tokens();
        shared.metrics.decode_tokens.fetch_add(decoded - tokens_reported, Ordering::Relaxed);
        tokens_reported = decoded;
    }
}
