//! `slade_serve` — the multi-threaded serving runtime above
//! [`slade::Slade`] and the batched inference engine.
//!
//! The engine (`slade_nn::engine`) made one decode batch fast; this crate
//! makes a *process* serve: a *sharded worker pool* (one engine
//! [`slade_nn::engine::DecodeSession`] per thread, model shared via
//! `Arc`) scales across cores, an *admission queue* with
//! FIFO-with-deadline fairness feeds the shards and admits newly arrived
//! requests into **running** decode batches as finished requests free
//! lanes (continuous batching), a *result cache* keyed by the hash of
//! [`slade::normalize_asm`] output plus the ISA/opt/beam configuration
//! answers duplicate-heavy traffic without decoding, and a *metrics
//! surface* exposes queue depth, per-shard lane occupancy, latency
//! percentiles and cache hit rate as a plain struct snapshot.
//!
//! # Admission control
//!
//! Production traffic needs backpressure, not an unbounded queue. The
//! runtime's admission tier gives every submission exactly one terminal
//! state (the *counter-conservation invariant* the fault-injection suite
//! enforces — `submitted == shed + expired + coalesced + decoded +
//! cache hits`):
//!
//! * **shed** — [`ServeRuntime::try_submit`] rejects with
//!   [`SubmitError::Overloaded`] when the queue is at
//!   [`ServeConfig::queue_cap`] (cache hits and coalesced attaches cost
//!   no decode and are never shed);
//! * **expired** — with a configured [`ServeConfig::request_timeout`],
//!   a request whose deadline passes before its result is ready resolves
//!   to [`SubmitError::DeadlineExceeded`] *promptly* (the waiter wakes at
//!   the deadline; it does not wait for decode), and a worker popping an
//!   already-expired job cancels it instead of decoding stale work —
//!   unless coalesced waiters are attached and still want the answer;
//! * **coalesced** — a duplicate submission whose cache key is already
//!   decoding attaches to the in-flight request's pending entry and gets
//!   the same result fanned out, one decode for N waiters;
//! * **decoded** — the request ran the engine itself;
//! * **cache hit** — answered at submit from the result cache (memory
//!   LRU, or the [`spill`] disk tier that survives restarts).
//!
//! # Determinism
//!
//! Runtime output is element-wise identical to sequential
//! [`slade::Slade::decompile_batch`] for any shard count, arrival order,
//! and cache setting: every step-path kernel computes each lane's row
//! with a fixed summation order, lanes attend only their own caches, and
//! the beam policy runs per request — so batch composition, admission
//! time, and shard assignment cannot change a request's hypotheses, and
//! the cache stores exactly what decode would return (verified by the
//! equivalence property test in `tests/equivalence.rs`). Coalesced
//! waiters verify the full normalized text, not just the key hash, so a
//! hash collision can never fan out another function's hypotheses.
//!
//! # Example
//!
//! ```no_run
//! use slade_serve::{ServeConfig, ServeRuntime};
//! use std::sync::Arc;
//!
//! # fn demo(slade: slade::Slade) {
//! let runtime = ServeRuntime::start(Arc::new(slade), ServeConfig::with_shards(4));
//! let hypotheses = runtime.decompile("f:\n\tret\n");
//! println!("{} candidates, {:?}", hypotheses.len(), runtime.metrics());
//! # }
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod metrics;
pub mod queue;
pub mod spill;

pub use cache::{CacheKey, CacheStats, ResultCache};
pub use metrics::MetricsSnapshot;
pub use queue::AdmissionQueue;
pub use spill::{SpillProbe, SpillTier, SPILL_VERSION};

use metrics::MetricsInner;
use slade::{normalize_asm, Slade};
use slade_nn::{DecodeRequest, InferenceEngine};
use slade_obs::{SpanRecord, Stage};
use slade_tokenizer::special;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Serving-runtime configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads, each with its own engine decode session. Requests
    /// shard across them; throughput scales with cores until the queue
    /// runs dry.
    pub shards: usize,
    /// Concurrent-lane budget per shard; `0` derives it from the model's
    /// [`slade::Slade::max_batch_lanes`] split across the shards.
    pub lanes_per_shard: usize,
    /// Result-cache capacity in entries; `0` disables the memory tier.
    pub cache_capacity: usize,
    /// Admission patience: a request older than this is served strictly
    /// FIFO ahead of any fresher request (see [`queue::AdmissionQueue`]).
    pub max_wait: Duration,
    /// Bounded-admission queue cap for [`ServeRuntime::try_submit`]:
    /// when this many requests are already queued, further fallible
    /// submissions shed with [`SubmitError::Overloaded`]. `0` =
    /// unbounded (never sheds).
    pub queue_cap: usize,
    /// Per-request end-to-end deadline: a request not answered within
    /// this resolves to [`SubmitError::DeadlineExceeded`], and queued
    /// work past its deadline is cancelled instead of decoded.
    /// [`Duration::ZERO`] disables timeouts.
    pub request_timeout: Duration,
    /// Collapse duplicate in-flight submissions (same cache key and
    /// normalized text) onto one decode, fanning the result out to every
    /// attached waiter.
    pub coalesce: bool,
    /// Directory for the disk-spill result-cache tier; `None` = memory
    /// only. Entries persist across restarts and are shared between
    /// runtimes pointed at the same directory (see [`spill`]).
    pub spill_dir: Option<PathBuf>,
    /// Spill-tier capacity in entries (`0` = unbounded); only meaningful
    /// with `spill_dir` set.
    pub spill_capacity: usize,
    /// Test-only fault-injection hook: each worker sleeps this long
    /// before decoding a popped batch, simulating a slow shard so
    /// shedding, timeouts, and coalescing can be driven
    /// deterministically. [`Duration::ZERO`] (the default) disables it.
    #[doc(hidden)]
    pub test_decode_delay: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            shards: 1,
            lanes_per_shard: 0,
            cache_capacity: 1024,
            max_wait: Duration::from_millis(100),
            queue_cap: 0,
            request_timeout: Duration::ZERO,
            coalesce: true,
            spill_dir: None,
            spill_capacity: 4096,
            test_decode_delay: Duration::ZERO,
        }
    }
}

impl ServeConfig {
    /// Default configuration at a given shard count.
    pub fn with_shards(shards: usize) -> Self {
        ServeConfig { shards: shards.max(1), ..ServeConfig::default() }
    }

    /// Disables the result cache (memory tier; the spill tier is
    /// controlled by [`ServeConfig::spill_dir`]).
    pub fn without_cache(mut self) -> Self {
        self.cache_capacity = 0;
        self
    }

    /// Disables in-flight coalescing (duplicates decode independently).
    pub fn without_coalescing(mut self) -> Self {
        self.coalesce = false;
        self
    }

    /// Bounds the admission queue at `cap` (see
    /// [`ServeConfig::queue_cap`]).
    pub fn with_queue_cap(mut self, cap: usize) -> Self {
        self.queue_cap = cap;
        self
    }

    /// Sets the per-request end-to-end deadline.
    pub fn with_request_timeout(mut self, timeout: Duration) -> Self {
        self.request_timeout = timeout;
        self
    }

    /// Enables the disk-spill result-cache tier under `dir`.
    pub fn with_spill_dir(mut self, dir: PathBuf) -> Self {
        self.spill_dir = Some(dir);
        self
    }
}

/// Why a submission was rejected or cancelled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// Bounded admission shed the request: the queue was at
    /// [`ServeConfig::queue_cap`] when [`ServeRuntime::try_submit`] ran.
    Overloaded,
    /// The request's [`ServeConfig::request_timeout`] elapsed before a
    /// result was ready.
    DeadlineExceeded,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Overloaded => write!(f, "overloaded: admission queue at capacity"),
            SubmitError::DeadlineExceeded => write!(f, "deadline exceeded before a result"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// One queued decompilation job.
struct Job {
    norm_asm: String,
    key: Option<CacheKey>,
    slot: Arc<ResponseSlot>,
    submitted: Instant,
    /// End-to-end deadline; `None` when timeouts are disabled.
    timeout_at: Option<Instant>,
    /// Trace id for the request's span tree.
    trace_id: u64,
    /// Submit time, µs since the observability epoch (span start times).
    submitted_us: u64,
}

/// Fixed span ids within a request's trace: the tree shape is static
/// (root → queue/tokenize/encode/decode → per-step children), so ids are
/// assigned by position rather than a per-trace counter.
mod span_id {
    pub const REQUEST: u32 = 1;
    pub const QUEUE: u32 = 2;
    /// Coalesced/shed requests have a two-span tree: root + this marker
    /// (same position as the queue span they never occupy).
    pub const ATTACH: u32 = 2;
    pub const TOKENIZE: u32 = 3;
    pub const ENCODE: u32 = 4;
    pub const DECODE: u32 = 5;
    /// Decode-step spans are `FIRST_STEP + step_index`.
    pub const FIRST_STEP: u32 = 6;
}

/// Root-span `detail` codes: how the request terminated.
mod root_detail {
    pub const DECODED: u64 = 0;
    pub const CACHE_HIT: u64 = 1;
    pub const COALESCED: u64 = 2;
    pub const SHED: u64 = 3;
    pub const EXPIRED: u64 = 4;
}

/// Completion cell a caller blocks on. `claimed` is the exactly-once
/// terminal-state gate: whoever wins [`ResponseSlot::try_claim`] — the
/// decode fan-out, a cache hit, or an expiring waiter/worker — is the
/// only party that fulfills the slot and counts the terminal, so no
/// request is ever counted or delivered twice.
struct ResponseSlot {
    result: Mutex<Option<Result<Vec<String>, SubmitError>>>,
    ready: Condvar,
    claimed: AtomicBool,
}

impl ResponseSlot {
    fn new() -> Self {
        ResponseSlot {
            result: Mutex::new(None),
            ready: Condvar::new(),
            claimed: AtomicBool::new(false),
        }
    }

    /// True exactly once, for the first caller.
    fn try_claim(&self) -> bool {
        !self.claimed.swap(true, Ordering::AcqRel)
    }

    fn is_claimed(&self) -> bool {
        self.claimed.load(Ordering::Acquire)
    }

    fn fulfill(&self, outcome: Result<Vec<String>, SubmitError>) {
        *self.result.lock().expect("slot lock") = Some(outcome);
        self.ready.notify_all();
    }
}

/// Handle to one in-flight request; [`RequestHandle::wait`] blocks until
/// its hypotheses are ready or its deadline passes.
pub struct RequestHandle {
    slot: Arc<ResponseSlot>,
    trace_id: u64,
    timeout_at: Option<Instant>,
    submitted_us: u64,
    shared: Arc<Shared>,
}

impl RequestHandle {
    /// The request's trace id — look up its span tree afterwards with
    /// [`ServeRuntime::trace_spans`] or `slade-cli trace`.
    pub fn trace_id(&self) -> u64 {
        self.trace_id
    }

    /// Blocks until the request completes; returns up to `beam`
    /// hypotheses, best first — or [`SubmitError::DeadlineExceeded`]
    /// **at the deadline** when [`ServeConfig::request_timeout`] is
    /// configured: an expired request still queued behind a slow decode
    /// resolves promptly, it does not wait for the decode to finish.
    pub fn wait(self) -> Result<Vec<String>, SubmitError> {
        let mut deadline = self.timeout_at;
        let mut guard = self.slot.result.lock().expect("slot lock");
        loop {
            if let Some(outcome) = guard.take() {
                return outcome;
            }
            match deadline {
                None => guard = self.slot.ready.wait(guard).expect("slot wait"),
                Some(t) => {
                    let now = Instant::now();
                    if now >= t {
                        if self.slot.try_claim() {
                            drop(guard);
                            self.shared.expire(self.trace_id, self.submitted_us);
                            self.slot.fulfill(Err(SubmitError::DeadlineExceeded));
                            return Err(SubmitError::DeadlineExceeded);
                        }
                        // Lost the claim: a fulfiller is delivering right
                        // now — wait for the result without a deadline.
                        deadline = None;
                    } else {
                        let (g, _) =
                            self.slot.ready.wait_timeout(guard, t - now).expect("slot wait");
                        guard = g;
                    }
                }
            }
        }
    }

    /// Non-blocking poll; returns the outcome once, if ready.
    pub fn try_take(&self) -> Option<Result<Vec<String>, SubmitError>> {
        self.slot.result.lock().expect("slot lock").take()
    }
}

/// One waiter attached to an in-flight decode by the coalescing table.
struct Waiter {
    slot: Arc<ResponseSlot>,
    trace_id: u64,
    attached_us: u64,
    submitted: Instant,
}

/// In-flight decode entry: presence in the pending table means "this key
/// is queued or decoding"; the full normalized text guards against hash
/// collisions coalescing two different functions.
struct PendingEntry {
    norm_asm: String,
    waiters: Vec<Waiter>,
}

/// State shared between the front-end and the workers.
struct Shared {
    slade: Arc<Slade>,
    queue: Mutex<AdmissionQueue<Job>>,
    work: Condvar,
    /// In-flight coalescing table (lock order: `queue` before `pending`
    /// when both are held; never `pending` → `queue`).
    pending: Mutex<HashMap<CacheKey, PendingEntry>>,
    cache: ResultCache,
    metrics: MetricsInner,
    shutdown: AtomicBool,
    lanes_per_shard: usize,
    max_wait: Duration,
    queue_cap: usize,
    request_timeout: Duration,
    coalesce: bool,
    test_decode_delay: Duration,
}

impl Shared {
    /// Terminal accounting + span for one expired request (claim must
    /// already be won by the caller).
    fn expire(&self, trace_id: u64, submitted_us: u64) {
        self.metrics.expired.fetch_add(1, Ordering::Relaxed);
        let o = slade_obs::obs();
        o.record_span(SpanRecord {
            trace_id,
            span_id: span_id::REQUEST,
            parent: 0,
            stage: Stage::Request,
            start_us: submitted_us,
            dur_us: o.now_us().saturating_sub(submitted_us),
            detail: root_detail::EXPIRED,
        });
    }
}

/// The serving runtime: spawns the shard workers at
/// [`ServeRuntime::start`], serves until dropped (drop drains in-flight
/// work, then joins the workers).
pub struct ServeRuntime {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl ServeRuntime {
    /// Starts `config.shards` workers around a shared decompiler.
    pub fn start(slade: Arc<Slade>, config: ServeConfig) -> Self {
        let shards = config.shards.max(1);
        let beam = slade.beam().max(1);
        // Both branches floor at one full beam width — a shard with fewer
        // lanes could never admit anything and requests would hang — so
        // when `max_batch_lanes / shards < beam` the summed arenas exceed
        // the single-process cap by up to `shards × beam` lanes.
        let lanes_per_shard = if config.lanes_per_shard > 0 {
            config.lanes_per_shard.max(beam)
        } else {
            // Split the model's single-process lane budget across shards
            // so total arena memory stays at the configured cap (beam
            // floor aside).
            (slade.max_batch_lanes() / shards).max(beam)
        };
        // Resolve the kernel dispatch once up front so the metrics surface
        // reports what the workers will actually run with — both the
        // effective tier and whether a `SLADE_KERNEL_ISA` request was
        // honored or degraded.
        let kernel_isa = slade_nn::kernels::active_tier().name();
        let kernel_isa_status = slade_nn::kernels::tier_status();
        let backend = slade.model.cfg.backend.name();
        let cache = match &config.spill_dir {
            Some(dir) => ResultCache::with_spill(
                config.cache_capacity,
                dir.clone(),
                config.spill_capacity,
            ),
            None => ResultCache::new(config.cache_capacity),
        };
        let shared = Arc::new(Shared {
            slade,
            queue: Mutex::new(AdmissionQueue::new()),
            work: Condvar::new(),
            pending: Mutex::new(HashMap::new()),
            cache,
            metrics: MetricsInner::new(
                shards,
                lanes_per_shard,
                kernel_isa,
                kernel_isa_status,
                backend,
            ),
            shutdown: AtomicBool::new(false),
            lanes_per_shard,
            max_wait: config.max_wait,
            queue_cap: config.queue_cap,
            request_timeout: config.request_timeout,
            coalesce: config.coalesce,
            test_decode_delay: config.test_decode_delay,
        });
        let workers = (0..shards)
            .map(|shard| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("slade-serve-{shard}"))
                    .spawn(move || worker_loop(&shared, shard))
                    .expect("spawn shard worker")
            })
            .collect();
        ServeRuntime { shared, workers }
    }

    /// Submits raw assembly text; returns immediately with a handle.
    /// Infallible admission: never sheds, even past
    /// [`ServeConfig::queue_cap`] (trusted in-process callers); the
    /// configured request timeout still applies.
    pub fn submit(&self, asm_text: &str) -> RequestHandle {
        self.submit_normalized(normalize_asm(asm_text))
    }

    /// Submits assembly that is **already** [`normalize_asm`] output (the
    /// eval harness pre-normalizes once so cache key and tokenizer input
    /// are the same string). Raw text submitted here would be tokenized
    /// with its boilerplate intact.
    pub fn submit_normalized(&self, normalized_asm: String) -> RequestHandle {
        match self.admit(normalized_asm, false) {
            Ok(handle) => handle,
            Err(_) => unreachable!("infallible submit never sheds"),
        }
    }

    /// Fallible admission with shed-on-full backpressure: rejects with
    /// [`SubmitError::Overloaded`] when [`ServeConfig::queue_cap`]
    /// requests are already queued. Cache hits and coalesced attaches
    /// cost no decode and are admitted regardless of queue depth.
    pub fn try_submit(&self, asm_text: &str) -> Result<RequestHandle, SubmitError> {
        self.try_submit_normalized(normalize_asm(asm_text))
    }

    /// [`ServeRuntime::try_submit`] over pre-normalized input.
    pub fn try_submit_normalized(
        &self,
        normalized_asm: String,
    ) -> Result<RequestHandle, SubmitError> {
        self.admit(normalized_asm, true)
    }

    /// The single admission path: cache probe → coalesce attach → cap
    /// check → enqueue (see module docs for the terminal states).
    fn admit(
        &self,
        normalized_asm: String,
        enforce_cap: bool,
    ) -> Result<RequestHandle, SubmitError> {
        let sh = &*self.shared;
        let o = slade_obs::obs();
        sh.metrics.submitted.fetch_add(1, Ordering::Relaxed);
        let trace_id = o.next_trace_id();
        let submitted_us = o.now_us();
        let submitted = Instant::now();
        let timeout_at =
            (sh.request_timeout > Duration::ZERO).then(|| submitted + sh.request_timeout);
        let slot = Arc::new(ResponseSlot::new());
        let handle = RequestHandle {
            slot: Arc::clone(&slot),
            trace_id,
            timeout_at,
            submitted_us,
            shared: Arc::clone(&self.shared),
        };
        let key = (sh.cache.enabled() || sh.coalesce).then(|| {
            CacheKey::new(
                &normalized_asm,
                sh.slade.isa(),
                sh.slade.opt(),
                sh.slade.beam().max(1),
                sh.slade.max_tgt_len(),
            )
        });
        if let Some(key) = &key {
            if sh.cache.enabled() {
                if let Some(outputs) = sh.cache.get(key, &normalized_asm) {
                    let dur = o.now_us() - submitted_us;
                    o.record_span(SpanRecord {
                        trace_id,
                        span_id: span_id::QUEUE, // position 2 in the fixed tree
                        parent: span_id::REQUEST,
                        stage: Stage::Cache,
                        start_us: submitted_us,
                        dur_us: dur,
                        detail: 1,
                    });
                    o.record_span(SpanRecord {
                        trace_id,
                        span_id: span_id::REQUEST,
                        parent: 0,
                        stage: Stage::Request,
                        start_us: submitted_us,
                        dur_us: dur,
                        detail: root_detail::CACHE_HIT,
                    });
                    sh.metrics.record_latency(Duration::ZERO);
                    slot.try_claim();
                    slot.fulfill(Ok(outputs));
                    return Ok(handle);
                }
            }
        }
        let job = Job {
            norm_asm: normalized_asm,
            key,
            slot,
            submitted,
            timeout_at,
            trace_id,
            submitted_us,
        };
        {
            // Cap check, coalesce attach, and enqueue are atomic under
            // the queue lock (pending nests inside it — see the lock
            // order note on `Shared::pending`), so a sequential
            // submitter observes exact shed behavior.
            let mut q = self.shared.queue.lock().expect("queue lock");
            if let Some(key) = &job.key {
                if sh.coalesce {
                    let mut pending = sh.pending.lock().expect("pending lock");
                    if let Some(entry) = pending.get_mut(key) {
                        if entry.norm_asm == job.norm_asm {
                            // Duplicate of an in-flight decode: attach,
                            // don't enqueue. Terminal state (coalesced or
                            // expired) is decided at fan-out or deadline.
                            entry.waiters.push(Waiter {
                                slot: Arc::clone(&job.slot),
                                trace_id,
                                attached_us: submitted_us,
                                submitted,
                            });
                            return Ok(handle);
                        }
                        // Same key, different text: a 64-bit collision.
                        // Decode independently; the entry stays owned by
                        // the other text's decode.
                    } else {
                        if enforce_cap && sh.queue_cap > 0 && q.len() >= sh.queue_cap {
                            drop(pending);
                            drop(q);
                            return Err(self.shed(trace_id, submitted_us));
                        }
                        pending.insert(
                            *key,
                            PendingEntry {
                                norm_asm: job.norm_asm.clone(),
                                waiters: Vec::new(),
                            },
                        );
                    }
                }
            }
            if (job.key.is_none() || !sh.coalesce)
                && enforce_cap
                && sh.queue_cap > 0
                && q.len() >= sh.queue_cap
            {
                drop(q);
                return Err(self.shed(trace_id, submitted_us));
            }
            let deadline = Instant::now() + sh.max_wait;
            q.push(job, deadline);
            sh.metrics.queue_depth.fetch_add(1, Ordering::Relaxed);
        }
        self.shared.work.notify_all();
        Ok(handle)
    }

    /// Terminal accounting + spans for one shed submission.
    fn shed(&self, trace_id: u64, submitted_us: u64) -> SubmitError {
        let sh = &*self.shared;
        sh.metrics.shed.fetch_add(1, Ordering::Relaxed);
        let o = slade_obs::obs();
        let dur = o.now_us().saturating_sub(submitted_us);
        o.record_span(SpanRecord {
            trace_id,
            span_id: span_id::ATTACH,
            parent: span_id::REQUEST,
            stage: Stage::Shed,
            start_us: submitted_us,
            dur_us: dur,
            detail: sh.queue_cap as u64,
        });
        o.record_span(SpanRecord {
            trace_id,
            span_id: span_id::REQUEST,
            parent: 0,
            stage: Stage::Request,
            start_us: submitted_us,
            dur_us: dur,
            detail: root_detail::SHED,
        });
        SubmitError::Overloaded
    }

    /// Decompiles one function, blocking until its hypotheses are ready.
    ///
    /// # Panics
    ///
    /// With a configured [`ServeConfig::request_timeout`], panics if the
    /// deadline expires — use [`ServeRuntime::submit`] and handle the
    /// error for deadline-aware callers.
    pub fn decompile(&self, asm_text: &str) -> Vec<String> {
        self.submit(asm_text).wait().expect("request timed out (see request_timeout)")
    }

    /// Decompiles a batch, preserving input order in the output —
    /// element-wise identical to [`Slade::decompile_batch`] on the same
    /// inputs, for any shard count and completion order. Panics on
    /// timeout like [`ServeRuntime::decompile`].
    pub fn decompile_batch(&self, asm_texts: &[&str]) -> Vec<Vec<String>> {
        let handles: Vec<RequestHandle> =
            asm_texts.iter().map(|asm| self.submit(asm)).collect();
        handles
            .into_iter()
            .map(|h| h.wait().expect("request timed out (see request_timeout)"))
            .collect()
    }

    /// [`ServeRuntime::decompile_batch`] over pre-normalized inputs.
    pub fn decompile_batch_normalized(&self, normalized_asm: &[&str]) -> Vec<Vec<String>> {
        let handles: Vec<RequestHandle> = normalized_asm
            .iter()
            .map(|asm| self.submit_normalized((*asm).to_string()))
            .collect();
        handles
            .into_iter()
            .map(|h| h.wait().expect("request timed out (see request_timeout)"))
            .collect()
    }

    /// Point-in-time metrics snapshot.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.shared.metrics.snapshot(self.shared.cache.stats())
    }

    /// Prometheus text exposition of the full metrics surface: queue,
    /// lanes, admission terminals (shed/expired/coalesced/decoded),
    /// cache + spill tiers, both latency histograms, per-stage
    /// histograms, and kernel counters. Assembled from snapshots —
    /// scraping never takes a lock a worker records through.
    pub fn metrics_text(&self) -> String {
        self.shared.metrics.prometheus(self.shared.cache.stats())
    }

    /// Every recorded span of one request's trace (see
    /// [`RequestHandle::trace_id`]), oldest first. Spans evicted by ring
    /// wraparound (capacity `SLADE_TRACE_RING`) are absent.
    pub fn trace_spans(&self, trace_id: u64) -> Vec<SpanRecord> {
        slade_obs::obs().ring().for_trace(trace_id)
    }

    /// The decompiler being served.
    pub fn slade(&self) -> &Arc<Slade> {
        &self.shared.slade
    }

    /// Requests admitted so far, as arrival sequence numbers in admission
    /// order — the observability hook the fairness tests assert on.
    pub fn admission_order(&self) -> Vec<u64> {
        self.shared.queue.lock().expect("queue lock").pop_order().to_vec()
    }

    /// Signals shutdown and joins the workers after they drain queued and
    /// in-flight requests.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        {
            // Store + notify under the queue lock: a worker that just saw
            // `shutdown == false` still holds the lock until it blocks on
            // the condvar, so notifying here cannot be lost between its
            // check and its wait.
            let _q = self.shared.queue.lock().expect("queue lock");
            self.shared.shutdown.store(true, Ordering::Release);
            self.shared.work.notify_all();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for ServeRuntime {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// One shard: a continuous-batching loop over an engine decode session.
///
/// Admission and stepping interleave: every iteration drains as many
/// queued jobs as the free lane budget admits (grouped, so their sources
/// encode as one batch) — *including while earlier requests are
/// mid-decode* — then advances all live lanes one step and completes
/// whatever finished, freeing lanes for the next iteration's admissions.
/// One in-flight request plus its trace bookkeeping.
struct Inflight {
    ticket: u64,
    job: Job,
    /// Decode span start, µs since the observability epoch.
    decode_start_us: u64,
    /// Batched steps this request has participated in.
    steps: u64,
}

/// Decides what to do with one popped job whose deadline may have
/// passed: `Decode` (live, or expired-but-wanted by coalesced waiters)
/// or `Drop` (cancelled — never decoded).
fn triage(shared: &Shared, job: &Job, now: Instant) -> bool {
    let timed_out = job.timeout_at.is_some_and(|t| now >= t);
    if !timed_out && !job.slot.is_claimed() {
        return true;
    }
    // Expired (by its waiter, or right here). Count the terminal if the
    // claim is still open — the waiter may be gone (handle dropped).
    if job.slot.try_claim() {
        shared.expire(job.trace_id, job.submitted_us);
        job.slot.fulfill(Err(SubmitError::DeadlineExceeded));
    }
    // Cancel the decode unless coalesced waiters still want the answer.
    if shared.coalesce {
        if let Some(key) = &job.key {
            let mut pending = shared.pending.lock().expect("pending lock");
            if let Some(entry) = pending.get(key) {
                if entry.norm_asm == job.norm_asm {
                    if entry.waiters.is_empty() {
                        pending.remove(key);
                        return false;
                    }
                    // Waiters attached: decode for them; the expired
                    // leader is skipped at fan-out by its lost claim.
                    return true;
                }
            }
        }
    }
    false
}

fn worker_loop(shared: &Shared, shard: usize) {
    let slade = &shared.slade;
    let o = slade_obs::obs();
    let engine = InferenceEngine::new(&slade.model);
    let beam = slade.beam().max(1);
    let mut session = engine.session(shared.lanes_per_shard, slade.max_tgt_len());
    let mut inflight: Vec<Inflight> = Vec::new();
    let mut tokens_reported: u64 = 0;
    loop {
        // Admission: pop under the lock, in fairness order, while lanes
        // are free; block only when there is nothing to do at all.
        let mut popped: Vec<Job> = Vec::new();
        {
            let mut q = shared.queue.lock().expect("queue lock");
            loop {
                let mut free = session.free_lanes().saturating_sub(popped.len() * beam);
                while free >= beam {
                    match q.pop_next() {
                        Some((_seq, job)) => {
                            free -= beam;
                            popped.push(job);
                        }
                        None => break,
                    }
                }
                if !popped.is_empty() || !session.is_idle() {
                    break;
                }
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                q = shared.work.wait(q).expect("queue wait");
            }
        }
        if !popped.is_empty() {
            shared.metrics.queue_depth_sub(popped.len());
        }
        // Cancel expired queued work (unless coalesced waiters want it).
        let now = Instant::now();
        let batch: Vec<Job> =
            popped.into_iter().filter(|job| triage(shared, job, now)).collect();
        if !batch.is_empty() {
            // Fault-injection hook: simulate a slow shard.
            if shared.test_decode_delay > Duration::ZERO {
                std::thread::sleep(shared.test_decode_delay);
            }
            let tracing = o.enabled();
            let popped_us = o.now_us();
            if tracing {
                for job in &batch {
                    o.record_span(SpanRecord {
                        trace_id: job.trace_id,
                        span_id: span_id::QUEUE,
                        parent: span_id::REQUEST,
                        stage: Stage::Queue,
                        start_us: job.submitted_us,
                        dur_us: popped_us.saturating_sub(job.submitted_us),
                        detail: shard as u64,
                    });
                }
            }
            let tok_timer = slade_obs::StageTimer::start(slade_obs::StageHist::Tokenize);
            let requests: Vec<DecodeRequest> = batch
                .iter()
                .map(|job| DecodeRequest {
                    src: slade.tokenizer.encode(&job.norm_asm),
                    bos: special::BOS,
                    eos: special::EOS,
                    max_len: slade.max_tgt_len(),
                    beam: slade.beam(),
                })
                .collect();
            let tokenize_us = tok_timer.elapsed_us();
            drop(tok_timer);
            let refs: Vec<&DecodeRequest> = requests.iter().collect();
            let encode_start_us = o.now_us();
            let tickets = session.admit_many(&refs);
            let admitted_us = o.now_us();
            for (ticket, job) in tickets.into_iter().zip(batch) {
                shared.metrics.record_queue_wait(job.submitted.elapsed());
                if tracing {
                    // Tokenize/encode ran batched; each member's span
                    // carries the group duration (the time the request
                    // actually spent in the stage).
                    o.record_span(SpanRecord {
                        trace_id: job.trace_id,
                        span_id: span_id::TOKENIZE,
                        parent: span_id::REQUEST,
                        stage: Stage::Tokenize,
                        start_us: popped_us,
                        dur_us: tokenize_us,
                        detail: 0,
                    });
                    o.record_span(SpanRecord {
                        trace_id: job.trace_id,
                        span_id: span_id::ENCODE,
                        parent: span_id::REQUEST,
                        stage: Stage::Encode,
                        start_us: encode_start_us,
                        dur_us: admitted_us.saturating_sub(encode_start_us),
                        detail: 0,
                    });
                }
                inflight.push(Inflight { ticket, job, decode_start_us: admitted_us, steps: 0 });
            }
        }
        let tracing = o.enabled();
        let step_start_us = if tracing && !inflight.is_empty() { o.now_us() } else { 0 };
        let finished = session.step();
        if tracing && !inflight.is_empty() {
            let step_dur_us = o.now_us().saturating_sub(step_start_us);
            let live = inflight.len() as u64;
            for f in inflight.iter_mut() {
                o.record_span(SpanRecord {
                    trace_id: f.job.trace_id,
                    span_id: span_id::FIRST_STEP.saturating_add(f.steps as u32),
                    parent: span_id::DECODE,
                    stage: Stage::DecodeStep,
                    start_us: step_start_us,
                    dur_us: step_dur_us,
                    detail: live,
                });
                f.steps += 1;
            }
        } else {
            for f in inflight.iter_mut() {
                f.steps += 1;
            }
        }
        for (ticket, beams) in finished {
            let at = inflight
                .iter()
                .position(|f| f.ticket == ticket)
                .expect("finished ticket is in flight");
            let Inflight { job, decode_start_us, steps, .. } = inflight.swap_remove(at);
            let outputs: Vec<String> =
                beams.iter().map(|ids| slade.tokenizer.decode(ids)).collect();
            // Detach the coalesced waiters first (removing the pending
            // entry, so late duplicates become fresh leaders), then feed
            // the cache, then fan out.
            let waiters: Vec<Waiter> = match (&job.key, shared.coalesce) {
                (Some(key), true) => {
                    let mut pending = shared.pending.lock().expect("pending lock");
                    match pending.get(key) {
                        Some(entry) if entry.norm_asm == job.norm_asm => {
                            pending.remove(key).map(|entry| entry.waiters).unwrap_or_default()
                        }
                        _ => Vec::new(),
                    }
                }
                _ => Vec::new(),
            };
            if let Some(key) = job.key {
                shared.cache.insert(key, &job.norm_asm, outputs.clone());
            }
            let elapsed = job.submitted.elapsed();
            let done_us = o.now_us();
            if tracing {
                o.record_span(SpanRecord {
                    trace_id: job.trace_id,
                    span_id: span_id::DECODE,
                    parent: span_id::REQUEST,
                    stage: Stage::Decode,
                    start_us: decode_start_us,
                    dur_us: done_us.saturating_sub(decode_start_us),
                    detail: steps,
                });
            }
            if job.slot.try_claim() {
                shared.metrics.decoded.fetch_add(1, Ordering::Relaxed);
                if tracing {
                    o.record_span(SpanRecord {
                        trace_id: job.trace_id,
                        span_id: span_id::REQUEST,
                        parent: 0,
                        stage: Stage::Request,
                        start_us: job.submitted_us,
                        dur_us: done_us.saturating_sub(job.submitted_us),
                        detail: root_detail::DECODED,
                    });
                }
                let slow = o.slow_threshold_us();
                if slow > 0 && elapsed.as_micros() as u64 >= slow {
                    o.count(slade_obs::KernelCtr::SlowRequests, 1);
                    eprintln!(
                        "slade-serve: slow request trace_id={} shard={shard} {}ms (threshold {}ms, {steps} steps); inspect with `slade-cli trace {}`",
                        job.trace_id,
                        elapsed.as_millis(),
                        slow / 1000,
                        job.trace_id,
                    );
                }
                shared.metrics.record_latency(elapsed);
                job.slot.fulfill(Ok(outputs.clone()));
            }
            // Fan the result out to every coalesced waiter that has not
            // expired (exactly-once per waiter via its claim).
            for w in waiters {
                if w.slot.try_claim() {
                    shared.metrics.coalesced.fetch_add(1, Ordering::Relaxed);
                    shared.metrics.record_latency(w.submitted.elapsed());
                    if tracing {
                        o.record_span(SpanRecord {
                            trace_id: w.trace_id,
                            span_id: span_id::ATTACH,
                            parent: span_id::REQUEST,
                            stage: Stage::Coalesce,
                            start_us: w.attached_us,
                            dur_us: done_us.saturating_sub(w.attached_us),
                            detail: job.trace_id,
                        });
                        o.record_span(SpanRecord {
                            trace_id: w.trace_id,
                            span_id: span_id::REQUEST,
                            parent: 0,
                            stage: Stage::Request,
                            start_us: w.attached_us,
                            dur_us: done_us.saturating_sub(w.attached_us),
                            detail: root_detail::COALESCED,
                        });
                    }
                    w.slot.fulfill(Ok(outputs.clone()));
                }
            }
        }
        shared.metrics.shard_lanes[shard].store(session.live_lanes(), Ordering::Relaxed);
        let decoded = session.decoded_tokens();
        shared.metrics.decode_tokens.fetch_add(decoded - tokens_reported, Ordering::Relaxed);
        tokens_reported = decoded;
    }
}
