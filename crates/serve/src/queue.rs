//! Admission queue with FIFO-with-deadline fairness.
//!
//! Every entry carries a monotonically increasing arrival sequence number
//! and a deadline. [`AdmissionQueue::pop_next`] serves:
//!
//! 1. **expired entries first, in arrival order** — once a request has
//!    waited out its patience, only *older* expired requests may precede
//!    it, which bounds every request's wait by its patience plus the
//!    backlog that existed when it arrived (no starvation);
//! 2. otherwise the **earliest deadline**, ties broken by arrival order —
//!    plain FIFO when every request gets the same patience (the serving
//!    runtime's default), earliest-deadline-first when callers assign
//!    per-request deadlines.
//!
//! The queue is plain data; the serving runtime wraps it in a mutex and
//! pairs it with a condvar.

use std::collections::VecDeque;
use std::time::Instant;

/// One queued item with its fairness bookkeeping.
#[derive(Debug)]
struct Entry<T> {
    seq: u64,
    deadline: Instant,
    item: T,
}

/// Entries retained in the admission-order log; beyond it the log stops
/// recording (the counter keeps counting), so an unbounded request stream
/// cannot grow queue memory.
const POP_LOG_CAP: usize = 65_536;

/// FIFO-with-deadline admission queue (see module docs for the policy).
#[derive(Debug)]
pub struct AdmissionQueue<T> {
    pending: VecDeque<Entry<T>>,
    next_seq: u64,
    popped: u64,
    /// Arrival sequence numbers in the order they were dequeued (first
    /// [`POP_LOG_CAP`] admissions) — the record fairness assertions (and
    /// starvation debugging) read.
    pop_log: Vec<u64>,
}

impl<T> Default for AdmissionQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> AdmissionQueue<T> {
    /// An empty queue.
    pub fn new() -> Self {
        AdmissionQueue { pending: VecDeque::new(), next_seq: 0, popped: 0, pop_log: Vec::new() }
    }

    /// Enqueues an item, assigning it the next arrival sequence number
    /// (returned, so callers can correlate admission order with arrival
    /// order).
    pub fn push(&mut self, item: T, deadline: Instant) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.pending.push_back(Entry { seq, deadline, item });
        seq
    }

    /// Dequeues the next item under the fairness policy, with its arrival
    /// sequence number.
    pub fn pop_next(&mut self) -> Option<(u64, T)> {
        self.pop_next_at(Instant::now())
    }

    /// [`AdmissionQueue::pop_next`] with an explicit "now" — the testable
    /// seam for the expiry branch.
    pub fn pop_next_at(&mut self, now: Instant) -> Option<(u64, T)> {
        if self.pending.is_empty() {
            return None;
        }
        // Expired entries are served strictly in arrival order; entries
        // arrive in seq order, so the first expired one is the oldest.
        let idx = match self.pending.iter().position(|e| e.deadline <= now) {
            Some(expired) => expired,
            None => {
                let mut best = 0usize;
                for (i, e) in self.pending.iter().enumerate().skip(1) {
                    let b = &self.pending[best];
                    if (e.deadline, e.seq) < (b.deadline, b.seq) {
                        best = i;
                    }
                }
                best
            }
        };
        let entry = self.pending.remove(idx).expect("index in range");
        if self.pop_log.len() < POP_LOG_CAP {
            self.pop_log.push(entry.seq);
        }
        self.popped += 1;
        Some((entry.seq, entry.item))
    }

    /// Items currently waiting.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// True when nothing is waiting.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Total items ever dequeued (admission counter for metrics).
    pub fn popped(&self) -> u64 {
        self.popped
    }

    /// Arrival sequence numbers in admission order (first
    /// [`POP_LOG_CAP`] admissions only).
    pub fn pop_order(&self) -> &[u64] {
        &self.pop_log
    }

    /// Total items ever enqueued.
    pub fn arrived(&self) -> u64 {
        self.next_seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn uniform_patience_is_fifo() {
        let mut q = AdmissionQueue::new();
        let now = Instant::now();
        for i in 0..10u64 {
            // Same patience for everyone: deadline order == arrival order.
            let seq = q.push(i, now + Duration::from_millis(50));
            assert_eq!(seq, i);
        }
        let order: Vec<u64> =
            std::iter::from_fn(|| q.pop_next_at(now).map(|(s, _)| s)).collect();
        assert_eq!(order, (0..10).collect::<Vec<u64>>());
        assert_eq!(q.popped(), 10);
    }

    #[test]
    fn tighter_deadline_is_served_first_until_expiry() {
        let mut q = AdmissionQueue::new();
        let now = Instant::now();
        q.push("patient", now + Duration::from_millis(200));
        q.push("urgent", now + Duration::from_millis(10));
        // Neither expired: earliest deadline wins.
        assert_eq!(q.pop_next_at(now).unwrap().1, "urgent");
        assert_eq!(q.pop_next_at(now).unwrap().1, "patient");
    }

    #[test]
    fn expired_entries_cannot_be_starved_by_tight_deadlines() {
        let mut q = AdmissionQueue::new();
        let t0 = Instant::now();
        q.push("old", t0 + Duration::from_millis(10));
        // A sustained stream of later arrivals with tighter absolute
        // deadlines than each other — the adversarial EDF starvation
        // pattern. Once `old` expires it must be served before any of
        // them, in arrival order.
        for i in 0..20u64 {
            q.push("newcomer", t0 + Duration::from_millis(11 + i));
        }
        let late = t0 + Duration::from_millis(500);
        let (seq, item) = q.pop_next_at(late).unwrap();
        assert_eq!((seq, item), (0, "old"));
        // Remaining expired entries drain in arrival order too.
        let mut last = 0;
        while let Some((seq, _)) = q.pop_next_at(late) {
            assert!(seq > last, "arrival order violated: {seq} after {last}");
            last = seq;
        }
    }
}
