//! Normalized-assembly result cache.
//!
//! Serving traffic over binary corpora is duplicate-heavy: corpus-scale
//! re-evaluation re-decompiles identical functions, and self-constructed-
//! context pipelines re-query the same function many times. Decode output
//! is a pure function of (normalized assembly, model target, beam
//! configuration), so completed results are cached under a key derived
//! from exactly the string the tokenizer consumed.
//!
//! The key carries a stable 64-bit FNV-1a hash of the normalized assembly
//! plus the ISA / optimization level / beam width / decode budget, so the
//! same bytes decompiled under two model configurations can never collide;
//! entries additionally store the full normalized text and verify it on
//! probe, so even a hash collision degrades to a miss, never to a wrong
//! answer. Eviction is least-recently-used at a fixed capacity, with
//! hit / miss / insertion / eviction accounting.

use crate::spill::{SpillProbe, SpillTier};
use serde::Serialize;
use slade_compiler::{Isa, OptLevel};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Stable 64-bit FNV-1a — the cache's content hash (independent of the
/// process-seeded `std` hasher, so keys are comparable across runs).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Cache key: content hash of the normalized assembly plus every decode
/// knob that changes the output. Two keys with equal hashes but different
/// configuration never compare equal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// FNV-1a of the [`slade::normalize_asm`] output fed to the tokenizer.
    pub asm_hash: u64,
    /// Target ISA of the serving model.
    pub isa: Isa,
    /// Optimization level of the serving model.
    pub opt: OptLevel,
    /// Beam width the result was decoded with.
    pub beam: usize,
    /// Decode budget (max hypothesis tokens).
    pub max_tgt_len: usize,
}

impl CacheKey {
    /// Derives the key for one normalized-assembly input under one
    /// serving configuration.
    pub fn new(
        normalized_asm: &str,
        isa: Isa,
        opt: OptLevel,
        beam: usize,
        max_tgt_len: usize,
    ) -> Self {
        CacheKey { asm_hash: fnv1a64(normalized_asm.as_bytes()), isa, opt, beam, max_tgt_len }
    }
}

#[derive(Debug)]
struct CacheEntry {
    /// Full normalized text, verified on probe so a hash collision can
    /// never return another function's hypotheses.
    norm_asm: String,
    outputs: Vec<String>,
    last_used: u64,
}

#[derive(Debug, Default)]
struct CacheInner {
    map: HashMap<CacheKey, CacheEntry>,
    clock: u64,
}

/// Counter snapshot of one [`ResultCache`].
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct CacheStats {
    /// Probes answered from the cache.
    pub hits: u64,
    /// Probes that fell through to decode.
    pub misses: u64,
    /// Results stored.
    pub insertions: u64,
    /// Entries displaced by capacity pressure.
    pub evictions: u64,
    /// Entries resident right now.
    pub entries: usize,
    /// Configured capacity (0 = disabled).
    pub capacity: usize,
    /// Probes answered from the disk-spill tier (also counted in
    /// `hits` — `hits` is the cache layer's total).
    pub spill_hits: u64,
    /// Entries persisted to the spill tier.
    pub spill_writes: u64,
    /// Spill files that failed integrity checks on load (truncated,
    /// corrupt, or version-stamp mismatch); each loaded as a miss.
    pub spill_load_errors: u64,
    /// Spill entries evicted by capacity pressure (mtime-LRU).
    pub spill_evictions: u64,
    /// Spill entries resident on disk right now (0 when no spill tier).
    pub spill_entries: usize,
}

impl CacheStats {
    /// Hits over probes, 0.0 when never probed.
    pub fn hit_rate(&self) -> f64 {
        let probes = self.hits + self.misses;
        if probes == 0 {
            0.0
        } else {
            self.hits as f64 / probes as f64
        }
    }
}

/// Thread-safe LRU result cache with an optional disk-spill tier (see
/// module docs and [`crate::spill`]).
#[derive(Debug)]
pub struct ResultCache {
    capacity: usize,
    inner: Mutex<CacheInner>,
    spill: Option<SpillTier>,
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
    spill_hits: AtomicU64,
    spill_writes: AtomicU64,
    spill_load_errors: AtomicU64,
    spill_evictions: AtomicU64,
}

impl ResultCache {
    /// A memory-only cache holding at most `capacity` results; `0`
    /// disables it (every probe misses, inserts are dropped).
    pub fn new(capacity: usize) -> Self {
        Self::build(capacity, None)
    }

    /// A cache backed by a disk-spill tier under `dir` holding at most
    /// `spill_capacity` entries (`0` = unbounded). Works with
    /// `capacity == 0` too: every probe then goes straight to disk.
    pub fn with_spill(capacity: usize, dir: PathBuf, spill_capacity: usize) -> Self {
        Self::build(capacity, Some(SpillTier::new(dir, spill_capacity)))
    }

    fn build(capacity: usize, spill: Option<SpillTier>) -> Self {
        ResultCache {
            capacity,
            inner: Mutex::new(CacheInner::default()),
            spill,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            spill_hits: AtomicU64::new(0),
            spill_writes: AtomicU64::new(0),
            spill_load_errors: AtomicU64::new(0),
            spill_evictions: AtomicU64::new(0),
        }
    }

    /// True when the cache can answer anything (memory or disk tier).
    pub fn enabled(&self) -> bool {
        self.capacity > 0 || self.spill.is_some()
    }

    /// Probes memory, then the spill tier; a spill hit is promoted into
    /// the memory LRU. Verifies the stored normalized text against
    /// `normalized_asm` at both tiers; counts a hit or a miss either way.
    pub fn get(&self, key: &CacheKey, normalized_asm: &str) -> Option<Vec<String>> {
        if self.capacity > 0 {
            let mut inner = self.inner.lock().expect("cache lock");
            inner.clock += 1;
            let clock = inner.clock;
            if let Some(entry) = inner.map.get_mut(key) {
                if entry.norm_asm == normalized_asm {
                    entry.last_used = clock;
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return Some(entry.outputs.clone());
                }
            }
        }
        if let Some(spill) = &self.spill {
            match spill.probe(key, normalized_asm) {
                SpillProbe::Hit(outputs) => {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    self.spill_hits.fetch_add(1, Ordering::Relaxed);
                    self.insert_memory(*key, normalized_asm, outputs.clone());
                    return Some(outputs);
                }
                SpillProbe::Corrupt => {
                    self.spill_load_errors.fetch_add(1, Ordering::Relaxed);
                }
                SpillProbe::Miss => {}
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        None
    }

    /// Stores a result in the memory LRU and the spill tier (when
    /// configured). No-op when fully disabled.
    pub fn insert(&self, key: CacheKey, normalized_asm: &str, outputs: Vec<String>) {
        if let Some(spill) = &self.spill {
            if let Ok(evicted) = spill.store(&key, normalized_asm, &outputs) {
                self.spill_writes.fetch_add(1, Ordering::Relaxed);
                self.spill_evictions.fetch_add(evicted as u64, Ordering::Relaxed);
            }
        }
        self.insert_memory(key, normalized_asm, outputs);
    }

    /// Memory-tier insert with LRU eviction (spill promotion uses this
    /// directly so a disk hit is not immediately re-written to disk).
    fn insert_memory(&self, key: CacheKey, normalized_asm: &str, outputs: Vec<String>) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = self.inner.lock().expect("cache lock");
        inner.clock += 1;
        let clock = inner.clock;
        if !inner.map.contains_key(&key) && inner.map.len() >= self.capacity {
            if let Some(lru) =
                inner.map.iter().min_by_key(|(_, e)| e.last_used).map(|(k, _)| *k)
            {
                inner.map.remove(&lru);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        inner.map.insert(
            key,
            CacheEntry { norm_asm: normalized_asm.to_string(), outputs, last_used: clock },
        );
        self.insertions.fetch_add(1, Ordering::Relaxed);
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: self.inner.lock().expect("cache lock").map.len(),
            capacity: self.capacity,
            spill_hits: self.spill_hits.load(Ordering::Relaxed),
            spill_writes: self.spill_writes.load(Ordering::Relaxed),
            spill_load_errors: self.spill_load_errors.load(Ordering::Relaxed),
            spill_evictions: self.spill_evictions.load(Ordering::Relaxed),
            spill_entries: self.spill.as_ref().map_or(0, SpillTier::entries),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ASM: &str = "f:\nmovl %edi, %eax\nret\n";

    #[test]
    fn distinct_configs_never_collide() {
        // Same normalized assembly under every config combination: all
        // keys must be distinct (satellite: ISA/opt/beam configs never
        // collide).
        let mut keys = Vec::new();
        for isa in [Isa::X86_64, Isa::Arm64] {
            for opt in [OptLevel::O0, OptLevel::O3] {
                for beam in [1usize, 5] {
                    for max_tgt in [64usize, 128] {
                        keys.push(CacheKey::new(ASM, isa, opt, beam, max_tgt));
                    }
                }
            }
        }
        for (i, a) in keys.iter().enumerate() {
            for b in &keys[i + 1..] {
                assert_ne!(a, b, "config collision: {a:?}");
            }
            assert_eq!(a.asm_hash, keys[0].asm_hash, "same text, same content hash");
        }
        let cache = ResultCache::new(64);
        cache.insert(keys[0], ASM, vec!["int f(int a) { return a; }".into()]);
        assert!(cache.get(&keys[0], ASM).is_some());
        for k in &keys[1..] {
            assert!(cache.get(k, ASM).is_none(), "cross-config hit: {k:?}");
        }
    }

    #[test]
    fn hash_collision_degrades_to_miss_not_wrong_answer() {
        let cache = ResultCache::new(4);
        let key = CacheKey::new(ASM, Isa::X86_64, OptLevel::O0, 5, 64);
        cache.insert(key, ASM, vec!["right".into()]);
        // A forged probe with the same key but different text (what a
        // 64-bit collision would look like) must miss.
        assert_eq!(cache.get(&key, "g:\nret\n"), None);
        assert_eq!(cache.get(&key, ASM), Some(vec!["right".to_string()]));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
    }

    #[test]
    fn lru_eviction_and_accounting() {
        let cache = ResultCache::new(2);
        let k = |i: usize| {
            CacheKey::new(&format!("f{i}:\nret\n"), Isa::X86_64, OptLevel::O0, 5, 64)
        };
        cache.insert(k(0), "f0:\nret\n", vec!["a".into()]);
        cache.insert(k(1), "f1:\nret\n", vec!["b".into()]);
        // Touch 0 so 1 is the LRU victim.
        assert!(cache.get(&k(0), "f0:\nret\n").is_some());
        cache.insert(k(2), "f2:\nret\n", vec!["c".into()]);
        assert!(cache.get(&k(1), "f1:\nret\n").is_none(), "LRU entry must be evicted");
        assert!(cache.get(&k(0), "f0:\nret\n").is_some());
        assert!(cache.get(&k(2), "f2:\nret\n").is_some());
        let stats = cache.stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.insertions, 3);
        assert_eq!(stats.entries, 2);
        assert!(stats.hit_rate() > 0.0);
    }

    #[test]
    fn disabled_cache_is_inert() {
        let cache = ResultCache::new(0);
        assert!(!cache.enabled());
        let key = CacheKey::new(ASM, Isa::X86_64, OptLevel::O0, 5, 64);
        cache.insert(key, ASM, vec!["x".into()]);
        assert_eq!(cache.get(&key, ASM), None);
        assert_eq!(cache.stats().entries, 0);
    }
}
