//! Disk-spill tier for the result cache.
//!
//! The in-memory LRU answers duplicate traffic within one process
//! lifetime; this tier persists the same entries under a configurable
//! directory so restarts and sibling processes start warm (the
//! warm-cache advantage in `BENCH_serve.json` otherwise evaporates on
//! every restart). One entry per file, named by a stable hash of the
//! full [`CacheKey`], so a probe is a single deterministic `read` — no
//! index to rebuild, and entries written by *other* processes sharing
//! the directory are visible immediately.
//!
//! # File format (version-stamped, corruption-tolerant)
//!
//! ```text
//! SLADESPILL v1\n
//! <16 hex digits: FNV-1a of the payload bytes>\n
//! <payload: JSON SpillRecord { key fields, norm_asm, outputs }>
//! ```
//!
//! Loads verify, in order: magic + version stamp (a mismatch
//! invalidates the entry — the stamp is bumped whenever decode output
//! or the format changes), payload checksum, JSON shape, and finally
//! that the stored key fields *and* full normalized text match the
//! probe — so a truncated, corrupt, or hash-colliding file degrades to
//! a miss, never to a panic or another function's hypotheses. Files
//! that fail the integrity checks are deleted; files that are merely
//! for a different key (filename collision) are left in place.
//!
//! # Concurrent writers
//!
//! Writers never write a visible file in place: the entry is staged in
//! a process/thread-unique temp file and published with an atomic
//! `rename`, so two runtimes spilling into the same directory can race
//! on the same key and readers still only ever observe one complete,
//! checksummed entry (last rename wins).

use crate::cache::{fnv1a64, CacheKey};
use serde::{Deserialize, Serialize};
use slade_compiler::{Isa, OptLevel};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Format/compatibility stamp embedded in every spill file. Bump it when
/// the payload shape or decode semantics change; old entries then load
/// as misses instead of serving stale hypotheses.
pub const SPILL_VERSION: u32 = 1;

const MAGIC: &str = "SLADESPILL";
const EXT: &str = "spill";

/// On-disk payload: the full key (not just its hash) plus the
/// normalized text, so loads can verify end-to-end.
#[derive(Serialize, Deserialize)]
struct SpillRecord {
    asm_hash: u64,
    isa: Isa,
    opt: OptLevel,
    beam: usize,
    max_tgt_len: usize,
    norm_asm: String,
    outputs: Vec<String>,
}

/// Outcome of one spill probe, so the cache can account hits, misses,
/// and integrity failures separately.
#[derive(Debug)]
pub enum SpillProbe {
    /// Entry present, verified, and matching the probe.
    Hit(Vec<String>),
    /// No entry (or an entry for a different key at this filename).
    Miss,
    /// An entry existed but failed integrity checks (truncated, corrupt
    /// checksum, bad JSON, or version-stamp mismatch); it was removed.
    Corrupt,
}

/// The disk tier: a directory of one-entry files with mtime-LRU
/// eviction at a configured capacity.
#[derive(Debug)]
pub struct SpillTier {
    dir: PathBuf,
    capacity: usize,
}

/// Stable filename hash over every key field (not just `asm_hash`, so
/// the same assembly under two configs lands in two files).
fn key_hash(key: &CacheKey) -> u64 {
    let mut buf = [0u8; 26];
    buf[..8].copy_from_slice(&key.asm_hash.to_le_bytes());
    buf[8] = match key.isa {
        Isa::X86_64 => 0,
        Isa::Arm64 => 1,
    };
    buf[9] = match key.opt {
        OptLevel::O0 => 0,
        OptLevel::O3 => 3,
    };
    buf[10..18].copy_from_slice(&(key.beam as u64).to_le_bytes());
    buf[18..26].copy_from_slice(&(key.max_tgt_len as u64).to_le_bytes());
    fnv1a64(&buf)
}

impl SpillTier {
    /// A tier rooted at `dir` (created lazily on first store), holding
    /// at most `capacity` entries (`0` = unbounded).
    pub fn new(dir: PathBuf, capacity: usize) -> Self {
        SpillTier { dir, capacity }
    }

    /// The directory entries live in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The deterministic path one key spills to.
    pub fn path_for(&self, key: &CacheKey) -> PathBuf {
        self.dir.join(format!("{:016x}.{EXT}", key_hash(key)))
    }

    /// Probes the tier for `key`, verifying the stamp, checksum, and
    /// full key/text match (see module docs).
    pub fn probe(&self, key: &CacheKey, normalized_asm: &str) -> SpillProbe {
        let path = self.path_for(key);
        let bytes = match std::fs::read(&path) {
            Ok(b) => b,
            Err(_) => return SpillProbe::Miss,
        };
        match parse(&bytes, key, normalized_asm) {
            Ok(Some(outputs)) => SpillProbe::Hit(outputs),
            // Valid entry, different key/text (filename collision):
            // leave the resident entry alone, report a miss.
            Ok(None) => SpillProbe::Miss,
            Err(()) => {
                // Truncated / corrupt / stale version: invalidate so the
                // next decode rewrites a clean entry.
                let _ = std::fs::remove_file(&path);
                SpillProbe::Corrupt
            }
        }
    }

    /// Persists one entry: staged in a unique temp file, published by
    /// atomic rename, then capacity-enforced. Returns the number of
    /// entries evicted (0 on unbounded tiers). IO errors are reported,
    /// not panicked — spilling is an optimization, never a correctness
    /// requirement.
    pub fn store(
        &self,
        key: &CacheKey,
        normalized_asm: &str,
        outputs: &[String],
    ) -> std::io::Result<usize> {
        std::fs::create_dir_all(&self.dir)?;
        let record = SpillRecord {
            asm_hash: key.asm_hash,
            isa: key.isa,
            opt: key.opt,
            beam: key.beam,
            max_tgt_len: key.max_tgt_len,
            norm_asm: normalized_asm.to_string(),
            outputs: outputs.to_vec(),
        };
        let payload = serde_json::to_string(&record)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?
            .into_bytes();
        let mut data = Vec::with_capacity(payload.len() + 32);
        data.extend_from_slice(format!("{MAGIC} v{SPILL_VERSION}\n").as_bytes());
        data.extend_from_slice(format!("{:016x}\n", fnv1a64(&payload)).as_bytes());
        data.extend_from_slice(&payload);
        // Unique staging name per (process, store call): concurrent
        // writers never touch each other's partial bytes.
        static STAGE_SEQ: AtomicU64 = AtomicU64::new(0);
        let stage = self.dir.join(format!(
            ".stage-{}-{}-{:016x}",
            std::process::id(),
            STAGE_SEQ.fetch_add(1, Ordering::Relaxed),
            key_hash(key),
        ));
        std::fs::write(&stage, &data)?;
        std::fs::rename(&stage, self.path_for(key))?;
        Ok(self.enforce_capacity())
    }

    /// Entries resident right now (directory scan; `0` if the directory
    /// does not exist yet).
    pub fn entries(&self) -> usize {
        self.list().len()
    }

    fn list(&self) -> Vec<(PathBuf, std::time::SystemTime)> {
        let Ok(dir) = std::fs::read_dir(&self.dir) else {
            return Vec::new();
        };
        dir.filter_map(|e| {
            let e = e.ok()?;
            let path = e.path();
            if path.extension().and_then(|x| x.to_str()) != Some(EXT) {
                return None;
            }
            let modified = e.metadata().ok()?.modified().ok()?;
            Some((path, modified))
        })
        .collect()
    }

    /// Removes oldest-modified entries beyond capacity; returns how many
    /// were evicted.
    fn enforce_capacity(&self) -> usize {
        if self.capacity == 0 {
            return 0;
        }
        let mut entries = self.list();
        if entries.len() <= self.capacity {
            return 0;
        }
        entries.sort_by_key(|(_, modified)| *modified);
        let excess = entries.len() - self.capacity;
        let mut evicted = 0;
        for (path, _) in entries.into_iter().take(excess) {
            if std::fs::remove_file(&path).is_ok() {
                evicted += 1;
            }
        }
        evicted
    }
}

/// `Ok(Some)` = verified hit, `Ok(None)` = valid entry for a different
/// key/text, `Err(())` = integrity failure.
fn parse(
    bytes: &[u8],
    key: &CacheKey,
    normalized_asm: &str,
) -> Result<Option<Vec<String>>, ()> {
    let nl1 = bytes.iter().position(|&b| b == b'\n').ok_or(())?;
    let header = std::str::from_utf8(&bytes[..nl1]).map_err(|_| ())?;
    let expected = format!("{MAGIC} v{SPILL_VERSION}");
    if header != expected {
        return Err(());
    }
    let rest = &bytes[nl1 + 1..];
    let nl2 = rest.iter().position(|&b| b == b'\n').ok_or(())?;
    let sum_hex = std::str::from_utf8(&rest[..nl2]).map_err(|_| ())?;
    let want = u64::from_str_radix(sum_hex, 16).map_err(|_| ())?;
    let payload = &rest[nl2 + 1..];
    if fnv1a64(payload) != want {
        return Err(());
    }
    let text = std::str::from_utf8(payload).map_err(|_| ())?;
    let rec: SpillRecord = serde_json::from_str(text).map_err(|_| ())?;
    let key_matches = rec.asm_hash == key.asm_hash
        && rec.isa == key.isa
        && rec.opt == key.opt
        && rec.beam == key.beam
        && rec.max_tgt_len == key.max_tgt_len;
    if !key_matches || rec.norm_asm != normalized_asm {
        return Ok(None);
    }
    Ok(Some(rec.outputs))
}
