//! Serving metrics: cheap always-on counters (atomics), a bounded latency
//! reservoir, and a plain-struct snapshot for callers (benches serialize
//! it to JSON; an HTTP front-end would render it).

use crate::cache::CacheStats;
use serde::Serialize;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Capacity of the latency reservoir; beyond it, new samples overwrite
/// round-robin so percentiles track recent traffic at O(1) memory.
const RESERVOIR: usize = 4096;

#[derive(Debug, Default)]
struct Reservoir {
    samples: Vec<f64>,
    written: u64,
}

impl Reservoir {
    fn record(&mut self, millis: f64) {
        if self.samples.len() < RESERVOIR {
            self.samples.push(millis);
        } else {
            self.samples[(self.written % RESERVOIR as u64) as usize] = millis;
        }
        self.written += 1;
    }

    fn percentile(&self, p: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(f64::total_cmp);
        let rank = ((sorted.len() - 1) as f64 * p).round() as usize;
        sorted[rank.min(sorted.len() - 1)]
    }
}

/// Shared mutable metrics state (one per runtime).
#[derive(Debug)]
pub(crate) struct MetricsInner {
    pub submitted: AtomicU64,
    pub completed: AtomicU64,
    pub queue_depth: AtomicUsize,
    /// Live beam lanes per shard (gauge, updated by each worker).
    pub shard_lanes: Vec<AtomicUsize>,
    pub lane_capacity: usize,
    /// Decode steps × live lanes, summed across shards (cumulative).
    pub decode_tokens: AtomicU64,
    /// Kernel ISA tier the workers decode with (resolved once at start).
    pub kernel_isa: &'static str,
    /// Weight backend name of the served model ("f32" / "int8").
    pub backend: &'static str,
    latency: Mutex<Reservoir>,
    queue_wait: Mutex<Reservoir>,
}

impl MetricsInner {
    pub fn new(
        shards: usize,
        lane_capacity: usize,
        kernel_isa: &'static str,
        backend: &'static str,
    ) -> Self {
        MetricsInner {
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            queue_depth: AtomicUsize::new(0),
            shard_lanes: (0..shards).map(|_| AtomicUsize::new(0)).collect(),
            lane_capacity,
            decode_tokens: AtomicU64::new(0),
            kernel_isa,
            backend,
            latency: Mutex::new(Reservoir::default()),
            queue_wait: Mutex::new(Reservoir::default()),
        }
    }

    pub fn record_latency(&self, elapsed: Duration) {
        self.completed.fetch_add(1, Ordering::Relaxed);
        self.latency.lock().expect("metrics lock").record(elapsed.as_secs_f64() * 1e3);
    }

    pub fn record_queue_wait(&self, waited: Duration) {
        self.queue_wait.lock().expect("metrics lock").record(waited.as_secs_f64() * 1e3);
    }

    pub fn snapshot(&self, cache: CacheStats) -> MetricsSnapshot {
        let latency = self.latency.lock().expect("metrics lock");
        let queue_wait = self.queue_wait.lock().expect("metrics lock");
        MetricsSnapshot {
            submitted: self.submitted.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            queue_depth: self.queue_depth.load(Ordering::Relaxed),
            shard_lanes: self.shard_lanes.iter().map(|l| l.load(Ordering::Relaxed)).collect(),
            lane_capacity_per_shard: self.lane_capacity,
            decode_tokens: self.decode_tokens.load(Ordering::Relaxed),
            kernel_isa: self.kernel_isa,
            backend: self.backend,
            p50_latency_ms: latency.percentile(0.50),
            p95_latency_ms: latency.percentile(0.95),
            p50_queue_wait_ms: queue_wait.percentile(0.50),
            p95_queue_wait_ms: queue_wait.percentile(0.95),
            cache,
        }
    }
}

/// Point-in-time view of the runtime (queue depth and lane gauges are
/// instantaneous; counters and percentiles are cumulative / recent-window).
#[derive(Debug, Clone, Serialize)]
pub struct MetricsSnapshot {
    /// Requests accepted (cache hits included).
    pub submitted: u64,
    /// Requests answered (cache hits included).
    pub completed: u64,
    /// Requests waiting for admission right now.
    pub queue_depth: usize,
    /// Live beam lanes per shard right now.
    pub shard_lanes: Vec<usize>,
    /// Lane budget each shard admits against.
    pub lane_capacity_per_shard: usize,
    /// Tokens decoded so far across all shards (one per live lane per
    /// engine step; cache hits decode nothing and add nothing).
    pub decode_tokens: u64,
    /// Kernel ISA tier the workers decode with ("scalar" / "avx2" /
    /// "neon"), resolved once at runtime start.
    pub kernel_isa: &'static str,
    /// Weight backend of the served model ("f32" / "int8").
    pub backend: &'static str,
    /// Median end-to-end latency (submit → response), milliseconds.
    pub p50_latency_ms: f64,
    /// 95th-percentile end-to-end latency, milliseconds.
    pub p95_latency_ms: f64,
    /// Median time spent queued before admission, milliseconds.
    pub p50_queue_wait_ms: f64,
    /// 95th-percentile queue wait, milliseconds.
    pub p95_queue_wait_ms: f64,
    /// Result-cache counters.
    pub cache: CacheStats,
}

impl MetricsSnapshot {
    /// Mean live-lane occupancy across shards as a fraction of capacity.
    pub fn lane_occupancy(&self) -> f64 {
        if self.shard_lanes.is_empty() || self.lane_capacity_per_shard == 0 {
            return 0.0;
        }
        let live: usize = self.shard_lanes.iter().sum();
        live as f64 / (self.shard_lanes.len() * self.lane_capacity_per_shard) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_and_occupancy() {
        let m = MetricsInner::new(2, 10, "scalar", "f32");
        for ms in 1..=100u64 {
            m.record_latency(Duration::from_millis(ms));
        }
        m.shard_lanes[0].store(5, Ordering::Relaxed);
        m.shard_lanes[1].store(10, Ordering::Relaxed);
        let snap = m.snapshot(CacheStats::default());
        assert_eq!(snap.completed, 100);
        assert!((snap.p50_latency_ms - 50.0).abs() <= 2.0, "{}", snap.p50_latency_ms);
        assert!((snap.p95_latency_ms - 95.0).abs() <= 2.0, "{}", snap.p95_latency_ms);
        assert!((snap.lane_occupancy() - 0.75).abs() < 1e-9);
    }

    #[test]
    fn reservoir_bounds_memory() {
        let mut r = Reservoir::default();
        for i in 0..(RESERVOIR * 2) {
            r.record(i as f64);
        }
        assert_eq!(r.samples.len(), RESERVOIR);
        assert_eq!(r.written, (RESERVOIR * 2) as u64);
    }
}
