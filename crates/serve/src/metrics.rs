//! Serving metrics: cheap always-on counters (atomics), wait-free
//! log-bucketed latency histograms ([`slade_obs::Histogram`]), and two
//! export surfaces — a plain-struct snapshot (benches serialize it to
//! JSON) and a Prometheus text exposition
//! ([`crate::ServeRuntime::metrics_text`]).
//!
//! The histograms replaced a `Mutex<Reservoir>` whose `percentile` cloned
//! and sorted 4096 samples **under the same lock the workers recorded
//! into** — a scrape could stall every decode worker. Recording is now
//! three relaxed `fetch_add`s and a snapshot copies bucket counts without
//! taking any lock, so scraping can never stall decode.

use crate::cache::CacheStats;
use serde::Serialize;
use slade_obs::{export::PromText, Histogram, KernelCtr, StageHist};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Duration;

/// Shared mutable metrics state (one per runtime).
#[derive(Debug)]
pub(crate) struct MetricsInner {
    pub submitted: AtomicU64,
    pub completed: AtomicU64,
    /// Submissions rejected by bounded admission (queue at cap).
    pub shed: AtomicU64,
    /// Requests whose deadline expired before a result was ready.
    pub expired: AtomicU64,
    /// Duplicate submissions attached to an in-flight decode.
    pub coalesced: AtomicU64,
    /// Requests that ran the engine themselves.
    pub decoded: AtomicU64,
    pub queue_depth: AtomicUsize,
    /// Live beam lanes per shard (gauge, updated by each worker).
    pub shard_lanes: Vec<AtomicUsize>,
    pub lane_capacity: usize,
    /// Decode steps × live lanes, summed across shards (cumulative).
    pub decode_tokens: AtomicU64,
    /// Kernel ISA tier the workers decode with (resolved once at start).
    pub kernel_isa: &'static str,
    /// Effective-vs-requested tier, e.g. `avx2 (requested vnni:
    /// unsupported)` when `SLADE_KERNEL_ISA` asked for something the host
    /// cannot run; equals `kernel_isa` when the request was satisfied.
    pub kernel_isa_status: String,
    /// Weight backend name of the served model ("f32" / "int8").
    pub backend: &'static str,
    /// End-to-end latency in µs (submit → response).
    latency: Histogram,
    /// Time spent queued before admission, µs.
    queue_wait: Histogram,
}

impl MetricsInner {
    pub fn new(
        shards: usize,
        lane_capacity: usize,
        kernel_isa: &'static str,
        kernel_isa_status: String,
        backend: &'static str,
    ) -> Self {
        MetricsInner {
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            expired: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            decoded: AtomicU64::new(0),
            queue_depth: AtomicUsize::new(0),
            shard_lanes: (0..shards).map(|_| AtomicUsize::new(0)).collect(),
            lane_capacity,
            decode_tokens: AtomicU64::new(0),
            kernel_isa,
            kernel_isa_status,
            backend,
            latency: Histogram::new(),
            queue_wait: Histogram::new(),
        }
    }

    pub fn record_latency(&self, elapsed: Duration) {
        self.completed.fetch_add(1, Ordering::Relaxed);
        self.latency.record(elapsed.as_micros() as u64);
    }

    pub fn record_queue_wait(&self, waited: Duration) {
        self.queue_wait.record(waited.as_micros() as u64);
    }

    /// Saturating queue-depth decrement: a shed/cancel path racing the
    /// submit-side increment must clamp at zero, never wrap the gauge to
    /// `usize::MAX`. Debug builds assert the race did not actually occur.
    pub fn queue_depth_sub(&self, n: usize) {
        let prev = self
            .queue_depth
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |d| Some(d.saturating_sub(n)))
            .expect("fetch_update closure always returns Some");
        debug_assert!(prev >= n, "queue_depth underflow: {prev} - {n}");
    }

    pub fn snapshot(&self, cache: CacheStats) -> MetricsSnapshot {
        // Copy out first, then compute: quantiles run on the snapshot, so
        // a slow scrape never holds anything a worker records through.
        let latency = self.latency.snapshot();
        let queue_wait = self.queue_wait.snapshot();
        let us = |v: u64| v as f64 / 1e3;
        MetricsSnapshot {
            submitted: self.submitted.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            expired: self.expired.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            decoded: self.decoded.load(Ordering::Relaxed),
            queue_depth: self.queue_depth.load(Ordering::Relaxed),
            shard_lanes: self.shard_lanes.iter().map(|l| l.load(Ordering::Relaxed)).collect(),
            lane_capacity_per_shard: self.lane_capacity,
            decode_tokens: self.decode_tokens.load(Ordering::Relaxed),
            kernel_isa: self.kernel_isa,
            kernel_isa_status: self.kernel_isa_status.clone(),
            backend: self.backend,
            p50_latency_ms: us(latency.quantile(0.50)),
            p95_latency_ms: us(latency.quantile(0.95)),
            p99_latency_ms: us(latency.quantile(0.99)),
            p50_queue_wait_ms: us(queue_wait.quantile(0.50)),
            p95_queue_wait_ms: us(queue_wait.quantile(0.95)),
            p99_queue_wait_ms: us(queue_wait.quantile(0.99)),
            cache,
        }
    }

    /// Prometheus text exposition covering the runtime counters/gauges,
    /// both latency histograms, the process-wide per-stage histograms,
    /// and the kernel counters.
    pub fn prometheus(&self, cache: CacheStats) -> String {
        let o = slade_obs::obs();
        let mut p = PromText::new();
        p.counter(
            "slade_requests_submitted_total",
            "Requests accepted (cache hits included).",
            self.submitted.load(Ordering::Relaxed),
        );
        p.counter(
            "slade_requests_completed_total",
            "Requests answered (cache hits included).",
            self.completed.load(Ordering::Relaxed),
        );
        p.counter(
            "slade_shed_total",
            "Submissions rejected by bounded admission (queue at cap).",
            self.shed.load(Ordering::Relaxed),
        );
        p.counter(
            "slade_expired_total",
            "Requests whose deadline expired before a result.",
            self.expired.load(Ordering::Relaxed),
        );
        p.counter(
            "slade_coalesced_total",
            "Duplicate submissions attached to an in-flight decode.",
            self.coalesced.load(Ordering::Relaxed),
        );
        p.counter(
            "slade_decoded_total",
            "Requests that ran the engine themselves.",
            self.decoded.load(Ordering::Relaxed),
        );
        p.gauge(
            "slade_queue_depth",
            "Requests waiting for admission right now.",
            self.queue_depth.load(Ordering::Relaxed) as f64,
        );
        let lanes: Vec<(String, f64)> = self
            .shard_lanes
            .iter()
            .enumerate()
            .map(|(i, l)| (i.to_string(), l.load(Ordering::Relaxed) as f64))
            .collect();
        p.gauge_series("slade_shard_lanes", "Live beam lanes per shard.", "shard", &lanes);
        p.gauge(
            "slade_lane_capacity_per_shard",
            "Lane budget each shard admits against.",
            self.lane_capacity as f64,
        );
        p.counter(
            "slade_decode_tokens_total",
            "Tokens decoded across all shards (lanes x steps).",
            self.decode_tokens.load(Ordering::Relaxed),
        );
        p.counter("slade_cache_hits_total", "Result-cache hits.", cache.hits);
        p.counter("slade_cache_misses_total", "Result-cache misses.", cache.misses);
        p.counter("slade_cache_insertions_total", "Result-cache insertions.", cache.insertions);
        p.counter("slade_cache_evictions_total", "Result-cache evictions.", cache.evictions);
        p.gauge("slade_cache_entries", "Result-cache resident entries.", cache.entries as f64);
        p.counter("slade_spill_hits_total", "Disk-spill tier hits.", cache.spill_hits);
        p.counter(
            "slade_spill_writes_total",
            "Entries written to the spill tier.",
            cache.spill_writes,
        );
        p.counter(
            "slade_spill_load_errors_total",
            "Spill entries that failed integrity checks on load.",
            cache.spill_load_errors,
        );
        p.counter(
            "slade_spill_evictions_total",
            "Spill entries evicted by capacity.",
            cache.spill_evictions,
        );
        p.gauge(
            "slade_spill_entries",
            "Spill-tier resident entries.",
            cache.spill_entries as f64,
        );
        p.histogram_us(
            "slade_request_latency_seconds",
            "End-to-end latency, submit to response.",
            &self.latency.snapshot(),
        );
        p.histogram_us(
            "slade_queue_wait_seconds",
            "Time queued before admission.",
            &self.queue_wait.snapshot(),
        );
        for s in StageHist::ALL {
            p.histogram_us(stage_metric(s), stage_help(s), &o.stage(s).snapshot());
        }
        for c in KernelCtr::ALL {
            p.counter(ctr_metric(c), ctr_help(c), o.counter(c));
        }
        p.info(
            "slade_info",
            "Serving configuration.",
            &[
                ("kernel_isa", self.kernel_isa),
                ("kernel_isa_status", self.kernel_isa_status.as_str()),
                ("backend", self.backend),
            ],
        );
        p.finish()
    }
}

/// Static Prometheus family name per stage (names must outlive the
/// builder, hence the match rather than `format!`).
fn stage_metric(s: StageHist) -> &'static str {
    match s {
        StageHist::Encode => "slade_stage_encode_seconds",
        StageHist::DecodeStep => "slade_stage_decode_step_seconds",
        StageHist::Score => "slade_stage_score_seconds",
        StageHist::Admit => "slade_stage_admit_seconds",
        StageHist::Tokenize => "slade_stage_tokenize_seconds",
        StageHist::TypeInf => "slade_stage_typeinf_seconds",
        StageHist::Repair => "slade_stage_repair_seconds",
        StageHist::Judge => "slade_stage_judge_seconds",
    }
}

fn stage_help(s: StageHist) -> &'static str {
    match s {
        StageHist::Encode => "Batched encoder forward pass.",
        StageHist::DecodeStep => "One batched decode step.",
        StageHist::Score => "Beam scoring per step (top-k + survivors).",
        StageHist::Admit => "Engine admission (encode + cross-KV).",
        StageHist::Tokenize => "Tokenizing normalized assembly.",
        StageHist::TypeInf => "Type-inference header synthesis.",
        StageHist::Repair => "Candidate repair pass.",
        StageHist::Judge => "IO judging (BTC verification).",
    }
}

fn ctr_metric(c: KernelCtr) -> &'static str {
    match c {
        KernelCtr::ProjCalls => "slade_kernel_proj_calls_total",
        KernelCtr::ProjRows => "slade_kernel_proj_rows_total",
        KernelCtr::AttendCalls => "slade_kernel_attend_calls_total",
        KernelCtr::TopkCalls => "slade_kernel_topk_calls_total",
        KernelCtr::EncodeRows => "slade_kernel_encode_rows_total",
        KernelCtr::DecodeLaneTokens => "slade_kernel_decode_lane_tokens_total",
        KernelCtr::SlowRequests => "slade_slow_requests_total",
    }
}

fn ctr_help(c: KernelCtr) -> &'static str {
    match c {
        KernelCtr::ProjCalls => "Projection (matmul) invocations.",
        KernelCtr::ProjRows => "Rows produced by projections.",
        KernelCtr::AttendCalls => "Attention context computations.",
        KernelCtr::TopkCalls => "log-softmax top-k invocations.",
        KernelCtr::EncodeRows => "Sequence rows through the encoder.",
        KernelCtr::DecodeLaneTokens => "Lane-tokens advanced by decode steps.",
        KernelCtr::SlowRequests => "Requests over the SLADE_SLOW_MS threshold.",
    }
}

/// Point-in-time view of the runtime (queue depth and lane gauges are
/// instantaneous; counters and percentiles are cumulative).
#[derive(Debug, Clone, Serialize)]
pub struct MetricsSnapshot {
    /// Requests accepted (cache hits included).
    pub submitted: u64,
    /// Requests answered (cache hits included).
    pub completed: u64,
    /// Submissions rejected by bounded admission
    /// ([`crate::SubmitError::Overloaded`]).
    pub shed: u64,
    /// Requests whose deadline expired before a result was ready
    /// ([`crate::SubmitError::DeadlineExceeded`]).
    pub expired: u64,
    /// Duplicate submissions answered by attaching to an in-flight
    /// decode. With `shed`, `expired`, `decoded`, and `cache.hits`,
    /// partitions `submitted` exactly (counter conservation).
    pub coalesced: u64,
    /// Requests that ran the engine themselves.
    pub decoded: u64,
    /// Requests waiting for admission right now.
    pub queue_depth: usize,
    /// Live beam lanes per shard right now.
    pub shard_lanes: Vec<usize>,
    /// Lane budget each shard admits against.
    pub lane_capacity_per_shard: usize,
    /// Tokens decoded so far across all shards (one per live lane per
    /// engine step; cache hits decode nothing and add nothing).
    pub decode_tokens: u64,
    /// Kernel ISA tier the workers decode with ("scalar" / "avx2" /
    /// "neon" / "vnni"), resolved once at runtime start.
    pub kernel_isa: &'static str,
    /// Effective-vs-requested tier: equals `kernel_isa` when the
    /// `SLADE_KERNEL_ISA` request (if any) was honored, otherwise e.g.
    /// `avx2 (requested vnni: unsupported)`.
    pub kernel_isa_status: String,
    /// Weight backend of the served model ("f32" / "int8").
    pub backend: &'static str,
    /// Median end-to-end latency (submit → response), milliseconds.
    /// Histogram-derived: within one bucket width (6.25% relative) above
    /// the true order statistic; likewise for every percentile below.
    pub p50_latency_ms: f64,
    /// 95th-percentile end-to-end latency, milliseconds.
    pub p95_latency_ms: f64,
    /// 99th-percentile end-to-end latency, milliseconds.
    pub p99_latency_ms: f64,
    /// Median time spent queued before admission, milliseconds.
    pub p50_queue_wait_ms: f64,
    /// 95th-percentile queue wait, milliseconds.
    pub p95_queue_wait_ms: f64,
    /// 99th-percentile queue wait, milliseconds.
    pub p99_queue_wait_ms: f64,
    /// Result-cache counters.
    pub cache: CacheStats,
}

impl MetricsSnapshot {
    /// Mean live-lane occupancy across shards as a fraction of capacity.
    pub fn lane_occupancy(&self) -> f64 {
        if self.shard_lanes.is_empty() || self.lane_capacity_per_shard == 0 {
            return 0.0;
        }
        let live: usize = self.shard_lanes.iter().sum();
        live as f64 / (self.shard_lanes.len() * self.lane_capacity_per_shard) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_and_occupancy() {
        let m = MetricsInner::new(2, 10, "scalar", "scalar".to_string(), "f32");
        for ms in 1..=100u64 {
            m.record_latency(Duration::from_millis(ms));
        }
        m.shard_lanes[0].store(5, Ordering::Relaxed);
        m.shard_lanes[1].store(10, Ordering::Relaxed);
        let snap = m.snapshot(CacheStats::default());
        assert_eq!(snap.completed, 100);
        // Histogram quantiles are bucket upper bounds: never below the
        // true order statistic, within one bucket width (6.25%) above.
        for (est, truth) in [
            (snap.p50_latency_ms, 50.0),
            (snap.p95_latency_ms, 95.0),
            (snap.p99_latency_ms, 99.0),
        ] {
            assert!(est >= truth, "estimate {est} below true {truth}");
            assert!(est <= truth * (1.0 + 1.0 / 16.0) + 0.01, "estimate {est} vs {truth}");
        }
        assert!((snap.lane_occupancy() - 0.75).abs() < 1e-9);
    }

    #[test]
    fn queue_depth_saturates_instead_of_underflowing() {
        let m = MetricsInner::new(1, 4, "scalar", "scalar".to_string(), "f32");
        m.queue_depth.store(2, Ordering::Relaxed);
        m.queue_depth_sub(1);
        assert_eq!(m.queue_depth.load(Ordering::Relaxed), 1);
        // A racing shed/cancel decrement past zero clamps (release
        // behavior; debug builds additionally assert the race).
        if cfg!(debug_assertions) {
            let r =
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| m.queue_depth_sub(5)));
            assert!(r.is_err(), "debug build must assert on underflow");
        } else {
            m.queue_depth_sub(5);
            assert_eq!(m.queue_depth.load(Ordering::Relaxed), 0);
        }
    }

    #[test]
    fn prometheus_text_is_well_formed() {
        let m = MetricsInner::new(2, 8, "scalar", "scalar".to_string(), "f32");
        m.submitted.store(7, Ordering::Relaxed);
        m.record_latency(Duration::from_millis(12));
        m.record_queue_wait(Duration::from_micros(300));
        m.decode_tokens.store(123, Ordering::Relaxed);
        let text = m.prometheus(CacheStats::default());
        let stats = slade_obs::export::validate_exposition(&text).expect("valid exposition");
        assert!(stats.families >= 20, "families: {}", stats.families);
        assert_eq!(stats.values["slade_requests_submitted_total"], 7.0);
        assert_eq!(stats.values["slade_decode_tokens_total"], 123.0);
        assert!(text.contains("slade_stage_decode_step_seconds_count"));
        assert!(text.contains(
            "slade_info{kernel_isa=\"scalar\",kernel_isa_status=\"scalar\",backend=\"f32\"} 1"
        ));
    }
}
